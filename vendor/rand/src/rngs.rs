//! Concrete generators.

use crate::RngCore;

/// A small, fast, non-cryptographic generator: xoshiro256++.
///
/// Matches the role (not the exact stream) of `rand::rngs::SmallRng`; all
/// workspace code seeds it explicitly, so only determinism matters.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64, used to expand a 64-bit seed into the 256-bit state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    pub(crate) fn from_u64_seed(seed: u64) -> Self {
        let mut key = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut key);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any key, but guard anyway.
        if s == [0; 4] {
            s = [0xdead_beef, 0xcafe_f00d, 0x1234_5678, 0x9abc_def0];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
