//! Vendored, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: [`Rng`], [`SeedableRng`],
//! [`rngs::SmallRng`], and [`distributions::Uniform`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms,
//! which the seeded-reproducibility tests rely on.

pub mod distributions;
pub mod rngs;

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 uniform mantissa bits in [0, 1); `u < 1.0` always for p = 1.0
        // and never for p = 0.0, so the extremes are exact.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng::from_u64_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| crate::RngCore::next_u64(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| crate::RngCore::next_u64(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let observed = hits as f64 / 100_000.0;
        assert!((observed - 0.3).abs() < 0.01, "observed {observed}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f32..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }
}
