//! Sampling distributions (`Uniform`) and the ranges behind `gen_range`.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value using `rng` as the entropy source.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// Uniform distribution over a fixed interval.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<X> {
    low: X,
    high: X,
    inclusive: bool,
}

impl<X: uniform::SampleUniform> Uniform<X> {
    /// Uniform over the half-open interval `[low, high)`.
    pub fn new(low: X, high: X) -> Self {
        Uniform {
            low,
            high,
            inclusive: false,
        }
    }

    /// Uniform over the closed interval `[low, high]`.
    pub fn new_inclusive(low: X, high: X) -> Self {
        Uniform {
            low,
            high,
            inclusive: true,
        }
    }
}

impl<X: uniform::SampleUniform> Distribution<X> for Uniform<X> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> X {
        X::sample_uniform(self.low, self.high, self.inclusive, rng)
    }
}

pub mod uniform {
    //! The `SampleUniform` / `SampleRange` machinery used by `Rng::gen_range`.

    use crate::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be drawn uniformly from an interval.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Draws one value from `[low, high)` (or `[low, high]` when
        /// `inclusive`).
        fn sample_uniform<R: Rng + ?Sized>(
            low: Self,
            high: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: Rng + ?Sized>(
                    low: Self,
                    high: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    if inclusive {
                        assert!(low <= high, "empty sampling range");
                    } else {
                        assert!(low < high, "empty sampling range");
                    }
                    let span = (high as i128 - low as i128) + if inclusive { 1 } else { 0 };
                    if span <= 0 {
                        // Only reachable for `low..=high` covering the whole
                        // domain of a 128-bit type, which we do not implement.
                        return low;
                    }
                    // Lemire-style widening multiply keeps the draw unbiased
                    // enough for simulation workloads without a reject loop.
                    let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                    (low as i128 + draw) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty => $bits:expr),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: Rng + ?Sized>(
                    low: Self,
                    high: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    assert!(low <= high, "empty sampling range");
                    let unit =
                        (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                    let v = low + (high - low) * unit;
                    // Rounding in `low + span * unit` can land exactly on
                    // `high`; keep half-open ranges exclusive.
                    if !inclusive && v >= high {
                        high.next_down().max(low)
                    } else {
                        v
                    }
                }
            }
        )*};
    }

    impl_sample_uniform_float!(f32 => 24, f64 => 53);

    /// Interval shapes accepted by `Rng::gen_range`.
    pub trait SampleRange<T>: Sized {
        /// Draws a single value from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(*self.start(), *self.end(), true, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleUniform;
    use super::{Distribution, Uniform};
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_f32_stays_in_interval() {
        let dist = Uniform::new_inclusive(-1.0f32, 1.0);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = dist.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_int_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[u8::sample_uniform(0, 8, false, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
