//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! Offline build: the workspace vendors just enough of criterion for the
//! `benches/` targets to compile and produce useful wall-clock numbers —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. There is no statistical
//! analysis, HTML report, or comparison against saved baselines: each
//! benchmark is warmed up briefly, timed over a fixed wall-clock budget, and
//! its mean iteration time printed.

use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How batches are sized in [`Bencher::iter_batched`]. Only a hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: larger batches.
    SmallInput,
    /// Large per-iteration inputs: one input per batch.
    LargeInput,
    /// Setup re-runs on every iteration.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Total time spent in measured routines.
    elapsed: Duration,
    /// Number of measured iterations.
    iterations: u64,
    /// Wall-clock measurement budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            budget,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a few unmeasured calls.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` over inputs created by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iterations += 1;
        }
    }
}

/// Benchmark driver: registers and runs named benchmark functions.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep full `cargo bench` runs quick; raise via CRITERION_BUDGET_MS.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        if bencher.iterations == 0 {
            println!("{id:<40} (no measured iterations)");
        } else {
            let mean = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
            println!(
                "{id:<40} {:>12.1} ns/iter ({} iters)",
                mean, bencher.iterations
            );
        }
        self
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a set of [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iterations > 0);
    }
}
