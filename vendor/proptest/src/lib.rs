//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest the workspace tests use: the [`proptest!`] test
//! macro, `prop_assert*` macros, [`strategy::Strategy`] with `prop_map`,
//! [`strategy::Just`], `prop_oneof!`, range / tuple / `any::<T>()` / regex
//! string strategies, and [`collection::vec`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (no persisted failure files) and there is **no shrinking**
//! — a failing case panics with the generated inputs left to the assert
//! message. Case count defaults to 64 and honours `PROPTEST_CASES`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `Arbitrary` glue behind `any::<T>()`.

    use crate::strategy::{AnyStrategy, Strategy};

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyStrategy<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyStrategy::new()
                }
            }
        )*};
    }

    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char);

    /// Returns the canonical strategy for `T` (proptest's `any`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod prelude {
    //! One-stop import used by the workspace test files.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs one property-test function: `cases` deterministic cases seeded from
/// the fully-qualified test name.
pub fn run_cases(test_name: &str, mut case: impl FnMut(&mut test_runner::TestRng)) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(64)
        .max(1);
    for index in 0..cases {
        let mut rng = test_runner::TestRng::deterministic(test_name, index);
        case(&mut rng);
    }
}

/// Declares property tests. Each function runs its body once per generated
/// case, with every `name in strategy` parameter bound to a fresh draw.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    |prop_rng| {
                        $(let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), prop_rng);)+
                        $body
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property test (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks one of several strategies (uniformly; weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 3usize..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(v in (0u8..4, 0u8..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 6);
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(1u8), Just(2), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn vec_sizes_are_respected(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn regex_class_strategy(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
