//! Deterministic entropy source for property tests.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Error type carried by proptest-style test bodies (kept for API parity;
/// the vendored `prop_assert!` panics instead of returning it).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Per-case RNG. Seeded from the test name and case index so runs are
/// reproducible across machines and incremental rebuilds.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Builds the RNG for one (test, case) pair.
    pub fn deterministic(test_name: &str, case_index: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash ^ ((case_index as u64) << 32 | 0x9e37)),
        }
    }

    /// Draws 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Draws `n` as `0 <= draw < n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
