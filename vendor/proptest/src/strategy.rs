//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between several strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.0.len() as u64) as usize;
        self.0[arm].generate(rng)
    }
}

/// Strategy behind `any::<T>()`.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> AnyStrategy<T> {
    pub(crate) fn new() -> Self {
        AnyStrategy(PhantomData)
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Bias ~1/8 of draws toward boundary values, which is where
                // decoder / conversion properties tend to break.
                if rng.below(8) == 0 {
                    const EDGES: [$t; 3] = [0 as $t, <$t>::MAX, <$t>::MIN];
                    EDGES[rng.below(3) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for AnyStrategy<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                return c;
            }
        }
    }
}

macro_rules! impl_any_float {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Finite values across a wide dynamic range.
                let magnitude = (rng.unit_f64() * 60.0 - 30.0).exp2();
                let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                (sign * magnitude) as $t
            }
        }
    )*};
}

impl_any_float!(f32, f64);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                // Rounding can land exactly on the excluded upper endpoint.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_range_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

// --- Regex-literal string strategies ------------------------------------

/// One parsed regex atom: the set of characters it can produce plus its
/// repetition bounds.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .expect("unterminated character class in regex strategy");
        let literal = match c {
            ']' => {
                if let Some(p) = pending {
                    set.push(p);
                }
                return set;
            }
            '\\' => match chars.next().expect("dangling escape in regex strategy") {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            },
            '-' => {
                // Range if we have a pending start and a following end.
                if let (Some(start), Some(&next)) = (pending, chars.peek()) {
                    if next != ']' {
                        let end = match chars.next().expect("checked") {
                            '\\' => match chars.next().expect("dangling escape") {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            },
                            other => other,
                        };
                        for v in start as u32..=end as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                        pending = None;
                        continue;
                    }
                }
                '-'
            }
            other => other,
        };
        if let Some(p) = pending {
            set.push(p);
        }
        pending = Some(literal);
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            if let Some((lo, hi)) = spec.split_once(',') {
                let min: usize = lo.trim().parse().expect("bad {m,n} in regex strategy");
                let max: usize = if hi.trim().is_empty() {
                    min + 16
                } else {
                    hi.trim().parse().expect("bad {m,n} in regex strategy")
                };
                (min, max)
            } else {
                let n: usize = spec.trim().parse().expect("bad {m} in regex strategy");
                (n, n)
            }
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => parse_class(&mut chars),
            '.' => (' '..='~').collect(),
            '\\' => {
                let esc = chars.next().expect("dangling escape in regex strategy");
                match esc {
                    'n' => vec!['\n'],
                    't' => vec!['\t'],
                    'r' => vec!['\r'],
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(['_'])
                        .collect(),
                    's' => vec![' ', '\t', '\n'],
                    other => vec![other],
                }
            }
            '(' | ')' | '|' => {
                panic!("regex strategy subset does not support groups/alternation: {pattern:?}")
            }
            other => vec![other],
        };
        let (min, max) = parse_quantifier(&mut chars);
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..reps {
                if atom.choices.is_empty() {
                    continue;
                }
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}
