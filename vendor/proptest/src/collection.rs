//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec()`]: an exact size or a size range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn from `size` (an exact `usize`, `a..b`, or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
