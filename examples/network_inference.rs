//! Network-level inference: run each Table IV layer suite (ResNet50 block,
//! BERT encoder GEMMs, GPT block) back to back on the dense baseline and on
//! VEGETA, at every structured sparsity level.
//!
//! Run with: `cargo run --release --example network_inference`

use vegeta::experiments::{run_network, NetworkRunResult};
use vegeta::prelude::*;
use vegeta::workloads::{layers_of, Network};

fn print_suite(name: &str, result: &NetworkRunResult, baseline: Option<&NetworkRunResult>) {
    let speedup = baseline
        .map(|b| format!("{:.2}x", b.total_cycles as f64 / result.total_cycles as f64))
        .unwrap_or_else(|| "1.00x".to_string());
    println!(
        "  {:<28} {:>14} cycles {:>8.2} eff. TFLOPS  {:>7}",
        name,
        result.total_cycles,
        result.effective_tflops(2.0),
        speedup
    );
}

fn main() {
    let suites = [
        ("ResNet50 (6 conv layers)", Network::ResNet50),
        ("BERT (3 encoder GEMMs)", Network::Bert),
        ("GPT-3 (3 block GEMMs)", Network::Gpt),
    ];
    let dm = EngineConfig::rasa_dm();
    let vegeta_engine = EngineConfig::vegeta_s(16)
        .expect("valid alpha")
        .with_output_forwarding(true);

    for (suite_name, network) in suites {
        let layers = layers_of(network);
        let macs: u64 = layers.iter().map(|l| l.macs()).sum();
        println!(
            "\n{suite_name}: {} layers, {} total MACs",
            layers.len(),
            macs
        );
        for (label, ratio) in [
            ("4:4", NmRatio::D4_4),
            ("2:4", NmRatio::S2_4),
            ("1:4", NmRatio::S1_4),
        ] {
            let base = run_network(&layers, ratio, &dm);
            let ours = run_network(&layers, ratio, &vegeta_engine);
            println!(" weights {label}:");
            print_suite(dm.name(), &base, None);
            print_suite(vegeta_engine.name(), &ours, Some(&base));
        }
    }
    println!("\nper-layer breakdown (ResNet50 at 2:4 on VEGETA-S-16-2+OF):");
    let layers = layers_of(Network::ResNet50);
    let res = run_network(&layers, NmRatio::S2_4, &vegeta_engine);
    for (name, cycles) in &res.layer_cycles {
        println!("  {:<14} {:>12} cycles", name, cycles);
    }
}
