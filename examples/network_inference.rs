//! Network-level inference: run each Table IV layer suite (ResNet50 block,
//! BERT encoder GEMMs, GPT block) back to back on the dense baseline and on
//! VEGETA, at every structured sparsity level — all through the `Session`
//! API's network runner.
//!
//! Run with: `cargo run --release --example network_inference`

use std::sync::Arc;

use vegeta::prelude::*;
use vegeta::workloads::{layers_of, Network};

fn print_suite(result: &NetworkReport, baseline: Option<&NetworkReport>) {
    let speedup = baseline.map_or_else(
        || "1.00x".to_string(),
        |b| {
            format!(
                "{:.2}x",
                b.total_cycles() as f64 / result.total_cycles() as f64
            )
        },
    );
    println!(
        "  {:<28} {:>14} cycles {:>8.2} eff. TFLOPS  {:>7}",
        result.engine,
        result.total_cycles(),
        result.effective_tflops(),
        speedup
    );
}

fn main() {
    let quick = quick_factor();
    if quick > 1 {
        println!("(quick mode: layer dims / {quick})");
    }
    let suites = [
        ("ResNet50 (6 conv layers)", Network::ResNet50),
        ("BERT (3 encoder GEMMs)", Network::Bert),
        ("GPT-3 (3 block GEMMs)", Network::Gpt),
    ];
    // Both sessions share one cache: the dense baseline and VEGETA run the
    // same dense kernel for 4:4 weights, so that trace is built only once.
    let cache = Arc::new(TraceCache::new());
    let dm = Session::new(EngineConfig::rasa_dm()).with_cache(Arc::clone(&cache));
    let vegeta_session = Session::new(
        EngineConfig::vegeta_s(16)
            .expect("valid alpha")
            .with_output_forwarding(true),
    )
    .with_cache(cache);

    for (suite_name, network) in suites {
        let layers = layers_of(network);
        let macs: u64 = layers.iter().map(Layer::macs).sum();
        println!(
            "\n{suite_name}: {} layers, {} total MACs",
            layers.len(),
            macs
        );
        for ratio in figure13_sparsities() {
            let base = dm.run_network_scaled(&layers, ratio, quick);
            let ours = vegeta_session.run_network_scaled(&layers, ratio, quick);
            println!(" weights {ratio}:");
            print_suite(&base, None);
            print_suite(&ours, Some(&base));
        }
    }
    println!("\nper-layer breakdown (ResNet50 at 2:4 on VEGETA-S-16-2+OF):");
    let layers = layers_of(Network::ResNet50);
    let res = vegeta_session.run_network_scaled(&layers, NmRatio::S2_4, quick);
    for layer in &res.layers {
        println!(
            "  {:<14} {:>12} cycles  (kernel {})",
            layer.workload, layer.cycles, layer.kernel
        );
    }
}
