//! Unstructured sparsity on VEGETA: the lossless row-wise N:M transform
//! (§III-D), TILE_SPMM_R packing, and the granularity comparison of Fig. 15
//! on one matrix.
//!
//! Run with: `cargo run --release --example unstructured_transform`

use vegeta::engine::rowwise::{pack_rows, packing_stats};
use vegeta::kernels::build_rowwise_program;
use vegeta::num::gemm_bf16_ref;
use vegeta::prelude::*;
use vegeta::sparse::{prune, transform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand_seed(95);
    let degree = 0.95;
    let a = prune::random_unstructured(128, 256, degree, &mut rng);
    let b = prune::random_dense(256, 32, &mut rng);
    println!(
        "unstructured A: {}x{} at {:.0}% sparsity",
        a.rows(),
        a.cols(),
        vegeta::sparse::sparsity_degree(&a) * 100.0
    );

    // 1. The lossless cover: each row gets the sparsest N:4 that keeps all
    //    its non-zeros.
    let tile = RowWiseTile::compress(&a, 4)?;
    assert_eq!(tile.decompress(), a, "the transform never loses a non-zero");
    let mut histogram = [0usize; 5];
    for r in tile.row_ratios() {
        histogram[r.n() as usize] += 1;
    }
    println!(
        "row covers: 1:4 x{}, 2:4 x{}, 4:4 x{} -> compression {:.2}x",
        histogram[1],
        histogram[2],
        histogram[4],
        tile.compression_ratio()
    );

    // 2. Packing into TILE_SPMM_R instructions (32 MAC columns each).
    let mut covers = transform::row_covers(&a, 4)?;
    covers.sort();
    let stats = packing_stats(&pack_rows(&covers));
    println!(
        "TILE_SPMM_R packing: {} tiles, mean MAC-column utilization {:.1}%",
        stats.instructions,
        stats.mean_utilization * 100.0
    );

    // 3. Execute the row-wise SPMM end to end and verify.
    let program = build_rowwise_program(&a, &b, true)?;
    let got = program.run_functional()?;
    let mut expected = Matrix::zeros(a.rows(), b.cols());
    gemm_bf16_ref(&a, &b, &mut expected);
    assert_eq!(got, expected, "row-wise SPMM must be bit-exact");
    println!("TILE_SPMM_R kernel verified bit-exact against the dense reference");

    // 4. Time the packed TILE_SPMM_R kernel on the core model, against the
    //    dense kernel for the same GEMM, through the Session API.
    let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
    let session = Session::new(
        EngineConfig::vegeta_s(16)
            .expect("valid alpha")
            .with_output_forwarding(true),
    );
    let rowwise = session.run_spec(
        "unstructured-95",
        shape,
        &KernelSpec::RowWise {
            row_ratios: covers.clone(),
        },
    );
    let dense = session.run_spec(
        "unstructured-95",
        shape,
        &KernelSpec::tiled(SparseMode::Dense),
    );
    println!(
        "timing on {}: row-wise {} cycles vs dense {} cycles ({:.2}x)",
        rowwise.engine,
        rowwise.cycles,
        dense.cycles,
        dense.cycles as f64 / rowwise.cycles as f64
    );

    // 5. What each granularity of hardware support would skip (Fig. 15).
    println!(
        "\nspeedup by sparsity-granularity support at {:.0}% degree:",
        degree * 100.0
    );
    let model = GranularityModel::default();
    for hw in GranularityHw::all() {
        println!("  {:<48} {:>5.2}x", hw.name(), model.speedup(hw, &a));
    }
    Ok(())
}
