//! Storage formats as a first-class sweep axis: the Fig. 12-style
//! structured-vs-unstructured comparison.
//!
//! One `Sweep` grids a dense baseline and a VEGETA engine over five storage
//! formats of the same BERT layer — dense tiles, 2:4 and 1:4 compressed
//! tiles, row-wise `N:4` tiles (unstructured weights covered via §III-D),
//! and raw CSR (which cannot enter the tile engine and falls back to the
//! vector unit). The report carries each cell's storage footprint
//! (`a_values_bytes` + `a_metadata_bits`), so the output shows the
//! runtime/storage trade-off per format.
//!
//! Run with: `cargo run --release --example format_sweep`

use vegeta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = table4()[7]; // BERT-L2
    let scale = quick_factor();
    let formats = [
        FormatSpec::Dense,
        FormatSpec::Nm(NmRatio::S2_4),
        FormatSpec::Nm(NmRatio::S1_4),
        FormatSpec::RowWise { m: 4 },
        FormatSpec::Csr,
    ];

    let sweep = Sweep::new()
        .with_engines([
            EngineConfig::rasa_dm(),
            EngineConfig::vegeta_s(16)
                .expect("valid alpha")
                .with_output_forwarding(true),
        ])
        .with_layer(layer)
        .with_formats(formats)
        .with_unstructured_degree(0.8)
        .with_scale(scale);
    let report = sweep.run();
    println!(
        "{} on {} storage formats x 2 engines ({} cells, {} traces built)\n",
        layer.name,
        formats.len(),
        report.cells.len(),
        report.traces_built
    );

    println!(
        "{:<28} {:>10} {:>14} {:>12} {:>12} {:>9}",
        "engine", "format", "kernel", "A bytes", "meta bits", "cycles"
    );
    for cell in &report.cells {
        println!(
            "{:<28} {:>10} {:>14} {:>12} {:>12} {:>9}",
            cell.engine,
            cell.format,
            cell.kernel,
            cell.a_values_bytes,
            cell.a_metadata_bits,
            cell.cycles
        );
    }

    // The structured-vs-unstructured punchline: on the sparse engine, the
    // row-wise cover of 80%-unstructured weights runs on the tile engine,
    // while raw CSR is stuck on the vector unit.
    let sparse_engine = "VEGETA-S-16-2+OF";
    let rowwise = report
        .get(layer.name, sparse_engine, "rowwise:4")
        .expect("row-wise cell");
    let csr = report
        .get(layer.name, sparse_engine, "csr")
        .expect("csr cell");
    let dense = report
        .get(layer.name, sparse_engine, "dense")
        .expect("dense cell");
    println!(
        "\nrow-wise cover vs raw CSR on {}: {:.2}x faster ({} vs {} cycles)",
        sparse_engine,
        csr.cycles as f64 / rowwise.cycles as f64,
        rowwise.cycles,
        csr.cycles
    );
    println!(
        "row-wise storage vs dense: {:.1}% of the value bytes (+ {} metadata bits)",
        100.0 * rowwise.a_values_bytes as f64 / dense.a_values_bytes as f64,
        rowwise.a_metadata_bits
    );
    assert!(
        rowwise.cycles < csr.cycles,
        "the §III-D transform must beat the vector fallback"
    );

    report.save_csv("format_sweep");
    Ok(())
}
