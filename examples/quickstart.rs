//! Quickstart: the `Session`/`Sweep` experiment API.
//!
//! Four steps: (1) ask one engine one question with a `Session`, (2) check
//! the numerics are real with the functional executor, (3) sweep a whole
//! engine x sparsity grid in parallel with `Sweep` and read the structured
//! report, (4) replay a **full-fidelity** (unscaled) Table IV layer
//! through the streaming pipeline — the trace is generated lazily and the
//! peak resident footprint stays bounded by one chunk.
//!
//! Run with: `cargo run --release --example quickstart`
//! (`VEGETA_QUICK=1` shrinks the layers for a fast smoke run.)

use vegeta::num::gemm_bf16_ref;
use vegeta::prelude::*;
use vegeta::sparse::prune;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Always run on a scaled layer (this is a quickstart); scale further
    // down when VEGETA_QUICK is set.
    let quick = if quick_factor() > 1 { 8 } else { 4 };

    // 1. One question: how fast does VEGETA-S-16-2+OF run BERT-L2 with
    //    2:4-sparse weights, against the dense state of the art?
    let layer = table4()[7]; // BERT-L2
    let vegeta_engine = EngineConfig::vegeta_s(16)
        .expect("valid alpha")
        .with_output_forwarding(true);
    let ours = Session::new(vegeta_engine).run_layer_scaled(&layer, NmRatio::S2_4, quick);
    let base = Session::new(EngineConfig::rasa_dm()).run_layer_scaled(&layer, NmRatio::S2_4, quick);
    println!(
        "{} at {} sparsity (shape {}x{}x{}, 1/{quick} scale):",
        ours.workload, ours.sparsity, ours.shape.m, ours.shape.n, ours.shape.k
    );
    println!(
        "  {:<36} {:>10} cycles  kernel {}",
        base.engine, base.cycles, base.kernel
    );
    println!(
        "  {:<36} {:>10} cycles  kernel {}  ({:.2}x)",
        ours.engine,
        ours.cycles,
        ours.kernel,
        base.cycles as f64 / ours.cycles as f64
    );
    // Reports are structured and serializable — no scraping stdout.
    let round_trip = RunReport::from_json(&ours.to_json())?;
    assert_eq!(round_trip, ours);
    println!("  as JSON: {}\n", ours.to_json());

    // 2. The cycle counts above replay *real* kernels: the same builders
    //    produce functional programs whose outputs are bit-exact.
    let mut rng = rand_seed(2023);
    let weights = prune::magnitude_prune_nm(&prune::random_dense(32, 64, &mut rng), NmRatio::S2_4);
    let inputs = prune::random_dense(64, 16, &mut rng);
    let program = vegeta::kernels::build_program(
        &weights,
        &inputs,
        SparseMode::Nm2of4,
        KernelOptions::default(),
    )?;
    let got = program.run_functional()?;
    let mut expected = Matrix::zeros(32, 16);
    gemm_bf16_ref(&weights, &inputs, &mut expected);
    assert_eq!(got, expected, "TILE_SPMM_U must match the dense reference");
    println!("functional check: TILE_SPMM_U kernel is bit-exact vs the dense reference\n");

    // 3. The same question as a grid: every sparsity x a few engines, run
    //    on the parallel sweep runner with one shared trace cache.
    let grid = Sweep::new()
        .with_engines([
            EngineConfig::rasa_dm(),
            EngineConfig::stc_like(),
            EngineConfig::vegeta_s(16)
                .expect("valid alpha")
                .with_output_forwarding(true),
        ])
        .with_layer(layer)
        .with_sparsities(figure13_sparsities())
        .with_scale(quick)
        .run();
    println!(
        "sweep: {} cells on {} threads, {} traces built ({} cache hits)",
        grid.cells.len(),
        grid.threads,
        grid.traces_built,
        grid.trace_cache_hits
    );
    for cell in &grid.cells {
        println!(
            "  {:<8} {:<36} {:>10} cycles  {:>5.1}% engine-busy",
            cell.sparsity,
            cell.engine,
            cell.cycles,
            cell.utilization() * 100.0
        );
    }
    let of_engine = EngineConfig::vegeta_s(16)
        .expect("valid alpha")
        .with_output_forwarding(true);
    let speedup = grid
        .geomean_speedup(EngineConfig::rasa_dm().name(), of_engine.name(), "1:4")
        .expect("complete grid");
    println!("\n{} over RASA-DM at 1:4: {speedup:.2}x", of_engine.name());

    // 4. Full fidelity: the real, unscaled layer streamed end to end.
    //    `Fidelity::Full` replays the exact Table IV dimensions; the trace
    //    is never materialized, so peak residency is one streaming chunk
    //    rather than megabytes of instruction vector.
    let full_layer = table4()
        .into_iter()
        .find(|l| l.name == "ResNet50-L6")
        .expect("Table IV layer");
    let session = Session::new(EngineConfig::vegeta_s(16).expect("valid alpha"));
    let full = session.run_layer_at(&full_layer, NmRatio::S2_4, Fidelity::Full);
    println!(
        "\nfull fidelity: {} ({}x{}x{}) on {}: {} cycles, {} insts streamed, \
         peak trace residency {} B (materialized would be {} B)",
        full.workload,
        full.shape.m,
        full.shape.n,
        full.shape.k,
        full.engine,
        full.cycles,
        full.insts_streamed,
        full.peak_resident_bytes,
        full.instructions * vegeta::isa::TRACE_OP_BYTES as u64
    );
    assert_eq!(full.fidelity, "full");
    Ok(())
}
