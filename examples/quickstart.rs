//! Quickstart: prune a weight tile to 2:4, compress it into the VEGETA
//! register format, execute a `TILE_SPMM_U` through the functional ISA
//! executor, and confirm the result matches a dense reference GEMM.
//!
//! Run with: `cargo run --example quickstart`

use vegeta::num::gemm_bf16_ref;
use vegeta::prelude::*;
use vegeta::sparse::prune;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand_seed(2023);

    // 1. A dense 16x64 weight tile, magnitude-pruned to 2:4 sparsity.
    let dense = prune::random_dense(16, 64, &mut rng);
    let weights = prune::magnitude_prune_nm(&dense, NmRatio::S2_4);
    println!(
        "pruned weight tile: {}x{}, sparsity degree {:.2}",
        weights.rows(),
        weights.cols(),
        vegeta::sparse::sparsity_degree(&weights)
    );

    // 2. Compress: 512 non-zero values (1 KB treg) + 128 B metadata (mreg).
    let tile = CompressedTile::compress(&weights, NmRatio::S2_4)?;
    println!(
        "compressed: {} stored values, {} B metadata, effective tile {}x{}",
        tile.values().len(),
        tile.metadata_packed().len(),
        tile.rows(),
        tile.effective_cols()
    );
    assert_eq!(tile.decompress(), weights, "compression is lossless");

    // 3. Stage operands in memory and run the Table II instruction sequence.
    let inputs = prune::random_dense(64, 16, &mut rng); // B: 64x16
    let bt = inputs.transposed();

    let mut exec = Executor::new(Memory::new(1 << 16));
    let a_addr = exec.mem_mut().alloc(1024)?;
    let m_addr = exec.mem_mut().alloc(128)?;
    let b_addr = exec.mem_mut().alloc(2048)?;
    let c_addr = exec.mem_mut().alloc(1024)?;
    exec.mem_mut().write_bf16_matrix(a_addr, tile.values())?;
    exec.mem_mut()
        .write_bytes(m_addr, &tile.metadata_packed())?;
    exec.mem_mut().write_bf16_matrix(b_addr, &bt)?;

    let program = [
        Inst::TileLoadU {
            dst: UReg::U3,
            addr: b_addr,
        },
        Inst::TileLoadT {
            dst: TReg::T4,
            addr: a_addr,
        },
        Inst::TileLoadM {
            dst: TReg::T4.paired_mreg(),
            addr: m_addr,
        },
        Inst::TileZero { dst: TReg::T0 },
        Inst::TileSpmmU {
            acc: TReg::T0,
            a: TReg::T4,
            b: UReg::U3,
        },
        Inst::TileStoreT {
            addr: c_addr,
            src: TReg::T0,
        },
    ];
    exec.run(&program)?;
    let c = exec.mem().read_f32_matrix(c_addr, 16, 16)?;

    // 4. Verify against the dense mixed-precision reference.
    let mut expected = Matrix::zeros(16, 16);
    gemm_bf16_ref(&weights, &inputs, &mut expected);
    assert_eq!(c, expected, "TILE_SPMM_U must match the dense reference");
    println!("TILE_SPMM_U output verified against the dense reference GEMM");
    println!(
        "executor stats: {} instructions, {} effectual MACs",
        exec.stats().instructions,
        exec.stats().effectual_macs
    );

    // 5. What does the hardware gain? One engine-level data point.
    let dm = EngineConfig::rasa_dm();
    let s16 = EngineConfig::vegeta_s(16)
        .expect("valid alpha")
        .with_output_forwarding(true);
    println!(
        "\nengine latencies: {} = {} cycles/instr, {} = {} cycles/instr",
        dm.name(),
        dm.instruction_latency(),
        s16.name(),
        s16.instruction_latency()
    );
    println!("(a 2:4 layer needs half the tile instructions — see the fig13 bench)");
    Ok(())
}
