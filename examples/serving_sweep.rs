//! Serving quickstart: stand up a simulated serving fleet, drive it with
//! a Poisson load, and read the latency/throughput report.
//!
//! ```text
//! cargo run --release --example serving_sweep
//! ```
//!
//! 1. Configure the fleet: engine, workers, cores per worker, queue bound
//!    and batching window.
//! 2. Describe the offered load: QPS, request count, workload mix, seed.
//! 3. `Server::serve` simulates each distinct batch key once, then replays
//!    the serving timeline on the virtual clock.
//! 4. The report carries p50/p95/p99 latency, achieved QPS, batch-size
//!    histogram, shed count and per-worker utilization — deterministic in
//!    `(config, seed)`.

use vegeta::prelude::*;
use vegeta_serve::{LoadGen, ServeConfig, Server};

fn main() {
    // Keep CI quick-mode runs small; drop the scaling for full size.
    let scale = 8 * quick_factor();
    let fidelity = Fidelity::Quick(scale);

    let load = LoadGen::new(2_000.0, 48).with_seed(7);
    println!("offered: {} requests at {} QPS", load.requests, load.qps);

    for (label, cfg) in [
        (
            "1 worker, unbatched",
            ServeConfig::new(EngineConfig::vegeta_s(16).expect("valid design"))
                .with_workers(1)
                .with_fidelity(fidelity)
                .without_batching(),
        ),
        (
            "4 workers, batched",
            ServeConfig::new(EngineConfig::vegeta_s(16).expect("valid design"))
                .with_workers(4)
                .with_fidelity(fidelity),
        ),
    ] {
        let report = Server::new(cfg).serve(&load);
        println!(
            "{label}: p50 {} us, p99 {} us, achieved {:.0} QPS, \
             {} batches, shed {}, mean util {:.0}%",
            report.p50_latency_us,
            report.p99_latency_us,
            report.achieved_qps,
            report.batches,
            report.shed,
            report.mean_utilization() * 100.0
        );
    }
}
