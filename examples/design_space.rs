//! Design-space exploration across the Table III engines: performance on a
//! BERT layer at each sparsity, against area, power and achievable
//! frequency — the trade-off study of §VI-C/D in one table.
//!
//! Every design point gets its own `Session`; all sessions share one trace
//! cache, so the three distinct kernels (dense/2:4/1:4) are built once, not
//! once per engine.
//!
//! Run with: `cargo run --release --example design_space`

use std::sync::Arc;

use vegeta::prelude::*;
use vegeta::workloads::table4;

fn main() {
    let layer = table4()[7]; // BERT-L2
    let quick = quick_factor();
    let shape = layer.scaled_shape(quick);
    println!(
        "workload: {} (GEMM {}x{}x{}), engines at 0.5 GHz, core at 2 GHz\n",
        layer.name, shape.m, shape.n, shape.k
    );

    let cost = CostModel::default();
    let baseline = EngineConfig::rasa_sm();
    let cache = Arc::new(TraceCache::new());
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>12} {:>12} {:>12}",
        "engine", "area", "power", "GHz", "4:4 cycles", "2:4 cycles", "1:4 cycles"
    );
    for engine in EngineConfig::table3() {
        let (area, power) = cost.normalized(&engine, &baseline);
        let freq = cost.evaluate(&engine).frequency_ghz;
        let session = Session::new(engine).with_cache(Arc::clone(&cache));
        let cycles: Vec<u64> = [NmRatio::D4_4, NmRatio::S2_4, NmRatio::S1_4]
            .into_iter()
            .map(|ratio| session.run_layer_scaled(&layer, ratio, quick).cycles)
            .collect();
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>7.2} {:>12} {:>12} {:>12}",
            session.engine().name(),
            area,
            power,
            freq,
            cycles[0],
            cycles[1],
            cycles[2]
        );
    }
    println!(
        "\n(trace cache: {} kernels built for {} engine runs)",
        cache.misses(),
        cache.misses() + cache.hits()
    );
    println!(
        "reading the table: dense engines cannot exploit sparsity (columns equal);\n\
         VEGETA-S engines halve/quarter runtime at 2:4/1:4 for ~1-6% area over RASA-SM,\n\
         and larger broadcast factors (alpha) trade frequency for area."
    );
}
