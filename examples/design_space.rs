//! Design-space exploration across the Table III engines: performance on a
//! BERT layer at each sparsity, against area, power and achievable
//! frequency — the trade-off study of §VI-C/D in one table.
//!
//! Run with: `cargo run --release --example design_space`

use vegeta::experiments::{execution_mode, run_trace};
use vegeta::kernels::build_trace;
use vegeta::prelude::*;
use vegeta::workloads::table4;

fn main() {
    let layer = table4()[7]; // BERT-L2
    let shape = layer.gemm_shape();
    println!(
        "workload: {} (GEMM {}x{}x{}), engines at 0.5 GHz, core at 2 GHz\n",
        layer.name, shape.m, shape.n, shape.k
    );

    let cost = CostModel::default();
    let baseline = EngineConfig::rasa_sm();
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>12} {:>12} {:>12}",
        "engine", "area", "power", "GHz", "4:4 cycles", "2:4 cycles", "1:4 cycles"
    );
    for engine in EngineConfig::table3() {
        let (area, power) = cost.normalized(&engine, &baseline);
        let freq = cost.evaluate(&engine).frequency_ghz;
        let mut cycles = Vec::new();
        for ratio in [NmRatio::D4_4, NmRatio::S2_4, NmRatio::S1_4] {
            let mode = execution_mode(&engine, ratio);
            let trace = build_trace(shape, mode, KernelOptions::default());
            let res = run_trace(&trace, &engine, SimConfig::default());
            cycles.push(res.core_cycles);
        }
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>7.2} {:>12} {:>12} {:>12}",
            engine.name(),
            area,
            power,
            freq,
            cycles[0],
            cycles[1],
            cycles[2]
        );
    }
    println!(
        "\nreading the table: dense engines cannot exploit sparsity (columns equal);\n\
         VEGETA-S engines halve/quarter runtime at 2:4/1:4 for ~1-6% area over RASA-SM,\n\
         and larger broadcast factors (alpha) trade frequency for area."
    );
}
