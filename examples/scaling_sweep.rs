//! Multi-core scaling quickstart: shard one GEMM across matrix-engine
//! cores.
//!
//! Four steps: (1) run one Table IV layer sharded across 1–16 cores with
//! `Session::run_layer_cores` and read the makespan, per-core cycles,
//! parallel efficiency and shared-L2 reuse off the report (2D shard
//! plans with LPT packing by default — no stranded cores); (2) duel the
//! scheduler policies: the legacy static 1D path vs LPT at 16 cores;
//! (3) make core count a sweep axis with `Sweep::with_cores` and pull
//! the strong-scaling geomeans; (4) drop to `vegeta_sim::MultiCoreSim`
//! directly with `KernelSpec::shard_set` for full control over the
//! plan, scheduler, shared-L2 and barrier parameters.
//!
//! Run with: `cargo run --release --example scaling_sweep`
//! (`VEGETA_QUICK=1` shrinks the layers for a fast smoke run.)

use vegeta::isa::stream::InstStream;
use vegeta::prelude::*;

fn main() {
    let quick = if quick_factor() > 1 { 4 } else { 2 };
    let layer = table4()[7]; // BERT-L2: tall enough to shard 16 ways.

    // 1. One layer, one engine, more and more cores. The Session defaults
    //    to SchedulerPolicy::Lpt: 2D/K-split shard plans, packed onto
    //    cores by exact stream length.
    let session = Session::new(
        EngineConfig::vegeta_s(16)
            .expect("valid alpha")
            .with_output_forwarding(true),
    );
    println!(
        "{} at 2:4 on {} (1/{quick} scale), 2D-sharded + LPT-packed:",
        layer.name,
        session.engine().name()
    );
    println!(
        "{:>6} {:>12} {:>9} {:>11} {:>14} {:>9}",
        "cores", "cycles", "speedup", "efficiency", "L2 shared-hit", "stranded"
    );
    let base = session.run_layer_cores_at(&layer, NmRatio::S2_4, Fidelity::Quick(quick), 1);
    for cores in [1usize, 2, 4, 8, 16] {
        let r = session.run_layer_cores_at(&layer, NmRatio::S2_4, Fidelity::Quick(quick), cores);
        println!(
            "{:>6} {:>12} {:>8.2}x {:>11.3} {:>14} {:>9}",
            r.cores,
            r.cycles,
            base.cycles as f64 / r.cycles as f64,
            r.scaling_efficiency,
            r.shared_l2.shared_hits,
            r.stranded_cores()
        );
    }

    // 2. The scheduler duel: the legacy static path (one M-row shard per
    //    core, no N/K splits) against LPT at 16 cores. BERT-L2 has only
    //    11 accumulator groups, so static strands 5+ cores outright.
    println!("\nscheduler duel at 16 cores:");
    for policy in [SchedulerPolicy::Static, SchedulerPolicy::Lpt] {
        let session = Session::new(
            EngineConfig::vegeta_s(16)
                .expect("valid alpha")
                .with_output_forwarding(true),
        )
        .with_scheduler(policy);
        let r = session.run_layer_cores_at(&layer, NmRatio::S2_4, Fidelity::Quick(quick), 16);
        println!(
            "  {:<8} {:>12} cycles, efficiency {:>5.3}, {} of {} cores stranded",
            r.scheduler,
            r.cycles,
            r.scaling_efficiency,
            r.stranded_cores(),
            r.cores
        );
    }

    // 3. Core count as a grid axis: engines x cores in one sweep.
    let grid = Sweep::new()
        .with_engines([
            EngineConfig::rasa_dm(),
            EngineConfig::vegeta_s(16)
                .expect("valid alpha")
                .with_output_forwarding(true),
        ])
        .with_layer(layer)
        .with_sparsity(NmRatio::S2_4)
        .with_fidelity(Fidelity::Quick(quick))
        .with_cores([1, 4, 8])
        .run();
    println!(
        "\nsweep: {} cells on {} threads; strong-scaling geomeans vs 1 core:",
        grid.cells.len(),
        grid.threads
    );
    for engine in grid.engines() {
        for &cores in &grid.cores_values()[1..] {
            let g = grid
                .geomean_core_scaling(engine, "2:4", cores)
                .expect("complete grid");
            println!("  {engine:<36} {cores} cores: {g:.2}x");
        }
    }

    // 4. The raw harness: plan the shard set yourself and run it on an
    //    explicitly configured MultiCoreSim (cold shared L2, pricier
    //    barrier, work stealing) — the knobs the Session defaults hide.
    let spec = KernelSpec::tiled(SparseMode::Nm2of4);
    let shape = layer.scaled_shape(quick);
    let plan = spec.shard_plan(shape, 4);
    let set = spec.shard_set(shape, 4);
    println!(
        "\nraw harness: plan {}x{}x{} -> {} shards of {} ops total",
        plan.m_splits,
        plan.n_splits,
        plan.k_splits,
        set.shards.len(),
        set.shards.iter().map(InstStream::remaining).sum::<u64>()
    );
    let mut cfg = MultiCoreConfig::new(4);
    cfg.prefetched = false; // charge memory latency on cold L2 lines
    cfg.barrier_latency = 128;
    cfg.work_stealing = true; // drain early? steal the largest unstarted shard
    let mut sim = MultiCoreSim::new(cfg, EngineConfig::vegeta_s(16).expect("valid alpha"));
    let res = sim.run_sharded(set.shards, set.reduction, SchedulerPolicy::Lpt);
    println!(
        "cold-L2 makespan {} cycles (barrier {}), shared L2: {} hits / {} misses / {} shared",
        res.core_cycles,
        res.barrier_cycles,
        res.shared_l2.hits,
        res.shared_l2.misses,
        res.shared_l2.shared_hits
    );
    assert_eq!(res.cores, 4);
    assert_eq!(res.stranded_cores(), 0);
}
