//! Sparse ResNet50 layer inference end to end: im2col lowering, 2:4 weight
//! pruning, kernel construction, bit-exact functional verification on a
//! scaled copy, and full-size timing through the `Session` API.
//!
//! Run with: `cargo run --release --example sparse_resnet_inference`

use std::sync::Arc;

use vegeta::kernels::{build_program, KernelOptions};
use vegeta::num::gemm_bf16_ref;
use vegeta::prelude::*;
use vegeta::sparse::prune;
use vegeta::workloads::{generate_weights, table4, LayerKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = table4()[1]; // ResNet50-L2: 3x3 conv, 56x56, 64ch
    let LayerKind::Conv(conv) = layer.kind else {
        unreachable!("L2 is a conv layer")
    };
    let gemm = layer.gemm_shape();
    println!(
        "{}: conv K={} C={} {}x{} {}x{} -> GEMM {}x{}x{} ({} MACs)",
        layer.name,
        conv.k,
        conv.c,
        conv.y,
        conv.x,
        conv.r,
        conv.s,
        gemm.m,
        gemm.n,
        gemm.k,
        layer.macs()
    );

    // --- Functional check on a scaled-down copy (fast in debug builds). ---
    let mut rng = rand_seed(7);
    let small = GemmShape::new(32, 48, 144);
    let weights = prune::magnitude_prune_nm(
        &prune::random_dense(small.m, small.k, &mut rng),
        NmRatio::S2_4,
    );
    let inputs = prune::random_dense(small.k, small.n, &mut rng);
    let program = build_program(
        &weights,
        &inputs,
        SparseMode::Nm2of4,
        KernelOptions::default(),
    )?;
    let got = program.run_functional()?;
    let mut expected = Matrix::zeros(small.m, small.n);
    gemm_bf16_ref(&weights, &inputs, &mut expected);
    assert_eq!(got, expected, "sparse kernel must be bit-exact");
    println!("scaled-down kernel verified bit-exact against the dense reference");

    // --- Full-size timing: dense baseline vs VEGETA, via Sessions sharing
    //     one trace cache. ---
    let mut rng = rand_seed(8);
    let w = generate_weights(&layer, WeightSparsity::Structured(NmRatio::S2_4), &mut rng);
    println!(
        "full-size weights generated: {}x{} at degree {:.2}",
        w.rows(),
        w.cols(),
        vegeta::sparse::sparsity_degree(&w)
    );

    let engines = [
        EngineConfig::rasa_dm(),
        EngineConfig::stc_like(),
        EngineConfig::vegeta_s(16)
            .expect("valid alpha")
            .with_output_forwarding(true),
    ];
    let cache = Arc::new(TraceCache::new());
    let mut baseline = None;
    for engine in engines {
        let session = Session::new(engine).with_cache(Arc::clone(&cache));
        let report = session.run_layer(&layer, NmRatio::S2_4);
        let speedup = baseline.map_or(1.0, |b: u64| b as f64 / report.cycles as f64);
        baseline.get_or_insert(report.cycles);
        println!(
            "  {:<36} kernel {}: {:>12} cycles  {:>7.3} ms  {:>6.2} effective TFLOPS  {:>5.2}x",
            report.engine,
            report.kernel,
            report.cycles,
            report.seconds() * 1e3,
            report.effective_tflops(),
            speedup
        );
    }
    Ok(())
}
