//! Contract tests for the `Session`/`Sweep` experiment API: polymorphic
//! kernel dispatch, trace-cache transparency, parallel/serial equivalence,
//! and report serialization.

use std::sync::Arc;

use vegeta::kernels::{
    build_listing1_trace, build_rowwise_trace, build_trace, build_vector_gemm_trace,
};
use vegeta::prelude::*;
use vegeta::sparse::{prune, transform};
use vegeta::workloads::table4;

/// `KernelSpec` dispatch must equal the old direct builder entry points
/// trace-for-trace, for every kernel family.
#[test]
fn kernel_spec_dispatch_equals_direct_builders() {
    let shape = GemmShape::new(64, 48, 256);
    for mode in [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4] {
        for opts in [
            KernelOptions::default(),
            KernelOptions {
                unroll: 1,
                loop_overhead: false,
            },
        ] {
            let spec = KernelSpec::Tiled { mode, opts };
            assert_eq!(
                spec.build(shape),
                build_trace(shape, mode, opts),
                "{mode:?} {opts:?}"
            );
        }
        assert_eq!(
            KernelSpec::Listing1 { mode }.build(shape),
            build_listing1_trace(shape, mode)
        );
    }
    assert_eq!(
        KernelSpec::Vector.build(shape),
        build_vector_gemm_trace(shape)
    );
    // Row-wise: covers from a real unstructured matrix.
    let mut rng = rand_seed(11);
    let a = prune::random_unstructured(64, 256, 0.9, &mut rng);
    let mut covers = transform::row_covers(&a, 4).expect("m=4");
    covers.sort();
    let spec = KernelSpec::RowWise {
        row_ratios: covers.clone(),
    };
    assert_eq!(spec.build(shape), build_rowwise_trace(shape, &covers));
}

/// Cache hits must be observationally identical to cold builds: same trace,
/// same simulation result.
#[test]
fn trace_cache_hits_equal_cold_builds() {
    let shape = table4()[7].scaled_shape(8);
    let cache = Arc::new(TraceCache::new());
    let engine = EngineConfig::vegeta_s(16).unwrap();
    let warm_session = Session::new(engine.clone()).with_cache(Arc::clone(&cache));
    let cold_session = Session::new(engine); // private, empty cache
    let first = warm_session.run_shape("BERT-L2", shape, NmRatio::S2_4);
    let hit = warm_session.run_shape("BERT-L2", shape, NmRatio::S2_4);
    let cold = cold_session.run_shape("BERT-L2", shape, NmRatio::S2_4);
    assert_eq!(first, hit, "a cache hit must not change the result");
    assert_eq!(first, cold, "a cached trace must equal a cold build");
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), 1);
    // And the cached trace object itself equals a direct build.
    let spec = engine_spec(&warm_session, NmRatio::S2_4);
    let cached = cache.get_or_build(shape, &spec);
    assert_eq!(*cached, spec.build(shape));
}

fn engine_spec(session: &Session, weights: NmRatio) -> KernelSpec {
    session
        .engine()
        .kernel_spec(weights, KernelOptions::default())
}

/// The parallel sweep must produce exactly the serial report, in the same
/// order, across repeated runs (determinism).
#[test]
fn parallel_sweep_is_deterministic_and_equals_serial() {
    let grid = || {
        Sweep::new()
            .with_engines([
                EngineConfig::rasa_dm(),
                EngineConfig::stc_like(),
                EngineConfig::vegeta_s(4).unwrap(),
                EngineConfig::vegeta_s(16).unwrap(),
            ])
            .with_layers(table4().into_iter().step_by(3))
            .with_sparsities(figure13_sparsities())
            .with_scale(8)
    };
    let serial = grid().with_threads(1).run();
    let parallel_a = grid().with_threads(4).run();
    let parallel_b = grid().with_threads(4).run();
    assert_eq!(serial.cells, parallel_a.cells);
    assert_eq!(parallel_a.cells, parallel_b.cells);
    assert_eq!(serial.cells.len(), 4 * 4 * 3);
    // The shared cache collapses identical kernels across engines: far
    // fewer builds than cells.
    assert!(
        parallel_a.traces_built < parallel_a.cells.len() as u64,
        "{} builds for {} cells",
        parallel_a.traces_built,
        parallel_a.cells.len()
    );
}

/// Reports must round-trip through their JSON form unchanged.
#[test]
fn run_report_json_round_trips() {
    let report =
        Session::new(EngineConfig::stc_like()).run_layer_scaled(&table4()[10], NmRatio::S1_4, 8);
    let text = report.to_json();
    let back = RunReport::from_json(&text).expect("valid JSON");
    assert_eq!(back, report);
    // Sweep JSON embeds the same cells.
    let sweep = Sweep::new()
        .with_engine(EngineConfig::rasa_dm())
        .with_layer(table4()[0])
        .with_sparsity(NmRatio::D4_4)
        .with_scale(8)
        .run();
    let doc = vegeta::json::JsonValue::parse(&sweep.to_json()).expect("valid sweep JSON");
    let cells = doc.get("cells").and_then(|c| c.as_array()).expect("cells");
    assert_eq!(cells.len(), 1);
    assert_eq!(
        RunReport::from_json_value(&cells[0]).expect("cell parses"),
        sweep.cells[0]
    );
}

/// The §VI-C kernel-selection rules hold through the whole API stack.
#[test]
fn execution_modes_follow_section6c_through_the_api() {
    let shape = table4()[7].scaled_shape(8);
    for (engine, weights, kernel) in [
        (EngineConfig::rasa_dm(), NmRatio::S1_4, "tiled-dense-u3"),
        (EngineConfig::stc_like(), NmRatio::S1_4, "tiled-2of4-u3"),
        (
            EngineConfig::vegeta_s(16).unwrap(),
            NmRatio::S1_4,
            "tiled-1of4-u3",
        ),
    ] {
        let report = Session::new(engine).run_shape("probe", shape, weights);
        assert_eq!(report.kernel, kernel);
    }
}

/// End to end: a sweep gridding over storage formats (the Fig. 12-style
/// axis) produces one cell per engine × format with format-appropriate
/// kernels, storage accounting, and JSON/CSV round trips.
#[test]
fn sweep_grids_over_storage_formats_end_to_end() {
    let layer = table4()[7];
    let shape = layer.scaled_shape(8);
    let formats = [
        FormatSpec::Dense,
        FormatSpec::Nm(NmRatio::S2_4),
        FormatSpec::Nm(NmRatio::S1_4),
        FormatSpec::RowWise { m: 4 },
        FormatSpec::Csr,
    ];
    let report = Sweep::new()
        .with_engines([EngineConfig::rasa_dm(), EngineConfig::vegeta_s(16).unwrap()])
        .with_layer(layer)
        .with_formats(formats)
        .with_scale(8)
        .run();
    assert_eq!(report.cells.len(), 2 * formats.len());
    assert_eq!(
        report.sparsities(),
        vec!["dense", "2:4", "1:4", "rowwise:4", "csr"]
    );

    let sparse = |f: &str| report.get(layer.name, "VEGETA-S-16-2", f).unwrap();
    // Sparser structured storage is both smaller and faster on VEGETA-S.
    let (dense, s24, s14) = (sparse("dense"), sparse("2:4"), sparse("1:4"));
    assert!(s14.a_values_bytes < s24.a_values_bytes);
    assert!(s24.a_values_bytes < dense.a_values_bytes);
    assert!(s14.cycles < s24.cycles && s24.cycles < dense.cycles);
    assert_eq!(s24.a_values_bytes, (shape.m * shape.k) as u64);
    assert_eq!(
        s24.a_metadata_bits,
        (shape.m * shape.k / 2 * 2) as u64,
        "2 position bits per stored value"
    );
    // Row-wise runs the tile engine; CSR falls back to the vector unit and
    // loses — the §III-D transform argument, as data.
    let (rw, csr) = (sparse("rowwise:4"), sparse("csr"));
    assert!(rw.kernel.starts_with("rowwise-"));
    assert_eq!(csr.kernel, "vector-gemm");
    assert!(rw.cycles < csr.cycles);
    // The dense engine executes every tile format densely.
    for f in ["dense", "2:4", "1:4", "rowwise:4"] {
        let cell = report.get(layer.name, "RASA-DM (VEGETA-D-1-2)", f).unwrap();
        assert_eq!(cell.kernel, "tiled-dense-u3", "format {f}");
        assert_eq!(cell.format, "dense");
    }

    // Reports round-trip with the format fields intact.
    let back = RunReport::from_json(&rw.to_json()).unwrap();
    assert_eq!(&back, rw);
    let csv = report.to_csv();
    assert!(csv.lines().next().unwrap().contains("format"));
    assert!(csv.contains("rowwise:4"));
}

/// The trace cache keys on the storage format: identical instruction mixes
/// over different operand formats never alias.
#[test]
fn trace_cache_distinguishes_formats() {
    let shape = GemmShape::new(32, 32, 128);
    let cache = TraceCache::new();
    let dense = KernelSpec::tiled(SparseMode::Dense);
    let vector = KernelSpec::Vector;
    // Both "dense" formats, but different kernels — still distinct keys.
    let a = cache.get_or_build(shape, &dense);
    let b = cache.get_or_build(shape, &vector);
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(cache.misses(), 2);
    assert_eq!(dense.format(), FormatSpec::Dense);
    assert_eq!(vector.format(), FormatSpec::Dense);
    // Same spec again: hit.
    cache.get_or_build(shape, &dense);
    assert_eq!(cache.hits(), 1);
}

/// Wall-clock check: a parallel Fig. 13 sweep must beat the serial path by
/// at least 1.5x on a multi-core host. Timing-sensitive, so ignored by
/// default; run with `cargo test --release -- --ignored parallel_speedup`.
#[test]
#[ignore = "wall-clock benchmark; run explicitly on an idle multi-core host"]
fn sweep_parallel_speedup_at_least_1_5x() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 4 {
        eprintln!("skipping: speedup check needs >= 4 cores, have {cores}");
        return;
    }
    let grid = || Sweep::figure13().with_scale(4); // the VEGETA_QUICK=1 grid
                                                   // Warm up (first run pays one-time costs for both paths).
    grid().with_threads(2).run();
    let t0 = std::time::Instant::now();
    let serial = grid().with_threads(1).run();
    let serial_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let parallel = grid().with_threads(0).run();
    let parallel_time = t1.elapsed();
    assert_eq!(serial.cells, parallel.cells, "results must agree");
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    assert!(
        speedup >= 1.5,
        "parallel sweep speedup {speedup:.2}x (serial {serial_time:?}, parallel {parallel_time:?})"
    );
}
