//! The Fig. 13 qualitative claims, asserted on scaled-down Table IV layers:
//! who wins, who cannot exploit what, and how output forwarding and the
//! unstructured transform change the picture.

use vegeta::prelude::*;
use vegeta::workloads::table4;

fn cycles(engine: &EngineConfig, shape: GemmShape, weights: NmRatio) -> u64 {
    Session::new(engine.clone())
        .run_shape("trend", shape, weights)
        .cycles
}

fn bert_shape() -> GemmShape {
    table4()[7].scaled_shape(4) // BERT-L2 / 4
}

#[test]
fn rasa_sm_has_the_highest_runtime() {
    // §VI-C: "RASA-SM suffers from under-utilization ... resulting in the
    // highest runtime."
    let shape = bert_shape();
    let sm = cycles(&EngineConfig::rasa_sm(), shape, NmRatio::D4_4);
    for other in [
        EngineConfig::rasa_dm(),
        EngineConfig::tmul_like(),
        EngineConfig::stc_like(),
        EngineConfig::vegeta_s(16).unwrap(),
    ] {
        assert!(
            cycles(&other, shape, NmRatio::D4_4) < sm,
            "{} must beat RASA-SM on dense",
            other.name()
        );
    }
}

#[test]
fn dense_engines_are_insensitive_to_weight_sparsity() {
    // §VI-C: "VEGETA-D engines ... show the same performance with 2:4 and
    // 1:4 structured sparsity."
    let shape = bert_shape();
    for engine in [
        EngineConfig::rasa_sm(),
        EngineConfig::rasa_dm(),
        EngineConfig::tmul_like(),
    ] {
        let dense = cycles(&engine, shape, NmRatio::D4_4);
        let s24 = cycles(&engine, shape, NmRatio::S2_4);
        let s14 = cycles(&engine, shape, NmRatio::S1_4);
        assert_eq!(dense, s24, "{}", engine.name());
        assert_eq!(dense, s14, "{}", engine.name());
    }
}

#[test]
fn stc_like_gains_at_2_4_but_not_beyond() {
    // §VI-C: the STC-like config accelerates 2:4 but "does not show better
    // performance [at 1:4] compared with 2:4 ... since it cannot exploit the
    // extra zeros."
    let shape = bert_shape();
    let stc = EngineConfig::stc_like();
    let dense = cycles(&stc, shape, NmRatio::D4_4);
    let s24 = cycles(&stc, shape, NmRatio::S2_4);
    let s14 = cycles(&stc, shape, NmRatio::S1_4);
    assert!(s24 < dense, "STC must gain at 2:4");
    assert_eq!(s24, s14, "STC cannot exploit 1:4's extra zeros");
}

#[test]
fn vegeta_s_speedup_scales_with_sparsity() {
    let shape = bert_shape();
    let engine = EngineConfig::vegeta_s(16)
        .unwrap()
        .with_output_forwarding(true);
    let dense = cycles(&engine, shape, NmRatio::D4_4);
    let s24 = cycles(&engine, shape, NmRatio::S2_4);
    let s14 = cycles(&engine, shape, NmRatio::S1_4);
    assert!(s24 < dense);
    assert!(s14 < s24);
    let speedup_24 = dense as f64 / s24 as f64;
    let speedup_14 = dense as f64 / s14 as f64;
    assert!(
        (1.6..=2.4).contains(&speedup_24),
        "2:4 speedup {speedup_24}"
    );
    assert!(
        (2.8..=4.4).contains(&speedup_14),
        "1:4 speedup {speedup_14}"
    );
}

#[test]
fn vegeta_matches_rasa_dm_on_dense_workloads() {
    // §VI-C: "our sparse engine designs perform comparably for the dense
    // workload showing a performance gain of up to 7%" — allow a little
    // slack for our simpler memory model.
    let shape = bert_shape();
    let dm = cycles(&EngineConfig::rasa_dm(), shape, NmRatio::D4_4);
    let s16 = cycles(
        &EngineConfig::vegeta_s(16)
            .unwrap()
            .with_output_forwarding(true),
        shape,
        NmRatio::D4_4,
    );
    let gain = dm as f64 / s16 as f64;
    assert!((0.95..=1.25).contains(&gain), "dense gain {gain}");
}

#[test]
fn all_vegeta_s_designs_beat_rasa_dm_at_1_4() {
    let shape = bert_shape();
    let dm = cycles(&EngineConfig::rasa_dm(), shape, NmRatio::S1_4);
    for alpha in [1usize, 2, 4, 8, 16] {
        let engine = EngineConfig::vegeta_s(alpha).unwrap();
        let c = cycles(&engine, shape, NmRatio::S1_4);
        assert!(
            (dm as f64 / c as f64) > 2.0,
            "VEGETA-S-{alpha}-2 must be >2x RASA-DM at 1:4"
        );
    }
}

#[test]
fn output_forwarding_helps_dependent_kernels() {
    // With a single accumulator the k-loop serializes on C; OF recovers
    // most of the loss (§VI-C attributes ~32-37% to OF).
    let shape = bert_shape();
    let dep_spec = KernelSpec::Tiled {
        mode: SparseMode::Nm2of4,
        opts: KernelOptions {
            unroll: 1,
            loop_overhead: true,
        },
    };
    let base = EngineConfig::vegeta_s(16).unwrap();
    let no_of = Session::new(base.clone())
        .run_spec("bert-dep", shape, &dep_spec)
        .cycles;
    let with_of = Session::new(base.with_output_forwarding(true))
        .run_spec("bert-dep", shape, &dep_spec)
        .cycles;
    let reduction = 1.0 - with_of as f64 / no_of as f64;
    assert!(
        (0.20..=0.60).contains(&reduction),
        "OF should cut a dependent kernel's runtime substantially, got {reduction:.2}"
    );
}

#[test]
fn engine_ordering_is_stable_across_layers() {
    // Spot-check three very different layers: conv, BERT, GPT.
    for idx in [1usize, 7, 10] {
        let shape = table4()[idx].scaled_shape(4);
        let dm = cycles(&EngineConfig::rasa_dm(), shape, NmRatio::S2_4);
        let stc = cycles(&EngineConfig::stc_like(), shape, NmRatio::S2_4);
        let s16 = cycles(
            &EngineConfig::vegeta_s(16)
                .unwrap()
                .with_output_forwarding(true),
            shape,
            NmRatio::S2_4,
        );
        assert!(stc < dm, "layer {idx}: STC < RASA-DM at 2:4");
        assert!(s16 <= stc, "layer {idx}: VEGETA-S-16-2+OF <= STC at 2:4");
    }
}
