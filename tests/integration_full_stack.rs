//! Full-stack property tests: assembler → executor → reference, and the
//! granularity models against brute-force covers.

use proptest::prelude::*;
use vegeta::isa::{assemble, decode, disassemble, encode};
use vegeta::num::{gemm_bf16_ref, Matrix};
use vegeta::prelude::*;
use vegeta::sparse::prune;

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (0u8..8, any::<u32>()).prop_map(|(r, a)| Inst::TileLoadT {
            dst: TReg::new(r).expect("in range"),
            addr: a as u64
        }),
        (0u8..4, any::<u32>()).prop_map(|(r, a)| Inst::TileLoadU {
            dst: UReg::new(r).expect("in range"),
            addr: a as u64
        }),
        (0u8..2, any::<u32>()).prop_map(|(r, a)| Inst::TileLoadV {
            dst: VReg::new(r).expect("in range"),
            addr: a as u64
        }),
        (0u8..8, any::<u32>()).prop_map(|(r, a)| Inst::TileLoadM {
            dst: vegeta::isa::MReg::new(r).expect("in range"),
            addr: a as u64
        }),
        (0u8..8, any::<u32>()).prop_map(|(r, a)| Inst::TileStoreT {
            addr: a as u64,
            src: TReg::new(r).expect("in range")
        }),
        (0u8..8).prop_map(|r| Inst::TileZero {
            dst: TReg::new(r).expect("in range")
        }),
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(c, a, b)| Inst::TileGemm {
            acc: TReg::new(c).expect("in range"),
            a: TReg::new(a).expect("in range"),
            b: TReg::new(b).expect("in range")
        }),
        (0u8..8, 0u8..8, 0u8..4).prop_map(|(c, a, b)| Inst::TileSpmmU {
            acc: TReg::new(c).expect("in range"),
            a: TReg::new(a).expect("in range"),
            b: UReg::new(b).expect("in range")
        }),
        (0u8..8, 0u8..8, 0u8..2).prop_map(|(c, a, b)| Inst::TileSpmmV {
            acc: TReg::new(c).expect("in range"),
            a: TReg::new(a).expect("in range"),
            b: VReg::new(b).expect("in range")
        }),
        (0u8..4, 0u8..8, 0u8..4).prop_map(|(c, a, b)| Inst::TileSpmmR {
            acc: UReg::new(c).expect("in range"),
            a: TReg::new(a).expect("in range"),
            b: UReg::new(b).expect("in range")
        }),
    ]
}

proptest! {
    /// Binary encode/decode and text assemble/disassemble round-trip for
    /// arbitrary instruction sequences.
    #[test]
    fn isa_roundtrips(insts in proptest::collection::vec(arb_inst(), 1..40)) {
        // Binary.
        let mut bytes = Vec::new();
        for &i in &insts {
            bytes.extend(encode(i));
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while offset < bytes.len() {
            let (inst, len) = decode(&bytes[offset..]).expect("valid stream");
            decoded.push(inst);
            offset += len;
        }
        prop_assert_eq!(&decoded, &insts);
        // Text.
        let text: String = insts.iter().map(|i| disassemble(*i) + "\n").collect();
        let parsed = assemble(&text).expect("valid assembly");
        prop_assert_eq!(parsed, insts);
    }

    /// The full sparse pipeline — prune → compress → kernel → executor —
    /// equals the dense reference for random shapes and patterns.
    #[test]
    fn sparse_pipeline_matches_reference(
        seed in any::<u64>(),
        mt in 1usize..3,
        nt in 1usize..3,
        kt in 1usize..3,
        ratio_idx in 0usize..3,
    ) {
        let mode = [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4][ratio_idx];
        let (m, n, k) = (mt * 16, nt * 16, kt * mode.tk());
        let mut rng = rand_seed(seed);
        let a = prune::magnitude_prune_nm(&prune::random_dense(m, k, &mut rng), mode.ratio());
        let b = prune::random_dense(k, n, &mut rng);
        let program = vegeta::kernels::build_program(&a, &b, mode, KernelOptions::default())
            .expect("valid operands");
        let got = program.run_functional().expect("kernel executes");
        let mut expected = Matrix::zeros(m, n);
        gemm_bf16_ref(&a, &b, &mut expected);
        prop_assert_eq!(got, expected);
    }

    /// The granularity model's covered work is bracketed by the true
    /// non-zero count (below) and the dense work (above).
    #[test]
    fn granularity_speedup_is_bracketed(seed in any::<u64>(), degree in 0.0f64..1.0) {
        let mut rng = rand_seed(seed);
        let a = prune::random_unstructured(32, 128, degree, &mut rng);
        let model = GranularityModel::default();
        let nnz = a.iter().filter(|v| !v.is_zero()).count().max(1) as f64;
        let perfect = a.len() as f64 / nnz;
        for hw in [GranularityHw::LayerWise, GranularityHw::TileWise,
                   GranularityHw::PseudoRowWise, GranularityHw::RowWise] {
            let s = model.speedup(hw, &a);
            prop_assert!(s >= 1.0 - 1e-9, "{hw:?} cannot be slower than dense");
            prop_assert!(s <= perfect + 1e-9, "{hw:?} cannot beat perfect skipping");
            prop_assert!(s <= 4.0 + 1e-9, "{hw:?} bounded by the 1:4 pattern");
        }
    }

    /// Row-wise cover density is never below the matrix's true density.
    #[test]
    fn covers_never_lose_nonzeros(seed in any::<u64>(), degree in 0.0f64..1.0) {
        let mut rng = rand_seed(seed);
        let a = prune::random_unstructured(16, 64, degree, &mut rng);
        let tile = RowWiseTile::compress(&a, 4).expect("any matrix transforms");
        prop_assert_eq!(tile.decompress(), a);
    }
}
