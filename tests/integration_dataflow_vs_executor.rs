//! Cross-model validation: the cycle-accurate engine dataflow simulation
//! must produce bit-identical results to the functional ISA executor for
//! every tile instruction on every sparse engine design.
//!
//! Integer-valued BF16 operands make every partial sum exactly
//! representable, so reduction-order differences between the two models
//! cannot hide behind rounding: any mismatch is a real modelling bug.

use vegeta::engine::{dataflow, EngineConfig};
use vegeta::num::{Bf16, Matrix};
use vegeta::prelude::*;
use vegeta::sparse::prune;

fn int_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<Bf16> {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = (r as u64)
            .wrapping_mul(131)
            .wrapping_add(c as u64)
            .wrapping_mul(seed | 1);
        Bf16::from_f32(((h % 11) as f32) - 5.0)
    })
}

fn int_sparse(rows: usize, cols: usize, ratio: NmRatio, seed: u64) -> Matrix<Bf16> {
    prune::magnitude_prune_nm(&int_matrix(rows, cols, seed), ratio)
}

/// Runs one tile instruction through the functional executor and returns C.
fn executor_result(
    ratio: NmRatio,
    tile: &CompressedTile,
    bt: &Matrix<Bf16>,
    c_in: &Matrix<f32>,
) -> Matrix<f32> {
    let mut exec = Executor::new(Memory::new(1 << 16));
    // Stage registers directly: values in t4/m4 (1:4 uses t3/m3 to avoid the
    // vreg alias), Bt in the right aliased register, C in t0.
    let (a_reg, inst) = match ratio {
        NmRatio::D4_4 => {
            exec.regs_mut().set_treg_bf16(TReg::T5, &pad_values(tile));
            exec.regs_mut()
                .set_treg_bf16(TReg::T3, &Matrix::from_fn(16, 32, |r, c| bt[(r, c)]));
            (
                TReg::T5,
                Inst::TileGemm {
                    acc: TReg::T0,
                    a: TReg::T5,
                    b: TReg::T3,
                },
            )
        }
        NmRatio::S2_4 => {
            exec.regs_mut().set_ureg_bf16(UReg::U3, bt);
            (
                TReg::T4,
                Inst::TileSpmmU {
                    acc: TReg::T0,
                    a: TReg::T4,
                    b: UReg::U3,
                },
            )
        }
        NmRatio::S1_4 => {
            exec.regs_mut().set_vreg_bf16(VReg::V1, bt);
            (
                TReg::T3,
                Inst::TileSpmmV {
                    acc: TReg::T0,
                    a: TReg::T3,
                    b: VReg::V1,
                },
            )
        }
        _ => unreachable!("only the three Table II patterns"),
    };
    if ratio != NmRatio::D4_4 {
        exec.regs_mut().set_treg_bf16(a_reg, &pad_values(tile));
        let packed = tile.metadata_packed();
        exec.regs_mut().mreg_mut(a_reg.paired_mreg())[..packed.len()].copy_from_slice(&packed);
    }
    exec.regs_mut().set_treg_f32(TReg::T0, c_in);
    exec.execute(inst).expect("tile instruction executes");
    exec.regs().treg_as_f32(TReg::T0)
}

fn pad_values(tile: &CompressedTile) -> Matrix<Bf16> {
    Matrix::from_fn(16, 32, |r, c| {
        if c < tile.values().cols() {
            tile.values()[(r, c)]
        } else {
            Bf16::ZERO
        }
    })
}

fn check_instruction(ratio: NmRatio, seed: u64) {
    let eff_cols = 32 / ratio.n() as usize * 4;
    let a_eff = int_sparse(16, eff_cols, ratio, seed);
    let tile = CompressedTile::compress(&a_eff, ratio).expect("pruned tile conforms");
    let bt = int_matrix(16, eff_cols, seed + 1);
    let c_in = Matrix::from_fn(16, 16, |r, c| ((r * 16 + c) % 23) as f32 - 11.0);

    let expected = executor_result(ratio, &tile, &bt, &c_in);
    // The tile's per-value positions, exactly what packed mreg metadata
    // decodes back to (pinned by the sparse crate's round-trip proptests).
    let meta = tile.indices().to_vec();

    for cfg in EngineConfig::table3() {
        if !cfg.supports(ratio) {
            continue;
        }
        let padded = pad_values(&tile);
        // Metadata for the padded (zero) slots is irrelevant: zero weights
        // contribute nothing. Extend with zeros to 512 entries.
        let mut meta512 = meta.clone();
        meta512.resize(512, 0);
        let op = dataflow::TileWiseOp {
            a_values: &padded,
            a_meta: if ratio.is_dense() {
                None
            } else {
                Some(&meta512)
            },
            ratio,
            bt: &bt,
            c_in: &c_in,
        };
        let res = dataflow::simulate_tile(&cfg, &op).expect("supported instruction");
        assert_eq!(
            res.c_out,
            expected,
            "dataflow vs executor mismatch: {} executing {}",
            cfg.name(),
            ratio
        );
        assert_eq!(
            res.last_output_cycle,
            cfg.last_output_cycle(),
            "{}",
            cfg.name()
        );
    }
}

#[test]
fn tile_gemm_agrees_on_all_engines() {
    for seed in 0..5 {
        check_instruction(NmRatio::D4_4, 100 + seed);
    }
}

#[test]
fn tile_spmm_u_agrees_on_all_sparse_engines() {
    for seed in 0..5 {
        check_instruction(NmRatio::S2_4, 200 + seed);
    }
}

#[test]
fn tile_spmm_v_agrees_on_all_sparse_engines() {
    for seed in 0..5 {
        check_instruction(NmRatio::S1_4, 300 + seed);
    }
}

#[test]
fn float_data_agrees_within_tolerance() {
    // With real-valued bf16 data, lane decompositions may reorder FP32
    // additions; results must still agree to fine relative tolerance.
    let ratio = NmRatio::S2_4;
    let mut rng = rand_seed(77);
    let a_eff = prune::magnitude_prune_nm(&prune::random_dense(16, 64, &mut rng), ratio);
    let tile = CompressedTile::compress(&a_eff, ratio).expect("conforms");
    let bt = prune::random_dense(16, 64, &mut rng);
    let c_in = Matrix::zeros(16, 16);
    let expected = executor_result(ratio, &tile, &bt, &c_in);
    let meta = tile.indices().to_vec();
    let op = dataflow::TileWiseOp {
        a_values: tile.values(),
        a_meta: Some(&meta),
        ratio,
        bt: &bt,
        c_in: &c_in,
    };
    let res = dataflow::simulate_tile(&EngineConfig::vegeta_s(4).expect("valid"), &op)
        .expect("supported");
    for r in 0..16 {
        for c in 0..16 {
            let (a, b) = (res.c_out[(r, c)], expected[(r, c)]);
            assert!(
                (a - b).abs() <= b.abs().max(1.0) * 1e-5,
                "({r},{c}): {a} vs {b}"
            );
        }
    }
}
