//! End-to-end multi-core sharded simulation: the acceptance contract of
//! the scale-out refactor.
//!
//! * The 1-core sharded path is cycle-identical to the classic `CoreSim`
//!   replay (the property that makes this a refactor rather than a fork);
//! * cycles are monotone non-increasing from 1 → 8 cores on a dense
//!   Table IV layer (sharding may stop helping, but never hurts past the
//!   logarithmic barrier, which shrinking shards always amortize);
//! * shard replay is functionally invariant end to end through the session
//!   API (instructions, tile compute and aggregate cache traffic are
//!   redistributed, not changed);
//! * the cores axis composes with the fidelity and sparsity axes in one
//!   sweep.

use vegeta::prelude::*;

/// BERT-L2: the dense Table IV layer the scale-out tests shard. At 1/2
/// scale M = 256 (16 row tiles, 6 accumulator groups), so an 8-way shard
/// still splits every 4-way shard; the cheaper tests run at 1/4 scale.
fn tall_dense_layer() -> (Layer, Fidelity) {
    let layer = table4()
        .into_iter()
        .find(|l| l.name == "BERT-L2")
        .expect("Table IV has BERT-L2");
    (layer, Fidelity::Quick(4))
}

#[test]
fn one_core_shard_is_cycle_identical_to_coresim() {
    let (layer, fidelity) = tall_dense_layer();
    for engine in [
        EngineConfig::rasa_dm(),
        EngineConfig::vegeta_s(16)
            .unwrap()
            .with_output_forwarding(true),
    ] {
        let session = Session::new(engine.clone());
        let classic = session.run_layer_at(&layer, NmRatio::D4_4, fidelity);
        let sharded = session.run_layer_cores_at(&layer, NmRatio::D4_4, fidelity, 1);
        assert_eq!(
            sharded.cycles,
            classic.cycles,
            "{}: 1-core shard must be cycle-identical",
            engine.name()
        );
        assert_eq!(sharded.instructions, classic.instructions);
        assert_eq!(sharded.tile_compute, classic.tile_compute);
        assert_eq!(sharded.per_core_cycles, vec![classic.cycles]);
    }
}

#[test]
fn dense_layer_cycles_are_monotone_from_1_to_8_cores() {
    // 1/2 scale so 8 shards still split every 4-core shard (6 accumulator
    // groups) and the log-barrier stays amortized.
    let (layer, _) = tall_dense_layer();
    let fidelity = Fidelity::Quick(2);
    let session = Session::new(EngineConfig::rasa_dm());
    let mut cycles = Vec::new();
    for cores in [1usize, 2, 4, 8] {
        let report = session.run_layer_cores_at(&layer, NmRatio::D4_4, fidelity, cores);
        assert_eq!(report.cores, cores);
        assert_eq!(report.per_core_cycles.len(), cores);
        let slowest = *report.per_core_cycles.iter().max().unwrap();
        assert!(
            report.cycles >= slowest,
            "makespan {} covers the slowest core {slowest} plus the barrier",
            report.cycles
        );
        cycles.push(report.cycles);
    }
    for w in cycles.windows(2) {
        assert!(
            w[1] <= w[0],
            "cycles must be monotone non-increasing 1→8: {cycles:?}"
        );
    }
    assert!(
        (cycles[0] as f64) > cycles[3] as f64 * 2.5,
        "8 cores must be well over 2.5x faster than 1 on a tall layer: {cycles:?}"
    );
}

#[test]
fn sharded_replay_is_functionally_invariant() {
    // Same dynamic work whatever the core count: total instructions, tile
    // compute, and aggregate L1 accesses (l1 + l2 hits = line touches) are
    // redistributed, never changed.
    let (layer, fidelity) = tall_dense_layer();
    let shape = fidelity.shape_of(&layer);
    let session = Session::new(EngineConfig::vegeta_s(4).unwrap());
    let single = session.run_layer_cores_at(&layer, NmRatio::S2_4, fidelity, 1);
    for cores in [2usize, 3, 8] {
        let multi = session.run_layer_cores_at(&layer, NmRatio::S2_4, fidelity, cores);
        assert_eq!(multi.instructions, single.instructions, "{cores} cores");
        assert_eq!(multi.tile_compute, single.tile_compute, "{cores} cores");
        assert_eq!(multi.shape, shape);
        assert_eq!(
            multi.insts_streamed, single.insts_streamed,
            "every shard streams"
        );
    }
}

#[test]
fn shared_l2_sees_cross_core_reuse_on_shared_b_tiles() {
    let (layer, fidelity) = tall_dense_layer();
    let session = Session::new(EngineConfig::rasa_dm());
    let report = session.run_layer_cores_at(&layer, NmRatio::D4_4, fidelity, 4);
    // Every shard reads the same B tiles: three of the four cores re-touch
    // lines the first toucher brought in.
    assert!(
        report.shared_l2.shared_hits > 0,
        "sharded GEMMs share B traffic: {:?}",
        report.shared_l2
    );
    assert_eq!(report.shared_l2.misses, 0, "prefetched L2 never misses");
    assert!(report.scaling_efficiency > 0.5 && report.scaling_efficiency <= 1.0);
    assert!(
        report.utilization() <= 1.0,
        "utilization stays a per-core mean fraction: {}",
        report.utilization()
    );
}

#[test]
fn cores_axis_composes_with_sparsity_in_one_sweep() {
    let (layer, _) = tall_dense_layer();
    let report = Sweep::new()
        .with_engine(EngineConfig::vegeta_s(16).unwrap())
        .with_layer(layer)
        .with_sparsities([NmRatio::D4_4, NmRatio::S2_4])
        .with_fidelity(Fidelity::Quick(4))
        .with_cores([1, 4])
        .with_threads(2)
        .run();
    assert_eq!(report.cells.len(), 4);
    // Sparse execution stays faster than dense at every core count.
    for cores in [1usize, 4] {
        let dense = report
            .get_cores("BERT-L2", "VEGETA-S-16-2", "4:4", cores)
            .unwrap();
        let sparse = report
            .get_cores("BERT-L2", "VEGETA-S-16-2", "2:4", cores)
            .unwrap();
        assert!(
            sparse.cycles < dense.cycles,
            "2:4 beats dense at {cores} cores"
        );
    }
    // And sharding helps both sparsities.
    for sparsity in ["4:4", "2:4"] {
        let scaling = report
            .geomean_core_scaling("VEGETA-S-16-2", sparsity, 4)
            .unwrap();
        assert!(scaling > 1.2, "{sparsity}: {scaling}");
    }
}

#[test]
fn sharded_streams_replay_in_bounded_memory() {
    // The scale-out path must keep the streaming guarantee: per-core peak
    // residency is one chunk per shard, far below the materialized trace.
    let (layer, _) = tall_dense_layer();
    let session = Session::new(EngineConfig::rasa_dm());
    let report = session.run_layer_cores_at(&layer, NmRatio::D4_4, Fidelity::Quick(2), 8);
    let trace_bytes = report.instructions * vegeta::isa::TRACE_OP_BYTES as u64;
    assert!(
        report.peak_resident_bytes < trace_bytes / 4,
        "8 shards resident {} vs materialized {}",
        report.peak_resident_bytes,
        trace_bytes
    );
}
