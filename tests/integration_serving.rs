//! End-to-end serving-layer tests: determinism of the virtual-time
//! report, the economics of batching, admission behavior under low load,
//! and structured rejection of malformed specs.

use vegeta::prelude::*;
use vegeta_serve::{LoadGen, Outcome, Request, RequestError, ServeConfig, Server, Work};

fn quick_config() -> ServeConfig {
    ServeConfig::new(EngineConfig::vegeta_s(16).expect("valid design"))
        .with_workers(2)
        .with_fidelity(Fidelity::Quick(16))
}

#[test]
fn serve_report_is_byte_identical_across_runs_and_host_threads() {
    let load = LoadGen::new(3_000.0, 32).with_seed(11);
    let a = Server::new(quick_config().with_threads(1)).serve(&load);
    let b = Server::new(quick_config().with_threads(1)).serve(&load);
    assert_eq!(a.to_json(), b.to_json(), "same seed+config must replay");
    // Host threads parallelize only the key simulations; the timeline —
    // and therefore the serialized report — must not notice.
    let n = Server::new(quick_config().with_threads(4)).serve(&load);
    assert_eq!(a.to_json(), n.to_json(), "--threads must not leak in");
}

#[test]
fn different_seed_changes_the_timeline() {
    let a = Server::new(quick_config()).serve(&LoadGen::new(3_000.0, 32).with_seed(1));
    let b = Server::new(quick_config()).serve(&LoadGen::new(3_000.0, 32).with_seed(2));
    assert_ne!(a.to_json(), b.to_json());
}

#[test]
fn batching_outserves_singletons_under_overload() {
    // Overload one worker far beyond what it can serve unbatched. With
    // coalescing, one simulated execution completes a whole batch, so the
    // same fleet sustains a higher completion rate. Quick(4) services run
    // 5-7 us, so 1 us inter-arrival gaps put a singleton worker ~5x over
    // capacity while batches of up to 8 still keep up.
    let load = LoadGen::new(1_000_000.0, 64).with_seed(5);
    let cfg = || {
        ServeConfig::new(EngineConfig::vegeta_s(16).expect("valid design"))
            .with_workers(1)
            .with_fidelity(Fidelity::Quick(4))
    };
    let batched = Server::new(cfg()).serve(&load);
    let singleton = Server::new(cfg().without_batching()).serve(&load);
    assert!(batched.batch_hist.iter().any(|&(size, _)| size > 1));
    assert!(
        batched.achieved_qps > singleton.achieved_qps,
        "batched {:.0} QPS vs singleton {:.0} QPS",
        batched.achieved_qps,
        singleton.achieved_qps
    );
}

#[test]
fn low_qps_sheds_nothing_and_tracks_offered_load() {
    let load = LoadGen::new(40.0, 24).with_seed(3);
    let report = Server::new(quick_config()).serve(&load);
    assert_eq!(report.shed, 0, "{report:?}");
    assert_eq!(report.rejected, 0, "{report:?}");
    assert_eq!(report.completed, 24);
    assert!(
        report.achieved_qps >= 0.9 * load.qps,
        "achieved {:.1} QPS vs offered {:.1}",
        report.achieved_qps,
        load.qps
    );
}

#[test]
fn mutated_spec_is_rejected_with_a_structured_error() {
    // A spec whose row-cover table was truncated (as the lint mutation
    // corpus does to streams) must come back as a structured admission
    // error — never a worker panic.
    let server = Server::new(quick_config());
    let shape = GemmShape::new(64, 16, 128);
    let good = Request {
        id: 0,
        work: Work::Spec {
            shape,
            spec: KernelSpec::RowWise {
                row_ratios: vec![NmRatio::S2_4; 64],
            },
        },
        arrival_us: 0,
        deadline_us: None,
    };
    let mut mutated = good.clone();
    mutated.id = 1;
    mutated.work = Work::Spec {
        shape,
        spec: KernelSpec::RowWise {
            row_ratios: vec![NmRatio::S2_4; 63],
        },
    };
    let (report, responses) = server.serve_requests(&[good, mutated], 0.0, 0);
    assert_eq!(report.completed, 1);
    assert_eq!(report.rejected, 1);
    match &responses[1].outcome {
        Outcome::Rejected(RequestError::Malformed(msg)) => {
            assert!(msg.contains("63"), "{msg}");
        }
        other => panic!("expected structured rejection, got {other:?}"),
    }
}

#[test]
fn report_accounting_is_internally_consistent() {
    let load = LoadGen::new(5_000.0, 40).with_seed(9);
    let report = Server::new(quick_config()).serve(&load);
    assert_eq!(
        report.offered,
        report.completed + report.shed + report.rejected
    );
    let batched: usize = report
        .batch_hist
        .iter()
        .map(|&(size, count)| size * count)
        .sum();
    assert_eq!(batched, report.completed);
    assert_eq!(
        report.batches,
        report.batch_hist.iter().map(|&(_, c)| c).sum::<usize>()
    );
    assert!(report.p50_latency_us <= report.p95_latency_us);
    assert!(report.p95_latency_us <= report.p99_latency_us);
    assert!(report.p99_latency_us <= report.max_latency_us);
    assert!(report.mean_utilization() <= 1.0 + 1e-9);
}
