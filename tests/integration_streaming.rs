//! Streamed replay must be indistinguishable from materialized replay —
//! op for op, cycle for cycle, and bit for bit — across every kernel
//! family / storage format, with only the memory footprint differing.

use std::sync::Arc;

use vegeta::isa::stream::InstStream;
use vegeta::isa::{Executor, TRACE_OP_BYTES};
use vegeta::kernels::Kernel;
use vegeta::num::gemm_bf16_ref;
use vegeta::prelude::*;
use vegeta::sparse::prune;

/// One kernel spec per storage format the builders support: dense, 2:4,
/// 1:4 (tiled + Listing-1), row-wise `N:4`, and the dense vector baseline
/// (the CSR execution fallback).
fn specs_for_every_format() -> Vec<KernelSpec> {
    let mut ratios = vec![NmRatio::S1_4; 16];
    ratios.extend([NmRatio::S2_4; 8]);
    ratios.extend([NmRatio::D4_4; 8]);
    vec![
        KernelSpec::tiled(SparseMode::Dense),
        KernelSpec::tiled(SparseMode::Nm2of4),
        KernelSpec::tiled(SparseMode::Nm1of4),
        KernelSpec::Listing1 {
            mode: SparseMode::Nm2of4,
        },
        KernelSpec::RowWise { row_ratios: ratios },
        KernelSpec::Vector,
    ]
}

#[test]
fn streams_equal_materialized_traces_op_for_op() {
    let shape = GemmShape::new(48, 40, 256);
    for spec in specs_for_every_format() {
        let materialized = spec.build(shape);
        let mut stream = spec.stream(shape);
        assert_eq!(
            stream.remaining(),
            materialized.len() as u64,
            "{}: exact-length hook",
            spec.name()
        );
        let collected = stream.collect_trace();
        assert_eq!(collected, materialized, "{}: op sequences", spec.name());
    }
}

#[test]
fn streamed_replay_is_cycle_identical_across_formats_and_engines() {
    let shape = GemmShape::new(48, 32, 128);
    for spec in specs_for_every_format() {
        // The vector baseline never touches the matrix engine; one engine
        // suffices for it.
        let engines = if spec == KernelSpec::Vector {
            vec![EngineConfig::rasa_dm()]
        } else {
            vec![
                EngineConfig::rasa_dm(),
                EngineConfig::stc_like(),
                EngineConfig::vegeta_s(16)
                    .unwrap()
                    .with_output_forwarding(true),
            ]
        };
        for engine in engines {
            let trace = spec.build(shape);
            let from_trace = CoreSim::with_engine(engine.clone()).run(&trace);
            let mut stream = spec.stream(shape);
            let from_stream = CoreSim::with_engine(engine.clone()).run_stream(&mut stream);
            assert_eq!(
                from_stream.core_cycles,
                from_trace.core_cycles,
                "{} on {}: cycles",
                spec.name(),
                engine.name()
            );
            assert_eq!(from_stream.instructions, from_trace.instructions);
            assert_eq!(from_stream.tile_compute, from_trace.tile_compute);
            assert_eq!(
                from_stream.engine_busy_cycles,
                from_trace.engine_busy_cycles
            );
            assert_eq!(from_stream.cache, from_trace.cache);
            // Up to a few KB of fixed generator state, streaming never
            // holds more than the trace (tiny traces are dominated by that
            // fixed state).
            assert!(
                from_stream.peak_resident_bytes <= from_trace.peak_resident_bytes + 4096,
                "{}: stream resident {} vs trace {}",
                spec.name(),
                from_stream.peak_resident_bytes,
                from_trace.peak_resident_bytes
            );
        }
    }
}

#[test]
fn streamed_functional_execution_is_result_identical() {
    let mut rng = rand_seed(77);
    for mode in [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4] {
        let a = prune::magnitude_prune_nm(&prune::random_dense(32, 128, &mut rng), mode.ratio());
        let b = prune::random_dense(128, 32, &mut rng);
        let program =
            vegeta::kernels::build_program(&a, &b, mode, KernelOptions::default()).unwrap();

        // Materialized functional replay.
        let mut exec_run = Executor::new(program.mem.clone());
        exec_run.run(&program.trace.tile_insts()).unwrap();
        // Streamed functional replay of the same program.
        let mut exec_stream = Executor::new(program.mem.clone());
        let executed = exec_stream.run_stream(program.trace.stream()).unwrap();

        assert_eq!(
            executed,
            program.trace.mix().total()
                - program.trace.mix().scalars
                - program.trace.mix().branches,
            "{mode:?}: every tile inst streamed"
        );
        assert_eq!(exec_stream.stats(), exec_run.stats(), "{mode:?}: stats");
        assert!(
            exec_stream.regs() == exec_run.regs(),
            "{mode:?}: architectural state must match"
        );
        // And the whole pipeline still computes the right GEMM.
        let got = program.run_functional().unwrap();
        let mut expected = Matrix::zeros(32, 32);
        gemm_bf16_ref(&a, &b, &mut expected);
        assert_eq!(got, expected, "{mode:?}: bit-exact result");
    }
}

#[test]
fn sessions_stream_cycle_identically_to_prebuilt_traces() {
    // `Session::run_spec` streams; `Session::run_trace` replays the
    // materialized build. Same cycles, different residency accounting.
    let layer = &table4()[7];
    let shape = layer.scaled_shape(8);
    let cache = Arc::new(TraceCache::new());
    for spec in specs_for_every_format() {
        let session =
            Session::new(EngineConfig::vegeta_s(16).unwrap()).with_cache(Arc::clone(&cache));
        let streamed = session.run_spec("cell", shape, &spec);
        let trace = spec.build(shape);
        let prebuilt = session.run_trace("cell", shape, &trace);
        assert_eq!(streamed.cycles, prebuilt.cycles, "{}", spec.name());
        assert_eq!(streamed.instructions, prebuilt.instructions);
        assert_eq!(streamed.insts_streamed, streamed.instructions);
        assert_eq!(prebuilt.insts_streamed, 0);
        assert_eq!(
            prebuilt.peak_resident_bytes,
            trace.len() as u64 * TRACE_OP_BYTES as u64
        );
        assert!(streamed.peak_resident_bytes < prebuilt.peak_resident_bytes);
    }
}

#[test]
fn fidelity_axis_quick_and_full_share_one_sweep() {
    // The smallest conv layer keeps a genuine full-fidelity cell fast.
    let layer = table4()
        .into_iter()
        .find(|l| l.name == "ResNet50-L6")
        .unwrap();
    let report = Sweep::new()
        .with_engine(EngineConfig::vegeta_s(16).unwrap())
        .with_layer(layer)
        .with_sparsity(NmRatio::S1_4)
        .with_fidelities([Fidelity::Quick(4), Fidelity::Full])
        .with_threads(2)
        .run();
    assert_eq!(report.cells.len(), 2);
    assert_eq!(report.cells[0].fidelity, "quick/4");
    assert_eq!(report.cells[1].fidelity, "full");
    assert_eq!(report.cells[1].shape, layer.gemm_shape(), "unscaled");
    // Full-fidelity cells simulated the real layer yet stayed chunk-bounded.
    for cell in &report.cells {
        let trace_bytes = cell.instructions * TRACE_OP_BYTES as u64;
        assert!(
            cell.peak_resident_bytes < trace_bytes / 4,
            "{}@{}: resident {} vs materialized {}",
            cell.engine,
            cell.fidelity,
            cell.peak_resident_bytes,
            trace_bytes
        );
    }
    // JSON round-trips with the new fields.
    let back = RunReport::from_json(&report.cells[1].to_json()).unwrap();
    assert_eq!(back, report.cells[1]);
}
