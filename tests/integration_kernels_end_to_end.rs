//! End-to-end kernel correctness: full layer computations through the tiled
//! kernels and the functional executor, checked against dense references —
//! including the im2col path for convolutional layers.

use vegeta::kernels::{
    build_program, build_rowwise_program, direct_conv, im2col, ConvShape, KernelOptions,
};
use vegeta::num::{gemm_bf16_ref, Bf16, Matrix};
use vegeta::prelude::*;
use vegeta::sparse::prune;

fn check_mode(m: usize, n: usize, k: usize, mode: SparseMode, seed: u64) {
    let mut rng = rand_seed(seed);
    let a = prune::magnitude_prune_nm(&prune::random_dense(m, k, &mut rng), mode.ratio());
    let b = prune::random_dense(k, n, &mut rng);
    let program = build_program(&a, &b, mode, KernelOptions::default()).expect("valid operands");
    let got = program.run_functional().expect("kernel executes");
    let mut expected = Matrix::zeros(m, n);
    gemm_bf16_ref(&a, &b, &mut expected);
    assert_eq!(got, expected, "{mode:?} {m}x{n}x{k}");
}

#[test]
fn bert_like_block_all_modes() {
    // A 64x64x256 block with BERT-like aspect: all three kernel modes.
    for (mode, seed) in [
        (SparseMode::Dense, 1u64),
        (SparseMode::Nm2of4, 2),
        (SparseMode::Nm1of4, 3),
    ] {
        check_mode(64, 64, 256, mode, seed);
    }
}

#[test]
fn unaligned_layer_shapes() {
    check_mode(50, 30, 200, SparseMode::Nm2of4, 4);
    check_mode(17, 33, 130, SparseMode::Dense, 5);
}

#[test]
fn unrolls_one_to_three_are_equivalent() {
    let mut rng = rand_seed(6);
    let a = prune::magnitude_prune_nm(&prune::random_dense(48, 128, &mut rng), NmRatio::S2_4);
    let b = prune::random_dense(128, 32, &mut rng);
    let mut results = Vec::new();
    for unroll in 1..=3 {
        let program = build_program(
            &a,
            &b,
            SparseMode::Nm2of4,
            KernelOptions {
                unroll,
                loop_overhead: false,
            },
        )
        .expect("valid");
        results.push(program.run_functional().expect("runs"));
    }
    assert_eq!(results[0], results[1], "unroll must not change results");
    assert_eq!(results[1], results[2], "unroll must not change results");
}

#[test]
fn conv_layer_via_im2col_matches_direct_convolution() {
    // A miniature ResNet-style 3x3 conv: lower with im2col, prune 2:4,
    // run the SPMM kernel, compare with direct conv of the pruned weights.
    let shape = ConvShape {
        k: 8,
        c: 4,
        y: 6,
        x: 6,
        r: 3,
        s: 3,
    };
    let mut rng = rand_seed(7);
    let input: Vec<Matrix<Bf16>> = (0..shape.c)
        .map(|_| prune::random_dense(shape.y, shape.x, &mut rng))
        .collect();
    // Weight matrix K x (C*R*S), pruned to 2:4.
    let wm_dense = prune::random_dense(shape.k, shape.c * shape.r * shape.s, &mut rng);
    let wm = prune::magnitude_prune_nm(&wm_dense, NmRatio::S2_4);
    // Rebuild per-channel filters from the pruned matrix for the direct path.
    let weights: Vec<Vec<Matrix<Bf16>>> = (0..shape.k)
        .map(|ko| {
            (0..shape.c)
                .map(|c| {
                    Matrix::from_fn(shape.r, shape.s, |r, s| {
                        wm[(ko, c * shape.r * shape.s + r * shape.s + s)]
                    })
                })
                .collect()
        })
        .collect();

    let cols = im2col(&input, shape);
    let program =
        build_program(&wm, &cols, SparseMode::Nm2of4, KernelOptions::default()).expect("valid");
    let gemm_out = program.run_functional().expect("runs");
    let direct = direct_conv(&input, &weights, shape);
    for ko in 0..shape.k {
        for y in 0..shape.y {
            for x in 0..shape.x {
                assert_eq!(
                    gemm_out[(ko, y * shape.x + x)],
                    direct[ko][(y, x)],
                    "k={ko} y={y} x={x}"
                );
            }
        }
    }
}

#[test]
fn rowwise_kernel_handles_extreme_sparsity_mixes() {
    let mut rng = rand_seed(8);
    // Half the rows dense, half nearly empty: worst case for packing.
    let a = Matrix::from_fn(40, 128, |r, c| {
        if r % 2 == 0 {
            Bf16::from_f32(((r * 128 + c) % 7) as f32 - 3.0)
        } else if c % 64 == 0 {
            Bf16::ONE
        } else {
            Bf16::ZERO
        }
    });
    let b = prune::random_dense(128, 24, &mut rng);
    for reorder in [false, true] {
        let program = build_rowwise_program(&a, &b, reorder).expect("valid");
        let got = program.run_functional().expect("runs");
        let mut expected = Matrix::zeros(40, 24);
        gemm_bf16_ref(&a, &b, &mut expected);
        assert_eq!(got, expected, "reorder={reorder}");
    }
}

#[test]
fn kernel_spec_timing_traces_match_functional_programs() {
    // The polymorphic KernelSpec path (synthetic addresses, what Sweep
    // simulates) must issue exactly the instruction mix of the functional
    // program (real data, what run_functional executes) for the same shape.
    let mut rng = rand_seed(10);
    for mode in [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4] {
        let k = 2 * mode.tk();
        let a = prune::magnitude_prune_nm(&prune::random_dense(48, k, &mut rng), mode.ratio());
        let b = prune::random_dense(k, 32, &mut rng);
        let program = build_program(&a, &b, mode, KernelOptions::default()).expect("valid");
        let spec = KernelSpec::tiled(mode);
        let timing = spec.build(GemmShape::new(48, 32, k));
        assert_eq!(timing.mix(), program.trace.mix(), "{mode:?}");
    }
}

#[test]
fn all_zero_weights_yield_zero_output() {
    let a = Matrix::<Bf16>::zeros(16, 64);
    let mut rng = rand_seed(9);
    let b = prune::random_dense(64, 16, &mut rng);
    let program =
        build_program(&a, &b, SparseMode::Nm2of4, KernelOptions::default()).expect("valid");
    let got = program.run_functional().expect("runs");
    assert!(got.iter().all(|&x| x == 0.0));
}
