//! Unstructured compressed-sparse-row tiles.
//!
//! CSR is the lingua franca of sparse linear algebra and the operand format
//! of SpGEMM accelerators in related work (e.g. *SparseZipper*'s
//! vector-extension SpGEMM). VEGETA's tile engine cannot consume CSR
//! directly — the paper's §III-D transform first covers the non-zeros with a
//! structured `N:M` pattern — but modelling the format lets experiments
//! compare structured tile execution against CSR-on-vector baselines and
//! account for the storage each side moves.

use vegeta_num::{Bf16, Matrix};

use crate::format::{
    check_treg_budget, csr_col_bits, FormatSpec, TileFormat, CSR_HEADER_BYTES, CSR_MAX_COLS,
};
use crate::image::{write_bits, MregImage, TregImage};
use crate::SparsityError;

/// An unstructured tile in compressed-sparse-row form: row extents over a
/// shared non-zero value/column-index stream.
///
/// Compression is always lossless and never fails; the register-image
/// restrictions (≤ 16 rows, metadata within the 128 B mreg) are enforced by
/// [`TileFormat::pack_into`], because they are properties of the register
/// file, not of the format.
///
/// # Examples
///
/// ```
/// use vegeta_num::{Bf16, Matrix};
/// use vegeta_sparse::{CsrTile, TileFormat};
///
/// let dense = Matrix::from_fn(2, 4, |r, c| {
///     if (r + c) % 3 == 0 { Bf16::from_f32((c + 1) as f32) } else { Bf16::ZERO }
/// });
/// let t = CsrTile::compress(&dense);
/// assert_eq!(t.nnz(), 3);
/// assert_eq!(t.row_cols(0), &[0, 3]);
/// assert_eq!(t.decompress(), dense);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrTile {
    rows: usize,
    cols: usize,
    /// Start of each row's slice in `values`/`col_idx`; length `rows + 1`.
    row_ptr: Vec<usize>,
    col_idx: Vec<u16>,
    values: Vec<Bf16>,
}

impl CsrTile {
    /// Compresses a dense-shaped tile (lossless, infallible).
    pub fn compress(dense: &Matrix<Bf16>) -> Self {
        let mut row_ptr = Vec::with_capacity(dense.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..dense.rows() {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if !v.is_zero() {
                    col_idx.push(c as u16);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        CsrTile {
            rows: dense.rows(),
            cols: dense.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Total stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zero values of row `r`.
    pub fn row_values(&self, r: usize) -> &[Bf16] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Column indices of row `r`'s non-zeros.
    pub fn row_cols(&self, r: usize) -> &[u16] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Fraction of non-zero elements (0 for an empty tile).
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        self.nnz() as f64 / total as f64
    }
}

impl TileFormat for CsrTile {
    fn spec(&self) -> FormatSpec {
        FormatSpec::Csr
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn effective_cols(&self) -> usize {
        self.cols
    }

    fn stored_len(&self) -> usize {
        self.nnz()
    }

    fn metadata_bits(&self) -> usize {
        CSR_HEADER_BYTES * 8 + self.nnz() * csr_col_bits(self.cols) as usize
    }

    fn decompress(&self) -> Matrix<Bf16> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                out[(r, c as usize)] = v;
            }
        }
        out
    }

    fn pack_into(&self, treg: &mut TregImage, mreg: &mut MregImage) -> Result<(), SparsityError> {
        check_treg_budget(self.nnz())?;
        if self.rows > CSR_HEADER_BYTES {
            return Err(SparsityError::ShapeMismatch {
                reason: format!(
                    "CSR register images hold at most {CSR_HEADER_BYTES} rows, got {}",
                    self.rows
                ),
            });
        }
        if self.cols > CSR_MAX_COLS {
            return Err(SparsityError::ShapeMismatch {
                reason: format!(
                    "CSR column indices are at most 8 bits in a register image, got {} cols",
                    self.cols
                ),
            });
        }
        let bits = csr_col_bits(self.cols);
        let meta_bits = CSR_HEADER_BYTES * 8 + self.nnz() * bits as usize;
        if meta_bits > mreg.meta().len() * 8 {
            return Err(SparsityError::InvalidMetadata {
                reason: format!(
                    "CSR tile needs {meta_bits} metadata bits, more than the mreg's {}; \
                     cover it with a structured format instead (§III-D)",
                    mreg.meta().len() * 8
                ),
            });
        }
        treg.clear();
        *mreg = MregImage::new();
        for r in 0..self.rows {
            mreg.meta_mut()[r] = (self.row_ptr[r + 1] - self.row_ptr[r]) as u8;
        }
        for (i, (&v, &c)) in self.values.iter().zip(&self.col_idx).enumerate() {
            treg.set_bf16(i, v);
            write_bits(
                mreg.meta_mut(),
                CSR_HEADER_BYTES * 8 + i * bits as usize,
                bits,
                c as u8,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TileView;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix<Bf16> {
        Matrix::from_fn(rows, cols, |r, c| Bf16::from_f32(f(r, c)))
    }

    #[test]
    fn compress_decompress_is_lossless() {
        let dense = mat(8, 24, |r, c| {
            if (r * 5 + c * 3) % 7 == 0 {
                (r + c) as f32 + 0.5
            } else {
                0.0
            }
        });
        let t = CsrTile::compress(&dense);
        assert_eq!(t.decompress(), dense);
        assert!(t.density() < 0.25);
    }

    #[test]
    fn packs_through_register_images() {
        let dense = mat(16, 32, |r, c| {
            if (r * 31 + c * 7) % 11 == 0 {
                (c as f32) - 16.0
            } else {
                0.0
            }
        });
        let t = CsrTile::compress(&dense);
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        t.pack_into(&mut treg, &mut mreg).unwrap();
        let view = TileView::of_images(FormatSpec::Csr, 16, 32, &treg, &mreg).unwrap();
        assert_eq!(view.stored_len(), t.nnz());
        assert_eq!(view.decompress(), dense);
    }

    #[test]
    fn over_dense_tile_overflows_mreg() {
        // 16×32 fully dense: 512 values × 5-bit columns = 320 B ≫ 128 B.
        let t = CsrTile::compress(&mat(16, 32, |_, _| 1.0));
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        let err = t.pack_into(&mut treg, &mut mreg).unwrap_err();
        assert!(matches!(err, SparsityError::InvalidMetadata { .. }));
        assert!(err.to_string().contains("structured"));
    }

    #[test]
    fn shape_limits_are_enforced() {
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        let too_tall = CsrTile::compress(&mat(17, 4, |_, _| 0.0));
        assert!(too_tall.pack_into(&mut treg, &mut mreg).is_err());
        let too_wide = CsrTile::compress(&mat(1, 512, |_, _| 0.0));
        assert!(too_wide.pack_into(&mut treg, &mut mreg).is_err());
        let too_many = CsrTile::compress(&mat(16, 64, |_, _| 1.0));
        assert!(matches!(
            too_many.pack_into(&mut treg, &mut mreg),
            Err(SparsityError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_tile_is_fine() {
        let t = CsrTile::compress(&mat(4, 8, |_, _| 0.0));
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.density(), 0.0);
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        t.pack_into(&mut treg, &mut mreg).unwrap();
        let view = TileView::of_images(FormatSpec::Csr, 4, 8, &treg, &mreg).unwrap();
        assert_eq!(view.decompress(), t.decompress());
    }
}
