//! Error type for sparsity format operations.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or compressing sparsity formats.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparsityError {
    /// The requested `N:M` ratio is not valid (`N` must satisfy
    /// `1 <= N <= M`, and `M` must be a power of two in `[2, 64]`).
    InvalidRatio {
        /// Requested non-zeros per block.
        n: u8,
        /// Requested block size.
        m: u8,
    },
    /// A block of the dense input holds more non-zeros than the ratio allows.
    BlockTooDense {
        /// Row of the offending block.
        row: usize,
        /// Index of the offending block within the row.
        block: usize,
        /// Number of non-zeros found.
        found: usize,
        /// Maximum non-zeros allowed by the ratio.
        allowed: usize,
    },
    /// The matrix shape is incompatible with the operation (for example, the
    /// number of columns is not a multiple of the block size).
    ShapeMismatch {
        /// Human-readable description of the expectation that was violated.
        reason: String,
    },
    /// Metadata refers to an out-of-range position or is otherwise malformed.
    InvalidMetadata {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for SparsityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparsityError::InvalidRatio { n, m } => {
                write!(f, "invalid sparsity ratio {n}:{m}")
            }
            SparsityError::BlockTooDense {
                row,
                block,
                found,
                allowed,
            } => write!(
                f,
                "block {block} of row {row} has {found} non-zeros, more than the {allowed} allowed"
            ),
            SparsityError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            SparsityError::InvalidMetadata { reason } => write!(f, "invalid metadata: {reason}"),
        }
    }
}

impl Error for SparsityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparsityError::BlockTooDense {
            row: 3,
            block: 7,
            found: 3,
            allowed: 2,
        };
        assert_eq!(
            e.to_string(),
            "block 7 of row 3 has 3 non-zeros, more than the 2 allowed"
        );
        assert_eq!(
            SparsityError::InvalidRatio { n: 5, m: 4 }.to_string(),
            "invalid sparsity ratio 5:4"
        );
    }
}
