//! Pruning and synthetic sparsity generation.
//!
//! The paper evaluates on DNN layers pruned offline (§VI-B): weight matrices
//! carry `N:M` structured sparsity produced by magnitude pruning, and the
//! unstructured-sparsity study (§VI-E) induces "random and unstructured
//! sparsity of varying degrees". Both generators live here, seeded for
//! reproducibility.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use vegeta_num::{Bf16, Matrix};

use crate::NmRatio;

/// Magnitude-prunes a matrix to `ratio`: in every aligned block of `M`
/// elements per row, only the `N` largest-magnitude entries survive.
///
/// Ties are broken toward the earlier position, matching a deterministic
/// hardware-friendly pruner. Columns beyond the last whole block are left
/// untouched.
pub fn magnitude_prune_nm(dense: &Matrix<Bf16>, ratio: NmRatio) -> Matrix<Bf16> {
    let m = ratio.m() as usize;
    let n = ratio.n() as usize;
    let mut out = dense.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        for block in row.chunks_mut(m) {
            if block.len() < m || n >= m {
                continue;
            }
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by(|&a, &b| {
                block[b]
                    .to_f32()
                    .abs()
                    .partial_cmp(&block[a].to_f32().abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for &drop in &order[n..] {
                block[drop] = Bf16::ZERO;
            }
        }
    }
    out
}

/// Samples a non-zero BF16 value uniformly from `[-1, 1] \ {0}`.
fn sample_nonzero<R: Rng + ?Sized>(rng: &mut R, dist: &Uniform<f32>) -> Bf16 {
    loop {
        let v = Bf16::from_f32(dist.sample(rng));
        if !v.is_zero() {
            return v;
        }
    }
}

/// Generates a matrix with *unstructured* random sparsity: each element is
/// independently zero with probability `degree`.
///
/// # Panics
///
/// Panics if `degree` is not within `[0, 1]`.
pub fn random_unstructured<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    degree: f64,
    rng: &mut R,
) -> Matrix<Bf16> {
    assert!(
        (0.0..=1.0).contains(&degree),
        "sparsity degree must be in [0, 1]"
    );
    let dist = Uniform::new_inclusive(-1.0f32, 1.0);
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen_bool(degree) {
            Bf16::ZERO
        } else {
            sample_nonzero(rng, &dist)
        }
    })
}

/// Generates a matrix with exact `N:M` structured sparsity: every aligned
/// block of `M` holds exactly `N` non-zeros at random positions.
///
/// # Panics
///
/// Panics if `cols` is not a multiple of `ratio.m()`.
pub fn random_nm<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    ratio: NmRatio,
    rng: &mut R,
) -> Matrix<Bf16> {
    let m = ratio.m() as usize;
    let n = ratio.n() as usize;
    assert!(
        cols.is_multiple_of(m),
        "cols must be a multiple of the block size"
    );
    let dist = Uniform::new_inclusive(-1.0f32, 1.0);
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for b in 0..cols / m {
            // Partial Fisher-Yates: choose n distinct positions in the block.
            let mut positions: Vec<usize> = (0..m).collect();
            for i in 0..n {
                let j = rng.gen_range(i..m);
                positions.swap(i, j);
            }
            for &pos in &positions[..n] {
                out[(r, b * m + pos)] = sample_nonzero(rng, &dist);
            }
        }
    }
    out
}

/// Generates a dense matrix of non-zero BF16 values in `[-1, 1]`.
pub fn random_dense<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix<Bf16> {
    let dist = Uniform::new_inclusive(-1.0f32, 1.0);
    Matrix::from_fn(rows, cols, |_, _| sample_nonzero(rng, &dist))
}

/// Applies ReLU-style dynamic sparsity: negative entries are clipped to zero,
/// modelling input-activation sparsity (§II-C).
pub fn relu(dense: &Matrix<Bf16>) -> Matrix<Bf16> {
    dense.map(|v| if v.to_f32() < 0.0 { Bf16::ZERO } else { *v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{satisfies_nm, sparsity_degree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn magnitude_prune_keeps_largest() {
        let dense = Matrix::from_fn(1, 4, |_, c| Bf16::from_f32([0.1, -3.0, 2.0, 0.5][c]));
        let pruned = magnitude_prune_nm(&dense, NmRatio::S2_4);
        assert_eq!(pruned[(0, 0)], Bf16::ZERO);
        assert_eq!(pruned[(0, 1)].to_f32(), -3.0);
        assert_eq!(pruned[(0, 2)].to_f32(), 2.0);
        assert_eq!(pruned[(0, 3)], Bf16::ZERO);
    }

    #[test]
    fn magnitude_prune_result_satisfies_pattern() {
        let mut rng = SmallRng::seed_from_u64(7);
        let dense = random_dense(16, 64, &mut rng);
        for ratio in [NmRatio::S1_4, NmRatio::S2_4] {
            let pruned = magnitude_prune_nm(&dense, ratio);
            assert!(satisfies_nm(&pruned, ratio));
        }
    }

    #[test]
    fn magnitude_prune_dense_ratio_is_identity() {
        let mut rng = SmallRng::seed_from_u64(8);
        let dense = random_dense(4, 8, &mut rng);
        assert_eq!(magnitude_prune_nm(&dense, NmRatio::D4_4), dense);
    }

    #[test]
    fn random_unstructured_hits_target_degree() {
        let mut rng = SmallRng::seed_from_u64(42);
        let m = random_unstructured(64, 256, 0.9, &mut rng);
        let degree = sparsity_degree(&m);
        assert!((degree - 0.9).abs() < 0.02, "observed degree {degree}");
    }

    #[test]
    fn random_unstructured_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            sparsity_degree(&random_unstructured(8, 8, 1.0, &mut rng)),
            1.0
        );
        assert_eq!(
            sparsity_degree(&random_unstructured(8, 8, 0.0, &mut rng)),
            0.0
        );
    }

    #[test]
    fn random_nm_is_exactly_structured() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = random_nm(16, 64, NmRatio::S2_4, &mut rng);
        assert!(satisfies_nm(&m, NmRatio::S2_4));
        // Exactly n non-zeros per block, so the degree is exactly 50%.
        assert_eq!(sparsity_degree(&m), 0.5);
    }

    #[test]
    fn relu_clips_negatives_only() {
        let dense = Matrix::from_fn(1, 4, |_, c| Bf16::from_f32([-1.0, 0.0, 2.0, -0.5][c]));
        let activated = relu(&dense);
        assert_eq!(activated[(0, 0)], Bf16::ZERO);
        assert_eq!(activated[(0, 2)].to_f32(), 2.0);
        assert_eq!(activated[(0, 3)], Bf16::ZERO);
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = random_unstructured(8, 8, 0.5, &mut SmallRng::seed_from_u64(9));
        let b = random_unstructured(8, 8, 0.5, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
