//! The compressed tile format of Fig. 2: non-zero values plus block offsets.

use vegeta_num::{Bf16, Matrix};

use crate::format::{check_treg_budget, FormatSpec, TileFormat};
use crate::image::{write_bits, MregImage, TregImage};
use crate::{NmRatio, SparsityError};

/// A tile compressed with uniform `N:M` structured sparsity.
///
/// For every aligned block of `M` elements in a row of the *effective*
/// (dense-shaped) tile, exactly `N` entries are stored: the block's non-zeros
/// followed by zero padding, each with its position inside the block
/// (`log2(M)` bits — the metadata a `mreg` holds). Stored entries are kept in
/// ascending position order, which is the canonical encoding produced by the
/// paper's offline compression step.
///
/// A 16×64 effective tile at 2:4 compresses to 16×32 values (fits a 1 KB
/// `treg`) plus 16×64 bits of metadata (fits a 128 B `mreg`), exactly the
/// register budget of §IV-A.
///
/// # Examples
///
/// ```
/// use vegeta_num::{Bf16, Matrix};
/// use vegeta_sparse::{CompressedTile, NmRatio};
///
/// let dense = Matrix::from_fn(1, 4, |_, c| {
///     if c == 2 { Bf16::from_f32(5.0) } else { Bf16::ZERO }
/// });
/// let t = CompressedTile::compress(&dense, NmRatio::S1_4)?;
/// assert_eq!(t.values()[(0, 0)].to_f32(), 5.0);
/// assert_eq!(t.indices()[0], 2);
/// # Ok::<(), vegeta_sparse::SparsityError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedTile {
    ratio: NmRatio,
    effective_cols: usize,
    /// `rows x (blocks_per_row * n)` stored values.
    values: Matrix<Bf16>,
    /// One position per stored value, each `< m`; row-major, same layout as
    /// `values`.
    indices: Vec<u8>,
}

impl CompressedTile {
    /// Compresses a dense-shaped tile that satisfies `ratio`.
    ///
    /// # Errors
    ///
    /// * [`SparsityError::ShapeMismatch`] if the column count is not a
    ///   positive multiple of `ratio.m()`.
    /// * [`SparsityError::BlockTooDense`] if any block holds more than
    ///   `ratio.n()` non-zeros (the matrix must be pruned first; see
    ///   [`crate::prune::magnitude_prune_nm`]).
    pub fn compress(dense: &Matrix<Bf16>, ratio: NmRatio) -> Result<Self, SparsityError> {
        let m = ratio.m() as usize;
        let n = ratio.n() as usize;
        if dense.cols() == 0 || !dense.cols().is_multiple_of(m) {
            return Err(SparsityError::ShapeMismatch {
                reason: format!(
                    "column count {} is not a positive multiple of block size {m}",
                    dense.cols()
                ),
            });
        }
        let blocks = dense.cols() / m;
        let mut values = Matrix::zeros(dense.rows(), blocks * n);
        let mut indices = vec![0u8; dense.rows() * blocks * n];
        for r in 0..dense.rows() {
            for b in 0..blocks {
                let block = &dense.row(r)[b * m..(b + 1) * m];
                let nonzeros: Vec<usize> = (0..m).filter(|&i| !block[i].is_zero()).collect();
                if nonzeros.len() > n {
                    return Err(SparsityError::BlockTooDense {
                        row: r,
                        block: b,
                        found: nonzeros.len(),
                        allowed: n,
                    });
                }
                // Canonical slot assignment: non-zero positions first, then
                // the smallest unused positions as zero padding, sorted.
                let mut slots = nonzeros.clone();
                for i in 0..m {
                    if slots.len() == n {
                        break;
                    }
                    if !nonzeros.contains(&i) {
                        slots.push(i);
                    }
                }
                slots.sort_unstable();
                for (k, &pos) in slots.iter().enumerate() {
                    values[(r, b * n + k)] = block[pos];
                    indices[(r * blocks + b) * n + k] = pos as u8;
                }
            }
        }
        Ok(CompressedTile {
            ratio,
            effective_cols: dense.cols(),
            values,
            indices,
        })
    }

    /// Reassembles a compressed tile from stored values and per-value block
    /// positions (for example after loading a `treg`/`mreg` pair).
    ///
    /// # Errors
    ///
    /// Returns [`SparsityError::InvalidMetadata`] if the index count does not
    /// match the value count or any index is `>= m`, and
    /// [`SparsityError::ShapeMismatch`] if the value matrix width does not
    /// equal `effective_cols / m * n`.
    pub fn from_parts(
        values: Matrix<Bf16>,
        indices: Vec<u8>,
        ratio: NmRatio,
        effective_cols: usize,
    ) -> Result<Self, SparsityError> {
        let m = ratio.m() as usize;
        let n = ratio.n() as usize;
        if effective_cols == 0 || !effective_cols.is_multiple_of(m) {
            return Err(SparsityError::ShapeMismatch {
                reason: format!("effective cols {effective_cols} not a multiple of {m}"),
            });
        }
        let blocks = effective_cols / m;
        if values.cols() != blocks * n {
            return Err(SparsityError::ShapeMismatch {
                reason: format!(
                    "expected {} stored values per row, found {}",
                    blocks * n,
                    values.cols()
                ),
            });
        }
        if indices.len() != values.len() {
            return Err(SparsityError::InvalidMetadata {
                reason: format!("expected {} indices, found {}", values.len(), indices.len()),
            });
        }
        if let Some(&bad) = indices.iter().find(|&&i| i as usize >= m) {
            return Err(SparsityError::InvalidMetadata {
                reason: format!("index {bad} out of range for block size {m}"),
            });
        }
        Ok(CompressedTile {
            ratio,
            effective_cols,
            values,
            indices,
        })
    }

    /// The sparsity ratio of the tile.
    #[inline]
    pub fn ratio(&self) -> NmRatio {
        self.ratio
    }

    /// Rows of the effective (and stored) tile.
    #[inline]
    pub fn rows(&self) -> usize {
        self.values.rows()
    }

    /// Columns of the effective (dense-shaped) tile.
    #[inline]
    pub fn effective_cols(&self) -> usize {
        self.effective_cols
    }

    /// Stored non-zero values, `rows x (blocks * n)`.
    #[inline]
    pub fn values(&self) -> &Matrix<Bf16> {
        &self.values
    }

    /// Per-value positions inside their block, row-major.
    #[inline]
    pub fn indices(&self) -> &[u8] {
        &self.indices
    }

    /// Stored values of row `r`.
    #[inline]
    pub fn row_values(&self, r: usize) -> &[Bf16] {
        self.values.row(r)
    }

    /// Block positions of row `r`'s stored values.
    #[inline]
    pub fn row_indices(&self, r: usize) -> &[u8] {
        let w = self.values.cols();
        &self.indices[r * w..(r + 1) * w]
    }

    /// Expands back to the dense-shaped effective tile.
    pub fn decompress(&self) -> Matrix<Bf16> {
        let m = self.ratio.m() as usize;
        let n = self.ratio.n() as usize;
        let blocks = self.effective_cols / m;
        let mut out = Matrix::zeros(self.rows(), self.effective_cols);
        for r in 0..self.rows() {
            for b in 0..blocks {
                for k in 0..n {
                    let v = self.values[(r, b * n + k)];
                    if !v.is_zero() {
                        let pos = self.indices[(r * blocks + b) * n + k] as usize;
                        out[(r, b * m + pos)] = v;
                    }
                }
            }
        }
        out
    }

    /// Packs the per-value positions into the dense bit format a `mreg`
    /// stores: `index_bits` bits per value, filled LSB-first within each byte,
    /// rows padded to whole bytes (Fig. 2 / §IV-A).
    pub fn metadata_packed(&self) -> Vec<u8> {
        pack_indices(&self.indices, self.values.cols(), self.ratio.index_bits())
    }

    /// Bytes of packed metadata per row (8 B for a 32-value row at `M = 4`).
    pub fn metadata_row_bytes(&self) -> usize {
        (self.values.cols() * self.ratio.index_bits() as usize).div_ceil(8)
    }
}

impl TileFormat for CompressedTile {
    fn spec(&self) -> FormatSpec {
        FormatSpec::Nm(self.ratio)
    }

    fn rows(&self) -> usize {
        self.values.rows()
    }

    fn effective_cols(&self) -> usize {
        self.effective_cols
    }

    fn stored_len(&self) -> usize {
        self.values.len()
    }

    fn metadata_bits(&self) -> usize {
        self.values.len() * self.ratio.index_bits() as usize
    }

    fn decompress(&self) -> Matrix<Bf16> {
        CompressedTile::decompress(self)
    }

    fn pack_into(&self, treg: &mut TregImage, mreg: &mut MregImage) -> Result<(), SparsityError> {
        check_treg_budget(self.values.len())?;
        let row_bytes = self.metadata_row_bytes();
        if self.values.rows() * row_bytes > mreg.meta().len() {
            return Err(SparsityError::InvalidMetadata {
                reason: format!(
                    "{} rows of {row_bytes} B metadata exceed the {} B mreg",
                    self.values.rows(),
                    mreg.meta().len()
                ),
            });
        }
        treg.clear();
        *mreg = MregImage::new();
        for (i, v) in self.values.iter().enumerate() {
            treg.set_bf16(i, *v);
        }
        let bits = self.ratio.index_bits();
        let per_row = self.values.cols();
        for (i, &idx) in self.indices.iter().enumerate() {
            let (r, k) = (i / per_row, i % per_row);
            write_bits(
                mreg.meta_mut(),
                r * row_bytes * 8 + k * bits as usize,
                bits,
                idx,
            );
        }
        Ok(())
    }
}

/// Packs `indices` (one entry per stored value, `per_row` values per row) at
/// `bits` bits each, LSB-first, each row padded to a whole byte boundary.
///
/// # Panics
///
/// Panics on `per_row == 0`, which is a caller bug: every supported `N:M`
/// ratio stores `N >= 1` values per block, so any tile that passed ratio
/// validation has at least one stored value per row.
pub(crate) fn pack_indices(indices: &[u8], per_row: usize, bits: u32) -> Vec<u8> {
    assert!(per_row > 0, "rows must store at least one value");
    let row_bytes = (per_row * bits as usize).div_ceil(8);
    let rows = indices.len() / per_row;
    let mut out = vec![0u8; rows * row_bytes];
    for (r, row) in indices.chunks(per_row).enumerate() {
        for (i, &idx) in row.iter().enumerate() {
            let bit = i * bits as usize;
            let byte = r * row_bytes + bit / 8;
            let shift = bit % 8;
            // bits <= 6 and values < 2^bits, so a 16-bit window is enough.
            let window = (idx as u16) << shift;
            out[byte] |= window as u8;
            if shift + bits as usize > 8 {
                out[byte + 1] |= (window >> 8) as u8;
            }
        }
    }
    out
}

/// Unpacks metadata produced by [`pack_indices`] (test-only inverse; runtime
/// reads go through [`crate::TileView`] / [`crate::MregImage`] in place).
#[cfg(test)]
pub(crate) fn unpack_indices(packed: &[u8], rows: usize, per_row: usize, bits: u32) -> Vec<u8> {
    let row_bytes = (per_row * bits as usize).div_ceil(8);
    let mask = (1u16 << bits) - 1;
    let mut out = Vec::with_capacity(rows * per_row);
    for r in 0..rows {
        for i in 0..per_row {
            let bit = i * bits as usize;
            let byte = r * row_bytes + bit / 8;
            let shift = bit % 8;
            let lo = packed[byte] as u16;
            let hi = if byte + 1 < packed.len() {
                packed[byte + 1] as u16
            } else {
                0
            };
            out.push((((lo | (hi << 8)) >> shift) & mask) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix<Bf16> {
        Matrix::from_fn(rows, cols, |r, c| Bf16::from_f32(f(r, c)))
    }

    #[test]
    fn compress_decompress_roundtrip_2_4() {
        // Fig. 2's example pattern: two non-zeros somewhere in each block.
        let dense = mat(4, 16, |r, c| {
            let in_block = c % 4;
            let keep = [(0, 3), (0, 2), (1, 2), (0, 1)][(c / 4 + r) % 4];
            if in_block == keep.0 || in_block == keep.1 {
                (r * 16 + c) as f32 + 1.0
            } else {
                0.0
            }
        });
        let t = CompressedTile::compress(&dense, NmRatio::S2_4).unwrap();
        assert_eq!(t.values().cols(), 8);
        assert_eq!(t.decompress(), dense);
    }

    #[test]
    fn compress_rejects_overdense_block() {
        let dense = mat(1, 4, |_, _| 1.0);
        let err = CompressedTile::compress(&dense, NmRatio::S2_4).unwrap_err();
        assert!(matches!(
            err,
            SparsityError::BlockTooDense {
                found: 4,
                allowed: 2,
                ..
            }
        ));
    }

    #[test]
    fn compress_rejects_bad_width() {
        let dense = mat(1, 6, |_, _| 0.0);
        assert!(matches!(
            CompressedTile::compress(&dense, NmRatio::S2_4),
            Err(SparsityError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn dense_4_4_compression_is_identity_layout() {
        let dense = mat(2, 8, |r, c| (r * 8 + c) as f32);
        let t = CompressedTile::compress(&dense, NmRatio::D4_4).unwrap();
        assert_eq!(t.values(), &dense);
        assert_eq!(t.row_indices(0), &[0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(t.decompress(), dense);
    }

    #[test]
    fn underfull_blocks_pad_with_zero() {
        // One non-zero in a 2:4 block: second stored slot must be zero.
        let dense = mat(1, 4, |_, c| if c == 1 { 7.0 } else { 0.0 });
        let t = CompressedTile::compress(&dense, NmRatio::S2_4).unwrap();
        assert_eq!(t.row_values(0)[0].to_f32(), 0.0); // padding at pos 0
        assert_eq!(t.row_values(0)[1].to_f32(), 7.0);
        assert_eq!(t.row_indices(0), &[0, 1]);
        assert_eq!(t.decompress(), dense);
    }

    #[test]
    fn register_budget_matches_paper() {
        // 16x64 effective at 2:4 -> 512 stored values (1 KB of BF16) and
        // 128 B of metadata once padded to mreg capacity.
        let dense = mat(16, 64, |_, c| if c % 4 < 2 { 1.0 } else { 0.0 });
        let t = CompressedTile::compress(&dense, NmRatio::S2_4).unwrap();
        assert_eq!(t.values().len(), 512);
        assert_eq!(t.metadata_row_bytes(), 8);
        assert_eq!(t.metadata_packed().len(), 128);
    }

    #[test]
    fn metadata_pack_unpack_roundtrip() {
        let dense = mat(3, 16, |r, c| if (c + r) % 4 == 0 { 1.0 } else { 0.0 });
        let t = CompressedTile::compress(&dense, NmRatio::S1_4).unwrap();
        let packed = t.metadata_packed();
        let unpacked = unpack_indices(&packed, 3, t.values().cols(), 2);
        assert_eq!(unpacked, t.indices());
    }

    #[test]
    fn pack_into_matches_metadata_packed_layout() {
        // The image layout must be byte-identical to the offline
        // `metadata_packed` form the mreg architecturally stores.
        let dense = mat(
            16,
            64,
            |r, c| if (r + c) % 4 < 2 { (c + 1) as f32 } else { 0.0 },
        );
        let pruned = crate::prune::magnitude_prune_nm(&dense, NmRatio::S2_4);
        let t = CompressedTile::compress(&pruned, NmRatio::S2_4).unwrap();
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        t.pack_into(&mut treg, &mut mreg).unwrap();
        assert_eq!(mreg.meta(), t.metadata_packed().as_slice());
        for (i, v) in t.values().iter().enumerate() {
            assert_eq!(treg.bf16(i), *v);
        }
        let view = crate::TileView::of_images(TileFormat::spec(&t), 16, 64, &treg, &mreg).unwrap();
        assert_eq!(view.decompress(), pruned);
    }

    #[test]
    fn metadata_packing_handles_odd_bit_widths() {
        // 3-bit indices (M = 8) straddle byte boundaries.
        let indices = vec![0u8, 7, 3, 5, 1, 6, 2, 4, 7, 0];
        let packed = pack_indices(&indices, 5, 3);
        assert_eq!(unpack_indices(&packed, 2, 5, 3), indices);
    }

    #[test]
    fn from_parts_validates() {
        let values = Matrix::<Bf16>::zeros(1, 2);
        assert!(CompressedTile::from_parts(values.clone(), vec![0, 4], NmRatio::S2_4, 4).is_err());
        assert!(CompressedTile::from_parts(values.clone(), vec![0], NmRatio::S2_4, 4).is_err());
        assert!(CompressedTile::from_parts(values.clone(), vec![0, 1], NmRatio::S2_4, 6).is_err());
        assert!(CompressedTile::from_parts(values, vec![0, 1], NmRatio::S2_4, 4).is_ok());
    }

    #[test]
    fn effective_tile_expansion_1_4() {
        // 16x128 effective at 1:4 stores 16x32 values: a 4 KB effective tile
        // in a 1 KB treg (§IV-A).
        let dense = mat(16, 128, |_, c| if c % 4 == 3 { 2.0 } else { 0.0 });
        let t = CompressedTile::compress(&dense, NmRatio::S1_4).unwrap();
        assert_eq!(t.values().len(), 512);
        assert_eq!(t.effective_cols(), 128);
    }
}
