//! The `N:M` fine-grained structured sparsity ratio.

use std::fmt;

use crate::SparsityError;

/// A validated `N:M` structured sparsity ratio: at most `N` non-zero elements
/// in every aligned block of `M` consecutive elements.
///
/// The paper's detailed design uses `M = 4` with patterns 1:4, 2:4 and 4:4
/// (§IV), but both the ISA and the engine generalize to `M = 2^m` (§IV-C,
/// §V-D); this type accepts any power-of-two `M` in `[2, 64]` and any
/// `1 <= N <= M`.
///
/// # Examples
///
/// ```
/// use vegeta_sparse::NmRatio;
///
/// let r = NmRatio::new(2, 4)?;
/// assert_eq!(r, NmRatio::S2_4);
/// assert_eq!(r.density(), 0.5);
/// assert_eq!(r.expansion_factor(), 2);
/// assert!(NmRatio::new(5, 4).is_err());
/// # Ok::<(), vegeta_sparse::SparsityError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NmRatio {
    n: u8,
    m: u8,
}

impl NmRatio {
    /// Dense 4:4 (no sparsity; `TILE_GEMM` operand pattern).
    pub const D4_4: NmRatio = NmRatio { n: 4, m: 4 };
    /// 2:4 structured sparsity (`TILE_SPMM_U` operand pattern).
    pub const S2_4: NmRatio = NmRatio { n: 2, m: 4 };
    /// 1:4 structured sparsity (`TILE_SPMM_V` operand pattern).
    pub const S1_4: NmRatio = NmRatio { n: 1, m: 4 };

    /// Creates a ratio, validating `1 <= n <= m` and that `m` is a power of
    /// two in `[2, 64]`.
    ///
    /// # Errors
    ///
    /// Returns [`SparsityError::InvalidRatio`] when the constraints do not
    /// hold.
    pub fn new(n: u8, m: u8) -> Result<Self, SparsityError> {
        if n == 0 || n > m || !m.is_power_of_two() || !(2..=64).contains(&m) {
            return Err(SparsityError::InvalidRatio { n, m });
        }
        Ok(NmRatio { n, m })
    }

    /// Non-zeros kept per block.
    #[inline]
    pub const fn n(self) -> u8 {
        self.n
    }

    /// Block size.
    #[inline]
    pub const fn m(self) -> u8 {
        self.m
    }

    /// Fraction of elements that may be non-zero (`N / M`).
    #[inline]
    pub fn density(self) -> f64 {
        f64::from(self.n) / f64::from(self.m)
    }

    /// Sparsity degree guaranteed by the pattern (`1 - N/M`).
    #[inline]
    pub fn sparsity_degree(self) -> f64 {
        1.0 - self.density()
    }

    /// How many dense elements each stored element stands for (`M / N`,
    /// rounded up). A 1 KB `treg` of 2:4 data has a 2 KB *effective tile*
    /// (§IV-A); this is that expansion factor.
    #[inline]
    pub fn expansion_factor(self) -> usize {
        (self.m as usize).div_ceil(self.n as usize)
    }

    /// `true` when the pattern is fully dense (`N == M`).
    #[inline]
    pub fn is_dense(self) -> bool {
        self.n == self.m
    }

    /// Bits of metadata per stored non-zero: `log2(M)` (2 bits for `M = 4`,
    /// see Fig. 2).
    #[inline]
    pub fn index_bits(self) -> u32 {
        self.m.trailing_zeros()
    }

    /// The engine-supported patterns for block size `m`: every power-of-two
    /// `N` up to `M` (1:4, 2:4, 4:4 for `M = 4`), densest last.
    ///
    /// These are the ratios the row-wise cover transform may choose from;
    /// non-power-of-two `N` (for example 3:4) would leave MAC lanes idle in
    /// an SPU and is not offered by the hardware (§V-A: `β = M/2`).
    ///
    /// # Errors
    ///
    /// Returns [`SparsityError::InvalidRatio`] if `m` is not a supported
    /// block size.
    pub fn supported_patterns(m: u8) -> Result<Vec<NmRatio>, SparsityError> {
        // Validate via a throwaway densest ratio.
        let _ = NmRatio::new(m, m)?;
        let mut out = Vec::new();
        let mut n = 1u8;
        while n <= m {
            out.push(NmRatio { n, m });
            n *= 2;
        }
        Ok(out)
    }
}

impl fmt::Debug for NmRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NmRatio({}:{})", self.n, self.m)
    }
}

impl fmt::Display for NmRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_valid() {
        for r in [NmRatio::D4_4, NmRatio::S2_4, NmRatio::S1_4] {
            assert_eq!(NmRatio::new(r.n(), r.m()).unwrap(), r);
        }
    }

    #[test]
    fn rejects_bad_ratios() {
        assert!(NmRatio::new(0, 4).is_err());
        assert!(NmRatio::new(5, 4).is_err());
        assert!(NmRatio::new(1, 3).is_err());
        assert!(NmRatio::new(1, 128).is_err());
        assert!(NmRatio::new(1, 1).is_err());
    }

    #[test]
    fn densities_match_paper_figures() {
        // Fig. 1: tile-wise 2:4 has sparsity degree 50% per block.
        assert_eq!(NmRatio::S2_4.density(), 0.5);
        assert_eq!(NmRatio::S1_4.sparsity_degree(), 0.75);
        assert!(NmRatio::D4_4.is_dense());
    }

    #[test]
    fn expansion_factors_match_register_aliasing() {
        // treg (1 KB) -> effective 2 KB for 2:4, 4 KB for 1:4 (§IV-A).
        assert_eq!(NmRatio::D4_4.expansion_factor(), 1);
        assert_eq!(NmRatio::S2_4.expansion_factor(), 2);
        assert_eq!(NmRatio::S1_4.expansion_factor(), 4);
    }

    #[test]
    fn index_bits_are_log2_m() {
        assert_eq!(NmRatio::S2_4.index_bits(), 2);
        assert_eq!(NmRatio::new(3, 8).unwrap().index_bits(), 3);
        assert_eq!(NmRatio::new(1, 16).unwrap().index_bits(), 4);
    }

    #[test]
    fn supported_patterns_are_powers_of_two() {
        let p4 = NmRatio::supported_patterns(4).unwrap();
        assert_eq!(p4, vec![NmRatio::S1_4, NmRatio::S2_4, NmRatio::D4_4]);
        let p16 = NmRatio::supported_patterns(16).unwrap();
        assert_eq!(p16.len(), 5); // 1,2,4,8,16 : 16 (§V-D)
        assert!(NmRatio::supported_patterns(6).is_err());
    }

    #[test]
    fn ordering_sorts_by_n_then_m() {
        assert!(NmRatio::S1_4 < NmRatio::S2_4);
        assert!(NmRatio::S2_4 < NmRatio::D4_4);
    }
}
