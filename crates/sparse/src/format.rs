//! The polymorphic storage API: [`FormatSpec`], [`TileFormat`] and
//! [`TileView`].
//!
//! VEGETA's storage hierarchy (PAPER §III–§V, Fig. 2/6) is a family of tile
//! encodings that all flow through the same pair of registers: values in a
//! 1 KB `treg`, metadata in a 128 B `mreg`. This module makes that family a
//! first-class, sweepable axis:
//!
//! * [`FormatSpec`] — the closed, hashable enumeration of storage formats
//!   (the storage-side mirror of `vegeta_kernels::KernelSpec`);
//! * [`TileFormat`] — the object-safe trait every concrete format
//!   ([`DenseTile`], [`crate::CompressedTile`], [`crate::RowWiseTile`],
//!   [`crate::CsrTile`]) implements: compress/decompress, **zero-copy
//!   packing** into [`TregImage`]/[`MregImage`], and size/metadata
//!   accounting for cost models and reports;
//! * [`TileView`] — a borrowed, allocation-free read view over raw register
//!   or image bytes, used by the ISA executor so tile instructions never
//!   materialize an intermediate `Matrix<Bf16>`.
//!
//! # Register-image layouts
//!
//! Each format owns its packed layout inside the two images:
//!
//! | format | `TregImage` values | `MregImage` metadata | row patterns |
//! |---|---|---|---|
//! | dense | `rows×cols` BF16 row-major | — | — |
//! | `N:M` | `rows×(cols/M·N)` row-major | `log2(M)`-bit positions, rows byte-padded | — |
//! | row-wise `N:4` | rows packed back to back | 2-bit positions, continuous | 2-bit per-row `N` codes |
//! | CSR | rows packed back to back | 16 B row-nnz header + packed column indices | — |

use vegeta_num::{Bf16, Matrix};

use crate::csr::CsrTile;
use crate::image::{
    decode_row_ns, read_bits, MregImage, TregImage, ROW_PATTERN_ROWS, TREG_IMAGE_VALUES,
};
use crate::{CompressedTile, NmRatio, RowWiseTile, SparsityError};

/// Bytes of the CSR row-length header inside an [`MregImage`].
pub(crate) const CSR_HEADER_BYTES: usize = 16;

/// Widest tile a packed CSR image can index (8-bit column indices).
pub(crate) const CSR_MAX_COLS: usize = 256;

/// Bits needed to store a column index for a tile `cols` wide.
pub(crate) fn csr_col_bits(cols: usize) -> u32 {
    if cols <= 2 {
        1
    } else {
        usize::BITS - (cols - 1).leading_zeros()
    }
}

/// A self-describing specification of one storage format.
///
/// `FormatSpec` is `Eq + Hash`, making the storage format a cache key and a
/// sweepable grid axis, exactly like `KernelSpec` made kernels one.
///
/// # Example
///
/// ```
/// use vegeta_num::{Bf16, Matrix};
/// use vegeta_sparse::{FormatSpec, MregImage, NmRatio, TileView, TregImage};
///
/// let dense = Matrix::from_fn(4, 8, |_, c| {
///     if c % 4 == 1 { Bf16::from_f32(3.0) } else { Bf16::ZERO }
/// });
/// let tile = FormatSpec::Nm(NmRatio::S1_4).compress(&dense)?;
/// let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
/// tile.pack_into(&mut treg, &mut mreg)?;
/// let view = TileView::of_images(tile.spec(), tile.rows(), tile.effective_cols(), &treg, &mreg)?;
/// assert_eq!(view.decompress(), dense);
/// # Ok::<(), vegeta_sparse::SparsityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FormatSpec {
    /// Uncompressed BF16 values, no metadata (`TILE_GEMM` operands).
    Dense,
    /// Uniform `N:M` compression (Fig. 2; `TILE_SPMM_U`/`_V` operands).
    Nm(NmRatio),
    /// Row-wise `N:M` with a per-row `N` selector (§V-E; `TILE_SPMM_R`
    /// operands).
    RowWise {
        /// Block size `M`.
        m: u8,
    },
    /// Unstructured compressed-sparse-row, the SpGEMM operand format of
    /// CSR-based related work; executes on the vector engine unless first
    /// covered into a structured format (§III-D).
    Csr,
}

impl FormatSpec {
    /// Every format the evaluation sweeps over for `M = 4` hardware, densest
    /// first: dense, 2:4, 1:4, row-wise, CSR.
    pub fn all_m4() -> Vec<FormatSpec> {
        vec![
            FormatSpec::Dense,
            FormatSpec::Nm(NmRatio::S2_4),
            FormatSpec::Nm(NmRatio::S1_4),
            FormatSpec::RowWise { m: 4 },
            FormatSpec::Csr,
        ]
    }

    /// Compresses a dense-shaped matrix into this format.
    ///
    /// # Errors
    ///
    /// Propagates the concrete format's compression errors (shape mismatch,
    /// over-dense blocks for [`FormatSpec::Nm`], unsupported `M`).
    pub fn compress(&self, dense: &Matrix<Bf16>) -> Result<Box<dyn TileFormat>, SparsityError> {
        Ok(match *self {
            FormatSpec::Dense => Box::new(DenseTile::compress(dense)),
            FormatSpec::Nm(ratio) => Box::new(CompressedTile::compress(dense, ratio)?),
            FormatSpec::RowWise { m } => Box::new(RowWiseTile::compress(dense, m)?),
            FormatSpec::Csr => Box::new(CsrTile::compress(dense)),
        })
    }

    /// Metadata bits carried per stored value in a register image: 0 for
    /// dense, `log2(M)` block-position bits for the structured formats, and
    /// the 8-bit worst-case column index for CSR (whose actual width is
    /// data-dependent; see [`TileFormat::metadata_bits`] for exact
    /// per-tile accounting).
    pub fn metadata_bits_per_value(&self) -> u32 {
        match *self {
            FormatSpec::Dense => 0,
            FormatSpec::Nm(ratio) => ratio.index_bits(),
            FormatSpec::RowWise { m } => m.trailing_zeros(),
            FormatSpec::Csr => 8,
        }
    }

    /// Stored-value bytes an operand of `rows × cols` occupies in this
    /// format. For the data-dependent formats (row-wise, CSR) this is the
    /// capacity bound a storage allocator must reserve — the dense worst
    /// case; exact per-tile numbers come from [`TileFormat::values_bytes`].
    pub fn values_bytes(&self, rows: usize, cols: usize) -> usize {
        match *self {
            FormatSpec::Nm(ratio) => {
                rows * cols.div_ceil(ratio.m() as usize) * ratio.n() as usize * 2
            }
            FormatSpec::Dense | FormatSpec::RowWise { .. } | FormatSpec::Csr => rows * cols * 2,
        }
    }

    /// Metadata bits an operand of `rows × cols` occupies in this format
    /// (capacity bound for the data-dependent formats, like
    /// [`FormatSpec::values_bytes`]).
    pub fn metadata_bits(&self, rows: usize, cols: usize) -> usize {
        let per_value = self.metadata_bits_per_value() as usize;
        match *self {
            FormatSpec::Dense => 0,
            FormatSpec::Nm(ratio) => {
                rows * cols.div_ceil(ratio.m() as usize) * ratio.n() as usize * per_value
            }
            // Worst-case stored values plus the per-row N selectors.
            FormatSpec::RowWise { .. } => rows * cols * per_value + rows * 2,
            // The fixed 16 B row-length header (a packed image always
            // reserves it, whatever the row count) plus worst-case packed
            // column indices.
            FormatSpec::Csr => CSR_HEADER_BYTES * 8 + rows * cols * csr_col_bits(cols) as usize,
        }
    }
}

impl std::fmt::Display for FormatSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FormatSpec::Dense => write!(f, "dense"),
            FormatSpec::Nm(ratio) => write!(f, "{ratio}"),
            FormatSpec::RowWise { m } => write!(f, "rowwise:{m}"),
            FormatSpec::Csr => write!(f, "csr"),
        }
    }
}

/// A tile in some storage format: the object-safe interface every concrete
/// format implements.
///
/// A `TileFormat` owns compressed data at rest; [`TileFormat::pack_into`]
/// lowers it into the fixed-size register images the ISA moves around, and
/// [`TileView`] reads those images back without copying.
pub trait TileFormat {
    /// The format's specification (the hashable identity used by caches and
    /// sweeps).
    fn spec(&self) -> FormatSpec;

    /// Rows of the effective (dense-shaped) tile.
    fn rows(&self) -> usize;

    /// Columns of the effective (dense-shaped) tile.
    fn effective_cols(&self) -> usize;

    /// Stored values (the entries that occupy treg slots).
    fn stored_len(&self) -> usize;

    /// Bytes of stored values (`stored_len × 2` for BF16).
    fn values_bytes(&self) -> usize {
        self.stored_len() * 2
    }

    /// Exact metadata footprint of this tile in bits (positions, selectors,
    /// indices — everything outside the value bytes).
    fn metadata_bits(&self) -> usize;

    /// Expands back to the dense-shaped effective tile.
    fn decompress(&self) -> Matrix<Bf16>;

    /// Packs values into `treg` and metadata into `mreg`, zeroing unused
    /// space — the offline step that prepares a `TILE_LOAD_T`/`TILE_LOAD_M`
    /// payload. Never heap-allocates.
    ///
    /// # Errors
    ///
    /// Returns [`SparsityError::ShapeMismatch`] when the tile exceeds the
    /// 512-value treg budget (or a format-specific row/column limit), and
    /// [`SparsityError::InvalidMetadata`] when metadata overflows the 128 B
    /// mreg.
    fn pack_into(&self, treg: &mut TregImage, mreg: &mut MregImage) -> Result<(), SparsityError>;
}

/// Checks the shared treg-capacity constraint for `pack_into`.
pub(crate) fn check_treg_budget(stored: usize) -> Result<(), SparsityError> {
    if stored > TREG_IMAGE_VALUES {
        return Err(SparsityError::ShapeMismatch {
            reason: format!("tile stores {stored} values, more than a treg's {TREG_IMAGE_VALUES}"),
        });
    }
    Ok(())
}

/// An uncompressed tile: the identity member of the storage family.
///
/// Dense tiles carry no metadata; packing lays the BF16 values out row-major
/// in the treg image, exactly the operand layout of `TILE_GEMM`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTile {
    values: Matrix<Bf16>,
}

impl DenseTile {
    /// Wraps a dense matrix (compression is the identity).
    pub fn compress(dense: &Matrix<Bf16>) -> Self {
        DenseTile {
            values: dense.clone(),
        }
    }

    /// The wrapped values.
    pub fn values(&self) -> &Matrix<Bf16> {
        &self.values
    }
}

impl TileFormat for DenseTile {
    fn spec(&self) -> FormatSpec {
        FormatSpec::Dense
    }

    fn rows(&self) -> usize {
        self.values.rows()
    }

    fn effective_cols(&self) -> usize {
        self.values.cols()
    }

    fn stored_len(&self) -> usize {
        self.values.len()
    }

    fn metadata_bits(&self) -> usize {
        0
    }

    fn decompress(&self) -> Matrix<Bf16> {
        self.values.clone()
    }

    fn pack_into(&self, treg: &mut TregImage, mreg: &mut MregImage) -> Result<(), SparsityError> {
        check_treg_budget(self.values.len())?;
        treg.clear();
        *mreg = MregImage::new();
        for (i, v) in self.values.iter().enumerate() {
            treg.set_bf16(i, *v);
        }
        Ok(())
    }
}

/// A borrowed, allocation-free read view over packed tile bytes.
///
/// The view interprets raw register (or image) bytes according to a
/// [`FormatSpec`]; all accessors are in-place bit/byte reads, so the ISA
/// executor can run `TILE_GEMM`/`TILE_SPMM_*` without materializing any
/// intermediate matrix.
#[derive(Debug, Clone, Copy)]
pub struct TileView<'a> {
    spec: FormatSpec,
    rows: usize,
    effective_cols: usize,
    values: &'a [u8],
    meta: &'a [u8],
    /// Decoded per-row `N` for row-wise views; zero elsewhere.
    row_ns: [u8; ROW_PATTERN_ROWS],
}

impl<'a> TileView<'a> {
    /// Builds a view over packed bytes.
    ///
    /// `values` are little-endian BF16 stored values, `meta` the packed
    /// metadata bytes (ignored for dense) and `row_patterns` the 2-bit
    /// per-row `N` sidecar (row-wise only; pass `&[]` otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`SparsityError::ShapeMismatch`] when a buffer is too small
    /// for the described tile, and [`SparsityError::InvalidMetadata`] when a
    /// row-wise sidecar describes a different row count than `rows`.
    pub fn new(
        spec: FormatSpec,
        rows: usize,
        effective_cols: usize,
        values: &'a [u8],
        meta: &'a [u8],
        row_patterns: &'a [u8],
    ) -> Result<Self, SparsityError> {
        let mut view = TileView {
            spec,
            rows,
            effective_cols,
            values,
            meta,
            row_ns: [0; ROW_PATTERN_ROWS],
        };
        let need_values;
        let need_meta_bits;
        match spec {
            FormatSpec::Dense => {
                need_values = rows * effective_cols * 2;
                need_meta_bits = 0;
            }
            FormatSpec::Nm(ratio) => {
                let m = ratio.m() as usize;
                if effective_cols == 0 || !effective_cols.is_multiple_of(m) {
                    return Err(SparsityError::ShapeMismatch {
                        reason: format!(
                            "effective cols {effective_cols} not a positive multiple of {m}"
                        ),
                    });
                }
                let per_row = effective_cols / m * ratio.n() as usize;
                need_values = rows * per_row * 2;
                need_meta_bits = rows * (per_row * ratio.index_bits() as usize).div_ceil(8) * 8;
            }
            FormatSpec::RowWise { m } => {
                if m != 4 {
                    return Err(SparsityError::ShapeMismatch {
                        reason: format!("register images support row-wise M = 4, got {m}"),
                    });
                }
                if effective_cols == 0 || !effective_cols.is_multiple_of(4) {
                    return Err(SparsityError::ShapeMismatch {
                        reason: format!("effective cols {effective_cols} not a multiple of 4"),
                    });
                }
                if row_patterns.len() < crate::image::ROW_PATTERN_BYTES {
                    return Err(SparsityError::InvalidMetadata {
                        reason: format!(
                            "row-pattern sidecar must be 8 B, got {}",
                            row_patterns.len()
                        ),
                    });
                }
                let decoded = decode_row_ns(row_patterns, &mut view.row_ns);
                if decoded != rows {
                    return Err(SparsityError::InvalidMetadata {
                        reason: format!("row patterns describe {decoded} rows, expected {rows}"),
                    });
                }
                let stored: usize = view.row_ns[..rows]
                    .iter()
                    .map(|&n| n as usize * effective_cols / 4)
                    .sum();
                need_values = stored * 2;
                need_meta_bits = stored * 2;
            }
            FormatSpec::Csr => {
                if rows > CSR_HEADER_BYTES {
                    return Err(SparsityError::ShapeMismatch {
                        reason: format!(
                            "CSR register images hold at most {CSR_HEADER_BYTES} rows, got {rows}"
                        ),
                    });
                }
                // Mirror the pack-side limit: beyond 8-bit column indices,
                // position() could not represent the stored columns.
                if effective_cols > CSR_MAX_COLS {
                    return Err(SparsityError::ShapeMismatch {
                        reason: format!(
                            "CSR register images index at most {CSR_MAX_COLS} columns, \
                             got {effective_cols}"
                        ),
                    });
                }
                if meta.len() < CSR_HEADER_BYTES {
                    return Err(SparsityError::InvalidMetadata {
                        reason: "CSR metadata lacks the 16 B row-length header".into(),
                    });
                }
                let nnz: usize = meta[..rows].iter().map(|&c| c as usize).sum();
                need_values = nnz * 2;
                need_meta_bits = CSR_HEADER_BYTES * 8 + nnz * csr_col_bits(effective_cols) as usize;
            }
        }
        if values.len() < need_values {
            return Err(SparsityError::ShapeMismatch {
                reason: format!(
                    "value buffer holds {} bytes, tile needs {need_values}",
                    values.len()
                ),
            });
        }
        if meta.len() * 8 < need_meta_bits {
            return Err(SparsityError::InvalidMetadata {
                reason: format!(
                    "metadata buffer holds {} bits, tile needs {need_meta_bits}",
                    meta.len() * 8
                ),
            });
        }
        Ok(view)
    }

    /// A dense view over raw BF16 bytes (infallible; the architectural
    /// register shapes always fit).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `rows * cols * 2`.
    pub fn dense(bytes: &'a [u8], rows: usize, cols: usize) -> Self {
        assert!(bytes.len() >= rows * cols * 2, "dense view out of bytes");
        TileView {
            spec: FormatSpec::Dense,
            rows,
            effective_cols: cols,
            values: bytes,
            meta: &[],
            row_ns: [0; ROW_PATTERN_ROWS],
        }
    }

    /// A view over a packed image pair.
    ///
    /// # Errors
    ///
    /// As [`TileView::new`].
    pub fn of_images(
        spec: FormatSpec,
        rows: usize,
        effective_cols: usize,
        treg: &'a TregImage,
        mreg: &'a MregImage,
    ) -> Result<Self, SparsityError> {
        TileView::new(
            spec,
            rows,
            effective_cols,
            treg.as_bytes(),
            mreg.meta(),
            mreg.row_patterns(),
        )
    }

    /// The view's format.
    #[inline]
    pub fn spec(&self) -> FormatSpec {
        self.spec
    }

    /// Rows of the effective tile.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the effective tile.
    #[inline]
    pub fn effective_cols(&self) -> usize {
        self.effective_cols
    }

    /// Stored values reachable through this view.
    pub fn stored_len(&self) -> usize {
        match self.spec {
            FormatSpec::Dense => self.rows * self.effective_cols,
            FormatSpec::Nm(ratio) => {
                self.rows * self.effective_cols / ratio.m() as usize * ratio.n() as usize
            }
            FormatSpec::RowWise { .. } => self.row_ns[..self.rows]
                .iter()
                .map(|&n| n as usize * self.effective_cols / 4)
                .sum(),
            FormatSpec::Csr => self.meta[..self.rows].iter().map(|&c| c as usize).sum(),
        }
    }

    /// Reads stored value `flat` (values are packed in row order for every
    /// format).
    #[inline]
    pub fn value(&self, flat: usize) -> Bf16 {
        Bf16::from_le_bytes([self.values[flat * 2], self.values[flat * 2 + 1]])
    }

    /// Reads the dense element at `(r, c)` (dense layout only; for other
    /// formats this indexes stored values, not effective positions).
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Bf16 {
        self.value(r * self.effective_cols + c)
    }

    /// The metadata position of stored value `flat`: the within-block
    /// position for the `N:M` and row-wise formats, the absolute column for
    /// CSR, and the trailing column (`flat % cols`) for dense.
    #[inline]
    pub fn position(&self, flat: usize) -> usize {
        match self.spec {
            FormatSpec::Dense => flat % self.effective_cols,
            FormatSpec::Nm(ratio) => {
                let per_row = self.effective_cols / ratio.m() as usize * ratio.n() as usize;
                let bits = ratio.index_bits();
                let row_bits = (per_row * bits as usize).div_ceil(8) * 8;
                read_bits(
                    self.meta,
                    (flat / per_row) * row_bits + (flat % per_row) * bits as usize,
                    bits,
                ) as usize
            }
            FormatSpec::RowWise { .. } => read_bits(self.meta, flat * 2, 2) as usize,
            FormatSpec::Csr => {
                let bits = csr_col_bits(self.effective_cols);
                read_bits(self.meta, CSR_HEADER_BYTES * 8 + flat * bits as usize, bits) as usize
            }
        }
    }

    /// The per-row `N` selector of a row-wise view (0 for other formats).
    #[inline]
    pub fn row_n(&self, r: usize) -> usize {
        self.row_ns[r] as usize
    }

    /// Stored values in row `r` (CSR row-length header for CSR views).
    pub fn row_stored(&self, r: usize) -> usize {
        match self.spec {
            FormatSpec::Dense => self.effective_cols,
            FormatSpec::Nm(ratio) => self.effective_cols / ratio.m() as usize * ratio.n() as usize,
            FormatSpec::RowWise { .. } => self.row_n(r) * self.effective_cols / 4,
            FormatSpec::Csr => self.meta[r] as usize,
        }
    }

    /// Expands the viewed bytes back to the dense-shaped effective tile
    /// (verification path; allocates the output matrix only).
    pub fn decompress(&self) -> Matrix<Bf16> {
        let mut out = Matrix::zeros(self.rows, self.effective_cols);
        match self.spec {
            FormatSpec::Dense => {
                for r in 0..self.rows {
                    for c in 0..self.effective_cols {
                        out[(r, c)] = self.at(r, c);
                    }
                }
            }
            FormatSpec::Nm(ratio) => {
                let m = ratio.m() as usize;
                let n = ratio.n() as usize;
                let blocks = self.effective_cols / m;
                for r in 0..self.rows {
                    for b in 0..blocks {
                        for k in 0..n {
                            let flat = r * blocks * n + b * n + k;
                            let v = self.value(flat);
                            if !v.is_zero() {
                                out[(r, b * m + self.position(flat))] = v;
                            }
                        }
                    }
                }
            }
            FormatSpec::RowWise { .. } => {
                let blocks = self.effective_cols / 4;
                let mut cursor = 0usize;
                for r in 0..self.rows {
                    let n = self.row_n(r);
                    for b in 0..blocks {
                        for k in 0..n {
                            let flat = cursor + b * n + k;
                            let v = self.value(flat);
                            if !v.is_zero() {
                                out[(r, b * 4 + self.position(flat))] = v;
                            }
                        }
                    }
                    cursor += blocks * n;
                }
            }
            FormatSpec::Csr => {
                let mut cursor = 0usize;
                for r in 0..self.rows {
                    for _ in 0..self.row_stored(r) {
                        out[(r, self.position(cursor))] = self.value(cursor);
                        cursor += 1;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix<Bf16> {
        Matrix::from_fn(rows, cols, |r, c| Bf16::from_f32(f(r, c)))
    }

    #[test]
    fn spec_labels_are_stable() {
        assert_eq!(FormatSpec::Dense.to_string(), "dense");
        assert_eq!(FormatSpec::Nm(NmRatio::S2_4).to_string(), "2:4");
        assert_eq!(FormatSpec::RowWise { m: 4 }.to_string(), "rowwise:4");
        assert_eq!(FormatSpec::Csr.to_string(), "csr");
        assert_eq!(FormatSpec::all_m4().len(), 5);
    }

    #[test]
    fn spec_accounting_matches_register_budget() {
        // A 16×64 effective tile at 2:4: 1 KB of values, 1 Kib of metadata
        // (§IV-A's register budget).
        let spec = FormatSpec::Nm(NmRatio::S2_4);
        assert_eq!(spec.values_bytes(16, 64), 1024);
        assert_eq!(spec.metadata_bits(16, 64), 1024);
        assert_eq!(FormatSpec::Dense.values_bytes(16, 32), 1024);
        assert_eq!(FormatSpec::Dense.metadata_bits(16, 32), 0);
        // Row-wise bound: dense values + 2 bits/value + 2 bits/row.
        assert_eq!(
            FormatSpec::RowWise { m: 4 }.metadata_bits(16, 64),
            16 * 64 * 2 + 32
        );
        // CSR bound: the fixed 16 B header + 6-bit columns for a 64-wide
        // tile.
        assert_eq!(FormatSpec::Csr.metadata_bits(16, 64), 16 * 8 + 16 * 64 * 6);
        assert_eq!(FormatSpec::Csr.metadata_bits_per_value(), 8);
        // The spec-level bound dominates the exact per-tile accounting even
        // for sub-16-row tiles (the header is fixed-size).
        let dense8 = Matrix::from_fn(8, 64, |_, _| Bf16::from_f32(1.0));
        let tile = FormatSpec::Csr.compress(&dense8).unwrap();
        assert!(FormatSpec::Csr.metadata_bits(8, 64) >= tile.metadata_bits());
    }

    #[test]
    fn dense_tile_packs_and_views() {
        let dense = mat(16, 32, |r, c| (r * 32 + c) as f32 - 256.0);
        let tile = DenseTile::compress(&dense);
        assert_eq!(tile.spec(), FormatSpec::Dense);
        assert_eq!(tile.stored_len(), 512);
        assert_eq!(tile.values_bytes(), 1024);
        assert_eq!(tile.metadata_bits(), 0);
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        tile.pack_into(&mut treg, &mut mreg).unwrap();
        let view = TileView::of_images(FormatSpec::Dense, 16, 32, &treg, &mreg).unwrap();
        assert_eq!(view.decompress(), dense);
        assert_eq!(view.at(1, 3), dense[(1, 3)]);
    }

    #[test]
    fn dense_tile_rejects_oversize_pack() {
        let tile = DenseTile::compress(&mat(17, 32, |_, _| 1.0));
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        assert!(matches!(
            tile.pack_into(&mut treg, &mut mreg),
            Err(SparsityError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn view_validates_buffers() {
        let bytes = [0u8; 64];
        assert!(TileView::new(FormatSpec::Dense, 16, 32, &bytes, &[], &[]).is_err());
        assert!(TileView::new(FormatSpec::Nm(NmRatio::S2_4), 1, 6, &bytes, &bytes, &[]).is_err());
        assert!(TileView::new(
            FormatSpec::RowWise { m: 8 },
            1,
            8,
            &bytes,
            &bytes,
            &[0u8; 8]
        )
        .is_err());
        // Row-pattern count mismatch.
        let mut rp = [0u8; 8];
        rp[0] = 0b01; // one row
        assert!(matches!(
            TileView::new(FormatSpec::RowWise { m: 4 }, 2, 8, &bytes, &bytes, &rp),
            Err(SparsityError::InvalidMetadata { .. })
        ));
        // CSR views refuse widths the 8-bit packed column indices cannot
        // address, exactly like the pack side.
        let meta = [0u8; 128];
        assert!(matches!(
            TileView::new(FormatSpec::Csr, 1, 512, &bytes, &meta, &[]),
            Err(SparsityError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn boxed_formats_dispatch_through_spec() {
        // One non-zero per block of 4 satisfies every spec, 1:4 included.
        let dense = mat(4, 8, |r, c| if c % 4 == r % 4 { 1.0 } else { 0.0 });
        for spec in FormatSpec::all_m4() {
            let tile = spec.compress(&dense).unwrap();
            assert_eq!(tile.spec(), spec);
            assert_eq!(tile.decompress(), dense, "{spec} must be lossless here");
            assert_eq!(tile.values_bytes(), tile.stored_len() * 2);
        }
    }

    #[test]
    fn csr_col_bits_covers_widths() {
        assert_eq!(csr_col_bits(1), 1);
        assert_eq!(csr_col_bits(2), 1);
        assert_eq!(csr_col_bits(3), 2);
        assert_eq!(csr_col_bits(32), 5);
        assert_eq!(csr_col_bits(33), 6);
        assert_eq!(csr_col_bits(256), 8);
    }
}
