//! Owned register images: the byte payloads a `treg`/`mreg` pair holds.
//!
//! Every storage format packs into the same two fixed-size images
//! (see [`crate::TileFormat::pack_into`]):
//!
//! * [`TregImage`] — 1 KB of tile data (512 BF16 stored values), the payload
//!   of a `TILE_LOAD_T`;
//! * [`MregImage`] — 128 B of packed per-value metadata plus the 8 B
//!   row-pattern sidecar loaded by `TILE_LOAD_RP` (§IV-B).
//!
//! The images are plain stack values — packing a tile never heap-allocates —
//! and the ISA layer moves their bytes verbatim between memory and the
//! architectural register file. Reads over packed bytes go through the
//! borrowed [`crate::TileView`], which never copies.

use vegeta_num::Bf16;

/// Bytes in a tile-register image (1 KB, Fig. 6).
pub const TREG_IMAGE_BYTES: usize = 1024;
/// BF16 stored values a tile-register image holds.
pub const TREG_IMAGE_VALUES: usize = TREG_IMAGE_BYTES / 2;
/// Bytes of packed metadata in a metadata-register image (128 B, Fig. 6).
pub const MREG_IMAGE_BYTES: usize = 128;
/// Bytes of the per-row `N:4` row-pattern sidecar (§IV-B: "32×2 bits, or
/// 8 B, at most").
pub const ROW_PATTERN_BYTES: usize = 8;
/// Maximum rows the row-pattern sidecar can describe.
pub const ROW_PATTERN_ROWS: usize = ROW_PATTERN_BYTES * 4;

/// An owned 1 KB tile-register value image.
///
/// # Example
///
/// ```
/// use vegeta_num::Bf16;
/// use vegeta_sparse::TregImage;
///
/// let mut img = TregImage::new();
/// img.set_bf16(3, Bf16::from_f32(2.5));
/// assert_eq!(img.bf16(3).to_f32(), 2.5);
/// assert_eq!(img.as_bytes().len(), 1024);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TregImage {
    bytes: [u8; TREG_IMAGE_BYTES],
}

impl Default for TregImage {
    fn default() -> Self {
        Self::new()
    }
}

impl TregImage {
    /// A zeroed image.
    pub fn new() -> Self {
        TregImage {
            bytes: [0; TREG_IMAGE_BYTES],
        }
    }

    /// The raw little-endian bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw bytes.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Reads stored BF16 value `idx` (`idx < 512`).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= TREG_IMAGE_VALUES`.
    #[inline]
    pub fn bf16(&self, idx: usize) -> Bf16 {
        Bf16::from_le_bytes([self.bytes[idx * 2], self.bytes[idx * 2 + 1]])
    }

    /// Writes stored BF16 value `idx` (`idx < 512`).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= TREG_IMAGE_VALUES`.
    #[inline]
    pub fn set_bf16(&mut self, idx: usize, v: Bf16) {
        self.bytes[idx * 2..idx * 2 + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Zeroes the image.
    pub fn clear(&mut self) {
        self.bytes.fill(0);
    }
}

impl std::fmt::Debug for TregImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TregImage({TREG_IMAGE_BYTES} B)")
    }
}

/// An owned metadata-register image: 128 B of packed per-value metadata plus
/// the 8 B row-pattern sidecar.
///
/// The packed-bit layout of the metadata area is owned by each
/// [`crate::FormatSpec`] (block positions for `N:M`, column indices for CSR);
/// this type only provides the byte storage plus the architectural 2-bit
/// position accessors shared by the `M = 4` formats.
#[derive(Clone, PartialEq, Eq)]
pub struct MregImage {
    meta: [u8; MREG_IMAGE_BYTES],
    row_patterns: [u8; ROW_PATTERN_BYTES],
}

impl Default for MregImage {
    fn default() -> Self {
        Self::new()
    }
}

impl MregImage {
    /// A zeroed image.
    pub fn new() -> Self {
        MregImage {
            meta: [0; MREG_IMAGE_BYTES],
            row_patterns: [0; ROW_PATTERN_BYTES],
        }
    }

    /// The 128 B packed-metadata bytes.
    #[inline]
    pub fn meta(&self) -> &[u8] {
        &self.meta
    }

    /// Mutable packed-metadata bytes.
    #[inline]
    pub fn meta_mut(&mut self) -> &mut [u8] {
        &mut self.meta
    }

    /// The 8 B row-pattern sidecar bytes.
    #[inline]
    pub fn row_patterns(&self) -> &[u8] {
        &self.row_patterns
    }

    /// Mutable row-pattern sidecar bytes.
    #[inline]
    pub fn row_patterns_mut(&mut self) -> &mut [u8] {
        &mut self.row_patterns
    }

    /// Reads the architectural 2-bit block position of stored value `idx`
    /// (the `M = 4` layout of Fig. 2, packed LSB-first as one continuous
    /// stream — the layout of full 512-value registers and of the row-wise
    /// format; partially-filled `N:M` tiles pad each row to a byte, so read
    /// those through a [`crate::TileView`]).
    ///
    /// This absorbs the old `unpack_metadata` free function: instead of
    /// unpacking a whole register into a fresh `Vec<u8>`, callers read
    /// positions in place.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 512`.
    #[inline]
    pub fn position2(&self, idx: usize) -> u8 {
        (self.meta[idx / 4] >> ((idx % 4) * 2)) & 0b11
    }

    /// Writes the architectural 2-bit block position of stored value `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 512` or `pos >= 4`.
    #[inline]
    pub fn set_position2(&mut self, idx: usize, pos: u8) {
        assert!(pos < 4, "2-bit positions must be < 4");
        let shift = (idx % 4) * 2;
        self.meta[idx / 4] &= !(0b11 << shift);
        self.meta[idx / 4] |= pos << shift;
    }

    /// Unpacks the first `count` 2-bit positions into one byte per value.
    ///
    /// Convenience for tests and offline tools; hot paths should use
    /// [`MregImage::position2`] (or a [`crate::TileView`]) and avoid the
    /// allocation.
    pub fn positions2(&self, count: usize) -> Vec<u8> {
        (0..count).map(|i| self.position2(i)).collect()
    }

    /// Encodes per-row `N` selectors (1, 2 or 4) into the row-pattern
    /// sidecar: 2 bits per row, `00` terminating the tile (§IV-B).
    ///
    /// # Panics
    ///
    /// Panics if more than 32 rows are given or any `N` is not 1, 2 or 4.
    pub fn set_row_ns(&mut self, ns: &[u8]) {
        assert!(
            ns.len() <= ROW_PATTERN_ROWS,
            "at most {ROW_PATTERN_ROWS} rows fit the row-pattern field"
        );
        self.row_patterns.fill(0);
        for (r, &n) in ns.iter().enumerate() {
            let code = match n {
                1 => 1u8,
                2 => 2,
                4 => 3,
                other => panic!("unsupported row N {other}; must be 1, 2 or 4"),
            };
            self.row_patterns[r / 4] |= code << ((r % 4) * 2);
        }
    }

    /// Decodes the row-pattern sidecar back into per-row `N` values.
    pub fn row_ns(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut ns = [0u8; ROW_PATTERN_ROWS];
        let rows = decode_row_ns(&self.row_patterns, &mut ns);
        out.extend_from_slice(&ns[..rows]);
        out
    }
}

impl std::fmt::Debug for MregImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MregImage({MREG_IMAGE_BYTES} B meta + {ROW_PATTERN_BYTES} B row patterns)"
        )
    }
}

/// Decodes 2-bit row-pattern codes from raw sidecar bytes into `out`,
/// returning the row count; allocation-free (the executor's hot path).
///
/// Codes: `00` ends the tile, `01`/`10`/`11` select `N` = 1 / 2 / 4.
pub fn decode_row_ns(rp: &[u8], out: &mut [u8; ROW_PATTERN_ROWS]) -> usize {
    let mut rows = 0;
    for r in 0..(rp.len() * 4).min(ROW_PATTERN_ROWS) {
        let code = (rp[r / 4] >> ((r % 4) * 2)) & 0b11;
        if code == 0 {
            break;
        }
        out[r] = match code {
            1 => 1,
            2 => 2,
            _ => 4,
        };
        rows += 1;
    }
    rows
}

/// Reads `bits` (≤ 8) starting at absolute bit offset `bit` from packed
/// little-endian bytes.
#[inline]
pub(crate) fn read_bits(bytes: &[u8], bit: usize, bits: u32) -> u8 {
    let byte = bit / 8;
    let shift = bit % 8;
    let lo = bytes[byte] as u16;
    let hi = if shift + bits as usize > 8 {
        bytes[byte + 1] as u16
    } else {
        0
    };
    let mask = (1u16 << bits) - 1;
    (((lo | (hi << 8)) >> shift) & mask) as u8
}

/// Writes `bits` (≤ 8) of `val` at absolute bit offset `bit` into packed
/// little-endian bytes (positions must start zeroed).
#[inline]
pub(crate) fn write_bits(bytes: &mut [u8], bit: usize, bits: u32, val: u8) {
    debug_assert!(bits <= 8 && (val as u16) < (1u16 << bits));
    let byte = bit / 8;
    let shift = bit % 8;
    let window = (val as u16) << shift;
    bytes[byte] |= window as u8;
    if shift + bits as usize > 8 {
        bytes[byte + 1] |= (window >> 8) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treg_image_bf16_roundtrip() {
        let mut img = TregImage::new();
        for i in 0..TREG_IMAGE_VALUES {
            img.set_bf16(i, Bf16::from_f32((i % 100) as f32 - 50.0));
        }
        for i in 0..TREG_IMAGE_VALUES {
            assert_eq!(img.bf16(i).to_f32(), (i % 100) as f32 - 50.0);
        }
        img.clear();
        assert!(img.as_bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn mreg_positions_roundtrip() {
        let mut img = MregImage::new();
        for i in 0..512 {
            img.set_position2(i, (i % 4) as u8);
        }
        for i in 0..512 {
            assert_eq!(img.position2(i), (i % 4) as u8);
        }
        assert_eq!(img.positions2(6), vec![0, 1, 2, 3, 0, 1]);
        // Overwriting clears the old bits.
        img.set_position2(5, 2);
        assert_eq!(img.position2(5), 2);
    }

    #[test]
    fn row_pattern_roundtrip() {
        let mut img = MregImage::new();
        let ns = vec![4u8, 4, 2, 2, 1, 1, 1, 1, 2, 4];
        img.set_row_ns(&ns);
        assert_eq!(img.row_ns(), ns);
        img.set_row_ns(&[1u8; 32]);
        assert_eq!(img.row_ns().len(), 32);
    }

    #[test]
    fn bit_packing_handles_straddles() {
        let mut bytes = [0u8; 8];
        let vals = [0u8, 7, 3, 5, 1, 6, 2, 4, 7, 0];
        for (i, &v) in vals.iter().enumerate() {
            write_bits(&mut bytes, i * 3, 3, v);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(read_bits(&bytes, i * 3, 3), v);
        }
    }

    #[test]
    fn images_are_self_describing_in_debug() {
        assert_eq!(format!("{:?}", TregImage::new()), "TregImage(1024 B)");
        assert!(format!("{:?}", MregImage::new()).contains("128 B"));
    }
}
