//! Sparsity-granularity cover transforms (§III-D, §V-E, Fig. 15).
//!
//! Given an *unstructured* sparse matrix, each hardware design can only
//! exploit it after covering the non-zeros with an `N:M` pattern at the
//! granularity that design supports:
//!
//! * **layer-wise** (S2TA): one `N` for the whole matrix;
//! * **tile-wise** (enhanced S2TA): one `N` per tile;
//! * **pseudo row-wise** (VEGETA without DMA reordering): one `N` per group
//!   of consecutive rows, group size `M/N`;
//! * **row-wise** (VEGETA with reordering): one `N` per row.
//!
//! Smaller granularity finds sparser covers, so it skips more work. The
//! functions here compute those covers and the work reduction each achieves,
//! feeding the Fig. 15 comparison.

use vegeta_num::{Bf16, Matrix};

use crate::{NmRatio, SparsityError};

/// The sparsest supported pattern that covers every block of `row`.
///
/// Blocks shorter than `m` (when the row length is not a multiple) are
/// treated as zero-padded.
///
/// # Errors
///
/// Returns [`SparsityError::InvalidRatio`] if `m` is not a supported block
/// size.
pub fn row_cover(row: &[Bf16], m: u8) -> Result<NmRatio, SparsityError> {
    let patterns = NmRatio::supported_patterns(m)?;
    let max_nnz = row
        .chunks(m as usize)
        .map(|b| b.iter().filter(|v| !v.is_zero()).count())
        .max()
        .unwrap_or(0);
    // Infallible: the pattern list ends with dense `m:m`, and a block of
    // `m` values holds at most `m` non-zeros.
    Ok(*patterns
        .iter()
        .find(|p| p.n() as usize >= max_nnz)
        .expect("densest pattern always covers"))
}

/// Per-row covers for a whole matrix.
///
/// # Errors
///
/// Returns [`SparsityError::InvalidRatio`] if `m` is not a supported block
/// size.
pub fn row_covers(dense: &Matrix<Bf16>, m: u8) -> Result<Vec<NmRatio>, SparsityError> {
    (0..dense.rows())
        .map(|r| row_cover(dense.row(r), m))
        .collect()
}

/// The sparsest pattern that covers *every* row of the matrix — the
/// tile-wise cover when applied per tile, or the layer-wise cover when
/// applied to the whole layer.
///
/// # Errors
///
/// Returns [`SparsityError::InvalidRatio`] if `m` is not a supported block
/// size.
pub fn uniform_cover(dense: &Matrix<Bf16>, m: u8) -> Result<NmRatio, SparsityError> {
    let covers = row_covers(dense, m)?;
    Ok(covers
        .into_iter()
        .max()
        .unwrap_or(NmRatio::supported_patterns(m)?[0]))
}

/// Effective per-row ratios after *pseudo row-wise* grouping (§V-E):
/// consecutive rows must share the same `N`, in groups of `M/N` rows, because
/// each group maps onto one SPE column without any reordering hardware.
///
/// The greedy grouping promotes rows to a denser pattern when a group's
/// members disagree, so the result is always a valid (possibly denser)
/// cover of each row.
///
/// # Errors
///
/// Returns [`SparsityError::InvalidRatio`] if `m` is not a supported block
/// size.
pub fn pseudo_row_wise_covers(dense: &Matrix<Bf16>, m: u8) -> Result<Vec<NmRatio>, SparsityError> {
    let covers = row_covers(dense, m)?;
    let mut out = Vec::with_capacity(covers.len());
    let mut i = 0;
    while i < covers.len() {
        // Start from the cover of the first row of the group and grow the
        // required N until the whole group agrees *and* enough rows remain to
        // fill it — an SPE column processes exactly M/N rows, so a partial
        // group would waste MAC lanes. Promotion only ever shrinks the group,
        // and the densest pattern has group size 1, so this terminates.
        let mut n = covers[i];
        loop {
            let group = n.expansion_factor();
            if group > covers.len() - i {
                n = NmRatio::new(n.n() * 2, m).expect("doubling N stays within M");
                continue;
            }
            let need = covers[i..i + group]
                .iter()
                .copied()
                .max()
                // `expansion_factor() >= 1`, so the slice is never empty.
                .expect("non-empty group");
            if need <= n {
                break;
            }
            n = need;
        }
        let group = n.expansion_factor();
        out.extend(std::iter::repeat_n(n, group));
        i += group;
    }
    Ok(out)
}

/// Effective per-row ratios for *row-wise with DMA reordering* (§V-E): rows
/// are regrouped by the DMA engine so each keeps its own optimal cover,
/// except that groups must still be whole — a leftover partial group of
/// sparse rows is promoted to the next denser pattern.
///
/// # Errors
///
/// Returns [`SparsityError::InvalidRatio`] if `m` is not a supported block
/// size.
pub fn reordered_row_wise_covers(
    dense: &Matrix<Bf16>,
    m: u8,
) -> Result<Vec<NmRatio>, SparsityError> {
    let patterns = NmRatio::supported_patterns(m)?;
    let covers = row_covers(dense, m)?;
    let mut counts = vec![0usize; patterns.len()];
    for c in &covers {
        let k = patterns
            .iter()
            .position(|p| p == c)
            // `row_covers` selects from this exact `supported_patterns(m)`
            // list, so every cover is present in it.
            .expect("cover from same pattern set");
        counts[k] += 1;
    }
    // Promote leftovers that cannot fill a whole group of M/N rows to the
    // next denser pattern (the densest pattern has group size 1).
    let mut out = Vec::with_capacity(covers.len());
    for k in 0..patterns.len() {
        let group = patterns[k].expansion_factor();
        let whole = counts[k] / group * group;
        out.extend(std::iter::repeat_n(patterns[k], whole));
        let leftover = counts[k] - whole;
        if leftover > 0 {
            if k + 1 < patterns.len() {
                counts[k + 1] += leftover;
            } else {
                out.extend(std::iter::repeat_n(patterns[k], leftover));
            }
        }
    }
    Ok(out)
}

/// Work statistics of a structured cover, used by the Fig. 15 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverStats {
    /// MAC-equivalent work a dense engine performs (proportional to the
    /// effective element count).
    pub dense_work: f64,
    /// Work the covered/structured execution performs (stored values).
    pub covered_work: f64,
}

impl CoverStats {
    /// Compute-bound speedup of the structured execution over dense.
    pub fn speedup(&self) -> f64 {
        if self.covered_work == 0.0 {
            return 1.0;
        }
        self.dense_work / self.covered_work
    }
}

/// Work statistics for a set of per-row ratios over `cols` columns.
pub fn cover_stats(row_ratios: &[NmRatio], cols: usize) -> CoverStats {
    let dense_work = (row_ratios.len() * cols) as f64;
    let covered_work: f64 = row_ratios.iter().map(|r| cols as f64 * r.density()).sum();
    CoverStats {
        dense_work,
        covered_work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix<Bf16> {
        Matrix::from_fn(rows, cols, |r, c| Bf16::from_f32(f(r, c)))
    }

    #[test]
    fn row_cover_picks_minimal_pattern() {
        let row: Vec<Bf16> = (0..8)
            .map(|c| Bf16::from_f32(if c % 4 == 0 { 1.0 } else { 0.0 }))
            .collect();
        assert_eq!(row_cover(&row, 4).unwrap(), NmRatio::S1_4);
        let row2: Vec<Bf16> = (0..8)
            .map(|c| Bf16::from_f32(if c < 2 { 1.0 } else { 0.0 }))
            .collect();
        assert_eq!(row_cover(&row2, 4).unwrap(), NmRatio::S2_4);
    }

    #[test]
    fn uniform_cover_takes_densest_row() {
        let dense = mat(3, 8, |r, c| {
            let keep = match r {
                0 => c % 4 == 0, // 1:4
                1 => c % 4 < 2,  // 2:4
                _ => c % 4 == 2, // 1:4
            };
            if keep {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(uniform_cover(&dense, 4).unwrap(), NmRatio::S2_4);
    }

    #[test]
    fn pseudo_grouping_promotes_disagreeing_rows() {
        // Rows: [1:4, 2:4, 2:4, 1:4]. Without reordering, row 0 must join a
        // group; greedy grouping promotes it to 2:4 with row 1.
        let dense = mat(4, 8, |r, c| {
            let keep = match r {
                0 | 3 => c % 4 == 0,
                _ => c % 4 < 2,
            };
            if keep {
                1.0
            } else {
                0.0
            }
        });
        let pseudo = pseudo_row_wise_covers(&dense, 4).unwrap();
        assert_eq!(pseudo[0], NmRatio::S2_4);
        assert_eq!(pseudo[1], NmRatio::S2_4);
        // Rows 2..3: cover of row 2 is 2:4 -> group of 2 with row 3 (1:4 fits).
        assert_eq!(pseudo[2], NmRatio::S2_4);
        assert_eq!(pseudo[3], NmRatio::S2_4);
        // Every pseudo ratio covers the original row.
        let orig = row_covers(&dense, 4).unwrap();
        assert!(pseudo.iter().zip(&orig).all(|(p, o)| p >= o));
    }

    #[test]
    fn pseudo_grouping_keeps_aligned_groups() {
        // Four 1:4 rows group perfectly without promotion.
        let dense = mat(4, 8, |_, c| if c % 4 == 1 { 1.0 } else { 0.0 });
        let pseudo = pseudo_row_wise_covers(&dense, 4).unwrap();
        assert!(pseudo.iter().all(|&p| p == NmRatio::S1_4));
    }

    #[test]
    fn reordered_covers_promote_only_leftovers() {
        // Five 1:4 rows + one 2:4 row: 4 stay 1:4, leftover 1:4 row promotes
        // to 2:4 and pairs with the native 2:4 row.
        let dense = mat(6, 8, |r, c| {
            let keep = if r < 5 { c % 4 == 0 } else { c % 4 < 2 };
            if keep {
                1.0
            } else {
                0.0
            }
        });
        let reordered = reordered_row_wise_covers(&dense, 4).unwrap();
        let ones = reordered.iter().filter(|&&r| r == NmRatio::S1_4).count();
        let twos = reordered.iter().filter(|&&r| r == NmRatio::S2_4).count();
        assert_eq!((ones, twos), (4, 2));
    }

    #[test]
    fn granularity_ordering_holds() {
        // Finer granularity never does more work: row-wise <= pseudo <=
        // tile-wise (uniform).
        let dense = mat(
            16,
            32,
            |r, c| {
                if (r * 13 + c * 7) % 4 == 0 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let cols = dense.cols();
        let row = cover_stats(&row_covers(&dense, 4).unwrap(), cols);
        let pseudo = cover_stats(&pseudo_row_wise_covers(&dense, 4).unwrap(), cols);
        let tile = cover_stats(&[uniform_cover(&dense, 4).unwrap(); 16], cols);
        assert!(row.covered_work <= pseudo.covered_work + 1e-9);
        assert!(pseudo.covered_work <= tile.covered_work + 1e-9);
        assert!(row.speedup() >= tile.speedup());
    }

    #[test]
    fn cover_stats_speedup_matches_density() {
        let stats = cover_stats(&[NmRatio::S1_4, NmRatio::S1_4], 16);
        assert_eq!(stats.speedup(), 4.0);
        let stats = cover_stats(&[NmRatio::D4_4], 16);
        assert_eq!(stats.speedup(), 1.0);
    }
}
