//! N:M structured sparsity formats and transforms for VEGETA.
//!
//! This crate implements the data-representation layer of the paper:
//!
//! * [`NmRatio`] — a validated `N:M` fine-grained structured sparsity ratio
//!   (at most `N` non-zeros in every block of `M` consecutive elements).
//! * [`CompressedTile`] — the compressed tile format of Fig. 2: non-zero
//!   values plus per-value block offsets (2 bits each for `M = 4`), exactly
//!   what a `treg`/`mreg` pair stores.
//! * [`RowWiseTile`] — row-wise `N:M` sparsity (§V-E): each row of the
//!   effective tile carries its own `N`, enabling lossless coverage of
//!   unstructured sparsity.
//! * [`transform`] — the unstructured → row-wise/tile-wise/layer-wise cover
//!   transforms of §III-D, plus the pseudo row-wise grouping of §V-E.
//! * [`prune`] — magnitude pruning to `N:M` and seeded random sparsity
//!   generators used by the evaluation workloads.
//!
//! # Example: compress a 2:4 sparse tile
//!
//! ```
//! use vegeta_num::{Bf16, Matrix};
//! use vegeta_sparse::{CompressedTile, NmRatio};
//!
//! // A 4x8 tile where each block of 4 has at most 2 non-zeros.
//! let dense = Matrix::from_fn(4, 8, |r, c| {
//!     if c % 4 < 2 { Bf16::from_f32((r * 8 + c) as f32 + 1.0) } else { Bf16::ZERO }
//! });
//! let tile = CompressedTile::compress(&dense, NmRatio::S2_4)?;
//! assert_eq!(tile.values().cols(), 4); // 8 cols / 4 per block * 2 kept
//! assert_eq!(tile.decompress(), dense);
//! # Ok::<(), vegeta_sparse::SparsityError>(())
//! ```

#![warn(missing_docs)]

mod compress;
mod error;
pub mod prune;
mod ratio;
mod rowwise;
pub mod transform;

pub use compress::{unpack_metadata, CompressedTile};
pub use error::SparsityError;
pub use ratio::NmRatio;
pub use rowwise::RowWiseTile;

use vegeta_num::{Bf16, Matrix};

/// Fraction of zero elements in a matrix (the paper's *sparsity degree*).
///
/// Returns a value in `[0, 1]`; an empty matrix is defined to have degree 0.
pub fn sparsity_degree(m: &Matrix<Bf16>) -> f64 {
    if m.is_empty() {
        return 0.0;
    }
    let zeros = m.iter().filter(|v| v.is_zero()).count();
    zeros as f64 / m.len() as f64
}

/// Fraction of non-zero elements in a matrix (`1 - sparsity_degree`).
pub fn density(m: &Matrix<Bf16>) -> f64 {
    1.0 - sparsity_degree(m)
}

/// Checks whether every `M`-element block of every row satisfies `ratio`.
///
/// Rows whose length is not a multiple of `ratio.m()` are treated as padded
/// with zeros, so a trailing partial block never violates the pattern.
pub fn satisfies_nm(m: &Matrix<Bf16>, ratio: NmRatio) -> bool {
    let block = ratio.m() as usize;
    (0..m.rows()).all(|r| {
        m.row(r)
            .chunks(block)
            .all(|b| b.iter().filter(|v| !v.is_zero()).count() <= ratio.n() as usize)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix<Bf16> {
        Matrix::from_fn(rows, cols, |r, c| Bf16::from_f32(f(r, c)))
    }

    #[test]
    fn degree_counts_zeros() {
        let m = mat(2, 4, |r, c| if (r + c) % 2 == 0 { 0.0 } else { 1.0 });
        assert_eq!(sparsity_degree(&m), 0.5);
        assert_eq!(density(&m), 0.5);
    }

    #[test]
    fn empty_matrix_has_zero_degree() {
        let m = Matrix::<Bf16>::zeros(0, 0);
        assert_eq!(sparsity_degree(&m), 0.0);
    }

    #[test]
    fn satisfies_nm_detects_violations() {
        let ok = mat(1, 8, |_, c| if c % 4 < 2 { 1.0 } else { 0.0 });
        assert!(satisfies_nm(&ok, NmRatio::S2_4));
        let bad = mat(1, 8, |_, c| if c < 3 { 1.0 } else { 0.0 });
        assert!(!satisfies_nm(&bad, NmRatio::S2_4));
        // 3 non-zeros in a block is fine for 4:4.
        assert!(satisfies_nm(&bad, NmRatio::D4_4));
    }

    #[test]
    fn satisfies_nm_pads_trailing_block() {
        // 6 columns: second block has only 2 slots, one non-zero => ok for 1:4.
        let m = mat(1, 6, |_, c| if c == 0 || c == 4 { 1.0 } else { 0.0 });
        assert!(satisfies_nm(&m, NmRatio::S1_4));
    }
}
