//! The VEGETA storage layer: one polymorphic tile-format API.
//!
//! This crate implements the paper's data-representation hierarchy
//! (PAPER §III–§V, Fig. 2/6) as a single storage family behind the
//! [`TileFormat`] trait, with the hashable [`FormatSpec`] as its
//! sweepable identity:
//!
//! | [`FormatSpec`] | concrete type | paper role |
//! |---|---|---|
//! | `Dense` | [`DenseTile`] | `TILE_GEMM` operands |
//! | `Nm(N:M)` | [`CompressedTile`] | Fig. 2 compressed tiles (`TILE_SPMM_U`/`_V`) |
//! | `RowWise {m}` | [`RowWiseTile`] | §V-E per-row `N:M` (`TILE_SPMM_R`) |
//! | `Csr` | [`CsrTile`] | unstructured SpGEMM operands (related work) |
//!
//! Every format supports three things:
//!
//! 1. **compress / decompress** between dense matrices and the format;
//! 2. **zero-copy register packing** — [`TileFormat::pack_into`] lowers a
//!    tile into an owned [`TregImage`]/[`MregImage`] pair (the 1 KB + 128 B
//!    payloads a `treg`/`mreg` holds) without heap allocation, and the
//!    borrowed [`TileView`] reads packed bytes back in place, so the ISA
//!    executor and the kernels never materialize an intermediate
//!    `Matrix<Bf16>` on the per-instruction path;
//! 3. **size/metadata accounting** ([`TileFormat::values_bytes`],
//!    [`TileFormat::metadata_bits`], and the capacity-bound versions on
//!    [`FormatSpec`]) consumed by the engine cost model and the experiment
//!    reports.
//!
//! Supporting modules: [`NmRatio`] (validated `N:M` ratios), [`transform`]
//! (the §III-D unstructured → structured cover transforms), [`prune`]
//! (magnitude pruning and seeded sparsity generators).
//!
//! # Example: compress, pack, view
//!
//! ```
//! use vegeta_num::{Bf16, Matrix};
//! use vegeta_sparse::{FormatSpec, MregImage, NmRatio, TileView, TregImage};
//!
//! // A 16x64 effective tile at 2:4 fills a treg/mreg pair exactly (§IV-A).
//! let dense = Matrix::from_fn(16, 64, |r, c| {
//!     if c % 4 < 2 { Bf16::from_f32((r + c) as f32 + 1.0) } else { Bf16::ZERO }
//! });
//! let tile = FormatSpec::Nm(NmRatio::S2_4).compress(&dense)?;
//! assert_eq!((tile.values_bytes(), tile.metadata_bits()), (1024, 1024));
//!
//! let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
//! tile.pack_into(&mut treg, &mut mreg)?;
//! let view = TileView::of_images(tile.spec(), 16, 64, &treg, &mreg)?;
//! assert_eq!(view.decompress(), dense);
//! # Ok::<(), vegeta_sparse::SparsityError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compress;
mod csr;
mod error;
mod format;
mod image;
pub mod prune;
mod ratio;
mod rowwise;
pub mod transform;

pub use compress::CompressedTile;
pub use csr::CsrTile;
pub use error::SparsityError;
pub use format::{DenseTile, FormatSpec, TileFormat, TileView};
pub use image::{
    decode_row_ns, MregImage, TregImage, MREG_IMAGE_BYTES, ROW_PATTERN_BYTES, ROW_PATTERN_ROWS,
    TREG_IMAGE_BYTES, TREG_IMAGE_VALUES,
};
pub use ratio::NmRatio;
pub use rowwise::RowWiseTile;

use vegeta_num::{Bf16, Matrix};

/// Fraction of zero elements in a matrix (the paper's *sparsity degree*).
///
/// Returns a value in `[0, 1]`; an empty matrix is defined to have degree 0.
pub fn sparsity_degree(m: &Matrix<Bf16>) -> f64 {
    if m.is_empty() {
        return 0.0;
    }
    let zeros = m.iter().filter(|v| v.is_zero()).count();
    zeros as f64 / m.len() as f64
}

/// Fraction of non-zero elements in a matrix (`1 - sparsity_degree` for
/// non-empty matrices).
///
/// An empty matrix has no elements of either kind, so — like
/// [`sparsity_degree`] — its density is defined as `0.0` rather than the
/// `1.0` a naive complement would produce.
pub fn density(m: &Matrix<Bf16>) -> f64 {
    if m.is_empty() {
        return 0.0;
    }
    1.0 - sparsity_degree(m)
}

/// Checks whether every `M`-element block of every row satisfies `ratio`.
///
/// Rows whose length is not a multiple of `ratio.m()` are treated as padded
/// with zeros, so a trailing partial block never violates the pattern.
pub fn satisfies_nm(m: &Matrix<Bf16>, ratio: NmRatio) -> bool {
    let block = ratio.m() as usize;
    (0..m.rows()).all(|r| {
        m.row(r)
            .chunks(block)
            .all(|b| b.iter().filter(|v| !v.is_zero()).count() <= ratio.n() as usize)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix<Bf16> {
        Matrix::from_fn(rows, cols, |r, c| Bf16::from_f32(f(r, c)))
    }

    #[test]
    fn degree_counts_zeros() {
        let m = mat(2, 4, |r, c| if (r + c) % 2 == 0 { 0.0 } else { 1.0 });
        assert_eq!(sparsity_degree(&m), 0.5);
        assert_eq!(density(&m), 0.5);
    }

    #[test]
    fn empty_matrix_has_zero_degree_and_density() {
        for m in [
            Matrix::<Bf16>::zeros(0, 0),
            Matrix::<Bf16>::zeros(0, 5),
            Matrix::<Bf16>::zeros(5, 0),
        ] {
            assert_eq!(sparsity_degree(&m), 0.0);
            assert_eq!(density(&m), 0.0);
        }
    }

    #[test]
    fn satisfies_nm_detects_violations() {
        let ok = mat(1, 8, |_, c| if c % 4 < 2 { 1.0 } else { 0.0 });
        assert!(satisfies_nm(&ok, NmRatio::S2_4));
        let bad = mat(1, 8, |_, c| if c < 3 { 1.0 } else { 0.0 });
        assert!(!satisfies_nm(&bad, NmRatio::S2_4));
        // 3 non-zeros in a block is fine for 4:4.
        assert!(satisfies_nm(&bad, NmRatio::D4_4));
    }

    #[test]
    fn satisfies_nm_pads_trailing_block() {
        // 6 columns: second block has only 2 slots, one non-zero => ok for 1:4.
        let m = mat(1, 6, |_, c| if c == 0 || c == 4 { 1.0 } else { 0.0 });
        assert!(satisfies_nm(&m, NmRatio::S1_4));
    }
}
