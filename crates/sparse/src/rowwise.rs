//! Row-wise `N:M` sparsity (§V-E): a per-row choice of `N`.

use vegeta_num::{Bf16, Matrix};

use crate::format::{check_treg_budget, FormatSpec, TileFormat};
use crate::image::{MregImage, TregImage, ROW_PATTERN_ROWS};
use crate::{NmRatio, SparsityError};

/// A tile compressed with *row-wise* `N:M` sparsity: every row of the
/// effective tile is compressed with its own ratio `N_r:M` chosen from the
/// engine-supported patterns.
///
/// This is VEGETA's vehicle for unstructured sparsity (§III-D): given an
/// arbitrary sparse tile, picking for each row the sparsest supported pattern
/// that still covers all of the row's non-zeros yields a lossless structured
/// representation that `TILE_SPMM_R` can execute at full MAC utilization.
///
/// Stored values are packed row-after-row; row `r` holds
/// `blocks_per_row * n_r` entries. The per-row `N` selectors are the "extra
/// metadata, 32×2 bits, or 8 B, at most" of §IV-B.
///
/// # Examples
///
/// ```
/// use vegeta_num::{Bf16, Matrix};
/// use vegeta_sparse::{NmRatio, RowWiseTile};
///
/// // Row 0 is dense-ish (needs 2:4), row 1 needs only 1:4.
/// let dense = Matrix::from_fn(2, 8, |r, c| {
///     let keep = if r == 0 { c % 4 < 2 } else { c % 4 == 0 };
///     if keep { Bf16::from_f32(1.0) } else { Bf16::ZERO }
/// });
/// let t = RowWiseTile::compress(&dense, 4)?;
/// assert_eq!(t.row_ratio(0), NmRatio::S2_4);
/// assert_eq!(t.row_ratio(1), NmRatio::S1_4);
/// assert_eq!(t.decompress(), dense);
/// # Ok::<(), vegeta_sparse::SparsityError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RowWiseTile {
    m: u8,
    effective_cols: usize,
    row_ratios: Vec<NmRatio>,
    /// Start of each row's slice in `values`/`indices`; length `rows + 1`.
    row_offsets: Vec<usize>,
    values: Vec<Bf16>,
    indices: Vec<u8>,
}

impl RowWiseTile {
    /// Compresses a dense-shaped tile, choosing for every row the sparsest
    /// supported pattern (powers of two up to `m`) that covers its non-zeros.
    ///
    /// The transform is lossless by construction: a pattern is only selected
    /// if every block of the row has at most `N` non-zeros.
    ///
    /// # Errors
    ///
    /// * [`SparsityError::InvalidRatio`] if `m` is not a supported block size.
    /// * [`SparsityError::ShapeMismatch`] if the column count is not a
    ///   positive multiple of `m`.
    pub fn compress(dense: &Matrix<Bf16>, m: u8) -> Result<Self, SparsityError> {
        let patterns = NmRatio::supported_patterns(m)?;
        let mb = m as usize;
        let row_ratios: Vec<NmRatio> = (0..dense.rows())
            .map(|r| {
                let max_nnz = dense
                    .row(r)
                    .chunks(mb)
                    .map(|b| b.iter().filter(|v| !v.is_zero()).count())
                    .max()
                    .unwrap_or(0);
                // Infallible: `supported_patterns(m)` ends with the dense
                // `m:m` pattern, and a block of `m` values holds at most
                // `m` non-zeros, so a covering pattern always exists.
                *patterns
                    .iter()
                    .find(|p| p.n() as usize >= max_nnz)
                    .expect("the densest pattern m:m always covers")
            })
            .collect();
        Self::compress_with(dense, m, &row_ratios)
    }

    /// Compresses a dense-shaped tile with *given* per-row ratios — the path
    /// the kernels use when covers were chosen over a whole operand row and
    /// must stay uniform across `k` tiles.
    ///
    /// # Errors
    ///
    /// * [`SparsityError::InvalidRatio`] if `m` is not a supported block size
    ///   or a ratio's block size differs from `m`.
    /// * [`SparsityError::ShapeMismatch`] if the column count is not a
    ///   positive multiple of `m` or the ratio count differs from the row
    ///   count.
    /// * [`SparsityError::BlockTooDense`] if a block holds more non-zeros
    ///   than its row's ratio allows.
    pub fn compress_with(
        dense: &Matrix<Bf16>,
        m: u8,
        row_ratios: &[NmRatio],
    ) -> Result<Self, SparsityError> {
        NmRatio::supported_patterns(m)?;
        let mb = m as usize;
        if dense.cols() == 0 || !dense.cols().is_multiple_of(mb) {
            return Err(SparsityError::ShapeMismatch {
                reason: format!(
                    "column count {} is not a positive multiple of block size {mb}",
                    dense.cols()
                ),
            });
        }
        if row_ratios.len() != dense.rows() {
            return Err(SparsityError::ShapeMismatch {
                reason: format!(
                    "{} row ratios given for {} rows",
                    row_ratios.len(),
                    dense.rows()
                ),
            });
        }
        if let Some(bad) = row_ratios.iter().find(|r| r.m() != m) {
            return Err(SparsityError::InvalidRatio {
                n: bad.n(),
                m: bad.m(),
            });
        }
        let blocks = dense.cols() / mb;
        let mut row_offsets = Vec::with_capacity(dense.rows() + 1);
        let mut values = Vec::new();
        let mut indices = Vec::new();
        row_offsets.push(0);
        for (r, ratio) in row_ratios.iter().enumerate() {
            let row = dense.row(r);
            let n = ratio.n() as usize;
            for b in 0..blocks {
                let block = &row[b * mb..(b + 1) * mb];
                let nonzeros: Vec<usize> = (0..mb).filter(|&i| !block[i].is_zero()).collect();
                if nonzeros.len() > n {
                    return Err(SparsityError::BlockTooDense {
                        row: r,
                        block: b,
                        found: nonzeros.len(),
                        allowed: n,
                    });
                }
                let mut slots = nonzeros.clone();
                for i in 0..mb {
                    if slots.len() == n {
                        break;
                    }
                    if !nonzeros.contains(&i) {
                        slots.push(i);
                    }
                }
                slots.sort_unstable();
                for &pos in &slots {
                    values.push(block[pos]);
                    indices.push(pos as u8);
                }
            }
            row_offsets.push(values.len());
        }
        Ok(RowWiseTile {
            m,
            effective_cols: dense.cols(),
            row_ratios: row_ratios.to_vec(),
            row_offsets,
            values,
            indices,
        })
    }

    /// Block size `M`.
    #[inline]
    pub fn m(&self) -> u8 {
        self.m
    }

    /// Rows of the effective tile (the paper's `H_A`).
    #[inline]
    pub fn rows(&self) -> usize {
        self.row_ratios.len()
    }

    /// Columns of the effective tile (the paper's `W_A`).
    #[inline]
    pub fn effective_cols(&self) -> usize {
        self.effective_cols
    }

    /// The ratio chosen for row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_ratio(&self, r: usize) -> NmRatio {
        self.row_ratios[r]
    }

    /// All per-row ratios.
    #[inline]
    pub fn row_ratios(&self) -> &[NmRatio] {
        &self.row_ratios
    }

    /// Stored values of row `r`.
    pub fn row_values(&self, r: usize) -> &[Bf16] {
        &self.values[self.row_offsets[r]..self.row_offsets[r + 1]]
    }

    /// Block positions of row `r`'s stored values.
    pub fn row_indices(&self, r: usize) -> &[u8] {
        &self.indices[self.row_offsets[r]..self.row_offsets[r + 1]]
    }

    /// Total stored values across all rows.
    #[inline]
    pub fn stored_len(&self) -> usize {
        self.values.len()
    }

    /// Elements of the effective (dense-shaped) tile.
    #[inline]
    pub fn effective_len(&self) -> usize {
        self.rows() * self.effective_cols
    }

    /// Ratio of effective elements to stored values — the compute reduction a
    /// fully-utilized row-wise engine achieves versus a dense engine
    /// (bounded by `M` unless rows are dropped).
    pub fn compression_ratio(&self) -> f64 {
        if self.values.is_empty() {
            return 1.0;
        }
        self.effective_len() as f64 / self.stored_len() as f64
    }

    /// Expands back to the dense-shaped effective tile.
    pub fn decompress(&self) -> Matrix<Bf16> {
        let mb = self.m as usize;
        let blocks = self.effective_cols / mb;
        let mut out = Matrix::zeros(self.rows(), self.effective_cols);
        for r in 0..self.rows() {
            let n = self.row_ratios[r].n() as usize;
            let vals = self.row_values(r);
            let idxs = self.row_indices(r);
            for b in 0..blocks {
                for k in 0..n {
                    let v = vals[b * n + k];
                    if !v.is_zero() {
                        out[(r, b * mb + idxs[b * n + k] as usize)] = v;
                    }
                }
            }
        }
        out
    }
}

impl TileFormat for RowWiseTile {
    fn spec(&self) -> FormatSpec {
        FormatSpec::RowWise { m: self.m }
    }

    fn rows(&self) -> usize {
        self.row_ratios.len()
    }

    fn effective_cols(&self) -> usize {
        self.effective_cols
    }

    fn stored_len(&self) -> usize {
        self.values.len()
    }

    fn metadata_bits(&self) -> usize {
        self.values.len() * (self.m.trailing_zeros() as usize) + self.rows() * 2
    }

    fn decompress(&self) -> Matrix<Bf16> {
        RowWiseTile::decompress(self)
    }

    fn pack_into(&self, treg: &mut TregImage, mreg: &mut MregImage) -> Result<(), SparsityError> {
        if self.m != 4 {
            return Err(SparsityError::ShapeMismatch {
                reason: format!("register images support row-wise M = 4, got {}", self.m),
            });
        }
        if self.rows() > ROW_PATTERN_ROWS {
            return Err(SparsityError::ShapeMismatch {
                reason: format!(
                    "row-pattern sidecar holds at most {ROW_PATTERN_ROWS} rows, got {}",
                    self.rows()
                ),
            });
        }
        check_treg_budget(self.values.len())?;
        treg.clear();
        *mreg = MregImage::new();
        for (i, &v) in self.values.iter().enumerate() {
            treg.set_bf16(i, v);
        }
        for (i, &pos) in self.indices.iter().enumerate() {
            mreg.set_position2(i, pos);
        }
        let ns: Vec<u8> = self.row_ratios.iter().map(|r| r.n()).collect();
        mreg.set_row_ns(&ns);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TileView;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix<Bf16> {
        Matrix::from_fn(rows, cols, |r, c| Bf16::from_f32(f(r, c)))
    }

    #[test]
    fn figure1c_example_rows_get_expected_ratios() {
        // Fig. 1(a)->(c): rows 0-1 compress with 2:4, rows 2-3 with 1:4.
        let dense = mat(4, 8, |r, c| {
            let keep = match r {
                0 | 1 => c % 4 < 2,
                _ => c % 4 == 1,
            };
            if keep {
                1.0
            } else {
                0.0
            }
        });
        let t = RowWiseTile::compress(&dense, 4).unwrap();
        assert_eq!(t.row_ratio(0), NmRatio::S2_4);
        assert_eq!(t.row_ratio(1), NmRatio::S2_4);
        assert_eq!(t.row_ratio(2), NmRatio::S1_4);
        assert_eq!(t.row_ratio(3), NmRatio::S1_4);
    }

    #[test]
    fn transform_is_lossless() {
        let dense = mat(8, 16, |r, c| {
            if (r * 7 + c * 3) % 5 == 0 {
                (c + 1) as f32
            } else {
                0.0
            }
        });
        let t = RowWiseTile::compress(&dense, 4).unwrap();
        assert_eq!(t.decompress(), dense);
    }

    #[test]
    fn all_zero_row_uses_sparsest_pattern() {
        let dense = mat(2, 8, |r, _| if r == 0 { 0.0 } else { 1.0 });
        let t = RowWiseTile::compress(&dense, 4).unwrap();
        assert_eq!(t.row_ratio(0), NmRatio::S1_4);
        assert_eq!(t.row_ratio(1), NmRatio::D4_4);
        assert_eq!(t.decompress(), dense);
    }

    #[test]
    fn three_nonzeros_promote_to_dense() {
        // 3 non-zeros in a block cannot use 2:4; the next supported power of
        // two is 4:4.
        let dense = mat(1, 4, |_, c| if c < 3 { 1.0 } else { 0.0 });
        let t = RowWiseTile::compress(&dense, 4).unwrap();
        assert_eq!(t.row_ratio(0), NmRatio::D4_4);
    }

    #[test]
    fn compression_ratio_tracks_row_mix() {
        // Two rows at 1:4 and two at 2:4 over 8 cols: stored = 2*2+2*4 = 12,
        // effective = 32.
        let dense = mat(4, 8, |r, c| {
            let keep = if r < 2 { c % 4 == 0 } else { c % 4 < 2 };
            if keep {
                1.0
            } else {
                0.0
            }
        });
        let t = RowWiseTile::compress(&dense, 4).unwrap();
        assert_eq!(t.stored_len(), 12);
        assert!((t.compression_ratio() - 32.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn larger_block_size_m8() {
        let dense = mat(2, 16, |_, c| if c % 8 < 3 { 1.0 } else { 0.0 });
        let t = RowWiseTile::compress(&dense, 8).unwrap();
        // 3 non-zeros per block of 8 -> 4:8 pattern.
        assert_eq!(t.row_ratio(0), NmRatio::new(4, 8).unwrap());
        assert_eq!(t.decompress(), dense);
    }

    #[test]
    fn rejects_bad_shapes() {
        let dense = mat(1, 6, |_, _| 0.0);
        assert!(RowWiseTile::compress(&dense, 4).is_err());
        let dense = mat(1, 8, |_, _| 0.0);
        assert!(RowWiseTile::compress(&dense, 3).is_err());
    }

    #[test]
    fn compress_with_pins_the_given_ratios() {
        // A sparse row forced to a denser-than-needed cover keeps it.
        let dense = mat(2, 8, |_, c| if c % 4 == 0 { 1.0 } else { 0.0 });
        let ratios = [NmRatio::S2_4, NmRatio::S1_4];
        let t = RowWiseTile::compress_with(&dense, 4, &ratios).unwrap();
        assert_eq!(t.row_ratio(0), NmRatio::S2_4);
        assert_eq!(t.decompress(), dense);
        // A cover that is too sparse for the data is rejected.
        let too_sparse = [NmRatio::S1_4, NmRatio::S1_4];
        let dense2 = mat(2, 8, |_, c| if c % 4 < 2 { 1.0 } else { 0.0 });
        assert!(matches!(
            RowWiseTile::compress_with(&dense2, 4, &too_sparse),
            Err(SparsityError::BlockTooDense { .. })
        ));
        // Ratio count and block size must agree.
        assert!(RowWiseTile::compress_with(&dense, 4, &ratios[..1]).is_err());
        assert!(RowWiseTile::compress_with(&dense, 8, &[NmRatio::S1_4, NmRatio::S1_4]).is_err());
    }

    #[test]
    fn packs_through_register_images() {
        let dense = mat(16, 64, |r, c| {
            if (r * 13 + c * 7) % 5 == 0 {
                (r + 1) as f32
            } else {
                0.0
            }
        });
        let t = RowWiseTile::compress(&dense, 4).unwrap();
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        t.pack_into(&mut treg, &mut mreg).unwrap();
        let ns: Vec<u8> = t.row_ratios().iter().map(|r| r.n()).collect();
        assert_eq!(mreg.row_ns(), ns);
        let view = TileView::of_images(FormatSpec::RowWise { m: 4 }, 16, 64, &treg, &mreg).unwrap();
        assert_eq!(view.stored_len(), t.stored_len());
        assert_eq!(view.decompress(), dense);
    }

    #[test]
    fn non_m4_tiles_do_not_pack() {
        let dense = mat(2, 16, |_, c| if c % 8 == 0 { 1.0 } else { 0.0 });
        let t = RowWiseTile::compress(&dense, 8).unwrap();
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        assert!(matches!(
            t.pack_into(&mut treg, &mut mreg),
            Err(SparsityError::ShapeMismatch { .. })
        ));
    }
}
