//! Property-based tests for the sparsity formats and transforms.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vegeta_num::{Bf16, Matrix};
use vegeta_sparse::{
    prune, satisfies_nm, sparsity_degree, transform, CompressedTile, FormatSpec, MregImage,
    NmRatio, RowWiseTile, SparsityError, TileView, TregImage,
};

/// Strategy: a random matrix with the given shape and a random sparsity
/// degree, all driven from a single seed so failures shrink nicely.
fn seeded_matrix(rows: usize, cols: usize, degree: f64, seed: u64) -> Matrix<Bf16> {
    let mut rng = SmallRng::seed_from_u64(seed);
    prune::random_unstructured(rows, cols, degree, &mut rng)
}

proptest! {
    /// compress ∘ decompress is the identity on every N:M-conforming matrix.
    #[test]
    fn compress_roundtrip(seed in any::<u64>(), n_idx in 0usize..3, rows in 1usize..12, blocks in 1usize..8) {
        let ratio = [NmRatio::S1_4, NmRatio::S2_4, NmRatio::D4_4][n_idx];
        let dense = {
            let mut rng = SmallRng::seed_from_u64(seed);
            prune::random_nm(rows, blocks * 4, ratio, &mut rng)
        };
        let tile = CompressedTile::compress(&dense, ratio).unwrap();
        prop_assert_eq!(tile.decompress(), dense);
        // Stored footprint is exactly density * effective size.
        prop_assert_eq!(tile.values().len(), rows * blocks * ratio.n() as usize);
    }

    /// Magnitude pruning always yields a matrix that satisfies the pattern
    /// and never increases density.
    #[test]
    fn pruning_enforces_pattern(seed in any::<u64>(), rows in 1usize..10, blocks in 1usize..8) {
        let dense = seeded_matrix(rows, blocks * 4, 0.3, seed);
        for ratio in [NmRatio::S1_4, NmRatio::S2_4] {
            let pruned = prune::magnitude_prune_nm(&dense, ratio);
            prop_assert!(satisfies_nm(&pruned, ratio));
            prop_assert!(sparsity_degree(&pruned) >= sparsity_degree(&dense) - 1e-12);
        }
    }

    /// The row-wise transform is lossless for arbitrary unstructured inputs
    /// (§III-D's central claim).
    #[test]
    fn row_wise_transform_lossless(seed in any::<u64>(), degree in 0.0f64..1.0, rows in 1usize..20, blocks in 1usize..10) {
        let dense = seeded_matrix(rows, blocks * 4, degree, seed);
        let tile = RowWiseTile::compress(&dense, 4).unwrap();
        prop_assert_eq!(tile.decompress(), dense);
    }

    /// Row-wise covers are minimal: no sparser supported pattern covers the row.
    #[test]
    fn row_cover_is_minimal(seed in any::<u64>(), degree in 0.3f64..1.0, blocks in 1usize..10) {
        let dense = seeded_matrix(1, blocks * 4, degree, seed);
        let cover = transform::row_cover(dense.row(0), 4).unwrap();
        // The cover works.
        prop_assert!(satisfies_nm(&dense, cover));
        // The next sparser pattern (if any) does not.
        let patterns = NmRatio::supported_patterns(4).unwrap();
        if let Some(pos) = patterns.iter().position(|&p| p == cover) {
            if pos > 0 {
                prop_assert!(!satisfies_nm(&dense, patterns[pos - 1]));
            }
        }
    }

    /// Granularity hierarchy: covered work obeys
    /// row-wise <= pseudo row-wise <= uniform (tile-wise), and every pseudo
    /// cover still covers its row. Row counts are multiples of the maximum
    /// group size (4), as in real 16-row tiles; unaligned tails can force
    /// boundary promotions that break the ordering on toy shapes.
    #[test]
    fn granularity_hierarchy(seed in any::<u64>(), degree in 0.5f64..1.0, quads in 1usize..6, blocks in 2usize..8) {
        let rows = quads * 4;
        let dense = seeded_matrix(rows, blocks * 4, degree, seed);
        let cols = dense.cols();
        let row = transform::cover_stats(&transform::row_covers(&dense, 4).unwrap(), cols);
        let pseudo_covers = transform::pseudo_row_wise_covers(&dense, 4).unwrap();
        let pseudo = transform::cover_stats(&pseudo_covers, cols);
        let uni = transform::cover_stats(&vec![transform::uniform_cover(&dense, 4).unwrap(); rows], cols);
        prop_assert!(row.covered_work <= pseudo.covered_work + 1e-9);
        prop_assert!(pseudo.covered_work <= uni.covered_work + 1e-9);
        for (r, cov) in pseudo_covers.iter().enumerate() {
            let mut m = Matrix::zeros(1, cols);
            m.row_mut(0).copy_from_slice(dense.row(r));
            prop_assert!(satisfies_nm(&m, *cov), "pseudo cover must still cover row {r}");
        }
    }

    /// Reordered row-wise work never exceeds pseudo row-wise work (aligned
    /// row counts; see `granularity_hierarchy` for why).
    #[test]
    fn reordering_never_hurts(seed in any::<u64>(), degree in 0.5f64..1.0, quads in 1usize..6) {
        let rows = quads * 4;
        let dense = seeded_matrix(rows, 16, degree, seed);
        let pseudo = transform::cover_stats(&transform::pseudo_row_wise_covers(&dense, 4).unwrap(), 16);
        let reordered = transform::cover_stats(&transform::reordered_row_wise_covers(&dense, 4).unwrap(), 16);
        prop_assert!(reordered.covered_work <= pseudo.covered_work + 1e-9);
    }

    /// Metadata packing round-trips through the mreg byte format, read back
    /// in place through the format-aware TileView.
    #[test]
    fn metadata_roundtrip(seed in any::<u64>(), rows in 1usize..8, blocks in 1usize..8) {
        let dense = {
            let mut rng = SmallRng::seed_from_u64(seed);
            prune::random_nm(rows, blocks * 4, NmRatio::S2_4, &mut rng)
        };
        let tile = CompressedTile::compress(&dense, NmRatio::S2_4).unwrap();
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        vegeta_sparse::TileFormat::pack_into(&tile, &mut treg, &mut mreg).unwrap();
        let view = TileView::of_images(
            FormatSpec::Nm(NmRatio::S2_4), rows, blocks * 4, &treg, &mreg,
        ).unwrap();
        let unpacked: Vec<u8> = (0..tile.indices().len())
            .map(|i| view.position(i) as u8)
            .collect();
        prop_assert_eq!(unpacked.as_slice(), tile.indices());
    }

    /// For random tiles and every storage format:
    /// `compress → pack_into → TileView → decompress` equals the
    /// magnitude-pruned input (the identity for the lossless formats —
    /// including per-row `N` for row-wise and column indices for CSR).
    #[test]
    fn format_roundtrip_through_register_images(
        seed in any::<u64>(),
        spec_idx in 0usize..5,
        degree in 0.3f64..1.0,
        rows in 1usize..=16,
        blocks in 1usize..=8,
    ) {
        let spec = FormatSpec::all_m4()[spec_idx];
        let cols = blocks * 4;
        // Keep the dense fallback rows within the 512-value treg budget.
        let rows = if rows * cols > 512 { 512 / cols } else { rows };
        let dense = seeded_matrix(rows, cols, degree, seed);
        // Structured specs see their magnitude-pruned cover; the lossless
        // formats must reproduce the input exactly.
        let expected = match spec {
            FormatSpec::Nm(ratio) => prune::magnitude_prune_nm(&dense, ratio),
            _ => dense.clone(),
        };
        let tile = spec.compress(&expected).unwrap();
        prop_assert_eq!(tile.spec(), spec);
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        match tile.pack_into(&mut treg, &mut mreg) {
            Ok(()) => {
                let view = TileView::of_images(
                    spec, tile.rows(), tile.effective_cols(), &treg, &mreg,
                ).unwrap();
                prop_assert_eq!(view.stored_len(), tile.stored_len());
                prop_assert_eq!(view.decompress(), expected);
            }
            // CSR may legitimately overflow the 128 B mreg when the tile is
            // too dense — the error must say so, and only CSR may hit it
            // on these in-budget shapes.
            Err(SparsityError::InvalidMetadata { .. }) => {
                prop_assert_eq!(spec, FormatSpec::Csr);
                prop_assert!(
                    tile.metadata_bits() > 128 * 8,
                    "CSR overflow reported but metadata would fit"
                );
            }
            Err(other) => prop_assert!(false, "unexpected pack error: {other}"),
        }
    }
}
