//! The serving report: latency percentiles, throughput, batching and
//! fleet-utilization statistics, with JSON output.

use vegeta::json::JsonValue;

/// Nearest-rank percentile over an already-sorted latency slice; 0 for an
/// empty slice. `pct` is in `[0, 100]`.
pub fn percentile_us(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Everything one serving run produced, ready for JSON.
///
/// All latency/throughput numbers are **virtual time** (see
/// [`VirtualClock`](crate::VirtualClock)): deterministic in the serving
/// config and load seed, independent of host machine and thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Engine the workers run.
    pub engine: String,
    /// Scheduler policy label.
    pub scheduler: String,
    /// Fleet size (virtual workers).
    pub workers: usize,
    /// Simulator cores per worker.
    pub cores_per_worker: usize,
    /// Virtual-clock rate in GHz.
    pub clock_ghz: f64,
    /// Admission queue bound.
    pub queue_depth: usize,
    /// Batching window (virtual µs).
    pub window_us: u64,
    /// Batch size cap.
    pub max_batch: usize,
    /// Fidelity label the layer shapes ran at.
    pub fidelity: String,
    /// Load generator seed.
    pub seed: u64,
    /// Offered load (requests per virtual second).
    pub offered_qps: f64,
    /// Requests offered.
    pub offered: usize,
    /// Requests admitted past the frontend.
    pub admitted: usize,
    /// Requests rejected with a structured error at admission.
    pub rejected: usize,
    /// Requests shed because the queue was full.
    pub shed: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Completions past their deadline.
    pub deadline_misses: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Histogram of dispatched batch sizes as `(size, count)`, ascending.
    pub batch_hist: Vec<(usize, usize)>,
    /// Peak admitted-but-undispatched queue depth observed.
    pub max_queue_depth: usize,
    /// Virtual time from first arrival to last completion.
    pub makespan_us: u64,
    /// Completed requests per virtual second.
    pub achieved_qps: f64,
    /// Mean completion latency (µs).
    pub mean_latency_us: f64,
    /// 50th percentile latency (µs).
    pub p50_latency_us: u64,
    /// 95th percentile latency (µs).
    pub p95_latency_us: u64,
    /// 99th percentile latency (µs).
    pub p99_latency_us: u64,
    /// Worst completion latency (µs).
    pub max_latency_us: u64,
    /// Busy virtual µs per worker, indexed by worker id.
    pub per_worker_busy_us: Vec<u64>,
    /// Distinct batch keys simulated.
    pub distinct_keys: usize,
    /// Simulated cycles summed over the distinct keys.
    pub sim_cycles: u64,
    /// Host threads the phase-1 key simulation fanned out over.
    ///
    /// Host-side metadata only: it is deliberately **excluded** from
    /// [`to_json_value`](ServeReport::to_json_value) so reports stay
    /// byte-identical across host machines and thread counts.
    pub host_threads: usize,
}

impl ServeReport {
    /// Per-worker utilization: busy time over the makespan.
    pub fn utilization(&self) -> Vec<f64> {
        let span = self.makespan_us.max(1) as f64;
        self.per_worker_busy_us
            .iter()
            .map(|&b| b as f64 / span)
            .collect()
    }

    /// Mean utilization across the fleet.
    pub fn mean_utilization(&self) -> f64 {
        let u = self.utilization();
        if u.is_empty() {
            return 0.0;
        }
        u.iter().sum::<f64>() / u.len() as f64
    }

    /// The report as a JSON value (field order is fixed, so equal reports
    /// serialize byte-identically).
    pub fn to_json_value(&self) -> JsonValue {
        let num = JsonValue::Number;
        let int = |v: u64| JsonValue::Number(v as f64);
        let us = |v: usize| JsonValue::Number(v as f64);
        JsonValue::Object(vec![
            ("engine".into(), self.engine.as_str().into()),
            ("scheduler".into(), self.scheduler.as_str().into()),
            ("workers".into(), us(self.workers)),
            ("cores_per_worker".into(), us(self.cores_per_worker)),
            ("clock_ghz".into(), num(self.clock_ghz)),
            ("queue_depth".into(), us(self.queue_depth)),
            ("window_us".into(), int(self.window_us)),
            ("max_batch".into(), us(self.max_batch)),
            ("fidelity".into(), self.fidelity.as_str().into()),
            ("seed".into(), int(self.seed)),
            ("offered_qps".into(), num(self.offered_qps)),
            ("offered".into(), us(self.offered)),
            ("admitted".into(), us(self.admitted)),
            ("rejected".into(), us(self.rejected)),
            ("shed".into(), us(self.shed)),
            ("completed".into(), us(self.completed)),
            ("deadline_misses".into(), us(self.deadline_misses)),
            ("batches".into(), us(self.batches)),
            (
                "batch_hist".into(),
                JsonValue::Array(
                    self.batch_hist
                        .iter()
                        .map(|&(size, count)| {
                            JsonValue::Object(vec![
                                ("size".into(), us(size)),
                                ("count".into(), us(count)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("max_queue_depth".into(), us(self.max_queue_depth)),
            ("makespan_us".into(), int(self.makespan_us)),
            ("achieved_qps".into(), num(self.achieved_qps)),
            ("mean_latency_us".into(), num(self.mean_latency_us)),
            ("p50_latency_us".into(), int(self.p50_latency_us)),
            ("p95_latency_us".into(), int(self.p95_latency_us)),
            ("p99_latency_us".into(), int(self.p99_latency_us)),
            ("max_latency_us".into(), int(self.max_latency_us)),
            (
                "per_worker_busy_us".into(),
                JsonValue::Array(self.per_worker_busy_us.iter().map(|&b| int(b)).collect()),
            ),
            (
                "utilization".into(),
                JsonValue::Array(self.utilization().into_iter().map(num).collect()),
            ),
            ("distinct_keys".into(), us(self.distinct_keys)),
            ("sim_cycles".into(), int(self.sim_cycles)),
        ])
    }

    /// The report as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 50.0), 50);
        assert_eq!(percentile_us(&sorted, 95.0), 95);
        assert_eq!(percentile_us(&sorted, 99.0), 99);
        assert_eq!(percentile_us(&sorted, 100.0), 100);
        assert_eq!(percentile_us(&[7], 99.0), 7);
        assert_eq!(percentile_us(&[], 50.0), 0);
        // Small-n nearest rank: ceil(0.5 * 3) = 2nd of three.
        assert_eq!(percentile_us(&[10, 20, 30], 50.0), 20);
    }

    fn sample() -> ServeReport {
        ServeReport {
            engine: "VEGETA-S-16-2".into(),
            scheduler: "lpt".into(),
            workers: 2,
            cores_per_worker: 2,
            clock_ghz: 2.0,
            queue_depth: 64,
            window_us: 200,
            max_batch: 8,
            fidelity: "quick8".into(),
            seed: 7,
            offered_qps: 1000.0,
            offered: 4,
            admitted: 4,
            rejected: 0,
            shed: 0,
            completed: 4,
            deadline_misses: 0,
            batches: 2,
            batch_hist: vec![(2, 2)],
            max_queue_depth: 2,
            makespan_us: 1000,
            achieved_qps: 4000.0,
            mean_latency_us: 250.0,
            p50_latency_us: 200,
            p95_latency_us: 400,
            p99_latency_us: 400,
            max_latency_us: 400,
            per_worker_busy_us: vec![500, 250],
            distinct_keys: 2,
            sim_cycles: 1_500_000,
            host_threads: 2,
        }
    }

    #[test]
    fn utilization_divides_by_makespan() {
        let r = sample();
        assert_eq!(r.utilization(), vec![0.5, 0.25]);
        assert!((r.mean_utilization() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips_and_is_stable() {
        let r = sample();
        let text = r.to_json();
        assert_eq!(text, r.to_json(), "serialization must be stable");
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(v.get("engine").unwrap().as_str(), Some("VEGETA-S-16-2"));
        assert_eq!(v.get("completed").unwrap().as_u64(), Some(4));
        assert_eq!(
            v.get("batch_hist").unwrap().as_array().unwrap()[0]
                .get("size")
                .unwrap()
                .as_u64(),
            Some(2)
        );
    }
}
