//! The request/response model: what clients submit and what they get back.

use vegeta::prelude::*;

/// What a request asks the fleet to execute.
#[derive(Debug, Clone, PartialEq)]
pub enum Work {
    /// A Table IV layer at a weight sparsity; the engine picks the kernel
    /// it would execute for those weights (always well-formed).
    Layer {
        /// The layer to run.
        layer: Layer,
        /// Weight sparsity the layer's `A` operand is pruned to.
        weights: NmRatio,
    },
    /// A raw `(shape, kernel spec)` pair, as a compiler or an external
    /// client would submit it. Unlike [`Work::Layer`] this is *untrusted*:
    /// admission structurally validates it and runs the
    /// [`vegeta-lint`](vegeta::lint) preflight before it may reach a worker.
    Spec {
        /// GEMM dimensions.
        shape: GemmShape,
        /// Kernel to execute.
        spec: KernelSpec,
    },
}

impl Work {
    /// Resolves this work item to the batch key it executes as, or the
    /// structured admission error that rejects it. `engine`/`opts` select
    /// the kernel for layer work; `fidelity` scales layer shapes exactly
    /// as [`Session`](vegeta::session::Session) runs do.
    pub fn resolve(
        &self,
        engine: &EngineConfig,
        opts: KernelOptions,
        fidelity: Fidelity,
    ) -> Result<BatchKey, RequestError> {
        let key = match self {
            Work::Layer { layer, weights } => BatchKey {
                shape: fidelity.shape_of(layer),
                spec: engine.kernel_spec(*weights, opts),
            },
            Work::Spec { shape, spec } => BatchKey {
                shape: *shape,
                spec: spec.clone(),
            },
        };
        key.validate()?;
        Ok(key)
    }
}

/// The coalescing identity of a request: requests with equal keys execute
/// the same trace, so one simulation (and one
/// [`TraceCache`](vegeta::kernels::TraceCache) entry) serves all of them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// GEMM dimensions.
    pub shape: GemmShape,
    /// Kernel executed.
    pub spec: KernelSpec,
}

impl BatchKey {
    /// Structural validation: the checks that must hold before the spec is
    /// even *lintable* (the preflight assumes a self-consistent spec).
    pub(crate) fn validate(&self) -> Result<(), RequestError> {
        let GemmShape { m, n, k } = self.shape;
        if m == 0 || n == 0 || k == 0 {
            return Err(RequestError::Malformed(format!(
                "degenerate shape {m}x{n}x{k}: all dimensions must be nonzero"
            )));
        }
        if let KernelSpec::RowWise { row_ratios } = &self.spec {
            if row_ratios.len() != m {
                return Err(RequestError::Malformed(format!(
                    "row-wise spec carries {} row covers for {m} rows",
                    row_ratios.len()
                )));
            }
        }
        if let KernelSpec::Tiled { opts, .. } = &self.spec {
            if opts.unroll == 0 || opts.unroll > 3 {
                return Err(RequestError::Malformed(format!(
                    "tiled kernel unroll {} outside the supported 1..=3",
                    opts.unroll
                )));
            }
        }
        Ok(())
    }
}

/// Why a request was turned away at admission, as a structured error the
/// client gets back instead of a worker panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The spec is structurally inconsistent (caught before linting).
    Malformed(String),
    /// The spec failed the static [`vegeta-lint`](vegeta::lint) preflight.
    Preflight(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Malformed(why) => write!(f, "malformed request: {why}"),
            RequestError::Preflight(why) => write!(f, "preflight rejected request: {why}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// One inference request submitted to the service.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-assigned id, echoed in the [`Response`].
    pub id: u64,
    /// What to execute.
    pub work: Work,
    /// Arrival time on the virtual clock, in microseconds.
    pub arrival_us: u64,
    /// Optional latency deadline relative to arrival, in microseconds;
    /// completions past it are counted as deadline misses (reported, not
    /// cancelled).
    pub deadline_us: Option<u64>,
}

/// How a request left the system.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Served by a worker.
    Completed {
        /// Virtual time service started.
        start_us: u64,
        /// Virtual time the batch finished.
        finish_us: u64,
        /// Size of the batch it rode in.
        batch_size: usize,
        /// Which worker served it.
        worker: usize,
        /// Whether `finish - arrival` exceeded the request's deadline.
        missed_deadline: bool,
    },
    /// Dropped at admission: the bounded queue was full.
    Shed {
        /// The configured depth the queue was at.
        queue_depth: usize,
    },
    /// Turned away at admission with a structured error.
    Rejected(RequestError),
}

/// The service's reply to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id.
    pub id: u64,
    /// When the request arrived (echoed for latency accounting).
    pub arrival_us: u64,
    /// What happened to it.
    pub outcome: Outcome,
}

impl Response {
    /// End-to-end latency in microseconds, for completed requests.
    pub fn latency_us(&self) -> Option<u64> {
        match &self.outcome {
            Outcome::Completed { finish_us, .. } => Some(finish_us - self.arrival_us),
            Outcome::Shed { .. } | Outcome::Rejected(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_work_resolves_to_engine_kernel() {
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let layer = table4()[7];
        let key = Work::Layer {
            layer,
            weights: NmRatio::S2_4,
        }
        .resolve(&engine, KernelOptions::default(), Fidelity::Quick(8))
        .unwrap();
        assert_eq!(key.shape, layer.scaled_shape(8));
        assert_eq!(
            key.spec,
            engine.kernel_spec(NmRatio::S2_4, KernelOptions::default())
        );
    }

    #[test]
    fn degenerate_shape_is_malformed() {
        let engine = EngineConfig::rasa_dm();
        let work = Work::Spec {
            shape: GemmShape::new(0, 16, 128),
            spec: KernelSpec::Vector,
        };
        let err = work
            .resolve(&engine, KernelOptions::default(), Fidelity::Full)
            .unwrap_err();
        assert!(matches!(err, RequestError::Malformed(_)), "{err}");
    }

    #[test]
    fn rowwise_cover_count_must_match_rows() {
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let work = Work::Spec {
            shape: GemmShape::new(32, 16, 128),
            spec: KernelSpec::RowWise {
                row_ratios: vec![NmRatio::S2_4; 31],
            },
        };
        let err = work
            .resolve(&engine, KernelOptions::default(), Fidelity::Full)
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("31"), "{msg}");
        assert!(msg.contains("32"), "{msg}");
    }

    #[test]
    fn unroll_out_of_range_is_malformed() {
        let engine = EngineConfig::rasa_dm();
        let work = Work::Spec {
            shape: GemmShape::new(16, 16, 128),
            spec: KernelSpec::Tiled {
                mode: SparseMode::Dense,
                opts: KernelOptions {
                    unroll: 7,
                    loop_overhead: true,
                },
            },
        };
        assert!(work
            .resolve(&engine, KernelOptions::default(), Fidelity::Full)
            .is_err());
    }

    #[test]
    fn latency_is_finish_minus_arrival() {
        let r = Response {
            id: 3,
            arrival_us: 100,
            outcome: Outcome::Completed {
                start_us: 150,
                finish_us: 400,
                batch_size: 2,
                worker: 0,
                missed_deadline: false,
            },
        };
        assert_eq!(r.latency_us(), Some(300));
        let shed = Response {
            id: 4,
            arrival_us: 0,
            outcome: Outcome::Shed { queue_depth: 8 },
        };
        assert_eq!(shed.latency_us(), None);
    }
}
