//! The worker pool: simulated multi-core workers behind a channel work
//! queue, plus the virtual clock that converts cycles to service time.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use vegeta::prelude::*;

use crate::request::BatchKey;

/// Converts simulated core cycles to virtual-clock microseconds.
///
/// Serving time is *simulated* time: a batch that takes `c` cycles on a
/// worker core clocked at `ghz` occupies that worker for
/// `ceil(c / (ghz * 1000))` µs of the serving timeline, floored at 1 µs so
/// service is never free. No wall-clock measurement enters the timeline,
/// which is what makes latency percentiles host-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualClock {
    ghz: f64,
}

impl VirtualClock {
    /// A clock at `ghz` GHz.
    ///
    /// # Panics
    /// If `ghz` is not finite and positive.
    pub fn new(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "clock rate must be positive");
        VirtualClock { ghz }
    }

    /// The clock rate in GHz.
    pub fn ghz(self) -> f64 {
        self.ghz
    }

    /// Cycles to whole microseconds, rounded up, at least 1.
    pub fn cycles_to_us(self, cycles: u64) -> u64 {
        ((cycles as f64 / (self.ghz * 1e3)).ceil() as u64).max(1)
    }
}

/// What simulating one batch key cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// Simulated core cycles (makespan across the worker's cores).
    pub cycles: u64,
    /// Dynamic instructions simulated.
    pub instructions: u64,
    /// The cycles on the virtual clock: how long the batch occupies its
    /// worker.
    pub service_us: u64,
}

/// A pool of simulated multi-core workers.
///
/// Each worker models one fleet machine: `cores` simulator cores behind a
/// shared L2, fed by the scheduler policy the config names. The pool
/// simulates each *distinct* [`BatchKey`] exactly once — a batch's service
/// time does not depend on how many requests ride in it, which is the
/// entire economics of batching — and memoizes the outcome.
///
/// Host-side, [`simulate_all`](WorkerPool::simulate_all) fans the distinct
/// keys out over `threads` OS threads pulling from a channel work queue;
/// all threads share one [`TraceCache`], so a key's trace summary is built
/// once no matter which thread simulates it. Host threading affects only
/// how fast the simulations run, never their results.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    engine: EngineConfig,
    sim: SimConfig,
    cores: usize,
    scheduler: SchedulerPolicy,
    threads: usize,
    cache: Arc<TraceCache>,
}

impl WorkerPool {
    /// A pool whose workers run `engine` on `cores` simulator cores under
    /// `scheduler`, driven by `threads` host threads, sharing `cache`.
    pub fn new(
        engine: EngineConfig,
        sim: SimConfig,
        cores: usize,
        scheduler: SchedulerPolicy,
        threads: usize,
        cache: Arc<TraceCache>,
    ) -> Self {
        WorkerPool {
            engine,
            sim,
            cores: cores.max(1),
            scheduler,
            threads: threads.max(1),
            cache,
        }
    }

    /// The virtual clock of this pool's workers (the simulated core
    /// clock).
    pub fn clock(&self) -> VirtualClock {
        VirtualClock::new(self.sim.core_ghz)
    }

    /// The shared trace cache.
    pub fn cache(&self) -> &Arc<TraceCache> {
        &self.cache
    }

    /// Simulates one batch key on one worker: unsharded on a single
    /// [`CoreSim`] when the worker has one core, sharded through
    /// [`MultiCoreSim`] under the pool's scheduler otherwise.
    pub fn simulate(&self, key: &BatchKey) -> SimOutcome {
        let (cycles, instructions) = if self.cores <= 1 {
            let mut stream = self.cache.stream(key.shape, &key.spec);
            let mut core = CoreSim::new(self.sim.clone(), self.engine.clone());
            let res = core.run_stream(&mut stream);
            (res.core_cycles, res.instructions)
        } else {
            // Account the generator summary exactly as Session sweeps do.
            self.cache.summary(key.shape, &key.spec);
            let (shards, reduction) = match self.scheduler {
                SchedulerPolicy::Static => (key.spec.shard_streams(key.shape, self.cores), None),
                SchedulerPolicy::Lpt => {
                    let set = key.spec.shard_set(key.shape, self.cores);
                    (set.shards, set.reduction)
                }
            };
            // Each worker's share of the host: phase-1 fan-out already
            // occupies `threads` host threads, so the per-key multi-core
            // replay gets the leftover budget (at least one). Results are
            // host-thread-independent either way — ParallelHost replays
            // the shared-L2 log deterministically.
            let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            let host_budget = (avail / self.threads).max(1);
            let mut mc = MultiCoreSim::new(
                MultiCoreConfig::with_core(self.sim.clone(), self.cores)
                    .with_exec(ExecMode::ParallelHost(host_budget)),
                self.engine.clone(),
            );
            let res = mc.run_sharded(shards, reduction, self.scheduler);
            (res.core_cycles, res.instructions())
        };
        SimOutcome {
            cycles,
            instructions,
            service_us: self.clock().cycles_to_us(cycles),
        }
    }

    /// Simulates every key once, fanning out over the pool's host
    /// threads: keys flow through an [`mpsc`] channel acting as the work
    /// queue, workers pull until it drains, and outcomes flow back over a
    /// result channel. The returned map is complete — one entry per input
    /// key (duplicates collapse).
    pub fn simulate_all(&self, keys: &[BatchKey]) -> HashMap<BatchKey, SimOutcome> {
        let mut seen = std::collections::HashSet::new();
        let distinct: Vec<&BatchKey> = keys.iter().filter(|k| seen.insert(*k)).collect();
        let mut out: HashMap<BatchKey, SimOutcome> = HashMap::with_capacity(distinct.len());
        let threads = self.threads.min(distinct.len());
        if threads <= 1 {
            for key in distinct {
                let outcome = self.simulate(key);
                out.insert(key.clone(), outcome);
            }
            return out;
        }
        let (job_tx, job_rx) = mpsc::channel::<BatchKey>();
        let (res_tx, res_rx) = mpsc::channel::<(BatchKey, SimOutcome)>();
        for key in &distinct {
            job_tx.send((*key).clone()).expect("job queue open");
        }
        drop(job_tx);
        let jobs = Arc::new(Mutex::new(job_rx));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let jobs = Arc::clone(&jobs);
                let res_tx = res_tx.clone();
                scope.spawn(move || loop {
                    // Take the lock only to dequeue; simulate unlocked.
                    let job = jobs.lock().expect("job queue poisoned").try_recv();
                    match job {
                        Ok(key) => {
                            let outcome = self.simulate(&key);
                            if res_tx.send((key, outcome)).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                });
            }
            drop(res_tx);
            for (key, outcome) in res_rx {
                out.insert(key, outcome);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_key(m: usize) -> BatchKey {
        BatchKey {
            shape: GemmShape::new(m, 16, 128),
            spec: KernelSpec::tiled(SparseMode::Dense),
        }
    }

    #[test]
    fn clock_rounds_up_and_floors_at_one() {
        let clock = VirtualClock::new(2.0); // 2000 cycles / µs
        assert_eq!(clock.cycles_to_us(1), 1);
        assert_eq!(clock.cycles_to_us(2_000), 1);
        assert_eq!(clock.cycles_to_us(2_001), 2);
        assert_eq!(clock.cycles_to_us(10_000), 5);
    }

    fn pool(threads: usize) -> WorkerPool {
        WorkerPool::new(
            EngineConfig::rasa_dm(),
            SimConfig::default(),
            1,
            SchedulerPolicy::Static,
            threads,
            TraceCache::shared(),
        )
    }

    #[test]
    fn simulate_all_covers_distinct_keys_once() {
        let p = pool(4);
        let keys = vec![dense_key(16), dense_key(32), dense_key(16)];
        let map = p.simulate_all(&keys);
        assert_eq!(map.len(), 2);
        assert!(map.values().all(|o| o.cycles > 0 && o.service_us > 0));
    }

    #[test]
    fn host_thread_count_does_not_change_outcomes() {
        let keys: Vec<BatchKey> = [16, 32, 48, 64].iter().map(|&m| dense_key(m)).collect();
        let serial = pool(1).simulate_all(&keys);
        let parallel = pool(4).simulate_all(&keys);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sharded_worker_is_no_slower_than_single_core() {
        let key = dense_key(64);
        let single = pool(1).simulate(&key);
        let quad = WorkerPool::new(
            EngineConfig::rasa_dm(),
            SimConfig::default(),
            4,
            SchedulerPolicy::Lpt,
            1,
            TraceCache::shared(),
        )
        .simulate(&key);
        assert!(
            quad.cycles <= single.cycles,
            "4-core worker {} cycles vs 1-core {}",
            quad.cycles,
            single.cycles
        );
    }
}
