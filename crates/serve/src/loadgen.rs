//! The load generator: open-loop Poisson-like arrivals over a workload mix.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vegeta::prelude::*;

use crate::request::{Request, Work};

/// One entry of the workload mix: a layer, its weight sparsity, and its
/// relative weight in the draw.
#[derive(Debug, Clone, PartialEq)]
pub struct MixEntry {
    /// The layer requests of this entry execute.
    pub layer: Layer,
    /// Weight sparsity.
    pub weights: NmRatio,
    /// Relative draw weight (any positive scale; normalized internally).
    pub weight: f64,
}

/// The default serving mix: the perf-gate's three pinned layers — a CNN
/// layer at 2:4, an encoder layer at 2:4, and a decoder layer at 1:4 —
/// weighted toward the conv-heavy end as an inference fleet would be.
pub fn default_mix() -> Vec<MixEntry> {
    let find = |name: &str| {
        *table4()
            .iter()
            .find(|l| l.name == name)
            .unwrap_or_else(|| panic!("Table IV layer {name} missing"))
    };
    vec![
        MixEntry {
            layer: find("ResNet50-L6"),
            weights: NmRatio::S2_4,
            weight: 0.5,
        },
        MixEntry {
            layer: find("BERT-L2"),
            weights: NmRatio::S2_4,
            weight: 0.3,
        },
        MixEntry {
            layer: find("GPT-L1"),
            weights: NmRatio::S1_4,
            weight: 0.2,
        },
    ]
}

/// Open-loop arrival generator: exponential inter-arrival gaps at a target
/// QPS (a Poisson process on the virtual clock), each request drawing its
/// work from a weighted mix. Deterministic in `(seed, qps, requests, mix)`
/// via the vendored [`SmallRng`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGen {
    /// RNG seed.
    pub seed: u64,
    /// Offered load in requests per second of virtual time.
    pub qps: f64,
    /// How many requests to generate.
    pub requests: usize,
    /// Deadline applied to every request, if any (relative µs).
    pub deadline_us: Option<u64>,
    /// The workload mix drawn from.
    pub mix: Vec<MixEntry>,
}

impl LoadGen {
    /// A generator at `qps` for `requests` requests over [`default_mix`].
    ///
    /// # Panics
    /// If `qps` is not finite and positive.
    pub fn new(qps: f64, requests: usize) -> Self {
        assert!(qps.is_finite() && qps > 0.0, "offered QPS must be positive");
        LoadGen {
            seed: 0xEE7A,
            qps,
            requests,
            deadline_us: None,
            mix: default_mix(),
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the workload mix.
    ///
    /// # Panics
    /// If `mix` is empty or any weight is not finite and positive.
    pub fn with_mix(mut self, mix: Vec<MixEntry>) -> Self {
        assert!(!mix.is_empty(), "workload mix must not be empty");
        assert!(
            mix.iter().all(|e| e.weight.is_finite() && e.weight > 0.0),
            "mix weights must be positive"
        );
        self.mix = mix;
        self
    }

    /// Applies a per-request deadline (relative µs).
    pub fn with_deadline(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Generates the arrival trace: requests in nondecreasing arrival
    /// order, ids `0..requests`.
    pub fn generate(&self) -> Vec<Request> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let total: f64 = self.mix.iter().map(|e| e.weight).sum();
        let mut now = 0f64; // virtual µs, fractional until quantized
        let mut out = Vec::with_capacity(self.requests);
        for id in 0..self.requests as u64 {
            // Exponential gap via inverse CDF; mean gap = 1e6 / qps µs.
            let u: f64 = rng.gen_range(0.0..1.0);
            now += -(1.0 - u).ln() / self.qps * 1e6;
            let mut draw = rng.gen_range(0.0..total);
            let mut pick = self.mix.len() - 1;
            for (i, entry) in self.mix.iter().enumerate() {
                if draw < entry.weight {
                    pick = i;
                    break;
                }
                draw -= entry.weight;
            }
            let entry = &self.mix[pick];
            out.push(Request {
                id,
                work: Work::Layer {
                    layer: entry.layer,
                    weights: entry.weights,
                },
                arrival_us: now as u64,
                deadline_us: self.deadline_us,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let gen = LoadGen::new(5_000.0, 64).with_seed(42);
        assert_eq!(gen.generate(), gen.generate());
        let other = LoadGen::new(5_000.0, 64).with_seed(43);
        assert_ne!(gen.generate(), other.generate());
    }

    #[test]
    fn arrivals_are_sorted_and_mean_gap_tracks_qps() {
        let qps = 10_000.0;
        let gen = LoadGen::new(qps, 400).with_seed(7);
        let reqs = gen.generate();
        assert!(reqs.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        let span_us = reqs.last().unwrap().arrival_us as f64;
        let mean_gap = span_us / (reqs.len() - 1) as f64;
        let expect = 1e6 / qps;
        assert!(
            (mean_gap - expect).abs() < expect * 0.25,
            "mean gap {mean_gap:.1}us vs expected {expect:.1}us"
        );
    }

    #[test]
    fn mix_draws_cover_every_entry() {
        let gen = LoadGen::new(1_000.0, 200).with_seed(11);
        let reqs = gen.generate();
        for entry in &gen.mix {
            assert!(
                reqs.iter().any(|r| matches!(
                    &r.work,
                    Work::Layer { layer, .. } if layer.name == entry.layer.name
                )),
                "mix entry {} never drawn",
                entry.layer.name
            );
        }
    }

    #[test]
    fn deadline_is_applied_to_every_request() {
        let reqs = LoadGen::new(1_000.0, 8).with_deadline(500).generate();
        assert!(reqs.iter().all(|r| r.deadline_us == Some(500)));
    }
}
