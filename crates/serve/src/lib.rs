//! # vegeta-serve: batched inference serving over the simulated fleet
//!
//! An asynchronous batched inference service running *on top of* the
//! VEGETA simulator: clients submit GEMM/SPMM requests (a Table IV layer
//! at some weight sparsity, or a raw `(shape, kernel spec)` pair), a
//! [`Frontend`] admits them into a bounded queue, a [`Batcher`] coalesces
//! same-key requests inside a time/size window, and a [`WorkerPool`] of
//! simulated multi-core workers services each batch — one shared
//! [`TraceCache`](vegeta::kernels::TraceCache) entry and one sharded
//! simulation per *distinct* batch key, however many requests ride on it.
//!
//! Time is **virtual**: a batch's service time is its simulated cycle
//! count converted through the core clock ([`VirtualClock`]), and the
//! serving timeline (arrivals, queueing, dispatch, completion) is replayed
//! on a single-threaded discrete-event loop. Host threads only parallelize
//! the *simulations* of distinct keys; they never touch the timeline, so
//! every latency percentile in a [`ServeReport`] is deterministic in
//! `(config, seed)` and independent of the machine or `--threads` count.
//!
//! ```
//! use vegeta_serve::{LoadGen, ServeConfig, Server};
//! use vegeta::prelude::*;
//!
//! let cfg = ServeConfig::new(EngineConfig::vegeta_s(16).unwrap())
//!     .with_workers(2)
//!     .with_fidelity(Fidelity::Quick(8));
//! let load = LoadGen::new(2_000.0, 24).with_seed(7);
//! let report = Server::new(cfg).serve(&load);
//! assert_eq!(report.completed + report.shed + report.rejected, 24);
//! assert!(report.p99_latency_us >= report.p50_latency_us);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod loadgen;
mod report;
mod request;
mod server;
mod worker;

pub use batch::{Admit, Batch, Batcher, BatcherConfig};
pub use loadgen::{default_mix, LoadGen, MixEntry};
pub use report::{percentile_us, ServeReport};
pub use request::{BatchKey, Outcome, Request, RequestError, Response, Work};
pub use server::{Frontend, ServeConfig, Server, ServiceMemo};
pub use worker::{SimOutcome, VirtualClock, WorkerPool};
