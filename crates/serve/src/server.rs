//! The server: frontend admission, the deterministic virtual-time event
//! loop, and the configuration that ties engine, fleet and batcher
//! together.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use vegeta::prelude::*;
use vegeta::session::Preflight;

use crate::batch::{Admit, Batcher, BatcherConfig};
use crate::loadgen::LoadGen;
use crate::report::{percentile_us, ServeReport};
use crate::request::{BatchKey, Outcome, Request, RequestError, Response};
use crate::worker::{SimOutcome, WorkerPool};

/// Serving configuration: the engine and fleet the workers model, the
/// admission bound, and the batching policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine every worker runs.
    pub engine: EngineConfig,
    /// Per-core simulator configuration (also the virtual-clock source).
    pub sim: SimConfig,
    /// Fleet size: virtual workers serving batches.
    pub workers: usize,
    /// Simulator cores per worker (1 = unsharded [`CoreSim`] worker).
    pub cores_per_worker: usize,
    /// How multi-core workers shard a kernel.
    pub scheduler: SchedulerPolicy,
    /// Admission bound: requests admitted but not yet dispatched beyond
    /// this are shed.
    pub queue_depth: usize,
    /// Batching policy.
    pub batcher: BatcherConfig,
    /// Shape fidelity for layer requests.
    pub fidelity: Fidelity,
    /// Kernel generation options for layer requests.
    pub opts: KernelOptions,
    /// Host threads simulating distinct batch keys (`0` = one per
    /// worker). Never affects results, only how fast they are computed.
    pub threads: usize,
    /// Whether admission runs the `vegeta-lint` preflight on spec
    /// requests.
    pub preflight: bool,
}

impl ServeConfig {
    /// Defaults: 4 single-core workers, LPT scheduling, a 64-deep queue,
    /// the default batching window, full fidelity, preflight on.
    pub fn new(engine: EngineConfig) -> Self {
        ServeConfig {
            engine,
            sim: SimConfig::default(),
            workers: 4,
            cores_per_worker: 1,
            scheduler: SchedulerPolicy::Lpt,
            queue_depth: 64,
            batcher: BatcherConfig::default(),
            fidelity: Fidelity::Full,
            opts: KernelOptions::default(),
            threads: 0,
            preflight: true,
        }
    }

    /// Sets the fleet size (at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets simulator cores per worker (at least 1).
    pub fn with_cores_per_worker(mut self, cores: usize) -> Self {
        self.cores_per_worker = cores.max(1);
        self
    }

    /// Sets the scheduler policy for multi-core workers.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the admission queue bound (at least 1).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the batching policy.
    pub fn with_batcher(mut self, batcher: BatcherConfig) -> Self {
        self.batcher = batcher;
        self
    }

    /// Disables batching (every request is a batch of one).
    pub fn without_batching(mut self) -> Self {
        self.batcher = BatcherConfig::off();
        self
    }

    /// Sets the shape fidelity for layer requests.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Sets the host thread count for key simulation (`0` = one per
    /// worker).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the admission preflight.
    pub fn with_preflight(mut self, enabled: bool) -> Self {
        self.preflight = enabled;
        self
    }

    /// The host thread count actually used.
    ///
    /// `0` means one per worker. When workers are multi-core, each
    /// worker's key simulation can itself fan out over host threads
    /// (the parallel shared-L2 replay), so the phase-1 fan-out is capped
    /// at the host's available parallelism — oversubscribing both layers
    /// at once only adds scheduling noise, never changes results.
    pub(crate) fn host_threads(&self) -> usize {
        let threads = if self.threads == 0 {
            self.workers
        } else {
            self.threads
        };
        if self.cores_per_worker > 1 {
            let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            threads.min(avail).max(1)
        } else {
            threads
        }
    }

    /// The `cores` argument admission preflights at: 0 selects the
    /// unsharded lint path for single-core workers, matching what the
    /// worker will execute.
    fn preflight_cores(&self) -> usize {
        if self.cores_per_worker <= 1 {
            0
        } else {
            self.cores_per_worker
        }
    }
}

/// The admission frontend: resolves each request to its batch key,
/// structurally validates it, and (for spec requests) runs the memoized
/// `vegeta-lint` preflight — so a malformed or unverifiable spec becomes a
/// structured [`RequestError`] at the door instead of a panic inside a
/// worker.
#[derive(Debug, Clone)]
pub struct Frontend {
    engine: EngineConfig,
    opts: KernelOptions,
    fidelity: Fidelity,
    cores: usize,
    scheduler: SchedulerPolicy,
    preflight: Preflight,
}

impl Frontend {
    /// The frontend for `cfg`, sharing `preflight`'s verification memo.
    pub fn new(cfg: &ServeConfig, preflight: Preflight) -> Self {
        Frontend {
            engine: cfg.engine.clone(),
            opts: cfg.opts,
            fidelity: cfg.fidelity,
            cores: cfg.preflight_cores(),
            scheduler: cfg.scheduler,
            preflight: preflight.with_enabled(cfg.preflight),
        }
    }

    /// Admits one request: `Ok` with the key it will execute as, or the
    /// structured error the client gets back.
    pub fn admit(&self, request: &Request) -> Result<BatchKey, RequestError> {
        let key = request
            .work
            .resolve(&self.engine, self.opts, self.fidelity)?;
        self.preflight
            .verify(key.shape, &key.spec, self.cores, self.scheduler)
            .map_err(RequestError::Preflight)?;
        Ok(key)
    }
}

/// Event kinds of the virtual-time loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A worker finished its batch and is free again.
    Free { worker: usize },
    /// A request arrives at the frontend.
    Arrive { req: usize },
    /// A batch's window expired.
    Close { batch: usize },
}

/// A heap entry: ordered by time, then kind (Free < Arrive < Close, so a
/// freed worker is visible to arrivals on the same tick and a zero-window
/// close still coalesces that tick's arrivals), then insertion sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: u64,
    order: u8,
    seq: u64,
    kind: EventKind,
}

/// The batched serving loop over a simulated worker fleet.
///
/// `serve` replays admission, batching, dispatch and completion on a
/// single-threaded discrete-event loop over virtual time. Host threads
/// parallelize only the per-key *simulations* (phase 1); the timeline
/// itself (phase 2) is sequential and fully ordered, so the emitted
/// [`ServeReport`] is byte-identical for a given `(config, load)`
/// regardless of host machine or thread count.
#[derive(Debug)]
pub struct Server {
    cfg: ServeConfig,
    cache: Arc<TraceCache>,
    preflight: Preflight,
    memo: Option<ServiceMemo>,
}

/// A shareable memo of per-key simulation outcomes, for reusing service
/// times across servers whose workers are identical (same engine, sim
/// config, cores per worker and scheduler — the caller's contract; the
/// memo itself cannot check it).
pub type ServiceMemo = Arc<Mutex<HashMap<BatchKey, SimOutcome>>>;

impl Server {
    /// A server over a fresh shared [`TraceCache`].
    pub fn new(cfg: ServeConfig) -> Self {
        Server {
            cfg,
            cache: TraceCache::shared(),
            preflight: Preflight::new(),
            memo: None,
        }
    }

    /// Shares an existing trace cache (e.g. across sweep cells).
    pub fn with_cache(mut self, cache: Arc<TraceCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Shares a [`ServiceMemo`] across servers with identical worker
    /// configurations, so a QPS/worker-count sweep simulates each distinct
    /// key once instead of once per cell. Memoized or fresh, the outcomes
    /// are identical — the memo changes cost, never results.
    pub fn with_service_memo(mut self, memo: ServiceMemo) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Shares an existing preflight memo (e.g. with a
    /// [`Session`](vegeta::session::Session)).
    pub fn with_preflight_memo(mut self, preflight: Preflight) -> Self {
        self.preflight = preflight;
        self
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The admission frontend this server applies.
    pub fn frontend(&self) -> Frontend {
        Frontend::new(&self.cfg, self.preflight.clone())
    }

    /// The worker pool this server dispatches to.
    pub fn pool(&self) -> WorkerPool {
        WorkerPool::new(
            self.cfg.engine.clone(),
            self.cfg.sim.clone(),
            self.cfg.cores_per_worker,
            self.cfg.scheduler,
            self.cfg.host_threads(),
            Arc::clone(&self.cache),
        )
    }

    /// Generates `load`'s arrival trace and serves it.
    pub fn serve(&self, load: &LoadGen) -> ServeReport {
        self.serve_requests(&load.generate(), load.qps, load.seed).0
    }

    /// Serves an explicit request trace. `offered_qps` and `seed` are
    /// echoed into the report (use the [`LoadGen`] values, or 0 for
    /// hand-built traces). Returns the report plus one [`Response`] per
    /// request, in input order.
    pub fn serve_requests(
        &self,
        requests: &[Request],
        offered_qps: f64,
        seed: u64,
    ) -> (ServeReport, Vec<Response>) {
        let frontend = self.frontend();

        // Admission: resolve every request to its key or its error.
        let admissions: Vec<Result<BatchKey, RequestError>> =
            requests.iter().map(|r| frontend.admit(r)).collect();

        // Phase 1: simulate each distinct admissible key once, fanning
        // out over host threads (results are thread-count independent).
        let keys: Vec<BatchKey> = admissions.iter().flatten().cloned().collect();
        let pool = self.pool();
        let outcomes: HashMap<BatchKey, SimOutcome> = match &self.memo {
            None => pool.simulate_all(&keys),
            Some(memo) => {
                let cached: HashMap<BatchKey, SimOutcome> = {
                    let memo = memo.lock().expect("service memo poisoned");
                    keys.iter()
                        .filter_map(|k| memo.get(k).map(|o| (k.clone(), *o)))
                        .collect()
                };
                let missing: Vec<BatchKey> = keys
                    .iter()
                    .filter(|k| !cached.contains_key(*k))
                    .cloned()
                    .collect();
                let mut fresh = pool.simulate_all(&missing);
                let mut memo = memo.lock().expect("service memo poisoned");
                for (k, o) in &fresh {
                    memo.insert(k.clone(), *o);
                }
                fresh.extend(cached);
                fresh
            }
        };

        // Phase 2: the sequential virtual-time replay.
        self.replay(requests, &admissions, &outcomes, offered_qps, seed)
    }

    /// The discrete-event replay: arrivals, admission control, batching,
    /// dispatch to the earliest-free lowest-id worker, completion.
    #[allow(clippy::too_many_lines)] // one linear event loop reads better unsplit
    fn replay(
        &self,
        requests: &[Request],
        admissions: &[Result<BatchKey, RequestError>],
        outcomes: &HashMap<BatchKey, SimOutcome>,
        offered_qps: f64,
        seed: u64,
    ) -> (ServeReport, Vec<Response>) {
        let cfg = &self.cfg;
        let mut responses: Vec<Option<Outcome>> = vec![None; requests.len()];
        let mut events: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |events: &mut BinaryHeap<Reverse<Event>>, at: u64, kind: EventKind| {
            let order = match kind {
                EventKind::Free { .. } => 0,
                EventKind::Arrive { .. } => 1,
                EventKind::Close { .. } => 2,
            };
            events.push(Reverse(Event {
                at,
                order,
                seq,
                kind,
            }));
            seq += 1;
        };

        // Reject at the door; queue arrivals for everyone else. Arrival
        // events are pushed in input order, so equal-time arrivals keep
        // their submission order (seq breaks the tie).
        for (i, admission) in admissions.iter().enumerate() {
            match admission {
                Err(err) => responses[i] = Some(Outcome::Rejected(err.clone())),
                Ok(_) => push(
                    &mut events,
                    requests[i].arrival_us,
                    EventKind::Arrive { req: i },
                ),
            }
        }

        let mut batcher = Batcher::new(cfg.batcher);
        let mut ready: VecDeque<usize> = VecDeque::new();
        let mut idle: BTreeSet<usize> = (0..cfg.workers).collect();
        let mut busy_us: Vec<u64> = vec![0; cfg.workers];
        let mut queued = 0usize;
        let mut max_queue_depth = 0usize;
        let mut shed = 0usize;
        let mut latencies: Vec<u64> = Vec::new();
        let mut batch_hist: HashMap<usize, usize> = HashMap::new();
        let mut deadline_misses = 0usize;
        let mut batches_dispatched = 0usize;
        let mut makespan_us = 0u64;

        while let Some(Reverse(event)) = events.pop() {
            let now = event.at;
            match event.kind {
                EventKind::Free { worker } => {
                    idle.insert(worker);
                }
                EventKind::Arrive { req } => {
                    if queued >= cfg.queue_depth {
                        responses[req] = Some(Outcome::Shed {
                            queue_depth: cfg.queue_depth,
                        });
                        shed += 1;
                        continue;
                    }
                    queued += 1;
                    max_queue_depth = max_queue_depth.max(queued);
                    let key = admissions[req].as_ref().expect("admitted request has key");
                    match batcher.add(key, req, now) {
                        Admit::Joined { .. } => {}
                        Admit::Opened { batch, close_at_us } => {
                            push(&mut events, close_at_us, EventKind::Close { batch });
                        }
                        Admit::Filled { batch } => ready.push_back(batch),
                    }
                }
                EventKind::Close { batch } => {
                    if batcher.close(batch, now) {
                        ready.push_back(batch);
                    }
                }
            }

            // Dispatch every ready batch an idle worker can take, FIFO to
            // the lowest idle worker id — both deterministic orders.
            while !ready.is_empty() {
                let Some(&worker) = idle.iter().next() else {
                    break;
                };
                idle.remove(&worker);
                let batch_idx = ready.pop_front().expect("checked non-empty");
                let batch = batcher.batch(batch_idx);
                let outcome = outcomes[&batch.key];
                let finish = now + outcome.service_us;
                busy_us[worker] += outcome.service_us;
                makespan_us = makespan_us.max(finish);
                batches_dispatched += 1;
                *batch_hist.entry(batch.len()).or_insert(0) += 1;
                for &req in &batch.members {
                    let request = &requests[req];
                    let latency = finish - request.arrival_us;
                    let missed = request.deadline_us.is_some_and(|d| latency > d);
                    deadline_misses += usize::from(missed);
                    latencies.push(latency);
                    responses[req] = Some(Outcome::Completed {
                        start_us: now,
                        finish_us: finish,
                        batch_size: batch.len(),
                        worker,
                        missed_deadline: missed,
                    });
                }
                queued -= batch.len();
                push(&mut events, finish, EventKind::Free { worker });
            }
        }

        let rejected = admissions.iter().filter(|a| a.is_err()).count();
        let completed = latencies.len();
        latencies.sort_unstable();
        let mut hist: Vec<(usize, usize)> = batch_hist.into_iter().collect();
        hist.sort_unstable();
        let achieved_qps = if makespan_us == 0 {
            0.0
        } else {
            completed as f64 / (makespan_us as f64 / 1e6)
        };
        let mean_latency_us = if completed == 0 {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / completed as f64
        };
        let report = ServeReport {
            engine: cfg.engine.name().to_string(),
            scheduler: cfg.scheduler.label().to_string(),
            workers: cfg.workers,
            cores_per_worker: cfg.cores_per_worker,
            clock_ghz: cfg.sim.core_ghz,
            queue_depth: cfg.queue_depth,
            window_us: cfg.batcher.window_us,
            max_batch: cfg.batcher.max_batch,
            fidelity: cfg.fidelity.to_string(),
            seed,
            offered_qps,
            offered: requests.len(),
            admitted: requests.len() - rejected - shed,
            rejected,
            shed,
            completed,
            deadline_misses,
            batches: batches_dispatched,
            batch_hist: hist,
            max_queue_depth,
            makespan_us,
            achieved_qps,
            mean_latency_us,
            p50_latency_us: percentile_us(&latencies, 50.0),
            p95_latency_us: percentile_us(&latencies, 95.0),
            p99_latency_us: percentile_us(&latencies, 99.0),
            max_latency_us: latencies.last().copied().unwrap_or(0),
            per_worker_busy_us: busy_us,
            distinct_keys: outcomes.len(),
            sim_cycles: outcomes.values().map(|o| o.cycles).sum(),
            host_threads: cfg.host_threads(),
        };
        let responses = responses
            .into_iter()
            .enumerate()
            .map(|(i, outcome)| Response {
                id: requests[i].id,
                arrival_us: requests[i].arrival_us,
                outcome: outcome.expect("every request resolved"),
            })
            .collect();
        (report, responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Work;

    fn spec_request(id: u64, arrival_us: u64, m: usize) -> Request {
        Request {
            id,
            work: Work::Spec {
                shape: GemmShape::new(m, 16, 128),
                spec: KernelSpec::tiled(SparseMode::Dense),
            },
            arrival_us,
            deadline_us: None,
        }
    }

    fn base_config() -> ServeConfig {
        ServeConfig::new(EngineConfig::rasa_dm())
            .with_workers(1)
            .with_fidelity(Fidelity::Quick(8))
    }

    #[test]
    fn sheds_exactly_when_queue_is_full() {
        // One worker, singleton batches, queue depth 2. Request 0 is
        // dispatched immediately (the worker is idle), requests 1 and 2
        // fill the queue, request 3 finds it full and is shed; request 4
        // arrives after slots have drained and completes.
        let cfg = base_config().without_batching().with_queue_depth(2);
        let server = Server::new(cfg);
        let mut requests: Vec<Request> = (0..4).map(|i| spec_request(i, 0, 16)).collect();
        requests.push(spec_request(4, 1_000_000, 16));
        let (report, responses) = server.serve_requests(&requests, 0.0, 0);
        assert_eq!(report.shed, 1, "{report:?}");
        assert!(
            matches!(responses[3].outcome, Outcome::Shed { queue_depth: 2 }),
            "{:?}",
            responses[3]
        );
        assert_eq!(report.completed, 4);
        assert_eq!(report.max_queue_depth, 2);
    }

    #[test]
    fn batch_window_coalesces_and_queue_counts_drain() {
        // Four same-key requests inside one window on one worker: one
        // batch of four, all four share start/finish times.
        let cfg = base_config().with_batcher(BatcherConfig {
            window_us: 100,
            max_batch: 8,
        });
        let server = Server::new(cfg);
        let requests: Vec<Request> = (0..4).map(|i| spec_request(i, i * 10, 16)).collect();
        let (report, responses) = server.serve_requests(&requests, 0.0, 0);
        assert_eq!(report.batches, 1);
        assert_eq!(report.batch_hist, vec![(4, 1)]);
        assert_eq!(report.completed, 4);
        let finishes: Vec<_> = responses
            .iter()
            .filter_map(|r| match r.outcome {
                Outcome::Completed { finish_us, .. } => Some(finish_us),
                _ => None,
            })
            .collect();
        assert!(finishes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn malformed_spec_is_rejected_not_panicked() {
        let server = Server::new(base_config());
        let bad = Request {
            id: 9,
            work: Work::Spec {
                shape: GemmShape::new(32, 16, 128),
                spec: KernelSpec::RowWise {
                    row_ratios: vec![NmRatio::S2_4; 8], // 8 covers, 32 rows
                },
            },
            arrival_us: 0,
            deadline_us: None,
        };
        let (report, responses) = server.serve_requests(&[bad], 0.0, 0);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed, 0);
        assert!(
            matches!(
                &responses[0].outcome,
                Outcome::Rejected(RequestError::Malformed(msg)) if msg.contains("8")
            ),
            "{:?}",
            responses[0]
        );
    }

    #[test]
    fn report_surfaces_the_host_thread_count_outside_the_json() {
        // Explicit thread counts pass through for single-core workers;
        // multi-core workers cap the phase-1 fan-out at the host's
        // available parallelism. Either way the field stays host-side
        // metadata: it never appears in the serialized report.
        let cfg = base_config().with_threads(3);
        let (report, _) = Server::new(cfg).serve_requests(&[spec_request(0, 0, 16)], 0.0, 0);
        assert_eq!(report.host_threads, 3);
        assert!(!report.to_json().contains("host_threads"));

        let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let cfg = base_config()
            .with_cores_per_worker(2)
            .with_threads(avail + 7);
        let (report, _) = Server::new(cfg).serve_requests(&[spec_request(0, 0, 16)], 0.0, 0);
        assert_eq!(report.host_threads, avail);
    }

    #[test]
    fn deadline_misses_are_counted() {
        let cfg = base_config().without_batching();
        let server = Server::new(cfg);
        let mut req = spec_request(0, 0, 64);
        req.deadline_us = Some(0); // impossible: service is never free
        let (report, responses) = server.serve_requests(&[req], 0.0, 0);
        assert_eq!(report.deadline_misses, 1);
        assert!(matches!(
            responses[0].outcome,
            Outcome::Completed {
                missed_deadline: true,
                ..
            }
        ));
    }

    #[test]
    fn service_memo_changes_cost_not_results() {
        let requests: Vec<Request> = (0..6).map(|i| spec_request(i, i * 5, 16)).collect();
        let fresh = Server::new(base_config()).serve_requests(&requests, 0.0, 0);
        let memo: crate::ServiceMemo = Arc::default();
        let warm = Server::new(base_config()).with_service_memo(Arc::clone(&memo));
        let first = warm.serve_requests(&requests, 0.0, 0);
        assert_eq!(memo.lock().unwrap().len(), 1, "one distinct key memoized");
        // Second serve hits the memo for every key; the report is unchanged.
        let second = warm.serve_requests(&requests, 0.0, 0);
        assert_eq!(fresh.0.to_json(), first.0.to_json());
        assert_eq!(fresh.0.to_json(), second.0.to_json());
    }

    #[test]
    fn workers_drain_in_lowest_id_order() {
        let cfg = base_config().with_workers(3).without_batching();
        let server = Server::new(cfg);
        let requests: Vec<Request> = (0..3).map(|i| spec_request(i, 0, 16)).collect();
        let (_, responses) = server.serve_requests(&requests, 0.0, 0);
        let workers: Vec<_> = responses
            .iter()
            .map(|r| match r.outcome {
                Outcome::Completed { worker, .. } => worker,
                _ => usize::MAX,
            })
            .collect();
        assert_eq!(workers, vec![0, 1, 2]);
    }
}
