//! The batcher: coalesces same-key requests inside a time/size window.

use std::collections::HashMap;

use crate::request::BatchKey;

/// Batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// How long (virtual µs) a batch stays open after its first request
    /// before it is closed and dispatched. `0` coalesces only requests
    /// arriving on the same virtual-clock tick.
    pub window_us: u64,
    /// Maximum requests per batch; a batch reaching this closes
    /// immediately and later same-key arrivals open a fresh batch
    /// (overflow *splits*, it never drops).
    pub max_batch: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            window_us: 200,
            max_batch: 8,
        }
    }
}

impl BatcherConfig {
    /// Batching disabled: every request is its own batch of one.
    pub fn off() -> Self {
        BatcherConfig {
            window_us: 0,
            max_batch: 1,
        }
    }
}

/// One batch of same-key requests.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The shared execution key.
    pub key: BatchKey,
    /// Indices (caller-defined) of the member requests, in arrival order.
    pub members: Vec<usize>,
    /// Virtual time the batch opened (first member's arrival).
    pub opened_us: u64,
    /// Virtual time the batch closed, once it has.
    pub closed_us: Option<u64>,
}

impl Batch {
    /// Number of member requests.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the batch has no members (never true for batches the
    /// [`Batcher`] hands out, but part of the container contract).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// What [`Batcher::add`] did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Joined the already-open batch `batch`; its close timer is
    /// unchanged.
    Joined {
        /// Index of the joined batch.
        batch: usize,
    },
    /// Opened a new batch; the caller must close it at `close_at_us`
    /// unless it fills first.
    Opened {
        /// Index of the new batch.
        batch: usize,
        /// Virtual deadline for [`Batcher::close`].
        close_at_us: u64,
    },
    /// The request filled the batch to `max_batch`; the batch closed
    /// immediately and is ready to dispatch.
    Filled {
        /// Index of the now-closed batch.
        batch: usize,
    },
}

impl Admit {
    /// The batch index, whichever way the request was admitted.
    pub fn batch(self) -> usize {
        match self {
            Admit::Joined { batch } | Admit::Opened { batch, .. } | Admit::Filled { batch } => {
                batch
            }
        }
    }
}

/// Coalesces requests that share a [`BatchKey`] within a time/size window
/// so one simulated execution serves many requests.
///
/// The batcher is a passive state machine on the virtual clock: the event
/// loop calls [`add`](Batcher::add) at each arrival and
/// [`close`](Batcher::close) when a window expires, and dispatches batches
/// as they close. At most one batch per key is open at a time.
#[derive(Debug, Default)]
pub struct Batcher {
    cfg: BatcherConfig,
    batches: Vec<Batch>,
    open: HashMap<BatchKey, usize>,
}

impl Batcher {
    /// A batcher with the given policy.
    pub fn new(cfg: BatcherConfig) -> Self {
        Batcher {
            cfg,
            batches: Vec::new(),
            open: HashMap::new(),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> BatcherConfig {
        self.cfg
    }

    /// Admits request `member` (an opaque caller index) with key `key` at
    /// virtual time `now_us`. See [`Admit`] for the caller's obligations.
    pub fn add(&mut self, key: &BatchKey, member: usize, now_us: u64) -> Admit {
        let max_batch = self.cfg.max_batch.max(1);
        if let Some(&idx) = self.open.get(key) {
            let batch = &mut self.batches[idx];
            batch.members.push(member);
            if batch.len() >= max_batch {
                batch.closed_us = Some(now_us);
                self.open.remove(key);
                return Admit::Filled { batch: idx };
            }
            return Admit::Joined { batch: idx };
        }
        let idx = self.batches.len();
        self.batches.push(Batch {
            key: key.clone(),
            members: vec![member],
            opened_us: now_us,
            closed_us: None,
        });
        if max_batch == 1 {
            self.batches[idx].closed_us = Some(now_us);
            return Admit::Filled { batch: idx };
        }
        self.open.insert(key.clone(), idx);
        Admit::Opened {
            batch: idx,
            close_at_us: now_us + self.cfg.window_us,
        }
    }

    /// Closes batch `batch` at `now_us` because its window expired.
    /// Returns `false` (a stale timer) if it already closed by filling;
    /// the caller dispatches only on `true`.
    pub fn close(&mut self, batch: usize, now_us: u64) -> bool {
        let b = &mut self.batches[batch];
        if b.closed_us.is_some() {
            return false;
        }
        b.closed_us = Some(now_us);
        self.open.remove(&b.key);
        true
    }

    /// The batch at `idx`.
    pub fn batch(&self, idx: usize) -> &Batch {
        &self.batches[idx]
    }

    /// All batches opened so far, in open order.
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegeta::prelude::*;

    fn key(m: usize) -> BatchKey {
        BatchKey {
            shape: GemmShape::new(m, 16, 128),
            spec: KernelSpec::tiled(SparseMode::Dense),
        }
    }

    #[test]
    fn single_request_opens_then_closes_on_window() {
        let mut b = Batcher::new(BatcherConfig {
            window_us: 100,
            max_batch: 4,
        });
        let admit = b.add(&key(16), 0, 50);
        assert_eq!(
            admit,
            Admit::Opened {
                batch: 0,
                close_at_us: 150
            }
        );
        assert!(b.close(0, 150));
        assert_eq!(b.batch(0).members, vec![0]);
        assert_eq!(b.batch(0).closed_us, Some(150));
    }

    #[test]
    fn empty_window_coalesces_same_tick_only() {
        // window_us = 0: the close deadline equals the open tick, so only
        // arrivals on that same tick can join.
        let mut b = Batcher::new(BatcherConfig {
            window_us: 0,
            max_batch: 8,
        });
        let Admit::Opened { batch, close_at_us } = b.add(&key(16), 0, 10) else {
            panic!("first add must open");
        };
        assert_eq!(close_at_us, 10);
        assert_eq!(b.add(&key(16), 1, 10), Admit::Joined { batch });
        assert!(b.close(batch, 10));
        // A later arrival opens a fresh batch.
        let next = b.add(&key(16), 2, 11);
        assert!(matches!(next, Admit::Opened { batch: 1, .. }), "{next:?}");
        assert_eq!(b.batch(0).len(), 2);
    }

    #[test]
    fn overflow_splits_into_a_new_batch() {
        let mut b = Batcher::new(BatcherConfig {
            window_us: 100,
            max_batch: 2,
        });
        assert!(matches!(b.add(&key(16), 0, 0), Admit::Opened { .. }));
        assert_eq!(b.add(&key(16), 1, 0), Admit::Filled { batch: 0 });
        // Third same-key request: the filled batch is gone, a new one opens.
        assert!(matches!(
            b.add(&key(16), 2, 0),
            Admit::Opened { batch: 1, .. }
        ));
        assert_eq!(b.batch(0).members, vec![0, 1]);
        assert_eq!(b.batch(1).members, vec![2]);
    }

    #[test]
    fn distinct_keys_never_share_a_batch() {
        let mut b = Batcher::new(BatcherConfig::default());
        let a = b.add(&key(16), 0, 0).batch();
        let c = b.add(&key(32), 1, 0).batch();
        assert_ne!(a, c);
    }

    #[test]
    fn stale_close_after_fill_is_ignored() {
        let mut b = Batcher::new(BatcherConfig {
            window_us: 100,
            max_batch: 1,
        });
        assert_eq!(b.add(&key(16), 0, 0), Admit::Filled { batch: 0 });
        assert!(!b.close(0, 100), "close after fill must be a no-op");
    }

    #[test]
    fn batching_off_makes_singleton_batches() {
        let mut b = Batcher::new(BatcherConfig::off());
        for i in 0..3 {
            assert_eq!(b.add(&key(16), i, 0), Admit::Filled { batch: i });
        }
        assert!(b.batches().iter().all(|batch| batch.len() == 1));
    }
}
