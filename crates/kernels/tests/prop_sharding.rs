//! Shard-invariance properties of `KernelSpec::shard_streams`.
//!
//! Sharding partitions a kernel's tile-loop nest by M-tile rows for
//! multi-core replay. Two invariants make the sharded run trustworthy:
//!
//! 1. **Functional invariance** — the shards, replayed in order, emit
//!    exactly the same ops as the unsharded stream (so `n` cores execute
//!    precisely the single-core kernel, redistributed);
//! 2. **Exact-length accounting** — the sum of every shard's `remaining()`
//!    equals the unsharded exact length (the progress/accounting contract
//!    each core relies on), and each shard's declared length matches what
//!    it actually emits.
//!
//! Both are checked for every kernel family × the execution modes the §VI
//! engine classes select (dense baselines run dense, the STC-like engine
//! runs 2:4, the VEGETA-S designs run every pattern), across arbitrary
//! shapes and shard counts.

use proptest::prelude::*;
use vegeta_isa::stream::InstStream;
use vegeta_isa::trace::Trace;
use vegeta_kernels::{GemmShape, Kernel, KernelOptions, KernelSpec, SparseMode};
use vegeta_sparse::NmRatio;

/// Every kernel family, in the modes the §VI engine classes execute:
/// dense / 2:4 / 1:4 tiled kernels (the VEGETA-D, STC-like and VEGETA-S
/// execution modes), the Listing-1 baseline, the row-wise unstructured
/// kernel, and the vector-engine fallback.
fn all_family_specs() -> Vec<KernelSpec> {
    let mut specs = Vec::new();
    for mode in [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4] {
        specs.push(KernelSpec::tiled(mode));
        specs.push(KernelSpec::Listing1 { mode });
    }
    specs.push(KernelSpec::Tiled {
        mode: SparseMode::Nm2of4,
        opts: KernelOptions {
            unroll: 1,
            loop_overhead: false,
        },
    });
    let mut ratios = vec![NmRatio::S1_4; 11];
    ratios.extend(vec![NmRatio::S2_4; 9]);
    ratios.extend(vec![NmRatio::D4_4; 4]);
    specs.push(KernelSpec::RowWise { row_ratios: ratios });
    specs.push(KernelSpec::Vector);
    specs
}

fn concat_shards(spec: &KernelSpec, shape: GemmShape, n: usize) -> (Trace, u64) {
    let mut rejoined = Trace::new();
    let mut declared = 0u64;
    for mut shard in spec.shard_streams(shape, n) {
        declared += shard.remaining();
        let part = shard.collect_trace();
        for op in part.ops() {
            rejoined.push(*op);
        }
        assert_eq!(shard.remaining(), 0, "drained shard stays drained");
    }
    (rejoined, declared)
}

proptest! {
    /// Concatenated shards replay functionally identical to the unsharded
    /// stream, and the summed exact lengths agree, for every kernel family
    /// and shard count — including shard counts exceeding the row count.
    #[test]
    fn shards_concatenate_to_the_unsharded_stream(
        mt in 1usize..7,
        nt in 1usize..4,
        k in 1usize..280,
        cores in 1usize..10,
    ) {
        let shape = GemmShape::new(mt * 16, nt * 16, k);
        for spec in all_family_specs() {
            let whole = spec.build(shape);
            let (rejoined, declared) = concat_shards(&spec, shape, cores);
            prop_assert_eq!(declared, whole.len() as u64, "exact length, {:?}", &spec);
            prop_assert_eq!(rejoined, whole, "op-for-op identity, {:?}", &spec);
        }
    }

    /// Ragged (non-tile-aligned) shapes shard just as losslessly.
    #[test]
    fn ragged_shapes_shard_losslessly(
        m in 1usize..80,
        n in 1usize..50,
        k in 1usize..200,
        cores in 1usize..6,
    ) {
        let shape = GemmShape::new(m, n, k);
        for spec in [KernelSpec::tiled(SparseMode::Nm2of4), KernelSpec::Vector] {
            let whole = spec.build(shape);
            let (rejoined, declared) = concat_shards(&spec, shape, cores);
            prop_assert_eq!(declared, whole.len() as u64);
            prop_assert_eq!(rejoined, whole);
        }
    }
}

#[test]
fn shard_count_one_is_the_identity() {
    let shape = GemmShape::new(96, 48, 256);
    for spec in all_family_specs() {
        let shards = spec.shard_streams(shape, 1);
        assert_eq!(shards.len(), 1);
        let (rejoined, _) = concat_shards(&spec, shape, 1);
        assert_eq!(rejoined, spec.build(shape));
    }
}

#[test]
fn shards_bound_residency_like_the_unsharded_stream() {
    // Each shard's peak residency stays at one tile-loop cell — sharding
    // must not reintroduce materialization anywhere.
    let shape = GemmShape::new(256, 64, 512);
    let spec = KernelSpec::tiled(SparseMode::Dense);
    let whole_chunk = spec.stream(shape).max_block_ops();
    for mut shard in spec.shard_streams(shape, 4) {
        let bytes = shard.remaining() as usize * vegeta_isa::TRACE_OP_BYTES;
        assert!(bytes > 0, "a 16-row-tile kernel fills all four shards");
        while shard.next_op().is_some() {}
        assert!(shard.max_block_ops() <= whole_chunk);
        assert!(
            shard.peak_resident_bytes() < bytes / 2,
            "peak {} vs materialized {}",
            shard.peak_resident_bytes(),
            bytes
        );
    }
}

#[test]
fn excess_cores_get_empty_shards_not_errors() {
    // A 2-row-tile kernel sharded 8 ways: trailing shards are empty but
    // well-formed (exact length 0, immediate drain).
    let shape = GemmShape::new(32, 32, 128);
    let spec = KernelSpec::tiled(SparseMode::Dense);
    let shards = spec.shard_streams(shape, 8);
    assert_eq!(shards.len(), 8);
    let non_empty = shards.iter().filter(|s| s.remaining() > 0).count();
    assert!(non_empty <= 2, "at most one shard per accumulator group");
    let (rejoined, declared) = concat_shards(&spec, shape, 8);
    assert_eq!(declared, spec.build(shape).len() as u64);
    assert_eq!(rejoined, spec.build(shape));
}
