//! Shard-invariance properties of `KernelSpec::shard_streams` and
//! `KernelSpec::shard_set`.
//!
//! Sharding partitions a kernel's tile-loop nest for multi-core replay:
//! the legacy 1D split cuts M-tile rows, and `ShardPlan` generalizes to
//! M×N rectangles of the block grid plus K-depth slices. The invariants
//! that make a sharded run trustworthy:
//!
//! 1. **Functional invariance** — 1D shards, replayed in order,
//!    concatenate op-for-op to the unsharded stream; 2D (M×N) shards are
//!    a pure *permutation* of it (every op exactly once, order free);
//!    K-split shards preserve the tile-compute ops and every `A`/`B`
//!    memory read exactly once, with the extra partial-`C` traffic
//!    write-side only and the post-barrier reduction merging partials
//!    with vector ops (no tile compute of its own);
//! 2. **Exact-length accounting** — each stream's declared `remaining()`
//!    matches what it actually emits (the progress/accounting contract
//!    each core and the LPT scheduler rely on), and no clamped plan
//!    produces an empty shard.
//!
//! All are checked for every kernel family × the execution modes the §VI
//! engine classes select (dense baselines run dense, the STC-like engine
//! runs 2:4, the VEGETA-S designs run every pattern), across arbitrary
//! shapes — ragged ones included — shard counts, and plan axes.

use proptest::prelude::*;
use vegeta_isa::stream::InstStream;
use vegeta_isa::trace::{Trace, TraceOp};
use vegeta_kernels::{
    GemmShape, Kernel, KernelEmitter, KernelOptions, KernelSpec, ShardPlan, ShardSet, SparseMode,
};
use vegeta_sparse::NmRatio;

/// Every kernel family, in the modes the §VI engine classes execute:
/// dense / 2:4 / 1:4 tiled kernels (the VEGETA-D, STC-like and VEGETA-S
/// execution modes), the Listing-1 baseline, the row-wise unstructured
/// kernel, and the vector-engine fallback.
fn all_family_specs() -> Vec<KernelSpec> {
    let mut specs = Vec::new();
    for mode in [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4] {
        specs.push(KernelSpec::tiled(mode));
        specs.push(KernelSpec::Listing1 { mode });
    }
    specs.push(KernelSpec::Tiled {
        mode: SparseMode::Nm2of4,
        opts: KernelOptions {
            unroll: 1,
            loop_overhead: false,
        },
    });
    let mut ratios = vec![NmRatio::S1_4; 11];
    ratios.extend(vec![NmRatio::S2_4; 9]);
    ratios.extend(vec![NmRatio::D4_4; 4]);
    specs.push(KernelSpec::RowWise { row_ratios: ratios });
    specs.push(KernelSpec::Vector);
    specs
}

fn concat_shards(spec: &KernelSpec, shape: GemmShape, n: usize) -> (Trace, u64) {
    let mut rejoined = Trace::new();
    let mut declared = 0u64;
    for mut shard in spec.shard_streams(shape, n) {
        declared += shard.remaining();
        let part = shard.collect_trace();
        for op in part.ops() {
            rejoined.push(*op);
        }
        assert_eq!(shard.remaining(), 0, "drained shard stays drained");
    }
    (rejoined, declared)
}

/// Sorts the ops of a trace into a canonical multiset representation (2D
/// rectangles sweep the block grid in a different order than the
/// unsharded row-major stream, so comparisons are order-free).
fn sorted_ops(trace: &Trace) -> Vec<String> {
    let mut ops: Vec<String> = trace.ops().iter().map(|op| format!("{op:?}")).collect();
    ops.sort_unstable();
    ops
}

/// The multiset of memory reads `(addr, bytes)` a trace performs —
/// accumulator zeroing is register-only (`TileZero`), so for K-split
/// shards this is exactly the `A`/`B`/metadata load traffic.
fn sorted_reads(trace: &Trace) -> Vec<(u64, usize)> {
    let mut reads: Vec<(u64, usize)> = trace
        .ops()
        .iter()
        .filter_map(TraceOp::mem_access)
        .filter(|&(_, _, is_write)| !is_write)
        .map(|(addr, bytes, _)| (addr, bytes))
        .collect();
    reads.sort_unstable();
    reads
}

/// Drains a shard set, asserting each stream's declared length against
/// what it actually emits; returns the concatenated shard ops and the
/// drained reduction stream (when the plan split K).
fn drain_shard_set(set: ShardSet) -> (Trace, Option<Trace>) {
    let mut joined = Trace::new();
    for mut shard in set.shards {
        let declared = shard.remaining();
        let part = shard.collect_trace();
        assert_eq!(part.len() as u64, declared, "shard length is exact");
        joined.extend(&part);
    }
    let reduction = set.reduction.map(|mut red| {
        let declared = red.remaining();
        let trace = red.collect_trace();
        assert_eq!(trace.len() as u64, declared, "reduction length is exact");
        trace
    });
    (joined, reduction)
}

/// Checks every `ShardSet` invariant against the unsharded stream: no
/// empty shards, exact per-stream lengths, and either op-multiset
/// identity (pure 2D plans) or compute/read preservation plus a
/// vector-only reduction (K-split plans).
fn check_set_against(whole: &Trace, set: ShardSet, ctx: &KernelSpec) {
    assert!(
        set.shards.iter().all(|s| s.remaining() > 0),
        "clamped plans leave no empty shards, {ctx:?}"
    );
    let (joined, reduction) = drain_shard_set(set);
    match reduction {
        None => {
            assert_eq!(joined.len(), whole.len(), "total length, {ctx:?}");
            assert_eq!(
                sorted_ops(&joined),
                sorted_ops(whole),
                "2D shards permute the unsharded ops, {ctx:?}"
            );
        }
        Some(red) => {
            assert!(!red.is_empty(), "K-split carries a reduction, {ctx:?}");
            assert_eq!(
                red.mix().tile_compute,
                0,
                "the reduction merges partials with vector ops, {ctx:?}"
            );
            assert_eq!(
                joined.mix().tile_compute,
                whole.mix().tile_compute,
                "K-split preserves the tile-compute ops, {ctx:?}"
            );
            assert_eq!(
                sorted_reads(&joined),
                sorted_reads(whole),
                "each A/B load happens exactly once across K shards, {ctx:?}"
            );
        }
    }
}

proptest! {
    /// Concatenated shards replay functionally identical to the unsharded
    /// stream, and the summed exact lengths agree, for every kernel family
    /// and shard count — including shard counts exceeding the row count.
    #[test]
    fn shards_concatenate_to_the_unsharded_stream(
        mt in 1usize..7,
        nt in 1usize..4,
        k in 1usize..280,
        cores in 1usize..10,
    ) {
        let shape = GemmShape::new(mt * 16, nt * 16, k);
        for spec in all_family_specs() {
            let whole = spec.build(shape);
            let (rejoined, declared) = concat_shards(&spec, shape, cores);
            prop_assert_eq!(declared, whole.len() as u64, "exact length, {:?}", &spec);
            prop_assert_eq!(rejoined, whole, "op-for-op identity, {:?}", &spec);
        }
    }

    /// Ragged (non-tile-aligned) shapes shard just as losslessly.
    #[test]
    fn ragged_shapes_shard_losslessly(
        m in 1usize..80,
        n in 1usize..50,
        k in 1usize..200,
        cores in 1usize..6,
    ) {
        let shape = GemmShape::new(m, n, k);
        for spec in [KernelSpec::tiled(SparseMode::Nm2of4), KernelSpec::Vector] {
            let whole = spec.build(shape);
            let (rejoined, declared) = concat_shards(&spec, shape, cores);
            prop_assert_eq!(declared, whole.len() as u64);
            prop_assert_eq!(rejoined, whole);
        }
    }

    /// 2D (M×N, no K split) plans are pure permutations of the unsharded
    /// stream for every kernel family — every op appears exactly once
    /// across the rectangles, whatever the split counts (over-splitting
    /// clamps to the grid).
    #[test]
    fn two_dimensional_plans_permute_the_unsharded_stream(
        mt in 1usize..6,
        nt in 1usize..5,
        k in 1usize..220,
        m_splits in 1usize..6,
        n_splits in 1usize..6,
    ) {
        let shape = GemmShape::new(mt * 16, nt * 16, k);
        let plan = ShardPlan::new(m_splits, n_splits, 1);
        for spec in all_family_specs() {
            let whole = spec.build(shape);
            let set = KernelEmitter::for_spec(&spec, shape).shard_with(plan);
            prop_assert!(set.reduction.is_none(), "k_splits == 1 needs no reduction");
            check_set_against(&whole, set, &spec);
        }
    }

    /// K-split plans preserve the kernel's compute exactly: the same
    /// tile-compute ops, each `A`/`B` load exactly once, exact stream
    /// lengths, and a vector-only post-barrier reduction — for every
    /// tiled execution mode and combined M×N×K plan.
    #[test]
    fn k_split_plans_preserve_compute_and_reads(
        mt in 1usize..4,
        nt in 1usize..4,
        k in 1usize..300,
        m_splits in 1usize..3,
        n_splits in 1usize..3,
        k_splits in 2usize..5,
    ) {
        let shape = GemmShape::new(mt * 16, nt * 16, k);
        let plan = ShardPlan::new(m_splits, n_splits, k_splits);
        for mode in [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4] {
            let spec = KernelSpec::tiled(mode);
            let whole = spec.build(shape);
            let emitter = KernelEmitter::for_spec(&spec, shape);
            let k_units = emitter.k_units();
            let set = emitter.shard_with(plan);
            prop_assert_eq!(
                set.reduction.is_some(),
                k_units > 1,
                "a reduction exists exactly when K actually splits"
            );
            check_set_against(&whole, set, &spec);
        }
    }

    /// `KernelSpec::shard_set` — the path the LPT scheduler runs — holds
    /// the same invariants at every core count for every family: the
    /// chosen plan's shards are exact-length, non-empty, and either
    /// permute the unsharded ops (no K split) or preserve compute and
    /// reads under a K split.
    #[test]
    fn shard_set_is_invariant_at_every_core_count(
        mt in 1usize..5,
        nt in 1usize..4,
        k in 1usize..260,
        cores in 1usize..33,
    ) {
        let shape = GemmShape::new(mt * 16, nt * 16, k);
        for spec in all_family_specs() {
            let whole = spec.build(shape);
            let set = spec.shard_set(shape, cores);
            prop_assert!(!set.shards.is_empty());
            check_set_against(&whole, set, &spec);
        }
    }

    /// Ragged shapes survive 2D and K-split plans just as losslessly.
    #[test]
    fn ragged_shapes_survive_2d_and_k_split_plans(
        m in 1usize..80,
        n in 1usize..50,
        k in 1usize..200,
        m_splits in 1usize..4,
        n_splits in 1usize..4,
        k_splits in 1usize..4,
    ) {
        let shape = GemmShape::new(m, n, k);
        let plan = ShardPlan::new(m_splits, n_splits, k_splits);
        for spec in [KernelSpec::tiled(SparseMode::Nm2of4), KernelSpec::Vector] {
            let whole = spec.build(shape);
            let set = KernelEmitter::for_spec(&spec, shape).shard_with(plan);
            check_set_against(&whole, set, &spec);
        }
    }
}

#[test]
fn shard_count_one_is_the_identity() {
    let shape = GemmShape::new(96, 48, 256);
    for spec in all_family_specs() {
        let shards = spec.shard_streams(shape, 1);
        assert_eq!(shards.len(), 1);
        let (rejoined, _) = concat_shards(&spec, shape, 1);
        assert_eq!(rejoined, spec.build(shape));
    }
}

#[test]
fn shards_bound_residency_like_the_unsharded_stream() {
    // Each shard's peak residency stays at one tile-loop cell — sharding
    // must not reintroduce materialization anywhere.
    let shape = GemmShape::new(256, 64, 512);
    let spec = KernelSpec::tiled(SparseMode::Dense);
    let whole_chunk = spec.stream(shape).max_block_ops();
    for mut shard in spec.shard_streams(shape, 4) {
        let bytes = shard.remaining() as usize * vegeta_isa::TRACE_OP_BYTES;
        assert!(bytes > 0, "a 16-row-tile kernel fills all four shards");
        while shard.next_op().is_some() {}
        assert!(shard.max_block_ops() <= whole_chunk);
        assert!(
            shard.peak_resident_bytes() < bytes / 2,
            "peak {} vs materialized {}",
            shard.peak_resident_bytes(),
            bytes
        );
    }
}

#[test]
fn excess_cores_get_empty_shards_not_errors() {
    // A 2-row-tile kernel sharded 8 ways: trailing shards are empty but
    // well-formed (exact length 0, immediate drain).
    let shape = GemmShape::new(32, 32, 128);
    let spec = KernelSpec::tiled(SparseMode::Dense);
    let shards = spec.shard_streams(shape, 8);
    assert_eq!(shards.len(), 8);
    let non_empty = shards.iter().filter(|s| s.remaining() > 0).count();
    assert!(non_empty <= 2, "at most one shard per accumulator group");
    let (rejoined, declared) = concat_shards(&spec, shape, 8);
    assert_eq!(declared, spec.build(shape).len() as u64);
    assert_eq!(rejoined, spec.build(shape));
}
