//! Lazy per-tile-loop-nest trace generation for every kernel family.
//!
//! [`KernelEmitter`] is the compact generator behind the streaming
//! pipeline: it carries only the kernel's address plan and loop structure
//! (O(1) or O(groups) state — never per-instruction data) and re-emits the
//! trace one *block* at a time, where a block is one cell of the kernel's
//! tile-loop nest. Wrapped in a [`ChunkedStream`] it becomes a
//! [`KernelStream`]: an exact-length [`InstStream`] whose peak residency is
//! the largest block, not the whole trace — the property that lets
//! full-scale Table IV layers replay in bounded memory.
//!
//! The materialized builders (`build_trace`, `build_rowwise_trace`, ...)
//! are thin `collect` wrappers over these emitters, so streamed and
//! materialized replays are identical by construction.
//!
//! [`InstStream`]: vegeta_isa::stream::InstStream

use vegeta_isa::stream::{even_ranges, BlockEmitter, BlockSlice, ChunkedStream};
use vegeta_isa::trace::TraceOp;
use vegeta_sparse::NmRatio;

use crate::tiled::{
    emit_listing1_cell, emit_tiled_cell, listing1_cell_ops, tiled_cell_ops, unroll_groups,
    KernelOptions, Plan, SparseMode,
};
use crate::GemmShape;

/// A streaming kernel trace: a [`ChunkedStream`] over a [`KernelEmitter`].
pub type KernelStream = ChunkedStream<KernelEmitter>;

/// One shard of a kernel trace: a [`ChunkedStream`] over a contiguous
/// [`BlockSlice`] of the kernel's tile-loop nest (see
/// [`KernelEmitter::shard`]).
pub type ShardStream = ChunkedStream<BlockSlice<KernelEmitter>>;

/// The compact trace generator for one kernel invocation: shape + format +
/// loop plan, no per-instruction state.
#[derive(Debug, Clone)]
pub struct KernelEmitter {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    /// The optimized tiled kernel; blocks are accumulator-group × output
    /// column-tile cells.
    Tiled {
        plan: Plan,
        opts: KernelOptions,
        /// `(first row-tile, width)` per accumulator group.
        groups: Vec<(usize, usize)>,
        tiles_n: usize,
    },
    /// The naive Listing-1 kernel; blocks are `(it, jt)` output tiles.
    Listing1 {
        plan: Plan,
        tiles_m: usize,
        tiles_n: usize,
    },
    /// The row-wise `TILE_SPMM_R` kernel; blocks are packed row group ×
    /// output column-tile cells.
    RowWise {
        tiles_n: usize,
        tiles_k: usize,
        groups: usize,
    },
    /// The vector GEMM baseline; blocks are microkernel invocations.
    Vector { shape: GemmShape },
}

impl KernelEmitter {
    /// Generator for the optimized tiled kernel.
    pub fn tiled(shape: GemmShape, mode: SparseMode, opts: KernelOptions) -> Self {
        KernelEmitter {
            inner: Inner::Tiled {
                plan: Plan::new(shape, mode),
                opts,
                groups: unroll_groups(shape.tiles_m(), opts.unroll),
                tiles_n: shape.tiles_n(),
            },
        }
    }

    /// Generator for the naive Listing-1 kernel.
    pub fn listing1(shape: GemmShape, mode: SparseMode) -> Self {
        KernelEmitter {
            inner: Inner::Listing1 {
                plan: Plan::new(shape, mode),
                tiles_m: shape.tiles_m(),
                tiles_n: shape.tiles_n(),
            },
        }
    }

    /// Generator for the row-wise kernel with `groups` packed row groups
    /// (the length of `pack_rows`' assignment list).
    pub fn rowwise(shape: GemmShape, groups: usize) -> Self {
        KernelEmitter {
            inner: Inner::RowWise {
                tiles_n: shape.tiles_n(),
                tiles_k: shape.k.div_ceil(64),
                groups,
            },
        }
    }

    /// Generator for the vector GEMM baseline.
    pub fn vector(shape: GemmShape) -> Self {
        KernelEmitter {
            inner: Inner::Vector { shape },
        }
    }

    /// Generator for the trace a [`crate::KernelSpec`] builds.
    pub fn for_spec(spec: &crate::KernelSpec, shape: GemmShape) -> Self {
        match spec {
            crate::KernelSpec::Tiled { mode, opts } => KernelEmitter::tiled(shape, *mode, *opts),
            crate::KernelSpec::Listing1 { mode } => KernelEmitter::listing1(shape, *mode),
            crate::KernelSpec::RowWise { row_ratios } => {
                KernelEmitter::rowwise(shape, rowwise_groups(row_ratios))
            }
            crate::KernelSpec::Vector => KernelEmitter::vector(shape),
        }
    }

    /// Wraps the generator in an exact-length chunked stream.
    pub fn stream(self) -> KernelStream {
        ChunkedStream::new(self)
    }

    /// The emitter's `(outer M-row units, blocks per unit)` decomposition:
    /// every kernel family orders its blocks outer-unit-major, where an
    /// outer unit covers a contiguous range of `A`/`C` row tiles
    /// (accumulator groups for the tiled kernel, output row tiles for
    /// Listing 1, packed row groups for the row-wise kernel, `A` row
    /// blocks for the vector baseline). Sharding partitions this outer
    /// axis, so shard boundaries always fall on M-row boundaries.
    pub fn shard_layout(&self) -> (usize, usize) {
        match &self.inner {
            Inner::Tiled {
                groups, tiles_n, ..
            } => (groups.len(), *tiles_n),
            Inner::Listing1 {
                tiles_m, tiles_n, ..
            } => (*tiles_m, *tiles_n),
            Inner::RowWise {
                tiles_n, groups, ..
            } => (*groups, *tiles_n),
            Inner::Vector { shape } => crate::vector::vector_shard_layout(*shape),
        }
    }

    /// Splits the kernel's trace into `n` independent, exact-length shard
    /// streams by partitioning the outer M-row units of
    /// [`KernelEmitter::shard_layout`] into near-even contiguous ranges —
    /// a range split over the affine address plan, with no trace
    /// materialization. Shards replayed in order concatenate to exactly
    /// the unsharded stream; when `n` exceeds the outer unit count some
    /// shards are empty.
    pub fn shard(self, n: usize) -> Vec<ShardStream> {
        let (outer, inner) = self.shard_layout();
        even_ranges(outer, n)
            .into_iter()
            .map(|r| {
                ChunkedStream::new(BlockSlice::new(
                    self.clone(),
                    r.start * inner,
                    r.len() * inner,
                ))
            })
            .collect()
    }
}

/// Number of `TILE_SPMM_R` row groups the packer produces for these covers.
fn rowwise_groups(row_ratios: &[NmRatio]) -> usize {
    vegeta_engine::rowwise::pack_rows(row_ratios).len()
}

impl BlockEmitter for KernelEmitter {
    fn blocks(&self) -> usize {
        match &self.inner {
            Inner::Tiled {
                groups, tiles_n, ..
            } => groups.len() * tiles_n,
            Inner::Listing1 {
                tiles_m, tiles_n, ..
            } => tiles_m * tiles_n,
            Inner::RowWise {
                tiles_n, groups, ..
            } => groups * tiles_n,
            Inner::Vector { shape } => crate::vector::vector_blocks(*shape),
        }
    }

    fn block_ops(&self, block: usize) -> u64 {
        match &self.inner {
            Inner::Tiled {
                plan,
                opts,
                groups,
                tiles_n,
            } => {
                let (_, u) = groups[block / tiles_n];
                tiled_cell_ops(plan, *opts, u)
            }
            Inner::Listing1 { plan, .. } => listing1_cell_ops(plan),
            Inner::RowWise { tiles_k, .. } => crate::rowwise::rowwise_block_ops(*tiles_k),
            Inner::Vector { shape } => crate::vector::vector_block_ops(*shape),
        }
    }

    fn emit_block(&self, block: usize, out: &mut Vec<TraceOp>) {
        match &self.inner {
            Inner::Tiled {
                plan,
                opts,
                groups,
                tiles_n,
            } => {
                let (it, u) = groups[block / tiles_n];
                emit_tiled_cell(plan, *opts, it, u, block % tiles_n, out);
            }
            Inner::Listing1 { plan, tiles_n, .. } => {
                emit_listing1_cell(plan, block / tiles_n, block % tiles_n, out);
            }
            Inner::RowWise {
                tiles_n, tiles_k, ..
            } => crate::rowwise::emit_rowwise_block(*tiles_n, *tiles_k, block, out),
            Inner::Vector { shape } => crate::vector::emit_vector_block(*shape, block, out),
        }
    }

    fn state_bytes(&self) -> usize {
        let heap = match &self.inner {
            Inner::Tiled { groups, .. } => {
                groups.capacity() * std::mem::size_of::<(usize, usize)>()
            }
            _ => 0,
        };
        std::mem::size_of::<Self>() + heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegeta_isa::stream::InstStream;

    #[test]
    fn declared_block_lengths_match_emission_for_every_kernel() {
        let shape = GemmShape::new(48, 40, 260);
        let emitters = [
            KernelEmitter::tiled(shape, SparseMode::Dense, KernelOptions::default()),
            KernelEmitter::tiled(shape, SparseMode::Nm2of4, KernelOptions::default()),
            KernelEmitter::tiled(
                shape,
                SparseMode::Nm1of4,
                KernelOptions {
                    unroll: 1,
                    loop_overhead: false,
                },
            ),
            KernelEmitter::listing1(shape, SparseMode::Nm2of4),
            KernelEmitter::rowwise(shape, 5),
            KernelEmitter::vector(shape),
        ];
        for emitter in emitters {
            let mut buf = Vec::new();
            for b in 0..emitter.blocks() {
                buf.clear();
                emitter.emit_block(b, &mut buf);
                assert_eq!(
                    buf.len() as u64,
                    emitter.block_ops(b),
                    "block {b} of {emitter:?}"
                );
            }
        }
    }

    #[test]
    fn tiled_trailing_group_of_four_splits_two_two() {
        // tiles_m = 64/16 = 4 with unroll 3: the 2+2 split rule.
        assert_eq!(unroll_groups(4, 3), vec![(0, 2), (2, 2)]);
        assert_eq!(unroll_groups(7, 3), vec![(0, 3), (3, 2), (5, 2)]);
        assert_eq!(unroll_groups(5, 3), vec![(0, 3), (3, 2)]);
        assert_eq!(unroll_groups(4, 2), vec![(0, 2), (2, 2)]);
        assert_eq!(unroll_groups(3, 1), vec![(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn stream_length_matches_materialized_build() {
        let shape = GemmShape::new(64, 64, 512);
        for mode in [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4] {
            let stream = crate::tiled::stream_trace(shape, mode, KernelOptions::default());
            let trace = crate::tiled::build_trace(shape, mode, KernelOptions::default());
            assert_eq!(stream.remaining(), trace.len() as u64);
        }
        let vec_stream = crate::vector::stream_vector_gemm_trace(shape);
        assert_eq!(
            vec_stream.remaining(),
            crate::vector::build_vector_gemm_trace(shape).len() as u64
        );
    }

    #[test]
    fn shard_layout_factors_the_block_count_for_every_family() {
        let shape = GemmShape::new(80, 40, 260);
        let emitters = [
            KernelEmitter::tiled(shape, SparseMode::Dense, KernelOptions::default()),
            KernelEmitter::listing1(shape, SparseMode::Nm1of4),
            KernelEmitter::rowwise(shape, 7),
            KernelEmitter::vector(shape),
        ];
        for emitter in emitters {
            let (outer, inner) = emitter.shard_layout();
            assert_eq!(
                outer * inner,
                emitter.blocks(),
                "outer × inner must tile the block range of {emitter:?}"
            );
        }
    }

    #[test]
    fn sharding_splits_on_outer_row_boundaries() {
        let shape = GemmShape::new(96, 48, 512);
        let emitter = KernelEmitter::tiled(shape, SparseMode::Nm2of4, KernelOptions::default());
        let (_, inner) = emitter.shard_layout();
        for shard in emitter.shard(3) {
            assert_eq!(
                shard.emitter().first_block() % inner,
                0,
                "every shard starts at an M-row boundary"
            );
        }
    }

    #[test]
    fn emitter_state_is_compact_even_for_huge_shapes() {
        // A full-size GPT-3 layer: the generator must stay O(groups), far
        // from the tens-of-MB materialized trace.
        let shape = GemmShape::new(256, 256, 12_288);
        let emitter = KernelEmitter::tiled(shape, SparseMode::Dense, KernelOptions::default());
        assert!(
            emitter.state_bytes() < 4096,
            "generator state is {} bytes",
            emitter.state_bytes()
        );
    }
}
