//! Lazy per-tile-loop-nest trace generation for every kernel family, and
//! the sharding contract multi-core replay is built on.
//!
//! [`KernelEmitter`] is the compact generator behind the streaming
//! pipeline: it carries only the kernel's address plan and loop structure
//! (O(1) or O(groups) state — never per-instruction data) and re-emits the
//! trace one *block* at a time, where a block is one cell of the kernel's
//! tile-loop nest. Wrapped in a [`ChunkedStream`] it becomes a
//! [`KernelStream`]: an exact-length [`InstStream`] whose peak residency is
//! the largest block, not the whole trace — the property that lets
//! full-scale Table IV layers replay in bounded memory.
//!
//! The materialized builders (`build_trace`, `build_rowwise_trace`, ...)
//! are thin `collect` wrappers over these emitters, so streamed and
//! materialized replays are identical by construction.
//!
//! # Sharding
//!
//! Every family lays its blocks out as an outer-major **M × N grid**
//! ([`KernelEmitter::shard_layout`]): outer units are contiguous `A`/`C`
//! row-tile ranges (accumulator groups, packed row groups, ...), inner
//! units are output column tiles. A [`ShardPlan`] names how many near-even
//! partitions to cut along each of the three GEMM loop axes:
//!
//! * **M** — outer units; shard boundaries fall on row boundaries, so
//!   shards never share an accumulator.
//! * **N** — inner units; an M×N shard is a rectangle of the block grid
//!   (a strided [`GridSlice`] of the emitter), which is what keeps every
//!   core busy when M-rows < cores.
//! * **K** — the tiled family's `k`-tile loop. Each K-split shard runs its
//!   `kt` subrange and stores *partial* `C` tiles to a shard-private
//!   region past the plan's address space; a deterministic post-barrier
//!   **reduction stream** ([`ShardSet::reduction`]) then sums the partials
//!   into the canonical `C` addresses with vector ops. Families without a
//!   splittable depth loop clamp `k_splits` to 1.
//!
//! Each shard is itself an exact-length, byte-accounted [`ShardStream`],
//! so a load-aware scheduler can pack shards onto cores by their *exact*
//! op counts — no cost model, no estimation (`vegeta_sim`'s LPT policy
//! does exactly this). Plans, shard enumeration order (row-major, K-part
//! innermost) and the reduction pass are all deterministic.
//!
//! ```
//! use vegeta_isa::stream::InstStream;
//! use vegeta_kernels::{KernelEmitter, KernelOptions, GemmShape, ShardPlan, SparseMode};
//!
//! let shape = GemmShape::new(96, 64, 256);
//! let emitter = KernelEmitter::tiled(shape, SparseMode::Nm2of4, KernelOptions::default());
//! let total = emitter.clone().stream().remaining();
//!
//! // 2 M-units x 4 N-units = 8 rectangular shards, no K split: the shard
//! // lengths are exact and sum to the unsharded stream.
//! let set = emitter.clone().shard_with(ShardPlan::new(2, 4, 1));
//! assert_eq!(set.shards.len(), 8);
//! assert!(set.reduction.is_none());
//! assert_eq!(set.shards.iter().map(|s| s.remaining()).sum::<u64>(), total);
//!
//! // A K split adds a deterministic post-barrier reduction stream.
//! let set = emitter.shard_with(ShardPlan::new(1, 1, 2));
//! assert_eq!(set.shards.len(), 2);
//! assert!(set.reduction.expect("K-split merges partials").remaining() > 0);
//! ```
//!
//! [`InstStream`]: vegeta_isa::stream::InstStream

use vegeta_isa::footprint::Footprint;
use vegeta_isa::stream::{even_ranges, BlockEmitter, ChunkedStream, GridSlice};
use vegeta_isa::trace::TraceOp;
use vegeta_sparse::NmRatio;

use crate::tiled::{
    emit_listing1_cell, emit_reduction_tile, emit_tiled_cell, emit_tiled_cell_slice,
    listing1_cell_ops, reduction_tile_ops, tiled_cell_ops, tiled_cell_slice_ops, unroll_groups,
    CellStore, KernelOptions, Plan, SparseMode,
};
use crate::GemmShape;

/// A streaming kernel trace: a [`ChunkedStream`] over a [`KernelEmitter`].
pub type KernelStream = ChunkedStream<KernelEmitter>;

/// One shard of a kernel trace: a [`ChunkedStream`] over a [`ShardEmitter`]
/// — a rectangle of the kernel's block grid, a K-slice of one, or the
/// K-split reduction pass (see [`KernelEmitter::shard_with`]).
pub type ShardStream = ChunkedStream<ShardEmitter>;

/// How a kernel's tile-loop nest is partitioned across cores: the number
/// of near-even cuts along each GEMM loop axis.
///
/// `m_splits` partitions the outer (M-row) units, `n_splits` the inner
/// (output-column) units, and `k_splits` the tiled family's `k`-tile loop;
/// [`KernelEmitter::shard_with`] clamps each count to the axis' actual
/// unit count, so a plan never produces empty shards. The product is the
/// shard count handed to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardPlan {
    /// Partitions of the outer M-row units.
    pub m_splits: usize,
    /// Partitions of the inner output-column units.
    pub n_splits: usize,
    /// Partitions of the `k`-tile loop (tiled family only; K-split shards
    /// store partials merged by a post-barrier reduction stream).
    pub k_splits: usize,
}

impl ShardPlan {
    /// A plan with the given split counts (each clamped to at least 1).
    pub fn new(m_splits: usize, n_splits: usize, k_splits: usize) -> Self {
        ShardPlan {
            m_splits: m_splits.max(1),
            n_splits: n_splits.max(1),
            k_splits: k_splits.max(1),
        }
    }

    /// The identity plan: one shard, the unsharded stream.
    pub fn single() -> Self {
        ShardPlan::new(1, 1, 1)
    }

    /// Total shard count the plan produces (before clamping to the
    /// emitter's unit counts).
    pub fn pieces(&self) -> usize {
        self.m_splits * self.n_splits * self.k_splits
    }
}

/// The shard streams a [`ShardPlan`] cuts a kernel into, plus the
/// post-barrier reduction stream when the plan K-splits.
#[derive(Debug)]
pub struct ShardSet {
    /// Independent, exact-length shard streams (row-major over the M×N
    /// grid, K-part innermost).
    pub shards: Vec<ShardStream>,
    /// `Some` iff the plan has `k_splits > 1`: the deterministic vector
    /// pass that sums the shards' partial `C` images into the canonical
    /// `C` addresses. Must run after every shard has drained (i.e. after
    /// the barrier).
    pub reduction: Option<ShardStream>,
}

/// The compact trace generator for one kernel invocation: shape + format +
/// loop plan, no per-instruction state.
#[derive(Debug, Clone)]
pub struct KernelEmitter {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    /// The optimized tiled kernel; blocks are accumulator-group × output
    /// column-tile cells.
    Tiled {
        plan: Plan,
        opts: KernelOptions,
        /// `(first row-tile, width)` per accumulator group.
        groups: Vec<(usize, usize)>,
        tiles_n: usize,
    },
    /// The naive Listing-1 kernel; blocks are `(it, jt)` output tiles.
    Listing1 {
        plan: Plan,
        tiles_m: usize,
        tiles_n: usize,
    },
    /// The row-wise `TILE_SPMM_R` kernel; blocks are packed row group ×
    /// output column-tile cells.
    RowWise {
        tiles_n: usize,
        tiles_k: usize,
        groups: usize,
    },
    /// The vector GEMM baseline; blocks are microkernel invocations.
    Vector { shape: GemmShape },
}

impl KernelEmitter {
    /// Generator for the optimized tiled kernel.
    pub fn tiled(shape: GemmShape, mode: SparseMode, opts: KernelOptions) -> Self {
        KernelEmitter {
            inner: Inner::Tiled {
                plan: Plan::new(shape, mode),
                opts,
                groups: unroll_groups(shape.tiles_m(), opts.unroll),
                tiles_n: shape.tiles_n(),
            },
        }
    }

    /// Generator for the naive Listing-1 kernel.
    pub fn listing1(shape: GemmShape, mode: SparseMode) -> Self {
        KernelEmitter {
            inner: Inner::Listing1 {
                plan: Plan::new(shape, mode),
                tiles_m: shape.tiles_m(),
                tiles_n: shape.tiles_n(),
            },
        }
    }

    /// Generator for the row-wise kernel with `groups` packed row groups
    /// (the length of `pack_rows`' assignment list).
    pub fn rowwise(shape: GemmShape, groups: usize) -> Self {
        KernelEmitter {
            inner: Inner::RowWise {
                tiles_n: shape.tiles_n(),
                tiles_k: shape.k.div_ceil(64),
                groups,
            },
        }
    }

    /// Generator for the vector GEMM baseline.
    pub fn vector(shape: GemmShape) -> Self {
        KernelEmitter {
            inner: Inner::Vector { shape },
        }
    }

    /// Generator for the trace a [`crate::KernelSpec`] builds.
    pub fn for_spec(spec: &crate::KernelSpec, shape: GemmShape) -> Self {
        match spec {
            crate::KernelSpec::Tiled { mode, opts } => KernelEmitter::tiled(shape, *mode, *opts),
            crate::KernelSpec::Listing1 { mode } => KernelEmitter::listing1(shape, *mode),
            crate::KernelSpec::RowWise { row_ratios } => {
                KernelEmitter::rowwise(shape, rowwise_groups(row_ratios))
            }
            crate::KernelSpec::Vector => KernelEmitter::vector(shape),
        }
    }

    /// Wraps the generator in an exact-length chunked stream.
    pub fn stream(self) -> KernelStream {
        ChunkedStream::new(self)
    }

    /// Wraps the generator in a stream with coalesced refills: each refill
    /// buffers at least `chunk_ops` ops (several tile-loop cells at once)
    /// instead of exactly one block. Op order and count are identical to
    /// [`KernelEmitter::stream`]; only residency differs — peak buffered
    /// bytes track the chunk target instead of the largest cell — so this
    /// is for throughput harnesses that replay the same kernel many times,
    /// not for the memory-bounded full-scale replays.
    pub fn stream_coalesced(self, chunk_ops: u64) -> KernelStream {
        ChunkedStream::with_chunk_ops(self, chunk_ops)
    }

    /// The emitter's `(outer M-row units, blocks per unit)` decomposition:
    /// every kernel family orders its blocks outer-unit-major, where an
    /// outer unit covers a contiguous range of `A`/`C` row tiles
    /// (accumulator groups for the tiled kernel, output row tiles for
    /// Listing 1, packed row groups for the row-wise kernel, `A` row
    /// blocks for the vector baseline). Sharding partitions this outer
    /// axis, so shard boundaries always fall on M-row boundaries.
    pub fn shard_layout(&self) -> (usize, usize) {
        match &self.inner {
            Inner::Tiled {
                groups, tiles_n, ..
            } => (groups.len(), *tiles_n),
            Inner::Listing1 {
                tiles_m, tiles_n, ..
            } => (*tiles_m, *tiles_n),
            Inner::RowWise {
                tiles_n, groups, ..
            } => (*groups, *tiles_n),
            Inner::Vector { shape } => crate::vector::vector_shard_layout(*shape),
        }
    }

    /// Splits the kernel's trace into `n` independent, exact-length shard
    /// streams by partitioning the outer M-row units of
    /// [`KernelEmitter::shard_layout`] into near-even contiguous ranges —
    /// a range split over the affine address plan, with no trace
    /// materialization. Shards replayed in order concatenate to exactly
    /// the unsharded stream; when `n` exceeds the outer unit count some
    /// shards are empty.
    ///
    /// This is the legacy 1D split the static (round-robin) scheduler
    /// runs; [`KernelEmitter::shard_with`] is the 2D/K-split generalization.
    pub fn shard(self, n: usize) -> Vec<ShardStream> {
        let (outer, inner) = self.shard_layout();
        even_ranges(outer, n)
            .into_iter()
            .map(|r| {
                ChunkedStream::new(ShardEmitter {
                    repr: Repr::Grid(GridSlice::new(self.clone(), inner, r, 0..inner)),
                })
            })
            .collect()
    }

    /// The number of units the `k_splits` axis of a [`ShardPlan`] can
    /// partition: the `k`-tile count for the tiled family, 1 for families
    /// without a splittable depth loop.
    pub fn k_units(&self) -> usize {
        match &self.inner {
            Inner::Tiled { plan, .. } => plan.k_tiles(),
            _ => 1,
        }
    }

    /// Picks a [`ShardPlan`] for `cores`: fill the M axis first, then N
    /// (over-decomposing to about 2× `cores` shards so LPT packing has
    /// slack to balance uneven accumulator groups), and split K only when
    /// the M×N grid cannot occupy every core — K-splits buy parallelism at
    /// the price of a reduction pass, so they are the last resort.
    ///
    /// `cores <= 1` returns [`ShardPlan::single`], which keeps the 1-core
    /// path bit-identical to the unsharded stream.
    pub fn plan_for_cores(&self, cores: usize) -> ShardPlan {
        if cores <= 1 {
            return ShardPlan::single();
        }
        let (m_units, n_units) = self.shard_layout();
        let m = m_units.clamp(1, cores);
        let n = n_units.clamp(1, (2 * cores).div_ceil(m));
        let k = if m * n < cores {
            self.k_units().clamp(1, cores.div_ceil(m * n))
        } else {
            1
        };
        ShardPlan::new(m, n, k)
    }

    /// Cuts the kernel into `plan`'s shard streams: a row-major sweep of
    /// near-even M×N rectangles of the block grid, each further cut into
    /// `k_splits` depth slices (K-part innermost). Split counts are
    /// clamped to the emitter's unit counts, so every shard is non-empty;
    /// with `k_splits > 1` the set carries the post-barrier reduction
    /// stream that merges the partial `C` images.
    pub fn shard_with(self, plan: ShardPlan) -> ShardSet {
        let (m_units, n_units) = self.shard_layout();
        let m = plan.m_splits.clamp(1, m_units.max(1));
        let n = plan.n_splits.clamp(1, n_units.max(1));
        let k = plan.k_splits.clamp(1, self.k_units());
        let kranges = even_ranges(self.k_units(), k);
        let mut shards = Vec::with_capacity(m * n * k);
        for rows in even_ranges(m_units, m) {
            for cols in even_ranges(n_units, n) {
                for (part, kts) in kranges.iter().enumerate() {
                    let grid = GridSlice::new(self.clone(), n_units, rows.clone(), cols.clone());
                    let repr = if k == 1 {
                        Repr::Grid(grid)
                    } else {
                        Repr::KSlice {
                            grid,
                            kts: kts.clone(),
                            part,
                        }
                    };
                    shards.push(ChunkedStream::new(ShardEmitter { repr }));
                }
            }
        }
        let reduction = (k > 1).then(|| match &self.inner {
            Inner::Tiled { plan, .. } => ChunkedStream::new(ShardEmitter {
                repr: Repr::Reduction {
                    plan: *plan,
                    parts: k,
                },
            }),
            _ => unreachable!("k_splits is clamped to 1 for non-tiled families"),
        });
        ShardSet { shards, reduction }
    }

    /// The declared memory footprint of this kernel's address plan: the
    /// operand regions every emitted access must stay inside. Equivalent to
    /// [`KernelEmitter::footprint_with_partials`] with no K-split partials.
    pub fn footprint(&self) -> Footprint {
        self.footprint_with_partials(0)
    }

    /// The declared footprint extended with `k_parts` K-split partial-`C`
    /// images (tiled family only — other families never K-split, so
    /// `k_parts` is ignored for them).
    pub fn footprint_with_partials(&self, k_parts: usize) -> Footprint {
        match &self.inner {
            Inner::Tiled { plan, .. } | Inner::Listing1 { plan, .. } => plan.footprint(k_parts),
            Inner::RowWise {
                tiles_n,
                tiles_k,
                groups,
            } => crate::rowwise::rowwise_footprint(*tiles_n, *tiles_k, *groups),
            Inner::Vector { shape } => crate::vector::vector_footprint(*shape),
        }
    }
}

/// What one shard covers of the kernel's M×N×K unit space — the static
/// description a coverage checker needs to prove a [`ShardSet`] tiles the
/// grid exactly once (see `vegeta-lint`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardKind {
    /// A full-depth rectangle of the M×N block grid.
    Rect {
        /// Outer M-row unit range.
        rows: std::ops::Range<usize>,
        /// Inner output-column unit range.
        cols: std::ops::Range<usize>,
    },
    /// A tiled-family rectangle restricted to a `k`-tile subrange, storing
    /// partial `C` tiles for K-split shard `part`.
    KSlice {
        /// Outer M-row unit range.
        rows: std::ops::Range<usize>,
        /// Inner output-column unit range.
        cols: std::ops::Range<usize>,
        /// The `k`-tile subrange this shard accumulates.
        kts: std::ops::Range<usize>,
        /// The K-split partial image this shard stores to.
        part: usize,
    },
    /// The post-barrier reduction merging `parts` partial `C` images.
    Reduction {
        /// Number of partial images summed per output tile.
        parts: usize,
    },
}

/// One shard's trace generator: a rectangle of a kernel's M×N block grid,
/// a K-slice of one (accumulating into a shard-private partial `C`
/// image), or the post-barrier reduction pass that merges those partials.
///
/// Produced by [`KernelEmitter::shard`] / [`KernelEmitter::shard_with`];
/// consumed as a [`ShardStream`].
#[derive(Debug, Clone)]
pub struct ShardEmitter {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// A full-depth M×N rectangle: emission delegates block-for-block.
    Grid(GridSlice<KernelEmitter>),
    /// A tiled-family rectangle restricted to the `kts` range of the
    /// `k`-tile loop, storing partial `C` tiles for K-split shard `part`.
    KSlice {
        grid: GridSlice<KernelEmitter>,
        kts: std::ops::Range<usize>,
        part: usize,
    },
    /// The K-split merge: one block per `(it, jt)` output tile, summing
    /// `parts` partial images into the canonical `C` addresses.
    Reduction { plan: Plan, parts: usize },
}

impl ShardEmitter {
    /// The first block of the wrapped kernel emitter this shard exposes
    /// (row-major over the block grid; 0 for the reduction pass).
    pub fn first_block(&self) -> usize {
        match &self.repr {
            Repr::Grid(grid) | Repr::KSlice { grid, .. } => grid.first_block(),
            Repr::Reduction { .. } => 0,
        }
    }

    /// The unit-space coverage this shard claims — what a static verifier
    /// checks against the kernel's `(M, N, K)` unit dimensions.
    pub fn kind(&self) -> ShardKind {
        match &self.repr {
            Repr::Grid(grid) => ShardKind::Rect {
                rows: grid.rows(),
                cols: grid.cols(),
            },
            Repr::KSlice { grid, kts, part } => ShardKind::KSlice {
                rows: grid.rows(),
                cols: grid.cols(),
                kts: kts.clone(),
                part: *part,
            },
            Repr::Reduction { parts, .. } => ShardKind::Reduction { parts: *parts },
        }
    }

    /// The kernel emitter this shard is a slice of (`None` for the
    /// reduction pass, which is not grid-shaped).
    pub fn kernel(&self) -> Option<&KernelEmitter> {
        match &self.repr {
            Repr::Grid(grid) | Repr::KSlice { grid, .. } => Some(grid.inner()),
            Repr::Reduction { .. } => None,
        }
    }
}

impl BlockEmitter for ShardEmitter {
    fn blocks(&self) -> usize {
        match &self.repr {
            Repr::Grid(grid) | Repr::KSlice { grid, .. } => grid.blocks(),
            Repr::Reduction { plan, .. } => plan.tiles_m() * plan.tiles_n(),
        }
    }

    fn block_ops(&self, block: usize) -> u64 {
        match &self.repr {
            Repr::Grid(grid) => grid.block_ops(block),
            Repr::KSlice { grid, kts, .. } => match &grid.inner().inner {
                Inner::Tiled {
                    plan,
                    opts,
                    groups,
                    tiles_n,
                } => {
                    let (_, u) = groups[grid.inner_block(block) / tiles_n];
                    tiled_cell_slice_ops(plan, *opts, u, kts.len())
                }
                _ => unreachable!("K-split shards exist only for the tiled family"),
            },
            Repr::Reduction { parts, .. } => reduction_tile_ops(*parts),
        }
    }

    fn emit_block(&self, block: usize, out: &mut Vec<TraceOp>) {
        match &self.repr {
            Repr::Grid(grid) => grid.emit_block(block, out),
            Repr::KSlice { grid, kts, part } => match &grid.inner().inner {
                Inner::Tiled {
                    plan,
                    opts,
                    groups,
                    tiles_n,
                } => {
                    let inner_block = grid.inner_block(block);
                    let (it, u) = groups[inner_block / tiles_n];
                    emit_tiled_cell_slice(
                        plan,
                        *opts,
                        it,
                        u,
                        inner_block % tiles_n,
                        kts.clone(),
                        CellStore::Partial(*part),
                        out,
                    );
                }
                _ => unreachable!("K-split shards exist only for the tiled family"),
            },
            Repr::Reduction { plan, parts } => {
                let tiles_n = plan.tiles_n();
                emit_reduction_tile(plan, block / tiles_n, block % tiles_n, *parts, out);
            }
        }
    }

    fn state_bytes(&self) -> usize {
        match &self.repr {
            Repr::Grid(grid) | Repr::KSlice { grid, .. } => grid.state_bytes(),
            Repr::Reduction { .. } => std::mem::size_of::<Self>(),
        }
    }
}

/// Number of `TILE_SPMM_R` row groups the packer produces for these covers.
fn rowwise_groups(row_ratios: &[NmRatio]) -> usize {
    vegeta_engine::rowwise::pack_rows(row_ratios).len()
}

impl BlockEmitter for KernelEmitter {
    fn blocks(&self) -> usize {
        match &self.inner {
            Inner::Tiled {
                groups, tiles_n, ..
            } => groups.len() * tiles_n,
            Inner::Listing1 {
                tiles_m, tiles_n, ..
            } => tiles_m * tiles_n,
            Inner::RowWise {
                tiles_n, groups, ..
            } => groups * tiles_n,
            Inner::Vector { shape } => crate::vector::vector_blocks(*shape),
        }
    }

    fn block_ops(&self, block: usize) -> u64 {
        match &self.inner {
            Inner::Tiled {
                plan,
                opts,
                groups,
                tiles_n,
            } => {
                let (_, u) = groups[block / tiles_n];
                tiled_cell_ops(plan, *opts, u)
            }
            Inner::Listing1 { plan, .. } => listing1_cell_ops(plan),
            Inner::RowWise { tiles_k, .. } => crate::rowwise::rowwise_block_ops(*tiles_k),
            Inner::Vector { shape } => crate::vector::vector_block_ops(*shape),
        }
    }

    fn emit_block(&self, block: usize, out: &mut Vec<TraceOp>) {
        match &self.inner {
            Inner::Tiled {
                plan,
                opts,
                groups,
                tiles_n,
            } => {
                let (it, u) = groups[block / tiles_n];
                emit_tiled_cell(plan, *opts, it, u, block % tiles_n, out);
            }
            Inner::Listing1 { plan, tiles_n, .. } => {
                emit_listing1_cell(plan, block / tiles_n, block % tiles_n, out);
            }
            Inner::RowWise {
                tiles_n, tiles_k, ..
            } => crate::rowwise::emit_rowwise_block(*tiles_n, *tiles_k, block, out),
            Inner::Vector { shape } => crate::vector::emit_vector_block(*shape, block, out),
        }
    }

    fn state_bytes(&self) -> usize {
        let heap = match &self.inner {
            Inner::Tiled { groups, .. } => {
                groups.capacity() * std::mem::size_of::<(usize, usize)>()
            }
            _ => 0,
        };
        std::mem::size_of::<Self>() + heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegeta_isa::stream::InstStream;

    #[test]
    fn declared_block_lengths_match_emission_for_every_kernel() {
        let shape = GemmShape::new(48, 40, 260);
        let emitters = [
            KernelEmitter::tiled(shape, SparseMode::Dense, KernelOptions::default()),
            KernelEmitter::tiled(shape, SparseMode::Nm2of4, KernelOptions::default()),
            KernelEmitter::tiled(
                shape,
                SparseMode::Nm1of4,
                KernelOptions {
                    unroll: 1,
                    loop_overhead: false,
                },
            ),
            KernelEmitter::listing1(shape, SparseMode::Nm2of4),
            KernelEmitter::rowwise(shape, 5),
            KernelEmitter::vector(shape),
        ];
        for emitter in emitters {
            let mut buf = Vec::new();
            for b in 0..emitter.blocks() {
                buf.clear();
                emitter.emit_block(b, &mut buf);
                assert_eq!(
                    buf.len() as u64,
                    emitter.block_ops(b),
                    "block {b} of {emitter:?}"
                );
            }
        }
    }

    #[test]
    fn tiled_trailing_group_of_four_splits_two_two() {
        // tiles_m = 64/16 = 4 with unroll 3: the 2+2 split rule.
        assert_eq!(unroll_groups(4, 3), vec![(0, 2), (2, 2)]);
        assert_eq!(unroll_groups(7, 3), vec![(0, 3), (3, 2), (5, 2)]);
        assert_eq!(unroll_groups(5, 3), vec![(0, 3), (3, 2)]);
        assert_eq!(unroll_groups(4, 2), vec![(0, 2), (2, 2)]);
        assert_eq!(unroll_groups(3, 1), vec![(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn stream_length_matches_materialized_build() {
        let shape = GemmShape::new(64, 64, 512);
        for mode in [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4] {
            let stream = crate::tiled::stream_trace(shape, mode, KernelOptions::default());
            let trace = crate::tiled::build_trace(shape, mode, KernelOptions::default());
            assert_eq!(stream.remaining(), trace.len() as u64);
        }
        let vec_stream = crate::vector::stream_vector_gemm_trace(shape);
        assert_eq!(
            vec_stream.remaining(),
            crate::vector::build_vector_gemm_trace(shape).len() as u64
        );
    }

    #[test]
    fn coalesced_kernel_stream_is_trace_identical_to_the_default() {
        let shape = GemmShape::new(64, 48, 260);
        for (i, emitter) in [
            KernelEmitter::tiled(shape, SparseMode::Nm2of4, KernelOptions::default()),
            KernelEmitter::vector(shape),
        ]
        .into_iter()
        .enumerate()
        {
            let whole = emitter.clone().stream().collect_trace();
            let mut coalesced = emitter.stream_coalesced(4096);
            assert_eq!(coalesced.remaining(), whole.len() as u64, "emitter {i}");
            assert_eq!(coalesced.collect_trace(), whole, "emitter {i}");
        }
    }

    #[test]
    fn shard_layout_factors_the_block_count_for_every_family() {
        let shape = GemmShape::new(80, 40, 260);
        let emitters = [
            KernelEmitter::tiled(shape, SparseMode::Dense, KernelOptions::default()),
            KernelEmitter::listing1(shape, SparseMode::Nm1of4),
            KernelEmitter::rowwise(shape, 7),
            KernelEmitter::vector(shape),
        ];
        for emitter in emitters {
            let (outer, inner) = emitter.shard_layout();
            assert_eq!(
                outer * inner,
                emitter.blocks(),
                "outer × inner must tile the block range of {emitter:?}"
            );
        }
    }

    #[test]
    fn sharding_splits_on_outer_row_boundaries() {
        let shape = GemmShape::new(96, 48, 512);
        let emitter = KernelEmitter::tiled(shape, SparseMode::Nm2of4, KernelOptions::default());
        let (_, inner) = emitter.shard_layout();
        for shard in emitter.shard(3) {
            assert_eq!(
                shard.emitter().first_block() % inner,
                0,
                "every shard starts at an M-row boundary"
            );
        }
    }

    #[test]
    fn plan_for_cores_fills_m_then_n_then_k() {
        // 128x128x192 at 2:4: 3 accumulator groups x 8 column tiles, 3
        // k-tiles (the pinned BERT-L2 quick-scale shape).
        let shape = GemmShape::new(128, 128, 192);
        let e = KernelEmitter::tiled(shape, SparseMode::Nm2of4, KernelOptions::default());
        assert_eq!(e.shard_layout(), (3, 8));
        assert_eq!(e.k_units(), 3);
        assert_eq!(e.plan_for_cores(1), ShardPlan::single());
        let p8 = e.plan_for_cores(8);
        assert_eq!((p8.m_splits, p8.k_splits), (3, 1), "M x N covers 8 cores");
        assert!(p8.pieces() >= 8, "at least one shard per core: {p8:?}");
        // More cores than the whole M x N grid: the K axis opens up.
        let p32 = e.plan_for_cores(32);
        assert!(p32.k_splits > 1, "{p32:?}");
        assert!(p32.pieces() >= 32, "{p32:?}");
    }

    #[test]
    fn k_split_shards_account_exactly_and_carry_a_reduction() {
        let shape = GemmShape::new(64, 48, 512);
        let e = KernelEmitter::tiled(shape, SparseMode::Dense, KernelOptions::default());
        let set = e.shard_with(ShardPlan::new(2, 3, 2));
        assert_eq!(set.shards.len(), 12, "2 x 3 x 2 plan");
        for mut shard in set.shards {
            let declared = shard.remaining();
            assert!(declared > 0, "clamped plans have no empty shards");
            assert_eq!(shard.collect_trace().len() as u64, declared);
        }
        let mut reduction = set.reduction.expect("K-split merges partials");
        let declared = reduction.remaining();
        // 4 x 3 output tiles, 2 partials each: 16 lines x (2 loads + 1
        // accumulate + 1 store) per tile.
        assert_eq!(declared, 12 * reduction_tile_ops(2));
        assert_eq!(reduction.collect_trace().len() as u64, declared);
    }

    #[test]
    fn single_plan_is_the_unsharded_stream() {
        let shape = GemmShape::new(80, 48, 260);
        for e in [
            KernelEmitter::tiled(shape, SparseMode::Nm1of4, KernelOptions::default()),
            KernelEmitter::vector(shape),
        ] {
            let whole = e.clone().stream().collect_trace();
            let set = e.shard_with(ShardPlan::single());
            assert!(set.reduction.is_none());
            let mut shards = set.shards;
            assert_eq!(shards.len(), 1);
            assert_eq!(
                shards[0].collect_trace(),
                whole,
                "bit-identical 1-core path"
            );
        }
    }

    #[test]
    fn emitter_state_is_compact_even_for_huge_shapes() {
        // A full-size GPT-3 layer: the generator must stay O(groups), far
        // from the tens-of-MB materialized trace.
        let shape = GemmShape::new(256, 256, 12_288);
        let emitter = KernelEmitter::tiled(shape, SparseMode::Dense, KernelOptions::default());
        assert!(
            emitter.state_bytes() < 4096,
            "generator state is {} bytes",
            emitter.state_bytes()
        );
    }
}
