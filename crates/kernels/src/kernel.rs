//! Polymorphic kernel dispatch and trace memoization.
//!
//! Every trace builder in this crate — the optimized tiled GEMM/SPMM
//! kernels, the naive Listing-1 kernel, the row-wise `TILE_SPMM_R` kernel
//! and the vector-engine baseline — is reachable through one interface:
//!
//! * [`Kernel`] is the trait: anything that can emit a timing [`Trace`] for
//!   a [`GemmShape`].
//! * [`KernelSpec`] is the closed, hashable enumeration of this crate's
//!   builders; it is the value the experiment drivers pass around, and the
//!   cache key the sweep infrastructure memoizes on.
//! * [`TraceCache`] memoizes built traces keyed on `(GemmShape,
//!   KernelSpec)`, so a sweep over many engines builds each distinct trace
//!   once instead of once per engine. It is `Sync` and cheap to share
//!   across worker threads.
//! * [`EngineKernelExt`] puts `execution_mode` on [`EngineConfig`]: the
//!   kernel an engine runs for weights of a given `N:M` pattern.
//!
//! [`Trace`]: vegeta_isa::trace::Trace

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use vegeta_engine::EngineConfig;
use vegeta_isa::trace::Trace;
use vegeta_sparse::{FormatSpec, NmRatio};

use crate::rowwise::build_rowwise_trace;
use crate::tiled::{build_listing1_trace, build_trace, KernelOptions, SparseMode};
use crate::vector::build_vector_gemm_trace;
use crate::GemmShape;

/// Anything that can emit a timing trace for a GEMM problem.
///
/// The trait is object-safe, so heterogeneous kernel collections
/// (`Vec<Box<dyn Kernel>>`) work; [`KernelSpec`] is the closed enum form
/// that additionally supports hashing and caching.
pub trait Kernel {
    /// A short human-readable kernel name (for reports and logs).
    fn name(&self) -> String;

    /// Builds the dynamic instruction trace for the given shape.
    fn build(&self, shape: GemmShape) -> Trace;
}

/// A self-describing specification of one of this crate's trace builders.
///
/// `KernelSpec` is `Eq + Hash`, which makes it the natural cache key for
/// memoizing trace construction (see [`TraceCache`]).
///
/// # Example
///
/// ```
/// use vegeta_kernels::{GemmShape, Kernel, KernelOptions, KernelSpec, SparseMode};
///
/// let spec = KernelSpec::tiled(SparseMode::Nm2of4);
/// let trace = spec.build(GemmShape::new(64, 64, 128));
/// assert!(trace.mix().tile_compute > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KernelSpec {
    /// The optimized tiled GEMM/SPMM kernel used for the Fig. 13 sweeps
    /// (register-blocked, rotating accumulators).
    Tiled {
        /// How the `A` operand is encoded.
        mode: SparseMode,
        /// Unroll and loop-overhead options.
        opts: KernelOptions,
    },
    /// The naive Listing-1 kernel (reloads and stores `C` every iteration);
    /// the programmability baseline for ablations.
    Listing1 {
        /// How the `A` operand is encoded.
        mode: SparseMode,
    },
    /// The row-wise `TILE_SPMM_R` kernel for unstructured sparsity, with
    /// the per-row `N:4` covers already computed (sorted covers model the
    /// §V-E DMA row reordering).
    RowWise {
        /// One cover ratio per `A` row.
        row_ratios: Vec<NmRatio>,
    },
    /// The register-blocked AVX-512-class vector GEMM baseline of
    /// Figs. 3/4.
    Vector,
}

impl KernelSpec {
    /// The tiled kernel with default [`KernelOptions`].
    pub fn tiled(mode: SparseMode) -> Self {
        KernelSpec::Tiled {
            mode,
            opts: KernelOptions::default(),
        }
    }

    /// The sparse mode this spec executes in, when it has one (row-wise and
    /// vector kernels do not).
    pub fn mode(&self) -> Option<SparseMode> {
        match self {
            KernelSpec::Tiled { mode, .. } | KernelSpec::Listing1 { mode } => Some(*mode),
            KernelSpec::RowWise { .. } | KernelSpec::Vector => None,
        }
    }

    /// The storage format of the `A` operand this kernel consumes: the
    /// tiled/Listing-1 kernels read their mode's format, the row-wise kernel
    /// reads row-wise `N:4` tiles, and the vector baseline streams dense
    /// values.
    pub fn format(&self) -> FormatSpec {
        match self {
            KernelSpec::Tiled { mode, .. } | KernelSpec::Listing1 { mode } => mode.format(),
            KernelSpec::RowWise { .. } => FormatSpec::RowWise { m: 4 },
            KernelSpec::Vector => FormatSpec::Dense,
        }
    }

    /// Bytes of stored `A`-operand values for `shape` in this kernel's
    /// format. Exact for row-wise specs (which carry their covers);
    /// spec-level capacity bounds otherwise (see
    /// [`FormatSpec::values_bytes`]).
    pub fn a_values_bytes(&self, shape: GemmShape) -> u64 {
        match self {
            KernelSpec::RowWise { row_ratios } => row_ratios
                .iter()
                .map(|r| (shape.k.div_ceil(r.m() as usize) * r.n() as usize * 2) as u64)
                .sum(),
            _ => self.format().values_bytes(shape.m, shape.k) as u64,
        }
    }

    /// Bits of `A`-operand metadata for `shape` in this kernel's format
    /// (positions plus the row-wise per-row selectors); exact for row-wise
    /// specs, capacity bounds otherwise.
    pub fn a_metadata_bits(&self, shape: GemmShape) -> u64 {
        match self {
            KernelSpec::RowWise { row_ratios } => {
                let stored: u64 = row_ratios
                    .iter()
                    .map(|r| (shape.k.div_ceil(r.m() as usize) * r.n() as usize) as u64)
                    .sum();
                stored * 2 + row_ratios.len() as u64 * 2
            }
            _ => self.format().metadata_bits(shape.m, shape.k) as u64,
        }
    }
}

impl Kernel for KernelSpec {
    fn name(&self) -> String {
        match self {
            KernelSpec::Tiled { mode, opts } => {
                format!("tiled-{}-u{}", mode_slug(*mode), opts.unroll)
            }
            KernelSpec::Listing1 { mode } => format!("listing1-{}", mode_slug(*mode)),
            KernelSpec::RowWise { row_ratios } => format!("rowwise-{}rows", row_ratios.len()),
            KernelSpec::Vector => "vector-gemm".to_string(),
        }
    }

    fn build(&self, shape: GemmShape) -> Trace {
        match self {
            KernelSpec::Tiled { mode, opts } => build_trace(shape, *mode, *opts),
            KernelSpec::Listing1 { mode } => build_listing1_trace(shape, *mode),
            KernelSpec::RowWise { row_ratios } => build_rowwise_trace(shape, row_ratios),
            KernelSpec::Vector => build_vector_gemm_trace(shape),
        }
    }
}

fn mode_slug(mode: SparseMode) -> &'static str {
    match mode {
        SparseMode::Dense => "dense",
        SparseMode::Nm2of4 => "2of4",
        SparseMode::Nm1of4 => "1of4",
    }
}

/// Engine-side kernel selection: what a given engine executes for weights
/// with a given sparsity pattern (§VI-C).
///
/// A dense engine always runs the dense kernel (it "cannot leverage
/// sparsity"); the STC-like engine runs 1:4 layers with its 2:4 path,
/// gaining nothing from the extra zeros.
pub trait EngineKernelExt {
    /// The execution mode for weights with the given pattern: the sparsest
    /// *supported* pattern that still covers the weights.
    fn execution_mode(&self, weights: NmRatio) -> SparseMode;

    /// The tiled kernel spec this engine runs for the given weights.
    fn kernel_spec(&self, weights: NmRatio, opts: KernelOptions) -> KernelSpec;
}

impl EngineKernelExt for EngineConfig {
    fn execution_mode(&self, weights: NmRatio) -> SparseMode {
        SparseMode::for_ratio(self.execution_pattern(weights)).unwrap_or(SparseMode::Dense)
    }

    fn kernel_spec(&self, weights: NmRatio, opts: KernelOptions) -> KernelSpec {
        KernelSpec::Tiled {
            mode: self.execution_mode(weights),
            opts,
        }
    }
}

/// A memoizing, thread-safe trace cache keyed on
/// `(GemmShape, FormatSpec, KernelSpec)`.
///
/// The operand storage format is part of the key (derived via
/// [`KernelSpec::format`]), so sweeps that grid over storage formats — and
/// future kernels that execute the same instruction mix over different
/// operand encodings — never alias cache entries.
///
/// Each key's trace is built exactly once, even under concurrent lookups
/// from sweep worker threads (per-key [`OnceLock`] cells serialize the
/// first build; later callers share the `Arc`).
///
/// # Example
///
/// ```
/// use vegeta_kernels::{GemmShape, KernelSpec, SparseMode, TraceCache};
///
/// let cache = TraceCache::new();
/// let shape = GemmShape::new(64, 64, 128);
/// let spec = KernelSpec::tiled(SparseMode::Dense);
/// let a = cache.get_or_build(shape, &spec);
/// let b = cache.get_or_build(shape, &spec);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct TraceCache {
    cells: Mutex<HashMap<(GemmShape, FormatSpec, KernelSpec), TraceCell>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A lazily-initialized, shareable cache slot for one built trace.
type TraceCell = Arc<OnceLock<Arc<Trace>>>;

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// Returns the memoized trace for `(shape, spec)`, building it on first
    /// use. Concurrent callers for the same key block on the single build.
    pub fn get_or_build(&self, shape: GemmShape, spec: &KernelSpec) -> Arc<Trace> {
        let format = spec.format();
        let cell = {
            let mut map = self.cells.lock().expect("trace cache poisoned");
            match map.get(&(shape, format, spec.clone())) {
                Some(cell) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(cell)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let cell = Arc::new(OnceLock::new());
                    map.insert((shape, format, spec.clone()), Arc::clone(&cell));
                    cell
                }
            }
        };
        // Build outside the map lock so other keys proceed concurrently.
        Arc::clone(cell.get_or_init(|| Arc::new(spec.build(shape))))
    }

    /// Cache lookups that found an existing entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache lookups that had to build the trace.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct `(shape, spec)` keys currently cached.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("trace cache poisoned").len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached trace and resets the hit/miss counters.
    pub fn clear(&self) {
        self.cells.lock().expect("trace cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_dispatch_matches_direct_builders() {
        let shape = GemmShape::new(48, 32, 256);
        for mode in [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4] {
            let spec = KernelSpec::tiled(mode);
            assert_eq!(
                spec.build(shape),
                build_trace(shape, mode, KernelOptions::default())
            );
            let naive = KernelSpec::Listing1 { mode };
            assert_eq!(naive.build(shape), build_listing1_trace(shape, mode));
        }
        assert_eq!(
            KernelSpec::Vector.build(shape),
            build_vector_gemm_trace(shape)
        );
        let ratios = vec![NmRatio::S1_4; 32];
        let spec = KernelSpec::RowWise {
            row_ratios: ratios.clone(),
        };
        assert_eq!(spec.build(shape), build_rowwise_trace(shape, &ratios));
    }

    #[test]
    fn cache_returns_shared_traces_and_counts() {
        let cache = TraceCache::new();
        let shape = GemmShape::new(32, 32, 64);
        let dense = KernelSpec::tiled(SparseMode::Dense);
        let sparse = KernelSpec::tiled(SparseMode::Nm2of4);
        let a = cache.get_or_build(shape, &dense);
        let b = cache.get_or_build(shape, &dense);
        let c = cache.get_or_build(shape, &sparse);
        assert!(Arc::ptr_eq(&a, &b), "same key shares one trace");
        assert!(!Arc::ptr_eq(&a, &c), "distinct specs get distinct traces");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(*a, dense.build(shape), "cached trace equals a cold build");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn cache_is_consistent_under_concurrent_lookups() {
        let cache = TraceCache::new();
        let shape = GemmShape::new(64, 64, 256);
        let spec = KernelSpec::tiled(SparseMode::Nm2of4);
        let traces: Vec<Arc<Trace>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| cache.get_or_build(shape, &spec)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t), "all threads share one build");
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 8);
    }

    #[test]
    fn execution_mode_is_an_engine_method() {
        let stc = EngineConfig::stc_like();
        assert_eq!(stc.execution_mode(NmRatio::S1_4), SparseMode::Nm2of4);
        assert_eq!(stc.execution_mode(NmRatio::D4_4), SparseMode::Dense);
        let dm = EngineConfig::rasa_dm();
        assert_eq!(dm.execution_mode(NmRatio::S1_4), SparseMode::Dense);
        let s16 = EngineConfig::vegeta_s(16).unwrap();
        assert_eq!(s16.execution_mode(NmRatio::S1_4), SparseMode::Nm1of4);
        assert_eq!(
            s16.kernel_spec(NmRatio::S2_4, KernelOptions::default()),
            KernelSpec::tiled(SparseMode::Nm2of4)
        );
    }

    #[test]
    fn specs_expose_their_operand_format() {
        assert_eq!(
            KernelSpec::tiled(SparseMode::Nm2of4).format(),
            FormatSpec::Nm(NmRatio::S2_4)
        );
        assert_eq!(
            KernelSpec::Listing1 {
                mode: SparseMode::Dense
            }
            .format(),
            FormatSpec::Dense
        );
        assert_eq!(
            KernelSpec::RowWise { row_ratios: vec![] }.format(),
            FormatSpec::RowWise { m: 4 }
        );
        assert_eq!(KernelSpec::Vector.format(), FormatSpec::Dense);
    }

    #[test]
    fn operand_accounting_matches_formats() {
        let shape = GemmShape::new(32, 16, 64);
        // Dense A: 32x64 BF16, no metadata.
        assert_eq!(KernelSpec::Vector.a_values_bytes(shape), 32 * 64 * 2);
        assert_eq!(KernelSpec::Vector.a_metadata_bits(shape), 0);
        // 2:4 halves the stored values and carries 2 bits each.
        let s24 = KernelSpec::tiled(SparseMode::Nm2of4);
        assert_eq!(s24.a_values_bytes(shape), 32 * 32 * 2);
        assert_eq!(s24.a_metadata_bits(shape), 32 * 32 * 2);
        // Row-wise accounting is exact per cover: 16 rows at 1:4 + 16 at
        // 2:4 over k = 64.
        let mut ratios = vec![NmRatio::S1_4; 16];
        ratios.extend(vec![NmRatio::S2_4; 16]);
        let rw = KernelSpec::RowWise { row_ratios: ratios };
        let stored = 16 * 16 + 16 * 32;
        assert_eq!(rw.a_values_bytes(shape), (stored * 2) as u64);
        assert_eq!(rw.a_metadata_bits(shape), (stored * 2 + 32 * 2) as u64);
    }

    #[test]
    fn kernel_names_are_self_describing() {
        assert_eq!(
            KernelSpec::tiled(SparseMode::Nm2of4).name(),
            "tiled-2of4-u3"
        );
        assert_eq!(
            KernelSpec::Listing1 {
                mode: SparseMode::Dense
            }
            .name(),
            "listing1-dense"
        );
        assert_eq!(KernelSpec::Vector.name(), "vector-gemm");
    }
}
