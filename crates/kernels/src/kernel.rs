//! Polymorphic kernel dispatch and trace memoization.
//!
//! Every trace builder in this crate — the optimized tiled GEMM/SPMM
//! kernels, the naive Listing-1 kernel, the row-wise `TILE_SPMM_R` kernel
//! and the vector-engine baseline — is reachable through one interface:
//!
//! * [`Kernel`] is the trait: anything that can emit a timing [`Trace`] for
//!   a [`GemmShape`].
//! * [`KernelSpec`] is the closed, hashable enumeration of this crate's
//!   builders; it is the value the experiment drivers pass around, and the
//!   cache key the sweep infrastructure memoizes on.
//! * [`TraceCache`] memoizes compact trace *generators* keyed on
//!   `(GemmShape, FormatSpec, KernelSpec)`: per-key [`TraceSummary`] stats
//!   plus fresh lazy [`KernelStream`]s via [`TraceCache::stream`], so a
//!   sweep over many engines derives each distinct trace's accounting once
//!   and never holds a full instruction vector. The legacy materializing
//!   path ([`TraceCache::get_or_build`]) keeps a bounded, evicting set of
//!   resident traces. It is `Sync` and cheap to share across worker
//!   threads.
//!
//! [`KernelStream`]: crate::stream::KernelStream
//! * [`EngineKernelExt`] puts `execution_mode` on [`EngineConfig`]: the
//!   kernel an engine runs for weights of a given `N:M` pattern.
//!
//! [`Trace`]: vegeta_isa::trace::Trace

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use vegeta_engine::EngineConfig;
use vegeta_isa::stream::InstStream;
use vegeta_isa::trace::Trace;
use vegeta_isa::TRACE_OP_BYTES;
use vegeta_sparse::{FormatSpec, NmRatio};

use crate::rowwise::build_rowwise_trace;
use crate::stream::{KernelEmitter, KernelStream};
use crate::tiled::{build_listing1_trace, build_trace, KernelOptions, SparseMode};
use crate::vector::build_vector_gemm_trace;
use crate::GemmShape;

/// Anything that can emit a timing trace for a GEMM problem.
///
/// The trait is object-safe, so heterogeneous kernel collections
/// (`Vec<Box<dyn Kernel>>`) work; [`KernelSpec`] is the closed enum form
/// that additionally supports hashing and caching.
pub trait Kernel {
    /// A short human-readable kernel name (for reports and logs).
    fn name(&self) -> String;

    /// Builds the dynamic instruction trace for the given shape.
    fn build(&self, shape: GemmShape) -> Trace;
}

/// A self-describing specification of one of this crate's trace builders.
///
/// `KernelSpec` is `Eq + Hash`, which makes it the natural cache key for
/// memoizing trace construction (see [`TraceCache`]).
///
/// # Example
///
/// ```
/// use vegeta_kernels::{GemmShape, Kernel, KernelOptions, KernelSpec, SparseMode};
///
/// let spec = KernelSpec::tiled(SparseMode::Nm2of4);
/// let trace = spec.build(GemmShape::new(64, 64, 128));
/// assert!(trace.mix().tile_compute > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KernelSpec {
    /// The optimized tiled GEMM/SPMM kernel used for the Fig. 13 sweeps
    /// (register-blocked, rotating accumulators).
    Tiled {
        /// How the `A` operand is encoded.
        mode: SparseMode,
        /// Unroll and loop-overhead options.
        opts: KernelOptions,
    },
    /// The naive Listing-1 kernel (reloads and stores `C` every iteration);
    /// the programmability baseline for ablations.
    Listing1 {
        /// How the `A` operand is encoded.
        mode: SparseMode,
    },
    /// The row-wise `TILE_SPMM_R` kernel for unstructured sparsity, with
    /// the per-row `N:4` covers already computed (sorted covers model the
    /// §V-E DMA row reordering).
    RowWise {
        /// One cover ratio per `A` row.
        row_ratios: Vec<NmRatio>,
    },
    /// The register-blocked AVX-512-class vector GEMM baseline of
    /// Figs. 3/4.
    Vector,
}

impl KernelSpec {
    /// The tiled kernel with default [`KernelOptions`].
    pub fn tiled(mode: SparseMode) -> Self {
        KernelSpec::Tiled {
            mode,
            opts: KernelOptions::default(),
        }
    }

    /// The sparse mode this spec executes in, when it has one (row-wise and
    /// vector kernels do not).
    pub fn mode(&self) -> Option<SparseMode> {
        match self {
            KernelSpec::Tiled { mode, .. } | KernelSpec::Listing1 { mode } => Some(*mode),
            KernelSpec::RowWise { .. } | KernelSpec::Vector => None,
        }
    }

    /// The storage format of the `A` operand this kernel consumes: the
    /// tiled/Listing-1 kernels read their mode's format, the row-wise kernel
    /// reads row-wise `N:4` tiles, and the vector baseline streams dense
    /// values.
    pub fn format(&self) -> FormatSpec {
        match self {
            KernelSpec::Tiled { mode, .. } | KernelSpec::Listing1 { mode } => mode.format(),
            KernelSpec::RowWise { .. } => FormatSpec::RowWise { m: 4 },
            KernelSpec::Vector => FormatSpec::Dense,
        }
    }

    /// Bytes of stored `A`-operand values for `shape` in this kernel's
    /// format. Exact for row-wise specs (which carry their covers);
    /// spec-level capacity bounds otherwise (see
    /// [`FormatSpec::values_bytes`]).
    pub fn a_values_bytes(&self, shape: GemmShape) -> u64 {
        match self {
            KernelSpec::RowWise { row_ratios } => row_ratios
                .iter()
                .map(|r| (shape.k.div_ceil(r.m() as usize) * r.n() as usize * 2) as u64)
                .sum(),
            _ => self.format().values_bytes(shape.m, shape.k) as u64,
        }
    }

    /// Bits of `A`-operand metadata for `shape` in this kernel's format
    /// (positions plus the row-wise per-row selectors); exact for row-wise
    /// specs, capacity bounds otherwise.
    pub fn a_metadata_bits(&self, shape: GemmShape) -> u64 {
        match self {
            KernelSpec::RowWise { row_ratios } => {
                let stored: u64 = row_ratios
                    .iter()
                    .map(|r| (shape.k.div_ceil(r.m() as usize) * r.n() as usize) as u64)
                    .sum();
                stored * 2 + row_ratios.len() as u64 * 2
            }
            _ => self.format().metadata_bits(shape.m, shape.k) as u64,
        }
    }
}

impl KernelSpec {
    /// Streams this kernel's trace lazily (see [`crate::stream`]): the
    /// compact generator form of [`Kernel::build`], identical op for op,
    /// with peak residency bounded by one tile-loop cell.
    pub fn stream(&self, shape: GemmShape) -> KernelStream {
        KernelEmitter::for_spec(self, shape).stream()
    }

    /// Shards this kernel's trace into `n` independent streams by M-tile
    /// rows (see [`KernelEmitter::shard`]): each shard is an exact-length,
    /// byte-accounted stream over a contiguous range of the tile-loop
    /// nest, and the shards concatenated in order replay exactly
    /// [`KernelSpec::stream`]. The unit of work each core of a multi-core
    /// simulation consumes.
    ///
    /// # Example
    ///
    /// ```
    /// use vegeta_isa::stream::InstStream;
    /// use vegeta_kernels::{GemmShape, KernelSpec, SparseMode};
    ///
    /// let spec = KernelSpec::tiled(SparseMode::Nm2of4);
    /// let shape = GemmShape::new(128, 64, 256);
    /// let shards = spec.shard_streams(shape, 4);
    /// let total: u64 = shards.iter().map(|s| s.remaining()).sum();
    /// assert_eq!(total, spec.stream(shape).remaining());
    /// ```
    pub fn shard_streams(&self, shape: GemmShape, n: usize) -> Vec<crate::stream::ShardStream> {
        KernelEmitter::for_spec(self, shape).shard(n)
    }

    /// Picks the 2D/K-split [`crate::ShardPlan`] for `cores` (see
    /// [`KernelEmitter::plan_for_cores`]): M first, then N with ~2×
    /// over-decomposition for LPT slack, then K as the last resort.
    pub fn shard_plan(&self, shape: GemmShape, cores: usize) -> crate::ShardPlan {
        KernelEmitter::for_spec(self, shape).plan_for_cores(cores)
    }

    /// Cuts this kernel into the shard set [`KernelSpec::shard_plan`]
    /// picks for `cores`: rectangular M×N (and, when needed, K-split)
    /// shards plus the post-barrier reduction stream when K is split —
    /// the work units the load-aware scheduler packs onto cores.
    ///
    /// # Example
    ///
    /// ```
    /// use vegeta_isa::stream::InstStream;
    /// use vegeta_kernels::{GemmShape, KernelSpec, SparseMode};
    ///
    /// let spec = KernelSpec::tiled(SparseMode::Nm2of4);
    /// let shape = GemmShape::new(128, 64, 256);
    /// let set = spec.shard_set(shape, 8);
    /// assert!(set.shards.len() >= 8, "every core gets work");
    /// let total: u64 = set.shards.iter().map(|s| s.remaining()).sum();
    /// assert_eq!(total, spec.stream(shape).remaining());
    /// ```
    pub fn shard_set(&self, shape: GemmShape, cores: usize) -> crate::ShardSet {
        let emitter = KernelEmitter::for_spec(self, shape);
        let plan = emitter.plan_for_cores(cores);
        emitter.shard_with(plan)
    }
}

impl Kernel for KernelSpec {
    fn name(&self) -> String {
        match self {
            KernelSpec::Tiled { mode, opts } => {
                format!("tiled-{}-u{}", mode_slug(*mode), opts.unroll)
            }
            KernelSpec::Listing1 { mode } => format!("listing1-{}", mode_slug(*mode)),
            KernelSpec::RowWise { row_ratios } => format!("rowwise-{}rows", row_ratios.len()),
            KernelSpec::Vector => "vector-gemm".to_string(),
        }
    }

    fn build(&self, shape: GemmShape) -> Trace {
        match self {
            KernelSpec::Tiled { mode, opts } => build_trace(shape, *mode, *opts),
            KernelSpec::Listing1 { mode } => build_listing1_trace(shape, *mode),
            KernelSpec::RowWise { row_ratios } => build_rowwise_trace(shape, row_ratios),
            KernelSpec::Vector => build_vector_gemm_trace(shape),
        }
    }
}

fn mode_slug(mode: SparseMode) -> &'static str {
    match mode {
        SparseMode::Dense => "dense",
        SparseMode::Nm2of4 => "2of4",
        SparseMode::Nm1of4 => "1of4",
    }
}

/// Engine-side kernel selection: what a given engine executes for weights
/// with a given sparsity pattern (§VI-C).
///
/// A dense engine always runs the dense kernel (it "cannot leverage
/// sparsity"); the STC-like engine runs 1:4 layers with its 2:4 path,
/// gaining nothing from the extra zeros.
pub trait EngineKernelExt {
    /// The execution mode for weights with the given pattern: the sparsest
    /// *supported* pattern that still covers the weights.
    fn execution_mode(&self, weights: NmRatio) -> SparseMode;

    /// The tiled kernel spec this engine runs for the given weights.
    fn kernel_spec(&self, weights: NmRatio, opts: KernelOptions) -> KernelSpec;
}

impl EngineKernelExt for EngineConfig {
    fn execution_mode(&self, weights: NmRatio) -> SparseMode {
        SparseMode::for_ratio(self.execution_pattern(weights)).unwrap_or(SparseMode::Dense)
    }

    fn kernel_spec(&self, weights: NmRatio, opts: KernelOptions) -> KernelSpec {
        KernelSpec::Tiled {
            mode: self.execution_mode(weights),
            opts,
        }
    }
}

/// Memoized summary statistics of one kernel trace — the compact stand-in
/// the cache keeps now that traces stream instead of materializing.
///
/// Both fields derive from the kernel's block decomposition in O(blocks)
/// time; no trace is built to compute them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Exact dynamic op count of the trace.
    pub ops: u64,
    /// Bytes of the largest streaming chunk (one tile-loop cell) — the
    /// buffer bound a streamed replay of this trace needs.
    pub chunk_bytes: u64,
}

impl TraceSummary {
    /// Derives the summary from an undrained stream (O(blocks), no ops
    /// emitted) — the single definition every cache path shares.
    fn of(stream: &KernelStream) -> Self {
        TraceSummary {
            ops: stream.remaining(),
            chunk_bytes: stream.max_block_ops() * TRACE_OP_BYTES as u64,
        }
    }
}

/// A point-in-time snapshot of a [`TraceCache`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Lookups that found a memoized entry.
    pub hits: u64,
    /// Lookups that had to build a generator summary or a trace.
    pub misses: u64,
    /// Distinct `(shape, format, spec)` keys with a memoized summary.
    pub entries: usize,
    /// Materialized traces currently resident (bounded by the eviction
    /// capacity).
    pub resident: usize,
    /// Materialized traces evicted to keep residency bounded.
    pub evictions: u64,
}

/// Materialized traces a cache may keep resident by default; older entries
/// are evicted beyond this (streaming replays never materialize, so the
/// bound only governs the legacy [`TraceCache::get_or_build`] path).
pub const DEFAULT_RESIDENT_TRACES: usize = 32;

/// A memoizing, thread-safe trace cache keyed on
/// `(GemmShape, FormatSpec, KernelSpec)`.
///
/// The operand storage format is part of the key (derived via
/// [`KernelSpec::format`]), so sweeps that grid over storage formats — and
/// future kernels that execute the same instruction mix over different
/// operand encodings — never alias cache entries.
///
/// Since the streaming redesign the cache memoizes **compact trace
/// generators**, not instruction vectors: a key's entry is its
/// [`TraceSummary`] (exact length + chunk bound, derived from the kernel's
/// block decomposition), and [`TraceCache::stream`] hands out a fresh
/// lazy [`KernelStream`] per call. The legacy [`TraceCache::get_or_build`]
/// still materializes (each key's trace built exactly once, even under
/// concurrent lookups — per-key [`OnceLock`] cells serialize the first
/// build), but resident traces are bounded: beyond the eviction capacity
/// the least-recently-used materialized entry is dropped.
///
/// # Example
///
/// ```
/// use vegeta_isa::stream::InstStream;
/// use vegeta_kernels::{GemmShape, KernelSpec, SparseMode, TraceCache};
///
/// let cache = TraceCache::new();
/// let shape = GemmShape::new(64, 64, 128);
/// let spec = KernelSpec::tiled(SparseMode::Dense);
/// let first = cache.stream(shape, &spec);
/// let again = cache.stream(shape, &spec);
/// assert_eq!(first.remaining(), again.remaining());
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// let a = cache.get_or_build(shape, &spec);
/// assert_eq!(a.len() as u64, first.remaining());
/// ```
#[derive(Debug)]
pub struct TraceCache {
    summaries: Mutex<HashMap<CacheKey, TraceSummary>>,
    resident: Mutex<ResidentTraces>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    max_resident: usize,
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache::new()
    }
}

type CacheKey = (GemmShape, FormatSpec, KernelSpec);

/// A lazily-initialized, shareable cache slot for one built trace.
type TraceCell = Arc<OnceLock<Arc<Trace>>>;

/// The bounded materialized-trace side of the cache: cells plus a
/// recency queue (front = coldest).
#[derive(Debug, Default)]
struct ResidentTraces {
    cells: HashMap<CacheKey, TraceCell>,
    order: VecDeque<CacheKey>,
}

impl TraceCache {
    /// Creates an empty cache with the default materialized-residency bound.
    pub fn new() -> Self {
        TraceCache::with_max_resident(DEFAULT_RESIDENT_TRACES)
    }

    /// Creates an empty cache already wrapped for cross-worker sharing:
    /// the `Arc` clones cheaply into every worker/session that should
    /// resolve against the same memo (the per-key [`OnceLock`] build-once
    /// guarantee holds across however many threads hold a clone).
    ///
    /// # Example
    ///
    /// ```
    /// use vegeta_kernels::TraceCache;
    ///
    /// let cache = TraceCache::shared();
    /// let clone = std::sync::Arc::clone(&cache); // hand to a worker
    /// assert_eq!(clone.len(), cache.len());
    /// ```
    pub fn shared() -> Arc<Self> {
        Arc::new(TraceCache::new())
    }

    /// Creates an empty cache evicting materialized traces beyond
    /// `max_resident` entries (minimum 1; summaries are never evicted —
    /// they are a few dozen bytes each).
    pub fn with_max_resident(max_resident: usize) -> Self {
        TraceCache {
            summaries: Mutex::new(HashMap::new()),
            resident: Mutex::new(ResidentTraces::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            max_resident: max_resident.max(1),
        }
    }

    /// Records a summary lookup for `key`, deriving it from `stream` on the
    /// first miss.
    fn memoize_summary(&self, key: CacheKey, stream: &KernelStream) {
        let mut map = self.summaries.lock().expect("trace cache poisoned");
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                e.insert(TraceSummary::of(stream));
            }
        }
    }

    /// A fresh lazy stream of the `(shape, spec)` trace, memoizing the
    /// key's [`TraceSummary`] on first use. Nothing is materialized; a
    /// "hit" means the generator's summary was already known.
    pub fn stream(&self, shape: GemmShape, spec: &KernelSpec) -> KernelStream {
        let stream = spec.stream(shape);
        self.memoize_summary((shape, spec.format(), spec.clone()), &stream);
        stream
    }

    /// The memoized summary for `(shape, spec)`, derived (without building
    /// the trace) on first use.
    pub fn summary(&self, shape: GemmShape, spec: &KernelSpec) -> TraceSummary {
        let key = (shape, spec.format(), spec.clone());
        if let Some(&s) = self
            .summaries
            .lock()
            .expect("trace cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return s;
        }
        let stream = spec.stream(shape);
        self.memoize_summary(key, &stream);
        TraceSummary::of(&stream)
    }

    /// Returns the memoized materialized trace for `(shape, spec)`,
    /// building it on first use. Concurrent callers for the same key block
    /// on the single build; materialized residency is bounded (older
    /// entries are evicted, though outstanding `Arc`s keep them alive for
    /// their holders).
    pub fn get_or_build(&self, shape: GemmShape, spec: &KernelSpec) -> Arc<Trace> {
        let key = (shape, spec.format(), spec.clone());
        let cell = {
            let mut resident = self.resident.lock().expect("trace cache poisoned");
            match resident.cells.get(&key) {
                Some(cell) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let cell = Arc::clone(cell);
                    // Refresh recency: move the key to the back.
                    if let Some(i) = resident.order.iter().position(|k| k == &key) {
                        resident.order.remove(i);
                        resident.order.push_back(key);
                    }
                    cell
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    // Register the summary too, so `entries` covers keys
                    // that only ever materialized.
                    let mut summaries = self.summaries.lock().expect("trace cache poisoned");
                    summaries
                        .entry(key.clone())
                        .or_insert_with(|| TraceSummary::of(&spec.stream(shape)));
                    drop(summaries);
                    let cell = Arc::new(OnceLock::new());
                    resident.cells.insert(key.clone(), Arc::clone(&cell));
                    resident.order.push_back(key);
                    while resident.order.len() > self.max_resident {
                        let coldest = resident.order.pop_front().expect("non-empty queue");
                        resident.cells.remove(&coldest);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    cell
                }
            }
        };
        // Build outside the map lock so other keys proceed concurrently.
        Arc::clone(cell.get_or_init(|| Arc::new(spec.build(shape))))
    }

    /// Cache lookups that found an existing entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache lookups that had to build a summary or trace.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Materialized traces evicted to keep residency bounded.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Distinct keys with a memoized summary.
    pub fn len(&self) -> usize {
        self.summaries.lock().expect("trace cache poisoned").len()
    }

    /// Materialized traces currently resident.
    pub fn resident_len(&self) -> usize {
        self.resident
            .lock()
            .expect("trace cache poisoned")
            .cells
            .len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every counter, for reports.
    pub fn stats(&self) -> TraceCacheStats {
        TraceCacheStats {
            hits: self.hits(),
            misses: self.misses(),
            entries: self.len(),
            resident: self.resident_len(),
            evictions: self.evictions(),
        }
    }

    /// Drops every cached entry and resets the counters.
    pub fn clear(&self) {
        self.summaries.lock().expect("trace cache poisoned").clear();
        let mut resident = self.resident.lock().expect("trace cache poisoned");
        resident.cells.clear();
        resident.order.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_dispatch_matches_direct_builders() {
        let shape = GemmShape::new(48, 32, 256);
        for mode in [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4] {
            let spec = KernelSpec::tiled(mode);
            assert_eq!(
                spec.build(shape),
                build_trace(shape, mode, KernelOptions::default())
            );
            let naive = KernelSpec::Listing1 { mode };
            assert_eq!(naive.build(shape), build_listing1_trace(shape, mode));
        }
        assert_eq!(
            KernelSpec::Vector.build(shape),
            build_vector_gemm_trace(shape)
        );
        let ratios = vec![NmRatio::S1_4; 32];
        let spec = KernelSpec::RowWise {
            row_ratios: ratios.clone(),
        };
        assert_eq!(spec.build(shape), build_rowwise_trace(shape, &ratios));
    }

    #[test]
    fn cache_returns_shared_traces_and_counts() {
        let cache = TraceCache::new();
        let shape = GemmShape::new(32, 32, 64);
        let dense = KernelSpec::tiled(SparseMode::Dense);
        let sparse = KernelSpec::tiled(SparseMode::Nm2of4);
        let a = cache.get_or_build(shape, &dense);
        let b = cache.get_or_build(shape, &dense);
        let c = cache.get_or_build(shape, &sparse);
        assert!(Arc::ptr_eq(&a, &b), "same key shares one trace");
        assert!(!Arc::ptr_eq(&a, &c), "distinct specs get distinct traces");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(*a, dense.build(shape), "cached trace equals a cold build");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn cache_is_consistent_under_concurrent_lookups() {
        let cache = TraceCache::new();
        let shape = GemmShape::new(64, 64, 256);
        let spec = KernelSpec::tiled(SparseMode::Nm2of4);
        let traces: Vec<Arc<Trace>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| cache.get_or_build(shape, &spec)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t), "all threads share one build");
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 8);
    }

    #[test]
    fn shared_cache_contention_builds_each_key_exactly_once() {
        // The cross-worker guarantee the serving layer leans on: M workers
        // holding Arc clones of one cache and racing on the *same* key get
        // one trace build (per-key OnceLock) and one generator-summary
        // derivation — a barrier maximizes the contention window.
        const WORKERS: usize = 8;
        let cache = TraceCache::shared();
        let shape = GemmShape::new(64, 64, 256);
        let spec = KernelSpec::tiled(SparseMode::Nm1of4);
        let barrier = std::sync::Barrier::new(WORKERS);
        let traces: Vec<Arc<Trace>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let spec = spec.clone();
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        // Streaming lookup and materializing lookup race.
                        let stream = cache.stream(shape, &spec);
                        let trace = cache.get_or_build(shape, &spec);
                        assert_eq!(stream.remaining(), trace.len() as u64);
                        trace
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t), "every worker shares one build");
        }
        assert_eq!(cache.len(), 1, "one distinct key");
        assert_eq!(cache.resident_len(), 1, "one materialized trace");
        // 2 lookups per worker; exactly 2 misses total (the first stream
        // summary + the first materialization), every other lookup hits.
        assert_eq!(cache.misses(), 2, "first summary + first build only");
        assert_eq!(cache.hits(), 2 * WORKERS as u64 - 2);
    }

    #[test]
    fn cache_streams_are_memoized_by_summary_and_replay_builds() {
        let cache = TraceCache::new();
        let shape = GemmShape::new(48, 32, 256);
        let spec = KernelSpec::tiled(SparseMode::Nm2of4);
        let mut s = cache.stream(shape, &spec);
        let summary = cache.summary(shape, &spec);
        assert_eq!(summary.ops, s.remaining());
        assert!(summary.chunk_bytes > 0);
        assert_eq!(s.collect_trace(), spec.build(shape));
        assert_eq!(cache.misses(), 1, "one summary derivation");
        assert_eq!(cache.hits(), 1, "summary() hit the memoized entry");
        assert_eq!(cache.resident_len(), 0, "streaming materializes nothing");
    }

    #[test]
    fn materialized_residency_is_bounded_by_eviction() {
        let cache = TraceCache::with_max_resident(2);
        let specs: Vec<KernelSpec> = [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4]
            .into_iter()
            .map(KernelSpec::tiled)
            .collect();
        let shape = GemmShape::new(32, 32, 128);
        for spec in &specs {
            cache.get_or_build(shape, spec);
        }
        assert_eq!(cache.resident_len(), 2, "third build evicts the coldest");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 3, "summaries survive eviction");
        // The evicted (dense) key rebuilds: a fresh miss, not a hit.
        let misses = cache.misses();
        cache.get_or_build(shape, &specs[0]);
        assert_eq!(cache.misses(), misses + 1);
        let stats = cache.stats();
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn get_or_build_refreshes_recency() {
        let cache = TraceCache::with_max_resident(2);
        let shape = GemmShape::new(32, 32, 128);
        let dense = KernelSpec::tiled(SparseMode::Dense);
        let s24 = KernelSpec::tiled(SparseMode::Nm2of4);
        let s14 = KernelSpec::tiled(SparseMode::Nm1of4);
        cache.get_or_build(shape, &dense);
        cache.get_or_build(shape, &s24);
        cache.get_or_build(shape, &dense); // dense is now the hottest
        cache.get_or_build(shape, &s14); // evicts 2:4, not dense
        let hits = cache.hits();
        cache.get_or_build(shape, &dense);
        assert_eq!(cache.hits(), hits + 1, "dense stayed resident");
    }

    #[test]
    fn execution_mode_is_an_engine_method() {
        let stc = EngineConfig::stc_like();
        assert_eq!(stc.execution_mode(NmRatio::S1_4), SparseMode::Nm2of4);
        assert_eq!(stc.execution_mode(NmRatio::D4_4), SparseMode::Dense);
        let dm = EngineConfig::rasa_dm();
        assert_eq!(dm.execution_mode(NmRatio::S1_4), SparseMode::Dense);
        let s16 = EngineConfig::vegeta_s(16).unwrap();
        assert_eq!(s16.execution_mode(NmRatio::S1_4), SparseMode::Nm1of4);
        assert_eq!(
            s16.kernel_spec(NmRatio::S2_4, KernelOptions::default()),
            KernelSpec::tiled(SparseMode::Nm2of4)
        );
    }

    #[test]
    fn specs_expose_their_operand_format() {
        assert_eq!(
            KernelSpec::tiled(SparseMode::Nm2of4).format(),
            FormatSpec::Nm(NmRatio::S2_4)
        );
        assert_eq!(
            KernelSpec::Listing1 {
                mode: SparseMode::Dense
            }
            .format(),
            FormatSpec::Dense
        );
        assert_eq!(
            KernelSpec::RowWise { row_ratios: vec![] }.format(),
            FormatSpec::RowWise { m: 4 }
        );
        assert_eq!(KernelSpec::Vector.format(), FormatSpec::Dense);
    }

    #[test]
    fn operand_accounting_matches_formats() {
        let shape = GemmShape::new(32, 16, 64);
        // Dense A: 32x64 BF16, no metadata.
        assert_eq!(KernelSpec::Vector.a_values_bytes(shape), 32 * 64 * 2);
        assert_eq!(KernelSpec::Vector.a_metadata_bits(shape), 0);
        // 2:4 halves the stored values and carries 2 bits each.
        let s24 = KernelSpec::tiled(SparseMode::Nm2of4);
        assert_eq!(s24.a_values_bytes(shape), 32 * 32 * 2);
        assert_eq!(s24.a_metadata_bits(shape), 32 * 32 * 2);
        // Row-wise accounting is exact per cover: 16 rows at 1:4 + 16 at
        // 2:4 over k = 64.
        let mut ratios = vec![NmRatio::S1_4; 16];
        ratios.extend(vec![NmRatio::S2_4; 16]);
        let rw = KernelSpec::RowWise { row_ratios: ratios };
        let stored = 16 * 16 + 16 * 32;
        assert_eq!(rw.a_values_bytes(shape), (stored * 2) as u64);
        assert_eq!(rw.a_metadata_bits(shape), (stored * 2 + 32 * 2) as u64);
    }

    #[test]
    fn kernel_names_are_self_describing() {
        assert_eq!(
            KernelSpec::tiled(SparseMode::Nm2of4).name(),
            "tiled-2of4-u3"
        );
        assert_eq!(
            KernelSpec::Listing1 {
                mode: SparseMode::Dense
            }
            .name(),
            "listing1-dense"
        );
        assert_eq!(KernelSpec::Vector.name(), "vector-gemm");
    }
}
