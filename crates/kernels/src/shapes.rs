//! Problem shapes: GEMM dimensions and convolution-to-GEMM lowering.

use vegeta_num::{Bf16, Matrix};

/// A GEMM problem `C (M×N) += A (M×K) × B (K×N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl GemmShape {
    /// Creates a shape.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        GemmShape { m, n, k }
    }

    /// Multiply-accumulate operations of the dense GEMM.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Tiles along `M` for 16-row output tiles.
    pub fn tiles_m(&self) -> usize {
        self.m.div_ceil(16)
    }

    /// Tiles along `N` for 16-column output tiles.
    pub fn tiles_n(&self) -> usize {
        self.n.div_ceil(16)
    }

    /// Tiles along `K` for the given effective tile depth (32 dense, 64 for
    /// 2:4, 128 for 1:4).
    pub fn tiles_k(&self, tk: usize) -> usize {
        self.k.div_ceil(tk)
    }
}

/// A convolutional layer shape in the paper's notation (Table IV): `K`
/// output channels, `C` input channels, `Y×X` output feature map, `R×S`
/// filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Output channels.
    pub k: usize,
    /// Input channels.
    pub c: usize,
    /// Output height.
    pub y: usize,
    /// Output width.
    pub x: usize,
    /// Filter height.
    pub r: usize,
    /// Filter width.
    pub s: usize,
}

impl ConvShape {
    /// Lowers to a GEMM via im2col (§VI-B): `M = K`, `N = Y·X`,
    /// `K = C·R·S`.
    pub fn to_gemm(self) -> GemmShape {
        GemmShape {
            m: self.k,
            n: self.y * self.x,
            k: self.c * self.r * self.s,
        }
    }

    /// MAC count (equals the lowered GEMM's).
    pub fn macs(self) -> u64 {
        self.to_gemm().macs()
    }
}

/// Materializes the im2col matrix of an input tensor for a stride-1,
/// zero-padded ('same') convolution: output is `(C·R·S) × (Y·X)`, where
/// column `(y·X + x)` holds the receptive field of output pixel `(y, x)`.
///
/// `input` is indexed as `input[c][(h, w)]` with `H = Y`, `W = X`.
///
/// # Panics
///
/// Panics if `input.len() != shape.c` or any channel's dimensions are not
/// `Y×X`.
pub fn im2col(input: &[Matrix<Bf16>], shape: ConvShape) -> Matrix<Bf16> {
    assert_eq!(input.len(), shape.c, "need one plane per input channel");
    for plane in input {
        assert_eq!(
            (plane.rows(), plane.cols()),
            (shape.y, shape.x),
            "plane must be YxX"
        );
    }
    let pad_h = (shape.r - 1) / 2;
    let pad_w = (shape.s - 1) / 2;
    Matrix::from_fn(
        shape.c * shape.r * shape.s,
        shape.y * shape.x,
        |row, col| {
            let c = row / (shape.r * shape.s);
            let r = (row / shape.s) % shape.r;
            let s = row % shape.s;
            let y = col / shape.x;
            let x = col % shape.x;
            let (h, w) = (y + r, x + s);
            if h < pad_h || w < pad_w {
                return Bf16::ZERO;
            }
            let (h, w) = (h - pad_h, w - pad_w);
            if h >= shape.y || w >= shape.x {
                return Bf16::ZERO;
            }
            input[c][(h, w)]
        },
    )
}

/// Direct (reference) convolution for validating [`im2col`]: returns the
/// output planes, one `Y×X` matrix per output channel, for stride-1 'same'
/// convolution. Weights are indexed `weights[k_out][c][(r, s)]`.
pub fn direct_conv(
    input: &[Matrix<Bf16>],
    weights: &[Vec<Matrix<Bf16>>],
    shape: ConvShape,
) -> Vec<Matrix<f32>> {
    let pad_h = (shape.r - 1) / 2;
    let pad_w = (shape.s - 1) / 2;
    (0..shape.k)
        .map(|ko| {
            Matrix::from_fn(shape.y, shape.x, |y, x| {
                let mut acc = 0.0f32;
                for c in 0..shape.c {
                    for r in 0..shape.r {
                        for s in 0..shape.s {
                            let (h, w) = (y + r, x + s);
                            if h < pad_h || w < pad_w {
                                continue;
                            }
                            let (h, w) = (h - pad_h, w - pad_w);
                            if h >= shape.y || w >= shape.x {
                                continue;
                            }
                            acc += weights[ko][c][(r, s)].to_f32() * input[c][(h, w)].to_f32();
                        }
                    }
                }
                acc
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_resnet_macs_check() {
        // ResNet50-L2: K=64, C=64, Y=56, X=56, R=3, S=3 -> 115,605,504 MACs.
        let l2 = ConvShape {
            k: 64,
            c: 64,
            y: 56,
            x: 56,
            r: 3,
            s: 3,
        };
        assert_eq!(l2.macs(), 115_605_504);
        // ResNet50-L1: 1x1 conv -> 51,380,224 MACs.
        let l1 = ConvShape {
            k: 64,
            c: 256,
            y: 56,
            x: 56,
            r: 1,
            s: 1,
        };
        assert_eq!(l1.macs(), 51_380_224);
    }

    #[test]
    fn gemm_tiling_rounds_up() {
        let s = GemmShape::new(100, 33, 65);
        assert_eq!(s.tiles_m(), 7);
        assert_eq!(s.tiles_n(), 3);
        assert_eq!(s.tiles_k(64), 2);
        assert_eq!(s.macs(), 100 * 33 * 65);
    }

    #[test]
    fn one_by_one_conv_im2col_is_channel_flatten() {
        let shape = ConvShape {
            k: 2,
            c: 3,
            y: 2,
            x: 2,
            r: 1,
            s: 1,
        };
        let input: Vec<Matrix<Bf16>> = (0..3)
            .map(|c| Matrix::from_fn(2, 2, |h, w| Bf16::from_f32((c * 4 + h * 2 + w) as f32)))
            .collect();
        let m = im2col(&input, shape);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert_eq!(m[(1, 3)].to_f32(), 7.0); // channel 1, pixel (1,1)
    }

    #[test]
    fn im2col_gemm_matches_direct_conv() {
        let shape = ConvShape {
            k: 2,
            c: 2,
            y: 4,
            x: 4,
            r: 3,
            s: 3,
        };
        let input: Vec<Matrix<Bf16>> = (0..shape.c)
            .map(|c| {
                Matrix::from_fn(4, 4, |h, w| {
                    Bf16::from_f32(((c * 16 + h * 4 + w) % 7) as f32 - 3.0)
                })
            })
            .collect();
        let weights: Vec<Vec<Matrix<Bf16>>> = (0..shape.k)
            .map(|ko| {
                (0..shape.c)
                    .map(|c| {
                        Matrix::from_fn(3, 3, |r, s| {
                            Bf16::from_f32(((ko * 18 + c * 9 + r * 3 + s) % 5) as f32 - 2.0)
                        })
                    })
                    .collect()
            })
            .collect();
        // Weight matrix: K x (C*R*S).
        let wm = Matrix::from_fn(shape.k, shape.c * shape.r * shape.s, |ko, idx| {
            let c = idx / 9;
            let r = (idx / 3) % 3;
            let s = idx % 3;
            weights[ko][c][(r, s)]
        });
        let cols = im2col(&input, shape);
        let mut gemm_out = Matrix::zeros(shape.k, shape.y * shape.x);
        vegeta_num::gemm_bf16_ref(&wm, &cols, &mut gemm_out);
        let direct = direct_conv(&input, &weights, shape);
        for ko in 0..shape.k {
            for y in 0..shape.y {
                for x in 0..shape.x {
                    assert_eq!(
                        gemm_out[(ko, y * shape.x + x)],
                        direct[ko][(y, x)],
                        "mismatch at k={ko}, y={y}, x={x}"
                    );
                }
            }
        }
    }
}
