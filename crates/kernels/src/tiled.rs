//! Tiled GEMM/SPMM kernels over the VEGETA ISA.
//!
//! Two kernel families are provided:
//!
//! * [`build_trace`]/[`build_program`] — the *optimized* kernels used for
//!   the Fig. 13 evaluation: output tiles stay resident in accumulator
//!   tregs across the whole `k` loop (no redundant `C` traffic), the `B`
//!   tile is reused across an unrolled triple of `A` row-tiles, and three
//!   accumulators rotate to expose independent tile instructions to the
//!   engine pipeline.
//! * [`build_listing1_trace`] — the naive kernel of Listing 1, which
//!   reloads and stores `C` every iteration; kept as the programmability
//!   baseline and for ablation.
//!
//! Register allocation per mode (aliases must not overlap, see
//! `vegeta-isa`):
//!
//! | mode | `B` | `A` (renamed per load) | accumulators |
//! |---|---|---|---|
//! | dense (`TILE_GEMM`) | `t3` | `t5` | `t0`,`t1`,`t2` |
//! | 2:4 (`TILE_SPMM_U`) | `u3` (`t6`,`t7`) | `t4` (+`m4`) | `t0`,`t1`,`t2` |
//! | 1:4 (`TILE_SPMM_V`) | `v1` (`t4`–`t7`) | `t3` (+`m3`) | `t0`,`t1`,`t2` |
//!
//! Three accumulators rotate across an unrolled triple of `A` row-tiles so
//! that, even without output forwarding, the producer of each accumulator is
//! three engine issues back and the `C`-writeback dependence
//! (`instruction_latency − WL ≈ 47` engine cycles) never throttles the
//! 16-cycle issue interval. A single architectural `A` register is reloaded
//! inside the unroll; the core's tile-register renaming (§V-F) makes those
//! reloads independent, exactly as it would for the paper's compiled
//! kernels.

use vegeta_isa::footprint::{Footprint, Region, RegionClass};
use vegeta_isa::stream::InstStream;
use vegeta_isa::trace::{Trace, TraceOp};
use vegeta_isa::{Executor, Inst, MReg, Memory, TReg, UReg, VReg};
use vegeta_num::{Bf16, Matrix};
use vegeta_sparse::{FormatSpec, MregImage, NmRatio, TregImage};

use crate::stream::KernelStream;
use crate::{GemmShape, KernelError};

/// How the `A` operand is encoded and which tile instruction multiplies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparseMode {
    /// Dense `A`; `TILE_GEMM` with `Tk = 32`.
    Dense,
    /// 2:4-compressed `A`; `TILE_SPMM_U` with effective `Tk = 64`.
    Nm2of4,
    /// 1:4-compressed `A`; `TILE_SPMM_V` with effective `Tk = 128`.
    Nm1of4,
}

impl SparseMode {
    /// The mode that executes `A` tiles with the given pattern.
    ///
    /// A sparser matrix can always run in a denser mode (1:4 data satisfies
    /// 2:4), which is how the STC-like engine executes 1:4 layers.
    pub fn for_ratio(ratio: NmRatio) -> Option<SparseMode> {
        match (ratio.n(), ratio.m()) {
            (4, 4) => Some(SparseMode::Dense),
            (2, 4) => Some(SparseMode::Nm2of4),
            (1, 4) => Some(SparseMode::Nm1of4),
            _ => None,
        }
    }

    /// The `N:M` pattern of this mode.
    pub fn ratio(self) -> NmRatio {
        match self {
            SparseMode::Dense => NmRatio::D4_4,
            SparseMode::Nm2of4 => NmRatio::S2_4,
            SparseMode::Nm1of4 => NmRatio::S1_4,
        }
    }

    /// The storage format the `A` operand uses in this mode.
    pub fn format(self) -> FormatSpec {
        match self {
            SparseMode::Dense => FormatSpec::Dense,
            SparseMode::Nm2of4 => FormatSpec::Nm(NmRatio::S2_4),
            SparseMode::Nm1of4 => FormatSpec::Nm(NmRatio::S1_4),
        }
    }

    /// The mode that executes operands stored in `format`, when the tiled
    /// kernels support one (row-wise and CSR operands have their own
    /// kernels).
    pub fn for_format(format: FormatSpec) -> Option<SparseMode> {
        match format {
            FormatSpec::Dense => Some(SparseMode::Dense),
            FormatSpec::Nm(ratio) => SparseMode::for_ratio(ratio),
            FormatSpec::RowWise { .. } | FormatSpec::Csr => None,
        }
    }

    /// Effective tile depth (`Tk`): effective `A` columns consumed per tile
    /// instruction.
    pub fn tk(self) -> usize {
        match self {
            SparseMode::Dense => 32,
            SparseMode::Nm2of4 => 64,
            SparseMode::Nm1of4 => 128,
        }
    }

    /// Bytes of one `Bᵀ` tile (16 × `Tk` BF16).
    pub fn b_tile_bytes(self) -> usize {
        16 * self.tk() * 2
    }
}

/// Kernel generation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelOptions {
    /// `A` row-tiles processed together sharing one `B` tile (1 to 3);
    /// also the number of rotating accumulators.
    pub unroll: usize,
    /// Include scalar loop-control overhead ops in the trace.
    pub loop_overhead: bool,
}

impl Default for KernelOptions {
    fn default() -> Self {
        KernelOptions {
            unroll: 3,
            loop_overhead: true,
        }
    }
}

/// Virtual address layout for all tiles of a GEMM.
///
/// The layout is a deterministic bump allocation (`A` values, `A`
/// metadata, `Bᵀ` tiles, `C` tiles, in that order, each region 64 B
/// aligned), so every address is affine in its tile index and the plan is
/// O(1) memory — the compact state a streaming trace generator carries,
/// whatever the problem size.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Plan {
    mode: SparseMode,
    shape: GemmShape,
    a_meta_base: u64,
    b_base: u64,
    b_bytes: u64,
    c_base: u64,
    total_bytes: u64,
}

impl Plan {
    pub(crate) fn new(shape: GemmShape, mode: SparseMode) -> Self {
        let (tm, tn, tk) = (shape.tiles_m(), shape.tiles_n(), shape.tiles_k(mode.tk()));
        // Leave address 0 unused; every region size is already a multiple
        // of the 64 B line.
        let a_meta_base = 64 + (tm * tk) as u64 * 1024;
        let b_base = a_meta_base + (tm * tk) as u64 * 128;
        let b_bytes = (mode.b_tile_bytes() as u64).next_multiple_of(64);
        let c_base = b_base + (tn * tk) as u64 * b_bytes;
        Plan {
            mode,
            shape,
            a_meta_base,
            b_base,
            b_bytes,
            c_base,
            total_bytes: c_base + (tm * tn) as u64 * 1024,
        }
    }

    pub(crate) fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    pub(crate) fn tiles_m(&self) -> usize {
        self.shape.tiles_m()
    }

    pub(crate) fn tiles_n(&self) -> usize {
        self.shape.tiles_n()
    }

    /// `K`-tile count — the unit count a K-split shard partitions.
    pub(crate) fn k_tiles(&self) -> usize {
        self.shape.tiles_k(self.mode.tk())
    }

    fn a_value_addr(&self, it: usize, kt: usize) -> u64 {
        64 + (it * self.shape.tiles_k(self.mode.tk()) + kt) as u64 * 1024
    }

    fn a_meta_addr(&self, it: usize, kt: usize) -> u64 {
        self.a_meta_base + (it * self.shape.tiles_k(self.mode.tk()) + kt) as u64 * 128
    }

    fn b_addr(&self, jt: usize, kt: usize) -> u64 {
        self.b_base + (jt * self.shape.tiles_k(self.mode.tk()) + kt) as u64 * self.b_bytes
    }

    pub(crate) fn c_addr(&self, it: usize, jt: usize) -> u64 {
        self.c_base + (it * self.shape.tiles_n() + jt) as u64 * 1024
    }

    /// Address of K-split shard `part`'s partial `C` tile for `(it, jt)`.
    ///
    /// Partials live in a bump region past [`Plan::total_bytes`], one full
    /// `C`-sized image per K-split shard, so the layout stays affine and
    /// shards never alias each other's accumulators (or the final `C`).
    pub(crate) fn partial_c_addr(&self, it: usize, jt: usize, part: usize) -> u64 {
        let tiles = (self.shape.tiles_m() * self.shape.tiles_n()) as u64;
        self.total_bytes.next_multiple_of(64)
            + (part as u64 * tiles + (it * self.shape.tiles_n() + jt) as u64) * 1024
    }

    /// The declared operand regions of this plan's address space, extended
    /// with `k_parts` K-split partial-`C` images when `k_parts > 0`.
    pub(crate) fn footprint(&self, k_parts: usize) -> Footprint {
        let (tm, tn, tk) = (self.tiles_m(), self.tiles_n(), self.k_tiles());
        let mut regions = vec![
            Region::ro(64, (tm * tk) as u64 * 1024, RegionClass::AValues),
            Region::ro(self.a_meta_base, (tm * tk) as u64 * 128, RegionClass::AMeta),
            Region::ro(self.b_base, (tn * tk) as u64 * self.b_bytes, RegionClass::B),
            Region::rw(self.c_base, (tm * tn) as u64 * 1024, RegionClass::C),
        ];
        if k_parts > 0 {
            regions.push(Region::rw(
                self.total_bytes.next_multiple_of(64),
                (k_parts * tm * tn) as u64 * 1024,
                RegionClass::PartialC,
            ));
        }
        Footprint::new(regions)
    }
}

fn emit_loop_overhead(out: &mut Vec<TraceOp>) {
    out.push(TraceOp::Scalar { dst: 0, src: 0 });
    out.push(TraceOp::Scalar { dst: 1, src: 0 });
    out.push(TraceOp::Branch { cond: 0 });
}

/// The optimized kernel's accumulator groups: `(first row-tile, width)` per
/// outer-loop iteration. Splitting a trailing group of 4 into 2+2 avoids a
/// single-accumulator tail whose `C`-writeback chain would serialize the
/// engine.
pub(crate) fn unroll_groups(tiles_m: usize, unroll: usize) -> Vec<(usize, usize)> {
    let unroll = unroll.clamp(1, 3);
    let mut groups = Vec::new();
    let mut it = 0;
    while it < tiles_m {
        let remaining = tiles_m - it;
        let u = if unroll >= 3 && remaining == 4 {
            2
        } else {
            unroll.min(remaining)
        };
        groups.push((it, u));
        it += u;
    }
    groups
}

/// Where a tiled cell's accumulators land when the `k` loop finishes:
/// the canonical `C` tile, or a K-split shard's private partial image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CellStore {
    /// The unsplit case: store to [`Plan::c_addr`].
    Final,
    /// K-split shard `part`: store to [`Plan::partial_c_addr`], to be
    /// merged by the post-barrier reduction pass.
    Partial(usize),
}

/// Exact op count of one optimized-kernel cell (one accumulator group ×
/// one output column tile).
pub(crate) fn tiled_cell_ops(plan: &Plan, opts: KernelOptions, u: usize) -> u64 {
    tiled_cell_slice_ops(plan, opts, u, plan.k_tiles())
}

/// Exact op count of a tiled cell restricted to `kt_len` of the `K` tiles
/// (a K-split shard's share). Zeroing and storing the `u` accumulators
/// happens per shard, so only the `k` loop scales with `kt_len`.
pub(crate) fn tiled_cell_slice_ops(
    plan: &Plan,
    opts: KernelOptions,
    u: usize,
    kt_len: usize,
) -> u64 {
    let a_ops = if plan.mode == SparseMode::Dense { 2 } else { 3 };
    let overhead = if opts.loop_overhead { 3 } else { 0 };
    u as u64 + kt_len as u64 * (1 + u as u64 * a_ops + overhead) + u as u64
}

/// Emits one optimized-kernel cell: zero the accumulators, run the `k`
/// loop sharing each `B` tile across the unrolled `A` row-tiles, store.
pub(crate) fn emit_tiled_cell(
    plan: &Plan,
    opts: KernelOptions,
    it: usize,
    u: usize,
    jt: usize,
    out: &mut Vec<TraceOp>,
) {
    emit_tiled_cell_slice(
        plan,
        opts,
        it,
        u,
        jt,
        0..plan.k_tiles(),
        CellStore::Final,
        out,
    );
}

/// Emits a tiled cell over the `kts` subrange of the `k` loop, storing the
/// accumulators to the canonical or a K-split-partial `C` address.
///
/// With the full `kt` range and [`CellStore::Final`] this is exactly
/// [`emit_tiled_cell`] — the unsplit (and 1-core) path goes through the
/// same code, which is what keeps it bit-identical.
#[allow(clippy::needless_range_loop)] // uu indexes accs and plan rows in lockstep
#[allow(clippy::too_many_arguments)] // one loop nest's coordinates, not config
pub(crate) fn emit_tiled_cell_slice(
    plan: &Plan,
    opts: KernelOptions,
    it: usize,
    u: usize,
    jt: usize,
    kts: std::ops::Range<usize>,
    store: CellStore,
    out: &mut Vec<TraceOp>,
) {
    let mode = plan.mode;
    let accs = [TReg::T0, TReg::T1, TReg::T2];
    // One architectural A register per mode; the core renames each reload.
    let (a_reg, a_mreg) = match mode {
        SparseMode::Dense => (TReg::T5, MReg::M5),
        SparseMode::Nm2of4 => (TReg::T4, MReg::M4),
        SparseMode::Nm1of4 => (TReg::T3, MReg::M3),
    };
    for acc in &accs[..u] {
        out.push(TraceOp::Tile(Inst::TileZero { dst: *acc }));
    }
    for kt in kts {
        match mode {
            SparseMode::Dense => {
                out.push(TraceOp::Tile(Inst::TileLoadT {
                    dst: TReg::T3,
                    addr: plan.b_addr(jt, kt),
                }));
            }
            SparseMode::Nm2of4 => {
                out.push(TraceOp::Tile(Inst::TileLoadU {
                    dst: UReg::U3,
                    addr: plan.b_addr(jt, kt),
                }));
            }
            SparseMode::Nm1of4 => {
                out.push(TraceOp::Tile(Inst::TileLoadV {
                    dst: VReg::V1,
                    addr: plan.b_addr(jt, kt),
                }));
            }
        }
        for uu in 0..u {
            out.push(TraceOp::Tile(Inst::TileLoadT {
                dst: a_reg,
                addr: plan.a_value_addr(it + uu, kt),
            }));
            if mode != SparseMode::Dense {
                out.push(TraceOp::Tile(Inst::TileLoadM {
                    dst: a_mreg,
                    addr: plan.a_meta_addr(it + uu, kt),
                }));
            }
            let inst = match mode {
                SparseMode::Dense => Inst::TileGemm {
                    acc: accs[uu],
                    a: a_reg,
                    b: TReg::T3,
                },
                SparseMode::Nm2of4 => Inst::TileSpmmU {
                    acc: accs[uu],
                    a: a_reg,
                    b: UReg::U3,
                },
                SparseMode::Nm1of4 => Inst::TileSpmmV {
                    acc: accs[uu],
                    a: a_reg,
                    b: VReg::V1,
                },
            };
            out.push(TraceOp::Tile(inst));
        }
        if opts.loop_overhead {
            emit_loop_overhead(out);
        }
    }
    for (uu, acc) in accs[..u].iter().enumerate() {
        let addr = match store {
            CellStore::Final => plan.c_addr(it + uu, jt),
            CellStore::Partial(part) => plan.partial_c_addr(it + uu, jt, part),
        };
        out.push(TraceOp::Tile(Inst::TileStoreT { addr, src: *acc }));
    }
}

/// Op count of the K-split reduction pass for one `(it, jt)` output tile:
/// 16 cache lines per `C` tile, each merged as one running-sum load,
/// `parts - 1` (load, accumulate) pairs, and one final store.
pub(crate) fn reduction_tile_ops(parts: usize) -> u64 {
    16 * 2 * parts as u64
}

/// Emits the vector-engine reduction for one `C` tile: sums the K-split
/// shards' partial images line by line into the canonical [`Plan::c_addr`]
/// location. Runs post-barrier, after every partial has been stored.
pub(crate) fn emit_reduction_tile(
    plan: &Plan,
    it: usize,
    jt: usize,
    parts: usize,
    out: &mut Vec<TraceOp>,
) {
    // A C tile is 16x16 f32 = 1024 B = 16 vector lines.
    for line in 0..16u64 {
        let off = line * 64;
        out.push(TraceOp::VecLoad {
            dst: 0,
            addr: plan.partial_c_addr(it, jt, 0) + off,
        });
        for part in 1..parts {
            out.push(TraceOp::VecLoad {
                dst: 1,
                addr: plan.partial_c_addr(it, jt, part) + off,
            });
            // Accumulate the partial into the running sum (b is an
            // all-ones constant register, never written).
            out.push(TraceOp::VecFma { acc: 0, a: 1, b: 2 });
        }
        out.push(TraceOp::VecStore {
            src: 0,
            addr: plan.c_addr(it, jt) + off,
        });
    }
}

/// Exact op count of one Listing-1 cell (one `(it, jt)` output tile).
pub(crate) fn listing1_cell_ops(plan: &Plan) -> u64 {
    let tk_tiles = plan.shape.tiles_k(plan.mode.tk()) as u64;
    let per_kt = if plan.mode == SparseMode::Dense { 8 } else { 9 };
    tk_tiles * per_kt
}

/// Emits one Listing-1 cell: `C` is reloaded and stored on every `k`
/// iteration, and a single accumulator serializes the engine.
pub(crate) fn emit_listing1_cell(plan: &Plan, it: usize, jt: usize, out: &mut Vec<TraceOp>) {
    let mode = plan.mode;
    let tk_tiles = plan.shape.tiles_k(mode.tk());
    for kt in 0..tk_tiles {
        match mode {
            SparseMode::Dense => out.push(TraceOp::Tile(Inst::TileLoadT {
                dst: TReg::T0,
                addr: plan.b_addr(jt, kt),
            })),
            SparseMode::Nm2of4 => out.push(TraceOp::Tile(Inst::TileLoadU {
                dst: UReg::U0,
                addr: plan.b_addr(jt, kt),
            })),
            SparseMode::Nm1of4 => out.push(TraceOp::Tile(Inst::TileLoadV {
                dst: VReg::V0,
                addr: plan.b_addr(jt, kt),
            })),
        }
        let (c, a, m) = match mode {
            SparseMode::Nm1of4 => (TReg::T4, TReg::T5, MReg::M5),
            _ => (TReg::T2, TReg::T3, MReg::M3),
        };
        out.push(TraceOp::Tile(Inst::TileLoadT {
            dst: c,
            addr: plan.c_addr(it, jt),
        }));
        out.push(TraceOp::Tile(Inst::TileLoadT {
            dst: a,
            addr: plan.a_value_addr(it, kt),
        }));
        if mode != SparseMode::Dense {
            out.push(TraceOp::Tile(Inst::TileLoadM {
                dst: m,
                addr: plan.a_meta_addr(it, kt),
            }));
        }
        out.push(TraceOp::Tile(match mode {
            SparseMode::Dense => Inst::TileGemm {
                acc: c,
                a,
                b: TReg::T0,
            },
            SparseMode::Nm2of4 => Inst::TileSpmmU {
                acc: c,
                a,
                b: UReg::U0,
            },
            SparseMode::Nm1of4 => Inst::TileSpmmV {
                acc: c,
                a,
                b: VReg::V0,
            },
        }));
        out.push(TraceOp::Tile(Inst::TileStoreT {
            addr: plan.c_addr(it, jt),
            src: c,
        }));
        emit_loop_overhead(out);
    }
}

/// Builds the timing trace of the optimized kernel (synthetic addresses, no
/// data): what the CPU simulator consumes for the Fig. 13 sweeps.
/// Materializes [`stream_trace`]'s output; prefer the stream on hot paths.
pub fn build_trace(shape: GemmShape, mode: SparseMode, opts: KernelOptions) -> Trace {
    stream_trace(shape, mode, opts).collect_trace()
}

/// Streams the optimized kernel's trace lazily, one accumulator-group ×
/// column-tile cell at a time (see [`vegeta_isa::stream`]).
pub fn stream_trace(shape: GemmShape, mode: SparseMode, opts: KernelOptions) -> KernelStream {
    crate::stream::KernelEmitter::tiled(shape, mode, opts).stream()
}

/// Builds the naive Listing-1 kernel trace (see [`stream_listing1_trace`]).
pub fn build_listing1_trace(shape: GemmShape, mode: SparseMode) -> Trace {
    stream_listing1_trace(shape, mode).collect_trace()
}

/// Streams the Listing-1 kernel's trace lazily, one output tile at a time.
pub fn stream_listing1_trace(shape: GemmShape, mode: SparseMode) -> KernelStream {
    crate::stream::KernelEmitter::listing1(shape, mode).stream()
}

/// A kernel trace bundled with initialized memory, ready for functional
/// execution.
#[derive(Debug)]
pub struct KernelProgram {
    /// The instruction trace (tile instructions plus loop overhead).
    pub trace: Trace,
    /// Memory holding `A` (compressed), `Bᵀ` tiles and zeroed `C` tiles.
    pub mem: Memory,
    shape: GemmShape,
    mode: SparseMode,
    plan: Plan,
}

impl KernelProgram {
    /// The GEMM shape.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// The sparse mode the kernel was built for.
    pub fn mode(&self) -> SparseMode {
        self.mode
    }

    /// Runs the tile instructions on the functional executor and returns the
    /// assembled `M×N` output.
    ///
    /// # Errors
    ///
    /// Propagates executor faults ([`KernelError::Isa`]).
    pub fn run_functional(&self) -> Result<Matrix<f32>, KernelError> {
        let mut exec = Executor::new(self.mem.clone());
        exec.run(&self.trace.tile_insts())?;
        let mut out = Matrix::zeros(self.shape.m, self.shape.n);
        for it in 0..self.shape.tiles_m() {
            for jt in 0..self.shape.tiles_n() {
                let tile = exec
                    .mem()
                    .read_f32_matrix(self.plan.c_addr(it, jt), 16, 16)?;
                for r in 0..16 {
                    for c in 0..16 {
                        let (gr, gc) = (it * 16 + r, jt * 16 + c);
                        if gr < self.shape.m && gc < self.shape.n {
                            out[(gr, gc)] = tile[(r, c)];
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Builds a complete program (trace + initialized memory) computing
/// `C = A × B` with `A` compressed in `mode`'s pattern.
///
/// # Errors
///
/// * [`KernelError::Shape`] if `A` is not `M×K` / `B` is not `K×N`.
/// * [`KernelError::Sparsity`] if `A` violates the mode's `N:M` pattern
///   (prune it first).
pub fn build_program(
    a: &Matrix<Bf16>,
    b: &Matrix<Bf16>,
    mode: SparseMode,
    opts: KernelOptions,
) -> Result<KernelProgram, KernelError> {
    if a.cols() != b.rows() {
        return Err(KernelError::Shape {
            reason: format!(
                "A is {}x{}, B is {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
    let plan = Plan::new(shape, mode);
    let mut mem = Memory::new(plan.total_bytes().next_multiple_of(64) as usize);
    let tk = mode.tk();
    let format = mode.format();
    let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
    for it in 0..shape.tiles_m() {
        for kt in 0..shape.tiles_k(tk) {
            let block = a.block_padded(it * 16, kt * tk, 16, tk, Bf16::ZERO);
            // Compress into the mode's storage format and lower it straight
            // into register images — the exact bytes the TILE_LOAD_T /
            // TILE_LOAD_M pair will move, with no intermediate matrices.
            let tile = format.compress(&block)?;
            tile.pack_into(&mut treg, &mut mreg)?;
            mem.write_treg_image(plan.a_value_addr(it, kt), &treg)?;
            if mode != SparseMode::Dense {
                mem.write_mreg_image(plan.a_meta_addr(it, kt), None, &mreg)?;
            }
        }
    }
    for jt in 0..shape.tiles_n() {
        for kt in 0..shape.tiles_k(tk) {
            let bt = b
                .block_padded(kt * tk, jt * 16, tk, 16, Bf16::ZERO)
                .transposed();
            mem.write_bf16_matrix(plan.b_addr(jt, kt), &bt)?;
        }
    }
    let trace = stream_trace(shape, mode, opts).collect_trace();
    Ok(KernelProgram {
        trace,
        mem,
        shape,
        mode,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vegeta_num::gemm_bf16_ref;
    use vegeta_sparse::prune;

    fn check_numerics(m: usize, n: usize, k: usize, mode: SparseMode, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dense_a = prune::random_dense(m, k, &mut rng);
        let a = prune::magnitude_prune_nm(&dense_a, mode.ratio());
        let b = prune::random_dense(k, n, &mut rng);
        let program = build_program(&a, &b, mode, KernelOptions::default()).unwrap();
        let got = program.run_functional().unwrap();
        let mut expected = Matrix::zeros(m, n);
        gemm_bf16_ref(&a, &b, &mut expected);
        for r in 0..m {
            for c in 0..n {
                assert_eq!(
                    got[(r, c)],
                    expected[(r, c)],
                    "mode {mode:?} mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn dense_kernel_matches_reference() {
        check_numerics(32, 32, 64, SparseMode::Dense, 1);
    }

    #[test]
    fn spmm_u_kernel_matches_reference() {
        check_numerics(32, 32, 128, SparseMode::Nm2of4, 2);
    }

    #[test]
    fn spmm_v_kernel_matches_reference() {
        check_numerics(32, 32, 256, SparseMode::Nm1of4, 3);
    }

    #[test]
    fn ragged_shapes_are_zero_padded() {
        // 20x18x70: no dimension is tile-aligned.
        check_numerics(20, 18, 70, SparseMode::Nm2of4, 4);
    }

    #[test]
    fn single_tile_shape() {
        check_numerics(16, 16, 64, SparseMode::Nm2of4, 5);
    }

    #[test]
    fn sparser_modes_issue_fewer_compute_instructions() {
        let shape = GemmShape::new(64, 64, 512);
        let dense = build_trace(shape, SparseMode::Dense, KernelOptions::default());
        let s24 = build_trace(shape, SparseMode::Nm2of4, KernelOptions::default());
        let s14 = build_trace(shape, SparseMode::Nm1of4, KernelOptions::default());
        let (d, u, v) = (
            dense.mix().tile_compute,
            s24.mix().tile_compute,
            s14.mix().tile_compute,
        );
        assert_eq!(d, 2 * u, "2:4 halves the tile instructions");
        assert_eq!(d, 4 * v, "1:4 quarters the tile instructions");
    }

    #[test]
    fn listing1_reloads_c_every_iteration() {
        let shape = GemmShape::new(32, 32, 128);
        let naive = build_listing1_trace(shape, SparseMode::Nm2of4);
        let opt = build_trace(shape, SparseMode::Nm2of4, KernelOptions::default());
        assert!(naive.mix().tile_stores > opt.mix().tile_stores);
        assert!(naive.mix().tile_loads > opt.mix().tile_loads);
        assert_eq!(naive.mix().tile_compute, opt.mix().tile_compute);
    }

    #[test]
    fn mode_selection_from_ratio() {
        assert_eq!(
            SparseMode::for_ratio(NmRatio::D4_4),
            Some(SparseMode::Dense)
        );
        assert_eq!(
            SparseMode::for_ratio(NmRatio::S2_4),
            Some(SparseMode::Nm2of4)
        );
        assert_eq!(
            SparseMode::for_ratio(NmRatio::S1_4),
            Some(SparseMode::Nm1of4)
        );
        assert_eq!(SparseMode::for_ratio(NmRatio::new(3, 8).unwrap()), None);
    }

    #[test]
    fn rejects_mismatched_operands() {
        let a = Matrix::<Bf16>::zeros(16, 32);
        let b = Matrix::<Bf16>::zeros(64, 16);
        assert!(matches!(
            build_program(&a, &b, SparseMode::Dense, KernelOptions::default()),
            Err(KernelError::Shape { .. })
        ));
    }

    #[test]
    fn unpruned_matrix_is_rejected_for_sparse_modes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let a = prune::random_dense(16, 64, &mut rng);
        let b = prune::random_dense(64, 16, &mut rng);
        assert!(matches!(
            build_program(&a, &b, SparseMode::Nm2of4, KernelOptions::default()),
            Err(KernelError::Sparsity(_))
        ));
    }
}
