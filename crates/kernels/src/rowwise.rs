//! Row-wise `N:4` SPMM kernels over `TILE_SPMM_R` (§V-E).
//!
//! Given an *unstructured* sparse `A`, the kernel
//!
//! 1. covers every row with the sparsest supported `N:4` pattern over the
//!    whole row (so the per-row `N` is uniform across `k` tiles and `C`
//!    accumulation stays aligned);
//! 2. optionally reorders rows so equal-`N` rows pack together (the DMA
//!    reordering of §V-E; outputs are scattered back at the end);
//! 3. packs rows into `TILE_SPMM_R` instructions, each covering up to 32
//!    MAC columns (`Σ N_r ≤ 32`) and 32 `C` rows;
//! 4. loops over output column tiles and 64-deep `k` chunks, accumulating
//!    `C` in a `ureg` and storing it as two tile stores.
//!
//! Register allocation: `Bᵀ` in `u0` (`t0`,`t1`), the `C` accumulator in
//! `u1` (`t2`,`t3`), packed `A` values in `t4` with metadata in `m4`.

use vegeta_engine::rowwise::{pack_rows, TileAssignment};
use vegeta_isa::footprint::{Footprint, Region, RegionClass};
use vegeta_isa::stream::InstStream;
use vegeta_isa::trace::{Trace, TraceOp};
use vegeta_isa::{Executor, Inst, MReg, Memory, TReg, UReg};
use vegeta_num::{Bf16, Matrix};
use vegeta_sparse::{transform, MregImage, NmRatio, RowWiseTile, TileFormat, TregImage};

use crate::stream::KernelStream;
use crate::{GemmShape, KernelError};

/// A row-wise SPMM program: trace, memory, and the output scatter map.
#[derive(Debug)]
pub struct RowWiseProgram {
    /// The instruction trace.
    pub trace: Trace,
    /// Memory initialized with packed `A`, `Bᵀ` tiles and zeroed `C`.
    pub mem: Memory,
    shape: GemmShape,
    /// `order[p]` = original row index of packed row `p`.
    order: Vec<usize>,
    assignments: Vec<TileAssignment>,
    /// `C` base address per `(assignment, jt)`.
    c_addrs: Vec<u64>,
    tiles_n: usize,
}

impl RowWiseProgram {
    /// The GEMM shape.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// The packing (one entry per `TILE_SPMM_R` row group).
    pub fn assignments(&self) -> &[TileAssignment] {
        &self.assignments
    }

    /// Runs the tile instructions functionally and scatters the outputs back
    /// to the original row order.
    ///
    /// # Errors
    ///
    /// Propagates executor faults ([`KernelError::Isa`]).
    pub fn run_functional(&self) -> Result<Matrix<f32>, KernelError> {
        let mut exec = Executor::new(self.mem.clone());
        exec.run(&self.trace.tile_insts())?;
        let mut out = Matrix::zeros(self.shape.m, self.shape.n);
        for (ai, assignment) in self.assignments.iter().enumerate() {
            for jt in 0..self.tiles_n {
                let c = exec
                    .mem()
                    .read_f32_matrix(self.c_addrs[ai * self.tiles_n + jt], 32, 16)?;
                for (p, &packed_row) in assignment.rows.iter().enumerate() {
                    let orig = self.order[packed_row];
                    if orig >= self.shape.m {
                        continue;
                    }
                    for cc in 0..16 {
                        let gc = jt * 16 + cc;
                        if gc < self.shape.n {
                            out[(orig, gc)] = c[(p, cc)];
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Packs one row group's `A` data for one 64-wide `k` chunk into register
/// images, via the storage layer's row-wise format: gather the chunk,
/// compress it with the rows' (already chosen, possibly denser-than-needed)
/// covers, and lower with `pack_into`.
fn pack_tile(
    a: &Matrix<Bf16>,
    order: &[usize],
    covers: &[NmRatio],
    assignment: &TileAssignment,
    kt: usize,
) -> (TregImage, MregImage) {
    let chunk = Matrix::from_fn(assignment.rows.len(), 64, |p, c| {
        let orig = order[assignment.rows[p]];
        let col = kt * 64 + c;
        if orig < a.rows() && col < a.cols() {
            a[(orig, col)]
        } else {
            Bf16::ZERO
        }
    });
    let ratios: Vec<NmRatio> = assignment.rows.iter().map(|&p| covers[p]).collect();
    let tile = RowWiseTile::compress_with(&chunk, 4, &ratios)
        .expect("whole-row covers always cover their k chunks");
    let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
    tile.pack_into(&mut treg, &mut mreg)
        .expect("pack_rows keeps every group within the register budget");
    (treg, mreg)
}

/// Builds a complete row-wise SPMM program for unstructured `A`.
///
/// With `reorder` set, rows are sorted by their cover (the §V-E DMA
/// reordering), maximizing packing density; without it the original row
/// order is packed as-is (pseudo row-wise execution).
///
/// # Errors
///
/// * [`KernelError::Shape`] if the operand shapes disagree.
/// * [`KernelError::Isa`] if memory initialisation fails.
pub fn build_rowwise_program(
    a: &Matrix<Bf16>,
    b: &Matrix<Bf16>,
    reorder: bool,
) -> Result<RowWiseProgram, KernelError> {
    if a.cols() != b.rows() {
        return Err(KernelError::Shape {
            reason: format!(
                "A is {}x{}, B is {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
    // Cover each row over its whole length so N is uniform across k tiles.
    let covers_orig = transform::row_covers(a, 4)?;
    let mut order: Vec<usize> = (0..shape.m).collect();
    if reorder {
        order.sort_by_key(|&r| covers_orig[r]);
    }
    let covers: Vec<NmRatio> = order.iter().map(|&r| covers_orig[r]).collect();
    let assignments = pack_rows(&covers);

    let tiles_n = shape.tiles_n();
    let tiles_k = shape.k.div_ceil(64);
    let mut mem_bytes = 64u64;
    let mut bump = |bytes: usize| {
        let addr = mem_bytes;
        mem_bytes += (bytes as u64).next_multiple_of(64);
        addr
    };
    // A tiles: values + metadata + row patterns, per (assignment, kt).
    let a_addrs: Vec<(u64, u64, u64)> = (0..assignments.len() * tiles_k)
        .map(|_| (bump(1024), bump(128), bump(64)))
        .collect();
    let b_addrs: Vec<u64> = (0..tiles_n * tiles_k).map(|_| bump(2048)).collect();
    let c_addrs: Vec<u64> = (0..assignments.len() * tiles_n)
        .map(|_| bump(2048))
        .collect();

    let mut mem = Memory::new(mem_bytes.next_multiple_of(64) as usize);
    for (ai, assignment) in assignments.iter().enumerate() {
        for kt in 0..tiles_k {
            let (va, ma, ra) = a_addrs[ai * tiles_k + kt];
            let (treg, mreg) = pack_tile(a, &order, &covers, assignment, kt);
            mem.write_treg_image(va, &treg)?;
            mem.write_mreg_image(ma, Some(ra), &mreg)?;
        }
    }
    for jt in 0..tiles_n {
        for kt in 0..tiles_k {
            let bt = b
                .block_padded(kt * 64, jt * 16, 64, 16, Bf16::ZERO)
                .transposed();
            mem.write_bf16_matrix(b_addrs[jt * tiles_k + kt], &bt)?;
        }
    }

    let mut trace = Trace::new();
    for (ai, _) in assignments.iter().enumerate() {
        for jt in 0..tiles_n {
            trace.push_inst(Inst::TileZero { dst: TReg::T2 });
            trace.push_inst(Inst::TileZero { dst: TReg::T3 });
            for kt in 0..tiles_k {
                let (va, ma, ra) = a_addrs[ai * tiles_k + kt];
                trace.push_inst(Inst::TileLoadU {
                    dst: UReg::U0,
                    addr: b_addrs[jt * tiles_k + kt],
                });
                trace.push_inst(Inst::TileLoadT {
                    dst: TReg::T4,
                    addr: va,
                });
                trace.push_inst(Inst::TileLoadM {
                    dst: MReg::M4,
                    addr: ma,
                });
                trace.push_inst(Inst::TileLoadRp {
                    dst: MReg::M4,
                    addr: ra,
                });
                trace.push_inst(Inst::TileSpmmR {
                    acc: UReg::U1,
                    a: TReg::T4,
                    b: UReg::U0,
                });
                trace.push(TraceOp::Scalar { dst: 0, src: 0 });
                trace.push(TraceOp::Branch { cond: 0 });
            }
            let c = c_addrs[ai * tiles_n + jt];
            trace.push_inst(Inst::TileStoreT {
                addr: c,
                src: TReg::T2,
            });
            trace.push_inst(Inst::TileStoreT {
                addr: c + 1024,
                src: TReg::T3,
            });
        }
    }

    Ok(RowWiseProgram {
        trace,
        mem,
        shape,
        order,
        assignments,
        c_addrs,
        tiles_n,
    })
}

/// Per-`k`-chunk `A` bytes of the synthetic row-wise layout: values (1024)
/// + metadata (128, line-rounded) + row patterns (64).
const RW_A_CHUNK_BYTES: u64 = 1024 + 128 + 64;

/// Exact op count of one row-wise block (one packed row group × one output
/// column tile): two zeros, seven ops per `k` chunk, two stores.
pub(crate) fn rowwise_block_ops(tiles_k: usize) -> u64 {
    2 + 7 * tiles_k as u64 + 2
}

/// The declared operand regions of the synthetic row-wise address plan:
/// the shared `Bᵀ` image, then one read-only `A` run and one writable `C`
/// image per `(group, jt)` block, mirroring [`emit_rowwise_block`]'s bump
/// allocation.
pub(crate) fn rowwise_footprint(tiles_n: usize, tiles_k: usize, groups: usize) -> Footprint {
    let b_base = 64u64;
    let a_base = b_base + tiles_n as u64 * tiles_k as u64 * 2048;
    let block_bytes = tiles_k as u64 * RW_A_CHUNK_BYTES + 2048;
    let mut regions = Vec::with_capacity(1 + 2 * groups * tiles_n);
    regions.push(Region::ro(
        b_base,
        tiles_n as u64 * tiles_k as u64 * 2048,
        RegionClass::B,
    ));
    for block in 0..groups * tiles_n {
        let start = a_base + block as u64 * block_bytes;
        let a_bytes = tiles_k as u64 * RW_A_CHUNK_BYTES;
        regions.push(Region::ro(start, a_bytes, RegionClass::AValues));
        regions.push(Region::rw(start + a_bytes, 2048, RegionClass::C));
    }
    Footprint::new(regions)
}

/// Emits one row-wise block. Addresses reproduce the sequential bump
/// allocation of the materialized builder: `Bᵀ` tiles first, then one
/// `(values, metadata, row-pattern, ..., C)` run per `(group, jt)` block —
/// affine in the block index, so streaming needs no address tables.
pub(crate) fn emit_rowwise_block(
    tiles_n: usize,
    tiles_k: usize,
    block: usize,
    out: &mut Vec<TraceOp>,
) {
    let jt = block % tiles_n;
    let b_base = 64u64;
    let a_base = b_base + tiles_n as u64 * tiles_k as u64 * 2048;
    let block_bytes = tiles_k as u64 * RW_A_CHUNK_BYTES + 2048;
    let start = a_base + block as u64 * block_bytes;
    out.push(TraceOp::Tile(Inst::TileZero { dst: TReg::T2 }));
    out.push(TraceOp::Tile(Inst::TileZero { dst: TReg::T3 }));
    for kt in 0..tiles_k {
        let b_addr = b_base + ((jt * tiles_k + kt) as u64) * 2048;
        out.push(TraceOp::Tile(Inst::TileLoadU {
            dst: UReg::U0,
            addr: b_addr,
        }));
        let va = start + kt as u64 * RW_A_CHUNK_BYTES;
        out.push(TraceOp::Tile(Inst::TileLoadT {
            dst: TReg::T4,
            addr: va,
        }));
        out.push(TraceOp::Tile(Inst::TileLoadM {
            dst: MReg::M4,
            addr: va + 1024,
        }));
        out.push(TraceOp::Tile(Inst::TileLoadRp {
            dst: MReg::M4,
            addr: va + 1024 + 128,
        }));
        out.push(TraceOp::Tile(Inst::TileSpmmR {
            acc: UReg::U1,
            a: TReg::T4,
            b: UReg::U0,
        }));
        out.push(TraceOp::Scalar { dst: 0, src: 0 });
        out.push(TraceOp::Branch { cond: 0 });
    }
    let c = start + tiles_k as u64 * RW_A_CHUNK_BYTES;
    out.push(TraceOp::Tile(Inst::TileStoreT {
        addr: c,
        src: TReg::T2,
    }));
    out.push(TraceOp::Tile(Inst::TileStoreT {
        addr: c + 1024,
        src: TReg::T3,
    }));
}

/// Builds just the timing trace for a row-wise SPMM whose per-row covers are
/// already known (synthetic addresses; used by the benches). Materializes
/// [`stream_rowwise_trace`]'s output; prefer the stream on hot paths.
pub fn build_rowwise_trace(shape: GemmShape, row_ratios: &[NmRatio]) -> Trace {
    stream_rowwise_trace(shape, row_ratios).collect_trace()
}

/// Streams the row-wise SPMM trace lazily, one packed row group × output
/// column tile at a time.
pub fn stream_rowwise_trace(shape: GemmShape, row_ratios: &[NmRatio]) -> KernelStream {
    crate::stream::KernelEmitter::rowwise(shape, pack_rows(row_ratios).len()).stream()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vegeta_num::gemm_bf16_ref;
    use vegeta_sparse::prune;

    fn check(m: usize, n: usize, k: usize, degree: f64, reorder: bool, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = prune::random_unstructured(m, k, degree, &mut rng);
        let b = prune::random_dense(k, n, &mut rng);
        let program = build_rowwise_program(&a, &b, reorder).unwrap();
        let got = program.run_functional().unwrap();
        let mut expected = Matrix::zeros(m, n);
        gemm_bf16_ref(&a, &b, &mut expected);
        for r in 0..m {
            for c in 0..n {
                assert_eq!(got[(r, c)], expected[(r, c)], "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn unstructured_spmm_is_exact_without_reorder() {
        check(32, 32, 128, 0.8, false, 1);
    }

    #[test]
    fn unstructured_spmm_is_exact_with_reorder() {
        check(32, 32, 128, 0.8, true, 2);
    }

    #[test]
    fn high_sparsity_and_ragged_shape() {
        check(25, 18, 100, 0.95, true, 3);
    }

    #[test]
    fn dense_rows_still_work() {
        check(16, 16, 64, 0.0, true, 4);
    }

    #[test]
    fn reordering_packs_fewer_instructions() {
        let mut rng = SmallRng::seed_from_u64(5);
        // Alternating dense/sparse rows: unsorted packing fragments.
        let a = Matrix::from_fn(64, 128, |r, c| {
            let keep = if r % 2 == 0 { true } else { c % 4 == 0 };
            if keep {
                prune::random_dense(1, 1, &mut rng)[(0, 0)]
            } else {
                Bf16::ZERO
            }
        });
        let b = prune::random_dense(128, 16, &mut rng);
        let unsorted = build_rowwise_program(&a, &b, false).unwrap();
        let sorted = build_rowwise_program(&a, &b, true).unwrap();
        assert!(
            sorted.assignments().len() <= unsorted.assignments().len(),
            "reordering should never need more tiles"
        );
        // Both still compute the same result.
        assert_eq!(
            sorted.run_functional().unwrap(),
            unsorted.run_functional().unwrap()
        );
    }

    #[test]
    fn trace_only_variant_matches_program_instruction_mix() {
        let mut rng = SmallRng::seed_from_u64(6);
        let a = prune::random_unstructured(48, 128, 0.85, &mut rng);
        let b = prune::random_dense(128, 32, &mut rng);
        let program = build_rowwise_program(&a, &b, true).unwrap();
        let covers = {
            let mut c = transform::row_covers(&a, 4).unwrap();
            c.sort();
            c
        };
        let trace = build_rowwise_trace(GemmShape::new(48, 32, 128), &covers);
        assert_eq!(program.trace.mix().tile_compute, trace.mix().tile_compute);
        assert_eq!(program.trace.mix().tile_stores, trace.mix().tile_stores);
    }
}
