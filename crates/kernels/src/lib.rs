//! GEMM/SPMM kernels emitting VEGETA instruction traces (§VI-A).
//!
//! The paper wrote GEMM/SPMM kernels with VEGETA C++ intrinsics, traced them
//! with a Pintool, and replayed the traces on MacSim. This crate plays the
//! kernel-plus-intrinsics role: builders produce dynamic [`Trace`]s (and,
//! when operand data is supplied, fully initialized memory images that the
//! functional executor can run for bit-exact verification).
//!
//! * [`tiled`] — dense `TILE_GEMM` and structured `TILE_SPMM_U`/`_V`
//!   kernels: the optimized register-blocked versions used in Fig. 13 and
//!   the naive Listing-1 kernel.
//! * [`rowwise`] — `TILE_SPMM_R` kernels for unstructured sparsity via the
//!   row-wise cover transform, with and without DMA row reordering.
//! * [`vector`] — the register-blocked vector (AVX-512-class) GEMM baseline
//!   behind Figs. 3 and 4.
//! * [`shapes`] — GEMM shapes and im2col lowering for the Table IV
//!   convolutional layers.
//! * [`kernel`] — the polymorphic [`Kernel`] trait, the hashable
//!   [`KernelSpec`] enum unifying every builder, the memoizing
//!   [`TraceCache`] (keyed on shape × storage format × kernel), and
//!   [`EngineKernelExt`] (kernel selection per engine).
//!
//! Every kernel declares the storage format its `A` operand uses via
//! [`KernelSpec::format`] (a `vegeta_sparse::FormatSpec`), and the program
//! builders lower operands into register images with the storage layer's
//! `TileFormat::pack_into` — the same bytes the ISA's tile loads then move.
//!
//! [`Trace`]: vegeta_isa::trace::Trace
//!
//! # Example
//!
//! ```
//! use vegeta_kernels::{build_trace, GemmShape, KernelOptions, SparseMode};
//!
//! // The BERT-L2 layer at 2:4 sparsity, as a timing trace.
//! let trace = build_trace(
//!     GemmShape::new(512, 512, 768),
//!     SparseMode::Nm2of4,
//!     KernelOptions::default(),
//! );
//! assert!(trace.mix().tile_compute > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod kernel;
pub mod rowwise;
pub mod shapes;
pub mod stream;
pub mod tiled;
pub mod vector;

pub use error::KernelError;
pub use kernel::{EngineKernelExt, Kernel, KernelSpec, TraceCache, TraceCacheStats, TraceSummary};
pub use rowwise::{
    build_rowwise_program, build_rowwise_trace, stream_rowwise_trace, RowWiseProgram,
};
pub use shapes::{direct_conv, im2col, ConvShape, GemmShape};
pub use stream::{
    KernelEmitter, KernelStream, ShardEmitter, ShardKind, ShardPlan, ShardSet, ShardStream,
};
pub use tiled::{
    build_listing1_trace, build_program, build_trace, stream_listing1_trace, stream_trace,
    KernelOptions, KernelProgram, SparseMode,
};
pub use vector::{build_vector_gemm_trace, stream_vector_gemm_trace, MACS_PER_VEC_FMA};
