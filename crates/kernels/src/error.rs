//! Error type for kernel construction and execution.

use std::error::Error;
use std::fmt;

use vegeta_isa::IsaError;
use vegeta_sparse::SparsityError;

/// Errors produced while building or functionally running a kernel.
#[derive(Debug)]
#[non_exhaustive]
pub enum KernelError {
    /// The operand matrices do not fit the requested kernel.
    Shape {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A sparsity-format operation failed (for example, the `A` matrix does
    /// not satisfy the requested `N:M` pattern).
    Sparsity(SparsityError),
    /// An ISA-level operation failed (memory allocation, execution).
    Isa(IsaError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Shape { reason } => write!(f, "kernel shape error: {reason}"),
            KernelError::Sparsity(e) => write!(f, "sparsity error: {e}"),
            KernelError::Isa(e) => write!(f, "isa error: {e}"),
        }
    }
}

impl Error for KernelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelError::Shape { .. } => None,
            KernelError::Sparsity(e) => Some(e),
            KernelError::Isa(e) => Some(e),
        }
    }
}

impl From<SparsityError> for KernelError {
    fn from(e: SparsityError) -> Self {
        KernelError::Sparsity(e)
    }
}

impl From<IsaError> for KernelError {
    fn from(e: IsaError) -> Self {
        KernelError::Isa(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = KernelError::from(SparsityError::InvalidRatio { n: 9, m: 4 });
        assert!(e.to_string().contains("9:4"));
        assert!(e.source().is_some());
        let e = KernelError::Shape {
            reason: "bad".into(),
        };
        assert!(e.source().is_none());
    }
}
