//! Vector-engine GEMM baseline (§III-A, Figs. 3 and 4).
//!
//! Models a register-blocked AVX-512-class FP32 GEMM microkernel: 4 `A`
//! rows × 16 `C` columns stay in accumulator registers, the `B` row chunk is
//! loaded once per `k` step and multiplied against per-row broadcasts of `A`
//! elements. One vector FMA covers 16 MACs, so the vector engine's peak is
//! `2 ports × 16 lanes = 32 MACs/cycle` — an 8× gap to the 512-MAC matrix
//! engine clocked 4× slower (§III-A's 64 vs 512 GFLOPS).
//!
//! The trace includes the scalar loop control that makes the *executed
//! instruction count* gap of Fig. 4 so much larger than the FLOP gap.

use vegeta_isa::footprint::{Footprint, Region, RegionClass};
use vegeta_isa::stream::InstStream;
use vegeta_isa::trace::{Trace, TraceOp};

use crate::stream::KernelStream;
use crate::GemmShape;

/// Rows of `A` processed per microkernel invocation.
const I_BLOCK: usize = 4;
/// `C` columns per microkernel invocation (one 16-lane FP32 register).
const J_BLOCK: usize = 16;

/// Exact op count of one vector-GEMM block (one `(ib, jb)` microkernel
/// invocation): `C` loads/stores, one `B` load + four broadcast/FMA pairs
/// + loop control per `k`, and an `A`-line refill every 16 elements.
pub(crate) fn vector_block_ops(shape: GemmShape) -> u64 {
    let k = shape.k as u64;
    2 * I_BLOCK as u64 + k * (1 + 2 * I_BLOCK as u64 + 2) + k.div_ceil(16) * I_BLOCK as u64
}

/// Number of `(ib, jb)` microkernel blocks of the vector GEMM.
pub(crate) fn vector_blocks(shape: GemmShape) -> usize {
    shape.m.div_ceil(I_BLOCK) * shape.n.div_ceil(J_BLOCK)
}

/// `(A row-blocks, C column-blocks)` of the vector GEMM's row-major block
/// order — the outer/inner split M-row sharding partitions on.
pub(crate) fn vector_shard_layout(shape: GemmShape) -> (usize, usize) {
    (shape.m.div_ceil(I_BLOCK), shape.n.div_ceil(J_BLOCK))
}

/// The declared operand extents of the vector GEMM's synthetic layout.
///
/// The microkernel pads the row/column space to its 4×16 blocking and
/// issues whole 64 B vector accesses, so ragged shapes legitimately read
/// and write past `m × n` up to the padded extents declared here. The three
/// fixed 16 MB-spaced bases can overlap at very large shapes; the
/// [`Footprint`] containment contract tolerates that.
pub(crate) fn vector_footprint(shape: GemmShape) -> Footprint {
    let a_base = 0x0100_0000u64;
    let b_base = 0x0200_0000u64;
    let c_base = 0x0300_0000u64;
    let rows_padded = shape.m.div_ceil(I_BLOCK) * I_BLOCK;
    let jbs = shape.n.div_ceil(J_BLOCK);
    let mut regions = Vec::with_capacity(3);
    if shape.k > 0 && rows_padded > 0 && jbs > 0 {
        let k_last = ((shape.k - 1) / 16) * 16;
        regions.push(Region::ro(
            a_base,
            ((rows_padded - 1) * shape.k + k_last) as u64 * 4 + 64,
            RegionClass::AValues,
        ));
        regions.push(Region::ro(
            b_base,
            ((shape.k - 1) * shape.n + (jbs - 1) * J_BLOCK) as u64 * 4 + 64,
            RegionClass::B,
        ));
    }
    if rows_padded > 0 && jbs > 0 {
        regions.push(Region::rw(
            c_base,
            ((rows_padded - 1) * shape.n + (jbs - 1) * J_BLOCK) as u64 * 4 + 64,
            RegionClass::C,
        ));
    }
    Footprint::new(regions)
}

/// Emits one vector-GEMM microkernel block.
pub(crate) fn emit_vector_block(shape: GemmShape, block: usize, out: &mut Vec<TraceOp>) {
    let a_base = 0x0100_0000u64;
    let b_base = 0x0200_0000u64;
    let c_base = 0x0300_0000u64;
    // Register map: acc 0-3, B chunk 8, A broadcasts 12-15, A lines 20-23.
    let jb_count = shape.n.div_ceil(J_BLOCK);
    let (ib, jb) = (block / jb_count, block % jb_count);
    for i in 0..I_BLOCK {
        let row = ib * I_BLOCK + i;
        out.push(TraceOp::VecLoad {
            dst: i as u8,
            addr: c_base + (row * shape.n + jb * J_BLOCK) as u64 * 4,
        });
    }
    for k in 0..shape.k {
        // B[k][jb..jb+16], 64 B.
        out.push(TraceOp::VecLoad {
            dst: 8,
            addr: b_base + (k * shape.n + jb * J_BLOCK) as u64 * 4,
        });
        // Refill A lines every 16 elements (64 B of FP32).
        if k % 16 == 0 {
            for i in 0..I_BLOCK {
                let row = ib * I_BLOCK + i;
                out.push(TraceOp::VecLoad {
                    dst: 20 + i as u8,
                    addr: a_base + (row * shape.k + k) as u64 * 4,
                });
            }
        }
        for i in 0..I_BLOCK {
            // Broadcast A[row][k] from the line register.
            out.push(TraceOp::VecOp {
                dst: 12 + i as u8,
                src: 20 + i as u8,
            });
            out.push(TraceOp::VecFma {
                acc: i as u8,
                a: 12 + i as u8,
                b: 8,
            });
        }
        out.push(TraceOp::Scalar { dst: 0, src: 0 });
        out.push(TraceOp::Branch { cond: 0 });
    }
    for i in 0..I_BLOCK {
        let row = ib * I_BLOCK + i;
        out.push(TraceOp::VecStore {
            src: i as u8,
            addr: c_base + (row * shape.n + jb * J_BLOCK) as u64 * 4,
        });
    }
}

/// Builds the dynamic trace of a register-blocked vector GEMM.
///
/// Synthetic but coherent addresses: `A`, `B` and `C` live in disjoint
/// regions so the cache model sees realistic reuse. Materializes
/// [`stream_vector_gemm_trace`]'s output; prefer the stream on hot paths.
pub fn build_vector_gemm_trace(shape: GemmShape) -> Trace {
    stream_vector_gemm_trace(shape).collect_trace()
}

/// Streams the vector-GEMM trace lazily, one microkernel invocation at a
/// time.
pub fn stream_vector_gemm_trace(shape: GemmShape) -> KernelStream {
    crate::stream::KernelEmitter::vector(shape).stream()
}

/// MACs performed per vector FMA (16 FP32 lanes).
pub const MACS_PER_VEC_FMA: u64 = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_count_covers_all_macs() {
        let shape = GemmShape::new(32, 32, 64);
        let trace = build_vector_gemm_trace(shape);
        let fmas = trace.mix().vec_fmas;
        assert_eq!(fmas * MACS_PER_VEC_FMA, shape.macs());
    }

    #[test]
    fn instruction_count_grows_with_each_dimension() {
        let base = build_vector_gemm_trace(GemmShape::new(32, 32, 32)).len();
        for bigger in [
            GemmShape::new(64, 32, 32),
            GemmShape::new(32, 64, 32),
            GemmShape::new(32, 32, 64),
        ] {
            assert!(build_vector_gemm_trace(bigger).len() > base);
        }
    }

    #[test]
    fn vector_needs_far_more_instructions_than_matrix() {
        // The Fig. 4 motivation: executed instruction count ratio is large
        // and grows with GEMM dimension.
        use crate::tiled::{build_trace, KernelOptions, SparseMode};
        let mut last_ratio = 0.0;
        for dim in [32usize, 64, 128] {
            let shape = GemmShape::new(dim, dim, dim);
            let vec = build_vector_gemm_trace(shape).len() as f64;
            let mat = build_trace(shape, SparseMode::Dense, KernelOptions::default()).len() as f64;
            let ratio = vec / mat;
            assert!(ratio > 10.0, "dim {dim}: ratio {ratio}");
            assert!(ratio > last_ratio, "ratio should grow with dimension");
            last_ratio = ratio;
        }
    }

    #[test]
    fn ragged_shapes_round_up_blocks() {
        let trace = build_vector_gemm_trace(GemmShape::new(5, 17, 3));
        assert!(trace.mix().vec_fmas >= (5f64 / 4.0).ceil() as u64 * 2 * 3 * 4);
    }
}
