//! Dynamic (input) sparsity via register compaction — the §VII feasibility
//! analysis, quantified.
//!
//! Static weight sparsity is pruned offline, but input sparsity (from ReLU)
//! only materializes at runtime. §VII considers the SAVE-style approach of
//! *merging* registers whose non-zero positions do not collide, and argues
//! it "is not practical for a matrix engine due to the high probability of
//! conflicts across different tiles since the number of operands in a
//! vector register is 32 while that of a tile register is 512".
//!
//! This module makes that argument quantitative: two registers with
//! independent element density `d` merge conflict-free with probability
//! `(1 − d²)^slots`, which decays exponentially in the slot count. A greedy
//! compactor (keep merging incoming registers into the current group until
//! a conflict forces a new group) therefore achieves a useful merge factor
//! at vector width but essentially none at tile width.

use rand::Rng;

/// Probability that two registers with independent per-slot density `d`
/// have at least one colliding non-zero across `slots` slots.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn merge_conflict_probability(density: f64, slots: u32) -> f64 {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    1.0 - (1.0 - density * density).powi(slots as i32)
}

/// Result of simulating a greedy register compactor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionStats {
    /// Registers consumed.
    pub registers: usize,
    /// Merged groups produced.
    pub groups: usize,
}

impl CompactionStats {
    /// Mean registers merged per group — the compute reduction compaction
    /// buys (1.0 means merging never succeeded).
    pub fn merge_factor(&self) -> f64 {
        if self.groups == 0 {
            return 1.0;
        }
        self.registers as f64 / self.groups as f64
    }
}

/// Greedily compacts a stream of `registers` random sparse registers of
/// `slots` slots at the given non-zero `density`: each register joins the
/// current group unless one of its non-zeros collides with the group's
/// occupied slots, in which case a new group starts.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]` or `slots` is 0.
pub fn simulate_compaction<R: Rng + ?Sized>(
    registers: usize,
    slots: usize,
    density: f64,
    rng: &mut R,
) -> CompactionStats {
    assert!(slots > 0, "registers must have at least one slot");
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut groups = 0usize;
    let mut occupied: Vec<bool> = Vec::new();
    for _ in 0..registers {
        let reg: Vec<bool> = (0..slots).map(|_| rng.gen_bool(density)).collect();
        let conflicts = !occupied.is_empty() && reg.iter().zip(&occupied).any(|(&a, &b)| a && b);
        if occupied.is_empty() || conflicts {
            groups += 1;
            occupied = reg;
        } else {
            for (o, &r) in occupied.iter_mut().zip(&reg) {
                *o |= r;
            }
        }
    }
    CompactionStats { registers, groups }
}

/// Slots in a SAVE-class vector register (32 operands, §VII).
pub const VECTOR_REG_SLOTS: usize = 32;

/// Slots in a VEGETA tile register (16×32 operands, §VII).
pub const TILE_REG_SLOTS: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn conflict_probability_extremes() {
        assert_eq!(merge_conflict_probability(0.0, 512), 0.0);
        assert!(merge_conflict_probability(1.0, 1) > 0.999);
        // Monotone in both arguments.
        assert!(merge_conflict_probability(0.3, 32) < merge_conflict_probability(0.5, 32));
        assert!(merge_conflict_probability(0.3, 32) < merge_conflict_probability(0.3, 512));
    }

    #[test]
    fn tile_registers_conflict_almost_surely_at_moderate_density() {
        // The paper's §VII argument: at 30% input density, two tile
        // registers collide with near certainty while vector registers
        // still merge sometimes.
        let tile = merge_conflict_probability(0.3, TILE_REG_SLOTS as u32);
        let vector = merge_conflict_probability(0.3, VECTOR_REG_SLOTS as u32);
        assert!(tile > 0.999_999, "tile conflict prob {tile}");
        assert!(vector < 0.96, "vector conflict prob {vector}");
    }

    #[test]
    fn simulated_compaction_matches_the_argument() {
        let mut rng = SmallRng::seed_from_u64(1);
        let vec_stats = simulate_compaction(2000, VECTOR_REG_SLOTS, 0.1, &mut rng);
        let tile_stats = simulate_compaction(2000, TILE_REG_SLOTS, 0.1, &mut rng);
        assert!(
            vec_stats.merge_factor() > 1.3,
            "vector compaction should merge at 10% density: {}",
            vec_stats.merge_factor()
        );
        assert!(
            tile_stats.merge_factor() < 1.05,
            "tile compaction should almost never merge: {}",
            tile_stats.merge_factor()
        );
    }

    #[test]
    fn very_sparse_tiles_do_merge() {
        // Sanity: the model is not hard-coded against tiles — at extreme
        // sparsity even 512-slot registers merge.
        let mut rng = SmallRng::seed_from_u64(2);
        let stats = simulate_compaction(500, TILE_REG_SLOTS, 0.005, &mut rng);
        assert!(stats.merge_factor() > 1.5, "{}", stats.merge_factor());
    }

    #[test]
    fn merge_factor_of_empty_run_is_one() {
        let stats = CompactionStats {
            registers: 0,
            groups: 0,
        };
        assert_eq!(stats.merge_factor(), 1.0);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn rejects_bad_density() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = simulate_compaction(1, 8, 1.5, &mut rng);
    }
}
