//! Analytical models of the VEGETA evaluation (§III-A, §VI-E).
//!
//! Two of the paper's studies are roofline/analytical rather than
//! simulator-driven, and this crate reproduces both:
//!
//! * [`roofline`] — effective throughput of dense/sparse vector/matrix
//!   engines versus density (Fig. 3), with the paper's 64 / 512 GFLOPS and
//!   94 GB/s parameters.
//! * [`granularity`] — the unstructured-sparsity study (Fig. 15): how much
//!   work each sparsity-granularity class (layer-/tile-/pseudo row-/row-wise
//!   and area-normalized SIGMA) can skip on random sparse matrices, plus the
//!   Table I support matrix.
//!
//! # Example
//!
//! ```
//! use vegeta_model::roofline::{effective_tflops, RooflineEngine, RooflineParams, RooflineWorkload};
//!
//! let tflops = effective_tflops(
//!     &RooflineParams::default(),
//!     RooflineEngine::SparseMatrix,
//!     &RooflineWorkload::conv_layer(),
//!     0.5,
//! );
//! assert!(tflops > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dynamic;
pub mod granularity;
pub mod roofline;

pub use dynamic::{merge_conflict_probability, simulate_compaction, CompactionStats};
pub use granularity::{table1, GranularityHw, GranularityModel, SupportRow};
pub use roofline::{effective_tflops, RooflineEngine, RooflineParams, RooflineWorkload};
