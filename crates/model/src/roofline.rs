//! Roofline model of dense/sparse vector/matrix engines (Fig. 3).
//!
//! §III-A derives effective compute throughput on a convolutional layer at
//! varying density from a roofline: 64 GFLOPS for the vector engine,
//! 512 GFLOPS for the matrix engine, and 94 GB/s of memory bandwidth.
//!
//! Definitions, following the paper:
//!
//! * *Effective throughput* counts only effectual FLOPs (those on non-zero
//!   operands) per unit time.
//! * A **dense** engine must execute every MAC, so its runtime is fixed and
//!   its effective throughput falls linearly with density.
//! * A **sparse** engine skips ineffectual MACs (runtime ∝ density) and
//!   reads compressed weights (traffic ∝ density plus metadata), so it stays
//!   at peak until the memory roof takes over at low density.

/// Roofline parameters (§III-A defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflineParams {
    /// Vector engine peak, GFLOP/s.
    pub vector_gflops: f64,
    /// Matrix engine peak, GFLOP/s.
    pub matrix_gflops: f64,
    /// Memory bandwidth, GB/s.
    pub bandwidth_gbs: f64,
}

impl Default for RooflineParams {
    fn default() -> Self {
        RooflineParams {
            vector_gflops: 64.0,
            matrix_gflops: 512.0,
            bandwidth_gbs: 94.0,
        }
    }
}

/// The four engine variants of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RooflineEngine {
    /// Dense vector engine.
    DenseVector,
    /// Sparsity-aware vector engine (SAVE/SparCE-like).
    SparseVector,
    /// Dense matrix engine (AMX/RASA-like).
    DenseMatrix,
    /// Sparse matrix engine (VEGETA).
    SparseMatrix,
}

impl RooflineEngine {
    /// All four variants, in Fig. 3 legend order.
    pub fn all() -> [RooflineEngine; 4] {
        [
            RooflineEngine::SparseMatrix,
            RooflineEngine::DenseMatrix,
            RooflineEngine::SparseVector,
            RooflineEngine::DenseVector,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RooflineEngine::DenseVector => "Dense vector engine",
            RooflineEngine::SparseVector => "Sparse vector engine",
            RooflineEngine::DenseMatrix => "Dense matrix engine",
            RooflineEngine::SparseMatrix => "Sparse matrix engine",
        }
    }

    fn is_sparse(self) -> bool {
        matches!(
            self,
            RooflineEngine::SparseVector | RooflineEngine::SparseMatrix
        )
    }

    fn peak(self, p: &RooflineParams) -> f64 {
        match self {
            RooflineEngine::DenseVector | RooflineEngine::SparseVector => p.vector_gflops,
            RooflineEngine::DenseMatrix | RooflineEngine::SparseMatrix => p.matrix_gflops,
        }
    }
}

/// The workload of the roofline: a GEMM-shaped layer with BF16 operands and
/// FP32 outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RooflineWorkload {
    /// Output rows (weights are `m × k`).
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl RooflineWorkload {
    /// The convolutional layer used for Fig. 3 (ResNet50-L2 lowered).
    pub fn conv_layer() -> Self {
        RooflineWorkload {
            m: 64,
            n: 3136,
            k: 576,
        }
    }

    fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Bytes moved for the given weight density on a given engine style.
    fn bytes(&self, density: f64, sparse_engine: bool) -> f64 {
        let weights = self.m as f64 * self.k as f64;
        let weight_bytes = if sparse_engine {
            // Compressed: non-zero values + 2-bit metadata per value.
            density * weights * (2.0 + 0.25)
        } else {
            weights * 2.0
        };
        let input_bytes = self.k as f64 * self.n as f64 * 2.0;
        let output_bytes = self.m as f64 * self.n as f64 * 4.0;
        weight_bytes + input_bytes + output_bytes
    }
}

/// Effective throughput in TFLOP/s at the given weight density in `[0, 1]`.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn effective_tflops(
    params: &RooflineParams,
    engine: RooflineEngine,
    workload: &RooflineWorkload,
    density: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let effectual_gflop = workload.flops() * density / 1e9;
    let executed_gflop = if engine.is_sparse() {
        effectual_gflop
    } else {
        workload.flops() / 1e9
    };
    let compute_time = executed_gflop / engine.peak(params);
    let mem_time = workload.bytes(density, engine.is_sparse()) / 1e9 / params.bandwidth_gbs;
    let time = compute_time.max(mem_time);
    if time == 0.0 {
        return 0.0;
    }
    effectual_gflop / time / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(engine: RooflineEngine, density: f64) -> f64 {
        effective_tflops(
            &RooflineParams::default(),
            engine,
            &RooflineWorkload::conv_layer(),
            density,
        )
    }

    #[test]
    fn dense_and_sparse_agree_at_full_density() {
        // Fig. 3: "for the 100% dense case, the dense matrix (vector) and
        // sparse matrix (vector) engines achieve the same compute
        // throughput".
        assert!(
            (tf(RooflineEngine::DenseMatrix, 1.0) - tf(RooflineEngine::SparseMatrix, 1.0)).abs()
                < 1e-9
        );
        assert!(
            (tf(RooflineEngine::DenseVector, 1.0) - tf(RooflineEngine::SparseVector, 1.0)).abs()
                < 1e-9
        );
    }

    #[test]
    fn matrix_peak_is_8x_vector_peak() {
        let p = RooflineParams::default();
        assert_eq!(p.matrix_gflops / p.vector_gflops, 8.0);
        // And visible in the roofline at full density (compute bound).
        let ratio = tf(RooflineEngine::DenseMatrix, 1.0) / tf(RooflineEngine::DenseVector, 1.0);
        assert!(
            ratio > 4.0,
            "matrix should be far above vector, got {ratio}"
        );
    }

    #[test]
    fn sparse_engines_dominate_at_low_density() {
        for density in [0.05f64, 0.1, 0.25, 0.5] {
            assert!(
                tf(RooflineEngine::SparseMatrix, density)
                    > tf(RooflineEngine::DenseMatrix, density) * 1.05,
                "sparse matrix must win at density {density}"
            );
        }
    }

    #[test]
    fn dense_effective_throughput_is_linear_in_density() {
        let full = tf(RooflineEngine::DenseMatrix, 1.0);
        let half = tf(RooflineEngine::DenseMatrix, 0.5);
        assert!((half - full / 2.0).abs() < full * 0.01);
    }

    #[test]
    fn sparse_vector_approaches_sparse_matrix_when_memory_bound() {
        // §III-A: "When memory bound, i.e., at extremely low density, ...
        // a sparse vector engine performs similar to a sparse matrix engine."
        // The memory roof crosses the 64 GFLOPS vector peak at ~1.3%
        // density for this layer's arithmetic intensity.
        let v = tf(RooflineEngine::SparseVector, 0.01);
        let m = tf(RooflineEngine::SparseMatrix, 0.01);
        assert!((v - m).abs() / m < 0.05, "vector {v} vs matrix {m}");
        // But not at high density.
        let v = tf(RooflineEngine::SparseVector, 0.9);
        let m = tf(RooflineEngine::SparseMatrix, 0.9);
        assert!(m > v * 2.0);
    }

    #[test]
    fn sparse_matrix_hits_memory_roof_below_some_density() {
        // The sparse matrix curve must bend: peak-bound region near 100%,
        // memory-bound decline at low density.
        let high = tf(RooflineEngine::SparseMatrix, 0.95);
        let low = tf(RooflineEngine::SparseMatrix, 0.05);
        assert!(high > low, "throughput falls when memory bound");
    }

    #[test]
    #[should_panic(expected = "density")]
    fn rejects_bad_density() {
        let _ = tf(RooflineEngine::DenseMatrix, 1.5);
    }
}
