//! Sparsity-granularity comparison for unstructured sparsity (Fig. 15,
//! Table I).
//!
//! §VI-E estimates, with an analytical roofline (compute-bound) model, how
//! much of a random unstructured sparse matrix each hardware class can
//! actually skip after covering the non-zeros with its supported
//! granularity of `N:4` sparsity:
//!
//! * **Dense** (RASA-like) — no skipping;
//! * **Layer-wise** (S2TA-like) — a single `N` for the whole layer;
//! * **Tile-wise** (enhanced S2TA) — one `N` per 16×64 tile;
//! * **Pseudo row-wise** (VEGETA-S without DMA reordering) — per-row `N`
//!   with consecutive same-`N` groups;
//! * **Row-wise** (VEGETA-S with reordering) — per-row `N`;
//! * **Unstructured** (enhanced SIGMA) — perfect skipping, but paid for
//!   with a large flexible-interconnect area; Fig. 15 normalizes its
//!   performance by area.
//!
//! Speedup of a covered execution is `dense work / covered work`, the
//! compute-bound roofline ratio. The SIGMA area factor is calibrated so the
//! crossover sits just above 95% sparsity, matching Fig. 15 (SIGMA "performs
//! better than others with extremely high sparsity degrees (>95%)" while
//! being "inefficient for the modest sparsity degree").

use vegeta_num::{Bf16, Matrix};
use vegeta_sparse::{density, transform};

/// The hardware classes compared in Fig. 15, in legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GranularityHw {
    /// Dense matrix engine (RASA-like): executes every MAC.
    Dense,
    /// Layer-wise `N:M` (S2TA-like).
    LayerWise,
    /// Tile-wise `N:M` (enhanced S2TA).
    TileWise,
    /// Pseudo row-wise `N:M` (VEGETA-S without reordering).
    PseudoRowWise,
    /// Row-wise `N:M` (VEGETA-S with DMA reordering).
    RowWise,
    /// Unstructured skipping, area-normalized (enhanced SIGMA).
    UnstructuredSigma,
}

impl GranularityHw {
    /// All classes in Fig. 15 legend order.
    pub fn all() -> [GranularityHw; 6] {
        [
            GranularityHw::Dense,
            GranularityHw::LayerWise,
            GranularityHw::TileWise,
            GranularityHw::PseudoRowWise,
            GranularityHw::RowWise,
            GranularityHw::UnstructuredSigma,
        ]
    }

    /// Fig. 15 legend label.
    pub fn name(self) -> &'static str {
        match self {
            GranularityHw::Dense => "Dense (RASA-like)",
            GranularityHw::LayerWise => "Layer-wise (S2TA-like)",
            GranularityHw::TileWise => "Tile-wise (Enhanced S2TA)",
            GranularityHw::PseudoRowWise => "Pseudo row-wise (VEGETA-S without reordering)",
            GranularityHw::RowWise => "Row-wise (VEGETA-S with reordering)",
            GranularityHw::UnstructuredSigma => "Unstructured (Enhanced SIGMA, area-normalized)",
        }
    }
}

/// Model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GranularityModel {
    /// Tile height used for tile/row-wise covers (treg rows).
    pub tile_rows: usize,
    /// Tile width (the `W_A = M · Nrows = 64` of §V-E).
    pub tile_cols: usize,
    /// Area of the SIGMA-class engine relative to VEGETA-S; its speedup is
    /// divided by this factor (Fig. 15's area normalization).
    pub sigma_area_factor: f64,
}

impl Default for GranularityModel {
    fn default() -> Self {
        GranularityModel {
            tile_rows: 16,
            tile_cols: 64,
            sigma_area_factor: 5.0,
        }
    }
}

impl GranularityModel {
    /// Creates the calibrated default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute-bound speedup of `hw` over the dense engine on matrix `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty.
    pub fn speedup(&self, hw: GranularityHw, a: &Matrix<Bf16>) -> f64 {
        assert!(!a.is_empty(), "matrix must be non-empty");
        let total = a.len() as f64;
        match hw {
            GranularityHw::Dense => 1.0,
            GranularityHw::UnstructuredSigma => {
                let d = density(a).max(1.0 / total);
                (1.0 / d) / self.sigma_area_factor
            }
            _ => {
                let covered = self.covered_work(hw, a);
                total / covered
            }
        }
    }

    /// Work (stored-element MACs, normalized per B column) after covering.
    fn covered_work(&self, hw: GranularityHw, a: &Matrix<Bf16>) -> f64 {
        if hw == GranularityHw::LayerWise {
            let cover = transform::uniform_cover(a, 4).expect("m=4 is supported");
            return cover.density() * a.len() as f64;
        }
        let mut covered = 0.0;
        let (tr, tc) = (self.tile_rows, self.tile_cols);
        for r0 in (0..a.rows()).step_by(tr) {
            for c0 in (0..a.cols()).step_by(tc) {
                let rows = tr.min(a.rows() - r0);
                let cols = tc.min(a.cols() - c0);
                let tile = a.block_padded(r0, c0, rows, cols, Bf16::ZERO);
                let ratios = match hw {
                    GranularityHw::TileWise => {
                        vec![transform::uniform_cover(&tile, 4).expect("m=4"); rows]
                    }
                    GranularityHw::PseudoRowWise => {
                        transform::pseudo_row_wise_covers(&tile, 4).expect("m=4")
                    }
                    GranularityHw::RowWise => {
                        transform::reordered_row_wise_covers(&tile, 4).expect("m=4")
                    }
                    _ => unreachable!("dense/layer/sigma handled above"),
                };
                covered += transform::cover_stats(&ratios, cols).covered_work;
            }
        }
        covered
    }
}

/// One row of the Table I support matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupportRow {
    /// Design name.
    pub design: &'static str,
    /// Network-wise `N:M` support.
    pub network_wise: bool,
    /// Layer-wise `N:M` support.
    pub layer_wise: bool,
    /// Tile-wise `N:M` support.
    pub tile_wise: bool,
    /// Row-wise `N:M` support.
    pub row_wise: bool,
}

/// The sparsity-granularity support comparison of Table I.
///
/// S2TA's tile-wise entry carries the paper's footnote: "they do not claim
/// they support tile-wise, but it can be extended" — encoded here as
/// supported.
pub fn table1() -> Vec<SupportRow> {
    vec![
        SupportRow {
            design: "NVIDIA STC",
            network_wise: true,
            layer_wise: false,
            tile_wise: false,
            row_wise: false,
        },
        SupportRow {
            design: "STA",
            network_wise: true,
            layer_wise: true,
            tile_wise: false,
            row_wise: false,
        },
        SupportRow {
            design: "S2TA",
            network_wise: true,
            layer_wise: true,
            tile_wise: true, // footnote 1: extendable
            row_wise: false,
        },
        SupportRow {
            design: "VEGETA",
            network_wise: true,
            layer_wise: true,
            tile_wise: true,
            row_wise: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vegeta_sparse::prune;

    fn random_sparse(rows: usize, cols: usize, degree: f64, seed: u64) -> Matrix<Bf16> {
        let mut rng = SmallRng::seed_from_u64(seed);
        prune::random_unstructured(rows, cols, degree, &mut rng)
    }

    #[test]
    fn speedup_hierarchy_matches_figure15() {
        let model = GranularityModel::default();
        let a = random_sparse(256, 512, 0.9, 1);
        let dense = model.speedup(GranularityHw::Dense, &a);
        let layer = model.speedup(GranularityHw::LayerWise, &a);
        let tile = model.speedup(GranularityHw::TileWise, &a);
        let pseudo = model.speedup(GranularityHw::PseudoRowWise, &a);
        let row = model.speedup(GranularityHw::RowWise, &a);
        assert_eq!(dense, 1.0);
        assert!(layer >= dense);
        assert!(tile >= layer);
        assert!(pseudo >= tile - 1e-9);
        assert!(row >= pseudo - 1e-9);
        assert!(row <= 4.0 + 1e-9, "row-wise cannot beat 1:4's 4x bound");
    }

    #[test]
    fn row_wise_at_95_percent_is_about_3_3x() {
        // Fig. 15 / headline: row-wise achieves 3.28x at 95% sparsity.
        let model = GranularityModel::default();
        let a = random_sparse(512, 2048, 0.95, 2);
        let s = model.speedup(GranularityHw::RowWise, &a);
        assert!((2.9..=3.7).contains(&s), "got {s}");
    }

    #[test]
    fn row_wise_at_90_percent_is_about_2_4x() {
        // Fig. 15: "row-wise achieves 2.36x ... at 90%".
        let model = GranularityModel::default();
        let a = random_sparse(512, 2048, 0.90, 3);
        let s = model.speedup(GranularityHw::RowWise, &a);
        assert!((2.1..=2.7).contains(&s), "got {s}");
    }

    #[test]
    fn layer_wise_barely_helps_on_unstructured() {
        // §VI-E: "layer-wise does not show much performance improvement
        // over dense" — a big random matrix almost surely has one dense-ish
        // row that forces N=4.
        let model = GranularityModel::default();
        let a = random_sparse(512, 2048, 0.8, 4);
        let s = model.speedup(GranularityHw::LayerWise, &a);
        assert!(s < 1.5, "got {s}");
    }

    #[test]
    fn sigma_crosses_over_above_95_percent() {
        let model = GranularityModel::default();
        let at_90 = random_sparse(512, 2048, 0.90, 5);
        let at_97 = random_sparse(512, 2048, 0.97, 6);
        assert!(
            model.speedup(GranularityHw::UnstructuredSigma, &at_90)
                < model.speedup(GranularityHw::RowWise, &at_90),
            "SIGMA must lose at 90%"
        );
        assert!(
            model.speedup(GranularityHw::UnstructuredSigma, &at_97)
                > model.speedup(GranularityHw::RowWise, &at_97),
            "SIGMA must win beyond 95%"
        );
    }

    #[test]
    fn sigma_is_inefficient_at_modest_sparsity() {
        let model = GranularityModel::default();
        let a = random_sparse(256, 512, 0.6, 7);
        assert!(model.speedup(GranularityHw::UnstructuredSigma, &a) < 1.0);
    }

    #[test]
    fn table1_matches_paper_claims() {
        let t = table1();
        assert_eq!(t.len(), 4);
        let vegeta = t.iter().find(|r| r.design == "VEGETA").unwrap();
        assert!(vegeta.network_wise && vegeta.layer_wise && vegeta.tile_wise && vegeta.row_wise);
        // VEGETA is the only design with row-wise support.
        assert_eq!(t.iter().filter(|r| r.row_wise).count(), 1);
        let stc = t.iter().find(|r| r.design == "NVIDIA STC").unwrap();
        assert!(stc.network_wise && !stc.layer_wise);
    }

    #[test]
    fn speedups_monotone_in_sparsity_degree() {
        let model = GranularityModel::default();
        let mut last = 0.0;
        for (i, degree) in [0.6f64, 0.75, 0.9, 0.95].iter().enumerate() {
            let a = random_sparse(256, 1024, *degree, 100 + i as u64);
            let s = model.speedup(GranularityHw::RowWise, &a);
            assert!(s >= last, "row-wise speedup must grow with sparsity");
            last = s;
        }
    }
}
