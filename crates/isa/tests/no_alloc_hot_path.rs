//! Pins the executor's zero-allocation guarantee.
//!
//! Before the `TileFormat`/`TileView` redesign, every tile instruction
//! round-tripped its operands through freshly allocated `Matrix<Bf16>` /
//! `Matrix<f32>` copies (plus an unpacked metadata `Vec`). This test installs
//! a counting global allocator and asserts that
//!
//! 1. executing loads, stores and all four compute instructions performs
//!    **zero** heap allocations once state is set up, and
//! 2. the old-style `Matrix`-materializing register reads (still offered as
//!    a convenience API) *do* allocate — the behavior the redesign removed
//!    from the hot path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vegeta_isa::{Executor, Inst, Memory, MregImage, TReg, TileFormat, TregImage, UReg, VReg};
use vegeta_num::{Bf16, Matrix};
use vegeta_sparse::{prune, CompressedTile, NmRatio, RowWiseTile};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One integer matrix whose products are exact in FP32.
fn int_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<Bf16> {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = (r as u64)
            .wrapping_mul(31)
            .wrapping_add(c as u64)
            .wrapping_mul(seed | 1);
        Bf16::from_f32(((h % 15) as f32) - 7.0)
    })
}

// A single test function: parallel test threads would otherwise perturb the
// global allocation counter.
#[test]
fn per_instruction_path_is_allocation_free() {
    // ---- setup (may allocate freely) ----
    let mut mem = Memory::new(1 << 16);

    // Dense A and B tiles for TILE_GEMM, via the image path.
    let dense_a = int_matrix(16, 32, 3);
    let dense_bt = int_matrix(16, 32, 5);
    let a_img = {
        let tile = vegeta_sparse::DenseTile::compress(&dense_a);
        let (mut t, mut m) = (TregImage::new(), MregImage::new());
        tile.pack_into(&mut t, &mut m).unwrap();
        t
    };
    mem.write_treg_image(0x0, &a_img).unwrap();
    mem.write_bf16_matrix(0x400, &dense_bt).unwrap();

    // A 2:4 tile + metadata for TILE_SPMM_U.
    let s24 = prune::magnitude_prune_nm(&int_matrix(16, 64, 7), NmRatio::S2_4);
    let u_tile = CompressedTile::compress(&s24, NmRatio::S2_4).unwrap();
    let (mut u_treg, mut u_mreg) = (TregImage::new(), MregImage::new());
    u_tile.pack_into(&mut u_treg, &mut u_mreg).unwrap();
    mem.write_treg_image(0x800, &u_treg).unwrap();
    mem.write_mreg_image(0xC00, Some(0xC80), &u_mreg).unwrap();
    let bt_u = int_matrix(16, 64, 9);
    mem.write_bf16_matrix(0x1000, &bt_u).unwrap();

    // A 1:4 tile for TILE_SPMM_V.
    let s14 = prune::magnitude_prune_nm(&int_matrix(16, 128, 11), NmRatio::S1_4);
    let v_tile = CompressedTile::compress(&s14, NmRatio::S1_4).unwrap();
    let (mut v_treg, mut v_mreg) = (TregImage::new(), MregImage::new());
    v_tile.pack_into(&mut v_treg, &mut v_mreg).unwrap();
    mem.write_treg_image(0x2000, &v_treg).unwrap();
    mem.write_mreg_image(0x2400, Some(0x2480), &v_mreg).unwrap();
    let bt_v = int_matrix(16, 128, 13);
    mem.write_bf16_matrix(0x2800, &bt_v).unwrap();

    // A row-wise tile + row patterns for TILE_SPMM_R.
    // 4 rows at 4:4, 4 at 2:4, 8 at 1:4 — exactly the 512-value treg budget.
    let rw_src = Matrix::from_fn(16, 64, |r, c| {
        let keep = match r {
            0..=3 => true,
            4..=7 => c % 4 < 2,
            _ => c % 4 == 0,
        };
        if keep {
            int_matrix(16, 64, 17)[(r, c)]
        } else {
            Bf16::ZERO
        }
    });
    let rw_tile = RowWiseTile::compress(&rw_src, 4).unwrap();
    assert!(rw_tile.stored_len() <= 512);
    let (mut r_treg, mut r_mreg) = (TregImage::new(), MregImage::new());
    rw_tile.pack_into(&mut r_treg, &mut r_mreg).unwrap();
    mem.write_treg_image(0x3000, &r_treg).unwrap();
    mem.write_mreg_image(0x3400, Some(0x3480), &r_mreg).unwrap();

    let mut exec = Executor::new(mem);

    // The full per-instruction repertoire: loads, compute, store, zero.
    let program = vec![
        Inst::TileZero { dst: TReg::T2 },
        Inst::TileLoadT {
            dst: TReg::T5,
            addr: 0x0,
        },
        Inst::TileLoadT {
            dst: TReg::T3,
            addr: 0x400,
        },
        Inst::TileGemm {
            acc: TReg::T2,
            a: TReg::T5,
            b: TReg::T3,
        },
        Inst::TileLoadT {
            dst: TReg::T4,
            addr: 0x800,
        },
        Inst::TileLoadM {
            dst: TReg::T4.paired_mreg(),
            addr: 0xC00,
        },
        Inst::TileLoadU {
            dst: UReg::U3,
            addr: 0x1000,
        },
        Inst::TileSpmmU {
            acc: TReg::T2,
            a: TReg::T4,
            b: UReg::U3,
        },
        Inst::TileLoadT {
            dst: TReg::T3,
            addr: 0x2000,
        },
        Inst::TileLoadM {
            dst: TReg::T3.paired_mreg(),
            addr: 0x2400,
        },
        Inst::TileLoadV {
            dst: VReg::V1,
            addr: 0x2800,
        },
        Inst::TileSpmmV {
            acc: TReg::T2,
            a: TReg::T3,
            b: VReg::V1,
        },
        Inst::TileLoadT {
            dst: TReg::T4,
            addr: 0x3000,
        },
        Inst::TileLoadM {
            dst: TReg::T4.paired_mreg(),
            addr: 0x3400,
        },
        Inst::TileLoadRp {
            dst: TReg::T4.paired_mreg(),
            addr: 0x3480,
        },
        Inst::TileLoadU {
            dst: UReg::U0,
            addr: 0x1000,
        },
        Inst::TileSpmmR {
            acc: UReg::U1,
            a: TReg::T4,
            b: UReg::U0,
        },
        Inst::TileStoreT {
            addr: 0x4000,
            src: TReg::T2,
        },
    ];

    // Warm up once (also proves the program is valid).
    exec.run(&program).unwrap();
    let warm_stats = exec.stats();
    assert!(warm_stats.effectual_macs > 0);

    // ---- measured section: N round trips, zero allocations ----
    let before = allocations();
    for _ in 0..50 {
        exec.run(&program).unwrap();
    }
    let hot_path_allocs = allocations() - before;
    assert_eq!(
        hot_path_allocs, 0,
        "the per-instruction execute path must not allocate"
    );

    // ---- contrast: the old Matrix-materializing reads allocate ----
    let before = allocations();
    let as_matrix = exec.regs().treg_as_bf16(TReg::T5);
    let as_f32 = exec.regs().treg_as_f32(TReg::T2);
    let old_style_allocs = allocations() - before;
    assert!(
        old_style_allocs > 0,
        "Matrix round trips allocate; the redesign removed them from execute()"
    );
    // Sanity: the packed dense-A image round-tripped through memory
    // byte-identically, and the accumulator holds results. (v1 aliases
    // t4-t7, so t5 no longer holds A by the end of the program.)
    assert_eq!(exec.mem().read_bf16_matrix(0x0, 16, 32).unwrap(), dense_a);
    assert_eq!((as_matrix.rows(), as_matrix.cols()), (16, 32));
    assert!(
        as_f32.iter().any(|&v| v != 0.0),
        "accumulator holds results"
    );
}
