//! Property-based tests for the ISA layer: decoder robustness, register
//! aliasing, and memory safety.

use proptest::prelude::*;
use vegeta_isa::regs::{TREG_BYTES, UREG_BYTES, VREG_BYTES};
use vegeta_isa::{decode, Executor, Inst, Memory, RegFile, TReg, UReg, VReg};

proptest! {
    /// The decoder never panics on arbitrary bytes: it either decodes a
    /// valid instruction or returns an error.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok((inst, len)) = decode(&bytes) {
            prop_assert!(len <= bytes.len());
            // Round-trip: re-encoding gives the same prefix.
            prop_assert_eq!(vegeta_isa::encode(inst), bytes[..len].to_vec());
        }
    }

    /// The assembler never panics on arbitrary text.
    #[test]
    fn assemble_never_panics(text in "[ -~\n]{0,200}") {
        let _ = vegeta_isa::assemble(&text);
    }

    /// Register aliasing is exact: bytes written through a ureg/vreg are the
    /// concatenation of their constituent tregs.
    #[test]
    fn aliasing_is_byte_exact(data in proptest::collection::vec(any::<u8>(), VREG_BYTES..=VREG_BYTES), v in 0u8..2) {
        let mut rf = RegFile::new();
        let vreg = VReg::new(v).unwrap();
        rf.vreg_mut(vreg).copy_from_slice(&data);
        // Through tregs.
        let mut rebuilt = Vec::new();
        for t in vreg.tregs() {
            rebuilt.extend_from_slice(rf.treg(t));
        }
        prop_assert_eq!(&rebuilt, &data);
        // Through uregs.
        let mut rebuilt_u = Vec::new();
        for u in [UReg::new(v * 2).unwrap(), UReg::new(v * 2 + 1).unwrap()] {
            rebuilt_u.extend_from_slice(rf.ureg(u));
        }
        prop_assert_eq!(&rebuilt_u, &data);
    }

    /// Loads and stores round-trip arbitrary tile data through memory, and
    /// out-of-range addresses error rather than corrupt state.
    #[test]
    fn load_store_roundtrip(data in proptest::collection::vec(any::<u8>(), TREG_BYTES..=TREG_BYTES), addr in 0u64..8192) {
        let mut exec = Executor::new(Memory::new(16 * 1024));
        exec.mem_mut().write_bytes(addr, &data).unwrap();
        exec.execute(Inst::TileLoadT { dst: TReg::T6, addr }).unwrap();
        prop_assert_eq!(exec.regs().treg(TReg::T6), data.as_slice());
        exec.execute(Inst::TileStoreT { addr: 0, src: TReg::T6 }).unwrap();
        prop_assert_eq!(exec.mem().read_bytes(0, TREG_BYTES).unwrap(), data.as_slice());
        // Far out of range must error and leave the register intact.
        let before = exec.regs().treg(TReg::T6).to_vec();
        let far_load = Inst::TileLoadT { dst: TReg::T6, addr: 1 << 40 };
        let result = exec.execute(far_load);
        prop_assert!(result.is_err());
        prop_assert_eq!(exec.regs().treg(TReg::T6), before.as_slice());
    }

    /// A ureg load equals two treg loads of the two halves.
    #[test]
    fn ureg_load_equals_two_treg_loads(data in proptest::collection::vec(any::<u8>(), UREG_BYTES..=UREG_BYTES)) {
        let mut a = Executor::new(Memory::new(8192));
        a.mem_mut().write_bytes(0, &data).unwrap();
        a.execute(Inst::TileLoadU { dst: UReg::U1, addr: 0 }).unwrap();

        let mut b = Executor::new(Memory::new(8192));
        b.mem_mut().write_bytes(0, &data).unwrap();
        b.execute(Inst::TileLoadT { dst: TReg::T2, addr: 0 }).unwrap();
        b.execute(Inst::TileLoadT { dst: TReg::T3, addr: TREG_BYTES as u64 }).unwrap();

        prop_assert_eq!(a.regs().ureg(UReg::U1), b.regs().ureg(UReg::U1));
    }
}
