//! Tile and metadata registers (Fig. 6).
//!
//! The architectural tile state is 8 KB of tile data addressable three ways:
//!
//! * eight 1 KB **tregs** (`treg0`–`treg7`), each 16 rows × 64 B;
//! * four 2 KB **uregs**, where `ureg_i` aliases `treg_{2i}`,`treg_{2i+1}`;
//! * two 4 KB **vregs**, where `vreg_i` aliases `treg_{4i}`..`treg_{4i+3}`.
//!
//! Metadata lives in eight separate 128 B **mregs** (16 rows × 8 B), each
//! carrying 512 two-bit block positions for the 512 BF16 values of its
//! paired treg. For row-wise sparsity (`TILE_SPMM_R`), each mreg also has an
//! 8 B *row-pattern field* holding the per-row `N:4` selectors ("stored as
//! extra metadata, 32×2 bits, or 8 B, at most" — §IV-B); the paper does not
//! name its storage location, so we architect it as a sidecar of the mreg
//! loaded by the `TILE_LOAD_RP` extension instruction.

use std::fmt;

use vegeta_num::{Bf16, Matrix};
use vegeta_sparse::{MregImage, TregImage};

use crate::IsaError;

/// Bytes in one tile register (the size of a packed
/// [`TregImage`]).
pub const TREG_BYTES: usize = vegeta_sparse::TREG_IMAGE_BYTES;
/// Rows in one tile register.
pub const TREG_ROWS: usize = 16;
/// Bytes per tile register row (one cache line).
pub const TREG_ROW_BYTES: usize = 64;
/// Bytes in one `ureg` (two aliased tregs).
pub const UREG_BYTES: usize = 2 * TREG_BYTES;
/// Bytes in one `vreg` (four aliased tregs).
pub const VREG_BYTES: usize = 4 * TREG_BYTES;
/// Bytes in one metadata register (the packed-metadata area of an
/// [`MregImage`]).
pub const MREG_BYTES: usize = vegeta_sparse::MREG_IMAGE_BYTES;
/// Bytes in the row-pattern field of a metadata register.
pub const MREG_ROW_PATTERN_BYTES: usize = vegeta_sparse::ROW_PATTERN_BYTES;
/// Number of tile registers.
pub const NUM_TREGS: usize = 8;
/// Number of `ureg` aliases.
pub const NUM_UREGS: usize = 4;
/// Number of `vreg` aliases.
pub const NUM_VREGS: usize = 2;
/// Number of metadata registers.
pub const NUM_MREGS: usize = 8;

macro_rules! reg_id {
    ($(#[$doc:meta])* $name:ident, $count:expr, $prefix:literal, [$($variant:ident = $idx:expr),+]) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u8);

        impl $name {
            $(
                #[doc = concat!("Register ", $prefix, stringify!($idx), ".")]
                pub const $variant: $name = $name($idx);
            )+

            /// Creates a register identifier.
            ///
            /// # Errors
            ///
            /// Returns [`IsaError::InvalidRegister`] if `index` is out of
            /// range.
            pub fn new(index: u8) -> Result<Self, IsaError> {
                if (index as usize) < $count {
                    Ok($name(index))
                } else {
                    Err(IsaError::InvalidRegister {
                        kind: $prefix,
                        index,
                        limit: $count as u8,
                    })
                }
            }

            /// The register number.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// All registers of this kind, in index order.
            pub fn all() -> impl Iterator<Item = Self> {
                (0..$count as u8).map($name)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

reg_id!(
    /// A 1 KB tile register identifier (`t0`–`t7`).
    TReg, NUM_TREGS, "t",
    [T0 = 0, T1 = 1, T2 = 2, T3 = 3, T4 = 4, T5 = 5, T6 = 6, T7 = 7]
);
reg_id!(
    /// A 2 KB aliased tile register identifier (`u0`–`u3`).
    UReg, NUM_UREGS, "u",
    [U0 = 0, U1 = 1, U2 = 2, U3 = 3]
);
reg_id!(
    /// A 4 KB aliased tile register identifier (`v0`–`v1`).
    VReg, NUM_VREGS, "v",
    [V0 = 0, V1 = 1]
);
reg_id!(
    /// A 128 B metadata register identifier (`m0`–`m7`).
    MReg, NUM_MREGS, "m",
    [M0 = 0, M1 = 1, M2 = 2, M3 = 3, M4 = 4, M5 = 5, M6 = 6, M7 = 7]
);

impl UReg {
    /// The pair of tregs this ureg aliases.
    pub fn tregs(self) -> [TReg; 2] {
        let base = (self.index() * 2) as u8;
        [TReg(base), TReg(base + 1)]
    }
}

impl VReg {
    /// The four tregs this vreg aliases.
    pub fn tregs(self) -> [TReg; 4] {
        let base = (self.index() * 4) as u8;
        [TReg(base), TReg(base + 1), TReg(base + 2), TReg(base + 3)]
    }
}

impl TReg {
    /// The metadata register implicitly paired with this treg by the tile
    /// SPMM instructions (same index, as in Listing 1).
    pub fn paired_mreg(self) -> MReg {
        MReg(self.0)
    }
}

/// The architectural register file: tile bytes plus metadata.
///
/// Tile storage is a single 8 KB array so the treg/ureg/vreg aliasing of
/// Fig. 6 falls out of slicing; writing `ureg0` visibly changes `treg0` and
/// `treg1`.
#[derive(Clone, PartialEq, Eq)]
pub struct RegFile {
    tile: Vec<u8>,
    meta: Vec<u8>,
    row_patterns: Vec<u8>,
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// Creates a zeroed register file.
    pub fn new() -> Self {
        RegFile {
            tile: vec![0; NUM_TREGS * TREG_BYTES],
            meta: vec![0; NUM_MREGS * MREG_BYTES],
            row_patterns: vec![0; NUM_MREGS * MREG_ROW_PATTERN_BYTES],
        }
    }

    /// Borrows the bytes of a treg.
    pub fn treg(&self, r: TReg) -> &[u8] {
        &self.tile[r.index() * TREG_BYTES..(r.index() + 1) * TREG_BYTES]
    }

    /// Mutably borrows the bytes of a treg.
    pub fn treg_mut(&mut self, r: TReg) -> &mut [u8] {
        &mut self.tile[r.index() * TREG_BYTES..(r.index() + 1) * TREG_BYTES]
    }

    /// Borrows the bytes of a ureg (aliasing two tregs).
    pub fn ureg(&self, r: UReg) -> &[u8] {
        &self.tile[r.index() * UREG_BYTES..(r.index() + 1) * UREG_BYTES]
    }

    /// Mutably borrows the bytes of a ureg.
    pub fn ureg_mut(&mut self, r: UReg) -> &mut [u8] {
        &mut self.tile[r.index() * UREG_BYTES..(r.index() + 1) * UREG_BYTES]
    }

    /// Borrows the bytes of a vreg (aliasing four tregs).
    pub fn vreg(&self, r: VReg) -> &[u8] {
        &self.tile[r.index() * VREG_BYTES..(r.index() + 1) * VREG_BYTES]
    }

    /// Mutably borrows the bytes of a vreg.
    pub fn vreg_mut(&mut self, r: VReg) -> &mut [u8] {
        &mut self.tile[r.index() * VREG_BYTES..(r.index() + 1) * VREG_BYTES]
    }

    /// Borrows the bytes of a metadata register.
    pub fn mreg(&self, r: MReg) -> &[u8] {
        &self.meta[r.index() * MREG_BYTES..(r.index() + 1) * MREG_BYTES]
    }

    /// Mutably borrows the bytes of a metadata register.
    pub fn mreg_mut(&mut self, r: MReg) -> &mut [u8] {
        &mut self.meta[r.index() * MREG_BYTES..(r.index() + 1) * MREG_BYTES]
    }

    /// Borrows the 8 B row-pattern field of a metadata register.
    pub fn row_patterns(&self, r: MReg) -> &[u8] {
        &self.row_patterns
            [r.index() * MREG_ROW_PATTERN_BYTES..(r.index() + 1) * MREG_ROW_PATTERN_BYTES]
    }

    /// Mutably borrows the 8 B row-pattern field of a metadata register.
    pub fn row_patterns_mut(&mut self, r: MReg) -> &mut [u8] {
        &mut self.row_patterns
            [r.index() * MREG_ROW_PATTERN_BYTES..(r.index() + 1) * MREG_ROW_PATTERN_BYTES]
    }

    /// Loads a packed tile image into a treg — the register-side half of a
    /// [`vegeta_sparse::TileFormat::pack_into`] round trip (the memory-side
    /// half is a `TILE_LOAD_T`).
    pub fn set_treg_image(&mut self, r: TReg, img: &TregImage) {
        self.treg_mut(r).copy_from_slice(img.as_bytes());
    }

    /// Copies a treg's bytes out as an owned image (for stores and
    /// inspection; reads on the executor's hot path use
    /// [`vegeta_sparse::TileView`] over [`RegFile::treg`] instead).
    pub fn treg_image(&self, r: TReg) -> TregImage {
        let mut img = TregImage::new();
        img.as_bytes_mut().copy_from_slice(self.treg(r));
        img
    }

    /// Loads a metadata image — packed metadata plus the row-pattern
    /// sidecar — into an mreg.
    pub fn set_mreg_image(&mut self, r: MReg, img: &MregImage) {
        self.mreg_mut(r).copy_from_slice(img.meta());
        self.row_patterns_mut(r).copy_from_slice(img.row_patterns());
    }

    /// Copies an mreg (metadata + row patterns) out as an owned image.
    pub fn mreg_image(&self, r: MReg) -> MregImage {
        let mut img = MregImage::new();
        img.meta_mut().copy_from_slice(self.mreg(r));
        img.row_patterns_mut().copy_from_slice(self.row_patterns(r));
        img
    }

    /// Reads a treg as the canonical 16×32 BF16 view.
    pub fn treg_as_bf16(&self, r: TReg) -> Matrix<Bf16> {
        bytes_to_bf16(self.treg(r), TREG_ROWS, 32)
    }

    /// Writes a 16×32 BF16 matrix into a treg.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 16×32.
    pub fn set_treg_bf16(&mut self, r: TReg, m: &Matrix<Bf16>) {
        assert_eq!(
            (m.rows(), m.cols()),
            (TREG_ROWS, 32),
            "treg BF16 view is 16x32"
        );
        bf16_to_bytes(m, self.treg_mut(r));
    }

    /// Reads a treg as the canonical 16×16 FP32 accumulator view.
    pub fn treg_as_f32(&self, r: TReg) -> Matrix<f32> {
        bytes_to_f32(self.treg(r), TREG_ROWS, 16)
    }

    /// Writes a 16×16 FP32 matrix into a treg.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 16×16.
    pub fn set_treg_f32(&mut self, r: TReg, m: &Matrix<f32>) {
        assert_eq!(
            (m.rows(), m.cols()),
            (TREG_ROWS, 16),
            "treg FP32 view is 16x16"
        );
        f32_to_bytes(m, self.treg_mut(r));
    }

    /// Reads a ureg as the 16×64 BF16 `Bᵀ` view used by `TILE_SPMM_U`.
    pub fn ureg_as_bf16(&self, r: UReg) -> Matrix<Bf16> {
        bytes_to_bf16(self.ureg(r), TREG_ROWS, 64)
    }

    /// Writes a 16×64 BF16 matrix into a ureg.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 16×64.
    pub fn set_ureg_bf16(&mut self, r: UReg, m: &Matrix<Bf16>) {
        assert_eq!(
            (m.rows(), m.cols()),
            (TREG_ROWS, 64),
            "ureg BF16 view is 16x64"
        );
        bf16_to_bytes(m, self.ureg_mut(r));
    }

    /// Reads a ureg as the 32×16 FP32 `C` view used by `TILE_SPMM_R`.
    pub fn ureg_as_f32(&self, r: UReg) -> Matrix<f32> {
        bytes_to_f32(self.ureg(r), 32, 16)
    }

    /// Writes a 32×16 FP32 matrix into a ureg.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 32×16.
    pub fn set_ureg_f32(&mut self, r: UReg, m: &Matrix<f32>) {
        assert_eq!((m.rows(), m.cols()), (32, 16), "ureg FP32 view is 32x16");
        f32_to_bytes(m, self.ureg_mut(r));
    }

    /// Reads a vreg as the 16×128 BF16 `Bᵀ` view used by `TILE_SPMM_V`.
    pub fn vreg_as_bf16(&self, r: VReg) -> Matrix<Bf16> {
        bytes_to_bf16(self.vreg(r), TREG_ROWS, 128)
    }

    /// Writes a 16×128 BF16 matrix into a vreg.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 16×128.
    pub fn set_vreg_bf16(&mut self, r: VReg, m: &Matrix<Bf16>) {
        assert_eq!(
            (m.rows(), m.cols()),
            (TREG_ROWS, 128),
            "vreg BF16 view is 16x128"
        );
        bf16_to_bytes(m, self.vreg_mut(r));
    }
}

impl fmt::Debug for RegFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegFile")
            .field("tile_bytes", &self.tile.len())
            .field("meta_bytes", &self.meta.len())
            .finish()
    }
}

fn bytes_to_bf16(bytes: &[u8], rows: usize, cols: usize) -> Matrix<Bf16> {
    debug_assert_eq!(bytes.len(), rows * cols * 2);
    Matrix::from_fn(rows, cols, |r, c| {
        let off = (r * cols + c) * 2;
        Bf16::from_le_bytes([bytes[off], bytes[off + 1]])
    })
}

fn bf16_to_bytes(m: &Matrix<Bf16>, out: &mut [u8]) {
    for (i, v) in m.iter().enumerate() {
        out[i * 2..i * 2 + 2].copy_from_slice(&v.to_le_bytes());
    }
}

fn bytes_to_f32(bytes: &[u8], rows: usize, cols: usize) -> Matrix<f32> {
    debug_assert_eq!(bytes.len(), rows * cols * 4);
    Matrix::from_fn(rows, cols, |r, c| {
        let off = (r * cols + c) * 4;
        f32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
    })
}

fn f32_to_bytes(m: &Matrix<f32>, out: &mut [u8]) {
    for (i, v) in m.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_sizes_match_figure6() {
        assert_eq!(TREG_BYTES, 1024);
        assert_eq!(UREG_BYTES, 2048);
        assert_eq!(VREG_BYTES, 4096);
        assert_eq!(MREG_BYTES, 128);
        assert_eq!(TREG_ROWS * TREG_ROW_BYTES, TREG_BYTES);
    }

    #[test]
    fn reg_ids_validate_range() {
        assert!(TReg::new(7).is_ok());
        assert!(TReg::new(8).is_err());
        assert!(UReg::new(4).is_err());
        assert!(VReg::new(2).is_err());
        assert!(MReg::new(8).is_err());
        assert_eq!(TReg::all().count(), 8);
    }

    #[test]
    fn aliasing_maps_to_consecutive_tregs() {
        assert_eq!(UReg::U1.tregs(), [TReg::T2, TReg::T3]);
        assert_eq!(VReg::V1.tregs(), [TReg::T4, TReg::T5, TReg::T6, TReg::T7]);
    }

    #[test]
    fn writing_ureg_is_visible_through_tregs() {
        let mut rf = RegFile::new();
        let data: Vec<u8> = (0..UREG_BYTES).map(|i| (i % 251) as u8).collect();
        rf.ureg_mut(UReg::U0).copy_from_slice(&data);
        assert_eq!(rf.treg(TReg::T0), &data[..TREG_BYTES]);
        assert_eq!(rf.treg(TReg::T1), &data[TREG_BYTES..]);
    }

    #[test]
    fn writing_treg_is_visible_through_vreg() {
        let mut rf = RegFile::new();
        rf.treg_mut(TReg::T6)[0] = 0xAB;
        assert_eq!(rf.vreg(VReg::V1)[2 * TREG_BYTES], 0xAB);
    }

    #[test]
    fn image_roundtrip_through_registers() {
        let mut rf = RegFile::new();
        let mut treg = TregImage::new();
        for i in 0..512 {
            treg.set_bf16(i, Bf16::from_f32(i as f32 - 256.0));
        }
        let mut mreg = MregImage::new();
        for i in 0..512 {
            mreg.set_position2(i, (i % 4) as u8);
        }
        mreg.set_row_ns(&[2u8; 16]);
        rf.set_treg_image(TReg::T2, &treg);
        rf.set_mreg_image(MReg::M2, &mreg);
        assert_eq!(rf.treg_image(TReg::T2), treg);
        assert_eq!(rf.mreg_image(MReg::M2), mreg);
        assert_eq!(rf.treg(TReg::T2), treg.as_bytes());
        assert_eq!(rf.row_patterns(MReg::M2), mreg.row_patterns());
    }

    #[test]
    fn bf16_view_roundtrip() {
        let mut rf = RegFile::new();
        let m = Matrix::from_fn(16, 32, |r, c| Bf16::from_f32((r * 32 + c) as f32));
        rf.set_treg_bf16(TReg::T3, &m);
        assert_eq!(rf.treg_as_bf16(TReg::T3), m);
    }

    #[test]
    fn f32_view_roundtrip() {
        let mut rf = RegFile::new();
        let m = Matrix::from_fn(16, 16, |r, c| (r * 16 + c) as f32 * 0.25);
        rf.set_treg_f32(TReg::T5, &m);
        assert_eq!(rf.treg_as_f32(TReg::T5), m);
        let u = Matrix::from_fn(32, 16, |r, c| (r + c) as f32);
        rf.set_ureg_f32(UReg::U1, &u);
        assert_eq!(rf.ureg_as_f32(UReg::U1), u);
    }

    #[test]
    fn paired_mreg_follows_treg_index() {
        assert_eq!(TReg::T3.paired_mreg(), MReg::M3);
        assert_eq!(TReg::T0.paired_mreg(), MReg::M0);
    }

    #[test]
    fn display_uses_assembler_names() {
        assert_eq!(TReg::T4.to_string(), "t4");
        assert_eq!(UReg::U2.to_string(), "u2");
        assert_eq!(VReg::V0.to_string(), "v0");
        assert_eq!(MReg::M7.to_string(), "m7");
    }
}
