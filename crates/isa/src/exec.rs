//! Functional executor for VEGETA instructions.
//!
//! This is the repo's stand-in for the paper's Pin-based emulation tool
//! (§VI-A): it implements the architectural semantics of every Table II
//! instruction on a [`RegFile`] + [`Memory`] pair, and is the golden model
//! the cycle-accurate engine dataflow is checked against.
//!
//! The per-instruction path is **allocation-free**: operand reads go through
//! borrowed [`TileView`]s over the raw register bytes, accumulators live in
//! fixed stack arrays, and loads/stores copy bytes between [`Memory`] and
//! the register file directly (`crates/isa/tests/no_alloc_hot_path.rs` pins
//! this with a counting allocator).

use vegeta_sparse::{decode_row_ns, FormatSpec, MregImage, NmRatio, TileView, ROW_PATTERN_ROWS};

use crate::inst::{Inst, MACS_PER_TILE_INST};
use crate::mem::Memory;
use crate::regs::{RegFile, TReg, UReg, VReg, MREG_BYTES, MREG_ROW_PATTERN_BYTES, TREG_ROWS};
use crate::IsaError;

/// Dynamic execution statistics, mirroring what the paper's Pintool records
/// into its traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Executed instructions, total.
    pub instructions: u64,
    /// Executed tile GEMM/SPMM instructions.
    pub tile_compute: u64,
    /// Bytes moved from memory into registers.
    pub bytes_loaded: u64,
    /// Bytes moved from registers into memory.
    pub bytes_stored: u64,
    /// Effectual multiply-accumulates performed (products actually computed
    /// on stored values; zero-skipping is what makes this smaller than the
    /// dense equivalent).
    pub effectual_macs: u64,
}

/// Functional executor over architectural state.
///
/// See the crate-level docs for the data layout conventions and an example.
#[derive(Debug, Clone)]
pub struct Executor {
    regs: RegFile,
    mem: Memory,
    stats: ExecStats,
}

/// Decoded row-pattern codes for `TILE_SPMM_R` (2 bits per row).
///
/// `00` marks the end of the tile; `01`/`10`/`11` select 1:4 / 2:4 / 4:4 for
/// the row, in line with "N:4 sparsity for each row ... stored as extra
/// metadata" (§IV-B). Delegates to [`vegeta_sparse::decode_row_ns`], the
/// canonical sidecar codec.
pub(crate) fn decode_row_patterns(rp: &[u8]) -> Vec<u8> {
    let mut ns = [0u8; ROW_PATTERN_ROWS];
    let rows = decode_row_ns(rp, &mut ns);
    ns[..rows].to_vec()
}

/// Encodes per-row `N` values (1, 2 or 4) into the 8 B row-pattern field
/// (the sidecar bytes of an [`MregImage`]).
///
/// # Panics
///
/// Panics if more than 32 rows are given or any `N` is not 1, 2 or 4.
pub fn encode_row_patterns(ns: &[u8]) -> [u8; MREG_ROW_PATTERN_BYTES] {
    let mut img = MregImage::new();
    img.set_row_ns(ns);
    let mut out = [0u8; MREG_ROW_PATTERN_BYTES];
    out.copy_from_slice(img.row_patterns());
    out
}

/// Reads a packed little-endian FP32 register slice into a stack buffer.
#[inline]
fn read_f32s(bytes: &[u8], out: &mut [f32]) {
    for (i, o) in out.iter_mut().enumerate() {
        let off = i * 4;
        *o = f32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
    }
}

/// Writes a stack FP32 buffer back into register bytes.
#[inline]
fn write_f32s(bytes: &mut [u8], vals: &[f32]) {
    for (i, v) in vals.iter().enumerate() {
        bytes[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Decodes a transposed dense `B` operand (`16 × cols` BF16, row-major)
/// into an FP32 table indexed `[col × 16 + j]`, so the j-innermost
/// accumulation loops below read 16 contiguous lanes per stored `A` value.
///
/// BF16→FP32 conversion is exact, so hoisting it out of the MAC loops
/// cannot change a single bit of the result.
#[inline]
fn decode_bt(bt: &TileView<'_>, cols: usize, out: &mut [f32]) {
    for j in 0..16 {
        for k in 0..cols {
            out[k * 16 + j] = bt.at(j, k).to_f32();
        }
    }
}

/// `acc[j] += a * b[j]` across one 16-wide output row.
///
/// Every lane is an independent multiply followed by an add (exactly
/// [`vegeta_num::mac_bf16`] on predecoded FP32 — never a fused `mul_add`,
/// which would round differently), so any lane-parallel evaluation is bit-identical to
/// the scalar loop. The `simd` feature selects an explicitly widened
/// 8-lane-blocked form (the SP1-style opt-in backend); the default relies
/// on the autovectorizer.
#[inline]
fn axpy_row16(acc: &mut [f32; 16], a: f32, b: &[f32; 16]) {
    #[cfg(feature = "simd")]
    {
        let mut half = [0.0f32; 8];
        for o in [0usize, 8] {
            half.copy_from_slice(&b[o..o + 8]);
            for lane in &mut half {
                *lane *= a;
            }
            for (c, &h) in acc[o..o + 8].iter_mut().zip(half.iter()) {
                *c += h;
            }
        }
    }
    #[cfg(not(feature = "simd"))]
    for (c, &bv) in acc.iter_mut().zip(b.iter()) {
        *c += a * bv;
    }
}

/// Borrows output row `r` of a flat FP32 accumulator as a fixed 16-lane
/// array.
#[inline]
fn c_row(c: &mut [f32], r: usize) -> &mut [f32; 16] {
    (&mut c[r * 16..r * 16 + 16]).try_into().expect("16 lanes")
}

/// Borrows decoded-`B` column `col` (all 16 `j` lanes) of a
/// [`decode_bt`] table.
#[inline]
fn b_col(b_kj: &[f32], col: usize) -> &[f32; 16] {
    b_kj[col * 16..col * 16 + 16].try_into().expect("16 lanes")
}

impl Executor {
    /// Creates an executor with zeroed registers over the given memory.
    pub fn new(mem: Memory) -> Self {
        Executor {
            regs: RegFile::new(),
            mem,
            stats: ExecStats::default(),
        }
    }

    /// The architectural register file.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Mutable access to the register file (test setup convenience; real
    /// programs go through loads).
    pub fn regs_mut(&mut self) -> &mut RegFile {
        &mut self.regs
    }

    /// The memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the memory.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Executes a sequence of instructions, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`IsaError`] raised by [`Executor::execute`].
    pub fn run(&mut self, insts: &[Inst]) -> Result<(), IsaError> {
        insts.iter().try_for_each(|&i| self.execute(i))
    }

    /// Executes the tile instructions of a streamed trace chunk-wise,
    /// skipping the scalar/vector bookkeeping ops (which have no
    /// architectural tile semantics). The stream is never materialized, so
    /// full-scale kernels replay functionally in bounded memory.
    ///
    /// Returns the number of tile instructions executed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`IsaError`] raised by [`Executor::execute`].
    pub fn run_stream<S: crate::stream::InstStream>(
        &mut self,
        mut stream: S,
    ) -> Result<u64, IsaError> {
        let mut executed = 0u64;
        while let Some(op) = stream.next_op() {
            if let crate::trace::TraceOp::Tile(inst) = op {
                self.execute(inst)?;
                executed += 1;
            }
        }
        Ok(executed)
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// * [`IsaError::MemoryOutOfBounds`] for loads/stores outside memory.
    /// * [`IsaError::InvalidOperands`] if `TILE_SPMM_R` metadata describes
    ///   more than 32 rows or more stored values than a treg holds.
    pub fn execute(&mut self, inst: Inst) -> Result<(), IsaError> {
        match inst {
            Inst::TileLoadT { dst, addr } => {
                let bytes = self.mem.read_bytes(addr, crate::regs::TREG_BYTES)?;
                self.regs.treg_mut(dst).copy_from_slice(bytes);
                self.stats.bytes_loaded += crate::regs::TREG_BYTES as u64;
            }
            Inst::TileLoadU { dst, addr } => {
                let bytes = self.mem.read_bytes(addr, crate::regs::UREG_BYTES)?;
                self.regs.ureg_mut(dst).copy_from_slice(bytes);
                self.stats.bytes_loaded += crate::regs::UREG_BYTES as u64;
            }
            Inst::TileLoadV { dst, addr } => {
                let bytes = self.mem.read_bytes(addr, crate::regs::VREG_BYTES)?;
                self.regs.vreg_mut(dst).copy_from_slice(bytes);
                self.stats.bytes_loaded += crate::regs::VREG_BYTES as u64;
            }
            Inst::TileLoadM { dst, addr } => {
                let bytes = self.mem.read_bytes(addr, MREG_BYTES)?;
                self.regs.mreg_mut(dst).copy_from_slice(bytes);
                self.stats.bytes_loaded += MREG_BYTES as u64;
            }
            Inst::TileLoadRp { dst, addr } => {
                let bytes = self.mem.read_bytes(addr, MREG_ROW_PATTERN_BYTES)?;
                self.regs.row_patterns_mut(dst).copy_from_slice(bytes);
                self.stats.bytes_loaded += MREG_ROW_PATTERN_BYTES as u64;
            }
            Inst::TileStoreT { addr, src } => {
                self.mem.write_bytes(addr, self.regs.treg(src))?;
                self.stats.bytes_stored += crate::regs::TREG_BYTES as u64;
            }
            Inst::TileZero { dst } => {
                self.regs.treg_mut(dst).fill(0);
            }
            Inst::TileGemm { acc, a, b } => self.exec_gemm(acc, a, b),
            Inst::TileSpmmU { acc, a, b } => self.exec_spmm_u(acc, a, b),
            Inst::TileSpmmV { acc, a, b } => self.exec_spmm_v(acc, a, b),
            Inst::TileSpmmR { acc, a, b } => self.exec_spmm_r(acc, a, b)?,
        }
        self.stats.instructions += 1;
        if inst.is_compute() {
            self.stats.tile_compute += 1;
        }
        Ok(())
    }

    /// `C (16×16) += A (16×32) × B (32×16)`, `B` held transposed.
    fn exec_gemm(&mut self, acc: TReg, a: TReg, b: TReg) {
        let mut c = [0.0f32; 256];
        read_f32s(self.regs.treg(acc), &mut c);
        {
            let av = TileView::dense(self.regs.treg(a), TREG_ROWS, 32);
            let bt = TileView::dense(self.regs.treg(b), TREG_ROWS, 32);
            // Batched row-blocked path: decode both operands to FP32 once
            // (instead of once per use), then run k-outer / j-inner so each
            // stored A value broadcasts across 16 contiguous output lanes.
            // Per (i, j) element the k-accumulation order is unchanged, so
            // the result is bit-identical to the naive triple loop.
            let mut a_f = [0.0f32; 512];
            for (k, slot) in a_f.iter_mut().enumerate() {
                *slot = av.value(k).to_f32();
            }
            let mut b_kj = [0.0f32; 512];
            decode_bt(&bt, 32, &mut b_kj);
            for i in 0..16 {
                let row = c_row(&mut c, i);
                for k in 0..32 {
                    axpy_row16(row, a_f[i * 32 + k], b_col(&b_kj, k));
                }
            }
        }
        write_f32s(self.regs.treg_mut(acc), &c);
        self.stats.effectual_macs += MACS_PER_TILE_INST as u64;
    }

    /// `C (16×16) += A (16×64 effective, 2:4) × B (64×16)`.
    fn exec_spmm_u(&mut self, acc: TReg, a: TReg, b: UReg) {
        let mut c = [0.0f32; 256];
        read_f32s(self.regs.treg(acc), &mut c);
        {
            let av = TileView::new(
                FormatSpec::Nm(NmRatio::S2_4),
                TREG_ROWS,
                64,
                self.regs.treg(a),
                self.regs.mreg(a.paired_mreg()),
                &[],
            )
            .expect("architectural treg/mreg always fit the 2:4 view");
            let bt = TileView::dense(self.regs.ureg(b), TREG_ROWS, 64);
            // Batched path: decode every stored value and its B column once
            // (16 blocks of 4, 2 stored values per block, so stored index k
            // maps to column (k%32 / 2) * 4 + position), then broadcast each
            // A value across the 16 output lanes. Per-element accumulation
            // order over k is unchanged — bit-identical to the naive loop.
            let mut a_f = [0.0f32; 512];
            let mut col = [0usize; 512];
            for k in 0..512 {
                a_f[k] = av.value(k).to_f32();
                col[k] = (k % 32 / 2) * 4 + av.position(k);
            }
            let mut b_kj = [0.0f32; 1024];
            decode_bt(&bt, 64, &mut b_kj);
            for i in 0..16 {
                let row = c_row(&mut c, i);
                for local in 0..32 {
                    let k = i * 32 + local;
                    axpy_row16(row, a_f[k], b_col(&b_kj, col[k]));
                }
            }
        }
        write_f32s(self.regs.treg_mut(acc), &c);
        self.stats.effectual_macs += MACS_PER_TILE_INST as u64;
    }

    /// `C (16×16) += A (16×128 effective, 1:4) × B (128×16)`.
    fn exec_spmm_v(&mut self, acc: TReg, a: TReg, b: VReg) {
        let mut c = [0.0f32; 256];
        read_f32s(self.regs.treg(acc), &mut c);
        {
            let av = TileView::new(
                FormatSpec::Nm(NmRatio::S1_4),
                TREG_ROWS,
                128,
                self.regs.treg(a),
                self.regs.mreg(a.paired_mreg()),
                &[],
            )
            .expect("architectural treg/mreg always fit the 1:4 view");
            let bt = TileView::dense(self.regs.vreg(b), TREG_ROWS, 128);
            // Batched path (32 blocks of 4, 1 stored value per block:
            // column = (k%32) * 4 + position); see `exec_spmm_u`.
            let mut a_f = [0.0f32; 512];
            let mut col = [0usize; 512];
            for k in 0..512 {
                a_f[k] = av.value(k).to_f32();
                col[k] = (k % 32) * 4 + av.position(k);
            }
            let mut b_kj = [0.0f32; 2048];
            decode_bt(&bt, 128, &mut b_kj);
            for i in 0..16 {
                let row = c_row(&mut c, i);
                for local in 0..32 {
                    let k = i * 32 + local;
                    axpy_row16(row, a_f[k], b_col(&b_kj, col[k]));
                }
            }
        }
        write_f32s(self.regs.treg_mut(acc), &c);
        self.stats.effectual_macs += MACS_PER_TILE_INST as u64;
    }

    /// `C (R×16) += A (R×64 effective, row-wise N:4) × B (64×16)`.
    fn exec_spmm_r(&mut self, acc: UReg, a: TReg, b: UReg) -> Result<(), IsaError> {
        let mreg = a.paired_mreg();
        let mut ns = [0u8; ROW_PATTERN_ROWS];
        let rows = decode_row_ns(self.regs.row_patterns(mreg), &mut ns);
        let total_values: usize = ns[..rows].iter().map(|&n| n as usize * 16).sum();
        if total_values > 512 {
            return Err(IsaError::InvalidOperands {
                reason: format!(
                    "row-wise tile stores {total_values} values, more than a treg's 512"
                ),
            });
        }
        let mut c = [0.0f32; 512];
        read_f32s(self.regs.ureg(acc), &mut c);
        {
            let av = TileView::new(
                FormatSpec::RowWise { m: 4 },
                rows,
                64,
                self.regs.treg(a),
                self.regs.mreg(mreg),
                self.regs.row_patterns(mreg),
            )
            .expect("in-budget row-wise registers always view");
            let bt = TileView::dense(self.regs.ureg(b), TREG_ROWS, 64);
            // Batched path: each row has its own N (16 blocks of 4, N
            // stored values per block, column = (offset/N) * 4 + position);
            // within a row the stored-value order already ascends k, so
            // broadcasting across the 16 output lanes preserves the
            // per-element accumulation order exactly.
            let mut b_kj = [0.0f32; 1024];
            decode_bt(&bt, 64, &mut b_kj);
            let mut cursor = 0usize;
            for r in 0..rows {
                let n = av.row_n(r);
                let row = c_row(&mut c, r);
                for off in 0..16 * n {
                    let k = cursor + off;
                    let col = (off / n) * 4 + av.position(k);
                    axpy_row16(row, av.value(k).to_f32(), b_col(&b_kj, col));
                }
                cursor += 16 * n;
            }
        }
        write_f32s(self.regs.ureg_mut(acc), &c);
        self.stats.effectual_macs += (total_values * 16) as u64;
        Ok(())
    }
}

/// Convenience: the `N` value of each row a `TILE_SPMM_R` would process for
/// the given row-pattern field bytes.
pub fn row_patterns_of(field: &[u8]) -> Vec<u8> {
    decode_row_patterns(field)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegeta_num::{gemm_bf16_ref, Bf16, Matrix};
    use vegeta_sparse::{CompressedTile, RowWiseTile, TileFormat, TregImage};

    fn int_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<Bf16> {
        // Small integers are exact in BF16 and their dot products are exact
        // in FP32, so reference and executor must agree bit-for-bit.
        Matrix::from_fn(rows, cols, |r, c| {
            let h = (r as u64)
                .wrapping_mul(31)
                .wrapping_add(c as u64)
                .wrapping_mul(seed | 1)
                .wrapping_add(seed >> 3);
            Bf16::from_f32(((h % 15) as f32) - 7.0)
        })
    }

    fn sparse_int_matrix(rows: usize, cols: usize, ratio: NmRatio, seed: u64) -> Matrix<Bf16> {
        let dense = int_matrix(rows, cols, seed);
        vegeta_sparse::prune::magnitude_prune_nm(&dense, ratio)
    }

    #[test]
    fn gemm_matches_reference() {
        let a = int_matrix(16, 32, 5);
        let bt = int_matrix(16, 32, 9);
        let b = bt.transposed();
        let mut expected = Matrix::zeros(16, 16);
        gemm_bf16_ref(&a, &b, &mut expected);

        let mut exec = Executor::new(Memory::new(1 << 16));
        exec.regs_mut().set_treg_bf16(TReg::T0, &a);
        exec.regs_mut().set_treg_bf16(TReg::T1, &bt);
        exec.execute(Inst::TileGemm {
            acc: TReg::T2,
            a: TReg::T0,
            b: TReg::T1,
        })
        .unwrap();
        assert_eq!(exec.regs().treg_as_f32(TReg::T2), expected);
        assert_eq!(exec.stats().effectual_macs, 8192);
    }

    #[test]
    fn gemm_accumulates_over_multiple_instructions() {
        let a = int_matrix(16, 32, 11);
        let bt = int_matrix(16, 32, 13);
        let b = bt.transposed();
        let mut expected = Matrix::zeros(16, 16);
        gemm_bf16_ref(&a, &b, &mut expected);
        gemm_bf16_ref(&a, &b, &mut expected);

        let mut exec = Executor::new(Memory::new(1 << 16));
        exec.regs_mut().set_treg_bf16(TReg::T0, &a);
        exec.regs_mut().set_treg_bf16(TReg::T1, &bt);
        let gemm = Inst::TileGemm {
            acc: TReg::T2,
            a: TReg::T0,
            b: TReg::T1,
        };
        exec.run(&[gemm, gemm]).unwrap();
        assert_eq!(exec.regs().treg_as_f32(TReg::T2), expected);
    }

    fn load_compressed(exec: &mut Executor, a: TReg, tile: &CompressedTile) {
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        tile.pack_into(&mut treg, &mut mreg).unwrap();
        exec.regs_mut().set_treg_image(a, &treg);
        exec.regs_mut().set_mreg_image(a.paired_mreg(), &mreg);
    }

    #[test]
    fn spmm_u_matches_dense_reference() {
        let a_eff = sparse_int_matrix(16, 64, NmRatio::S2_4, 21);
        let tile = CompressedTile::compress(&a_eff, NmRatio::S2_4).unwrap();
        let bt = int_matrix(16, 64, 23);
        let b = bt.transposed();
        let mut expected = Matrix::zeros(16, 16);
        gemm_bf16_ref(&a_eff, &b, &mut expected);

        let mut exec = Executor::new(Memory::new(1 << 16));
        load_compressed(&mut exec, TReg::T3, &tile);
        exec.regs_mut().set_ureg_bf16(UReg::U0, &bt);
        exec.execute(Inst::TileSpmmU {
            acc: TReg::T2,
            a: TReg::T3,
            b: UReg::U0,
        })
        .unwrap();
        assert_eq!(exec.regs().treg_as_f32(TReg::T2), expected);
    }

    #[test]
    fn spmm_v_matches_dense_reference() {
        let a_eff = sparse_int_matrix(16, 128, NmRatio::S1_4, 31);
        let tile = CompressedTile::compress(&a_eff, NmRatio::S1_4).unwrap();
        let bt = int_matrix(16, 128, 33);
        let b = bt.transposed();
        let mut expected = Matrix::zeros(16, 16);
        gemm_bf16_ref(&a_eff, &b, &mut expected);

        // v0 aliases t0-t3, so A and the accumulator must live in t4-t7.
        let mut exec = Executor::new(Memory::new(1 << 16));
        load_compressed(&mut exec, TReg::T4, &tile);
        exec.regs_mut().set_vreg_bf16(VReg::V0, &bt);
        exec.execute(Inst::TileSpmmV {
            acc: TReg::T5,
            a: TReg::T4,
            b: VReg::V0,
        })
        .unwrap();
        assert_eq!(exec.regs().treg_as_f32(TReg::T5), expected);
    }

    fn load_row_wise(exec: &mut Executor, a: TReg, tile: &RowWiseTile) {
        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        tile.pack_into(&mut treg, &mut mreg).unwrap();
        exec.regs_mut().set_treg_image(a, &treg);
        exec.regs_mut().set_mreg_image(a.paired_mreg(), &mreg);
    }

    #[test]
    fn spmm_r_matches_dense_reference() {
        // Mixed-sparsity rows: 4 at 4:4, 4 at 2:4, 8 at 1:4 => stored
        // values 4*64 + 4*32 + 8*16 = 512, R = 16.
        let mut rows = Vec::new();
        for r in 0..16usize {
            let ratio = match r {
                0..=3 => NmRatio::D4_4,
                4..=7 => NmRatio::S2_4,
                _ => NmRatio::S1_4,
            };
            rows.push(sparse_int_matrix(1, 64, ratio, 41 + r as u64));
        }
        let a_eff = Matrix::from_fn(16, 64, |r, c| rows[r][(0, c)]);
        let tile = RowWiseTile::compress(&a_eff, 4).unwrap();
        assert_eq!(tile.stored_len(), 512);
        let bt = int_matrix(16, 64, 53);
        let b = bt.transposed();
        let mut expected = Matrix::zeros(16, 16);
        gemm_bf16_ref(&a_eff, &b, &mut expected);

        // u0 aliases t0-t1 and u1 aliases t2-t3, so A lives in t4.
        let mut exec = Executor::new(Memory::new(1 << 16));
        load_row_wise(&mut exec, TReg::T4, &tile);
        exec.regs_mut().set_ureg_bf16(UReg::U0, &bt);
        exec.execute(Inst::TileSpmmR {
            acc: UReg::U1,
            a: TReg::T4,
            b: UReg::U0,
        })
        .unwrap();
        let c = exec.regs().ureg_as_f32(UReg::U1);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(c[(i, j)], expected[(i, j)], "mismatch at ({i},{j})");
            }
        }
        // Rows beyond R are untouched.
        for i in 16..32 {
            for j in 0..16 {
                assert_eq!(c[(i, j)], 0.0);
            }
        }
        assert_eq!(exec.stats().effectual_macs, 8192);
    }

    fn messy_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<Bf16> {
        // Values with busy mantissas so FP32 addition is NOT associative
        // over them: any change to the accumulation order shows up in the
        // bit patterns below.
        Matrix::from_fn(rows, cols, |r, c| {
            let h = (r as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(c as u64)
                .wrapping_mul(seed | 1);
            Bf16::from_f32(((h % 8191) as f32 / 2048.0) - 2.0)
        })
    }

    fn assert_bits_eq(got: &Matrix<f32>, want: &[f32], rows: usize) {
        for i in 0..rows {
            for j in 0..16 {
                assert_eq!(
                    got[(i, j)].to_bits(),
                    want[i * 16 + j].to_bits(),
                    "bitwise mismatch at ({i},{j}): {} vs {}",
                    got[(i, j)],
                    want[i * 16 + j]
                );
            }
        }
    }

    #[test]
    fn gemm_batched_path_is_bit_identical_to_the_mac_loop() {
        use vegeta_num::mac_bf16;
        let a = messy_matrix(16, 32, 61);
        let bt = messy_matrix(16, 32, 67);
        let acc0 = Matrix::from_fn(16, 16, |r, c| ((r * 16 + c) as f32) * 0.321 - 40.0);
        let mut exec = Executor::new(Memory::new(4096));
        exec.regs_mut().set_treg_bf16(TReg::T0, &a);
        exec.regs_mut().set_treg_bf16(TReg::T1, &bt);
        exec.regs_mut().set_treg_f32(TReg::T2, &acc0);
        // The pre-batching reference: per-(i,j) mac_bf16 chain, ascending k.
        let mut want = [0.0f32; 256];
        read_f32s(exec.regs().treg(TReg::T2), &mut want);
        for i in 0..16 {
            for j in 0..16 {
                let mut s = want[i * 16 + j];
                for k in 0..32 {
                    s = mac_bf16(s, a[(i, k)], bt[(j, k)]);
                }
                want[i * 16 + j] = s;
            }
        }
        exec.execute(Inst::TileGemm {
            acc: TReg::T2,
            a: TReg::T0,
            b: TReg::T1,
        })
        .unwrap();
        assert_bits_eq(&exec.regs().treg_as_f32(TReg::T2), &want, 16);
    }

    #[test]
    fn spmm_batched_paths_are_bit_identical_to_the_mac_loops() {
        use vegeta_num::mac_bf16;
        // 2:4 via ureg B.
        let a_eff =
            vegeta_sparse::prune::magnitude_prune_nm(&messy_matrix(16, 64, 71), NmRatio::S2_4);
        let tile = CompressedTile::compress(&a_eff, NmRatio::S2_4).unwrap();
        let bt = messy_matrix(16, 64, 73);
        let acc0 = Matrix::from_fn(16, 16, |r, c| ((r as f32) - (c as f32)) * 1.173);
        let mut exec = Executor::new(Memory::new(4096));
        load_compressed(&mut exec, TReg::T3, &tile);
        exec.regs_mut().set_ureg_bf16(UReg::U0, &bt);
        exec.regs_mut().set_treg_f32(TReg::T4, &acc0);
        let mut want = [0.0f32; 256];
        read_f32s(exec.regs().treg(TReg::T4), &mut want);
        {
            let av = TileView::new(
                FormatSpec::Nm(NmRatio::S2_4),
                TREG_ROWS,
                64,
                exec.regs().treg(TReg::T3),
                exec.regs().mreg(TReg::T3.paired_mreg()),
                &[],
            )
            .unwrap();
            for i in 0..16 {
                for j in 0..16 {
                    let mut s = want[i * 16 + j];
                    for blk in 0..16 {
                        for slot in 0..2 {
                            let k = i * 32 + blk * 2 + slot;
                            let pos = av.position(k);
                            s = mac_bf16(s, av.value(k), bt[(j, blk * 4 + pos)]);
                        }
                    }
                    want[i * 16 + j] = s;
                }
            }
        }
        exec.execute(Inst::TileSpmmU {
            acc: TReg::T4,
            a: TReg::T3,
            b: UReg::U0,
        })
        .unwrap();
        assert_bits_eq(&exec.regs().treg_as_f32(TReg::T4), &want, 16);

        // Row-wise mixed N via TILE_SPMM_R (zeroed accumulator).
        let mut rows = Vec::new();
        for r in 0..16usize {
            let ratio = match r % 3 {
                0 => NmRatio::S1_4,
                1 => NmRatio::S2_4,
                _ => NmRatio::S1_4,
            };
            rows.push(vegeta_sparse::prune::magnitude_prune_nm(
                &messy_matrix(1, 64, 80 + r as u64),
                ratio,
            ));
        }
        let a_rw = Matrix::from_fn(16, 64, |r, c| rows[r][(0, c)]);
        let rw = RowWiseTile::compress(&a_rw, 4).unwrap();
        let mut exec = Executor::new(Memory::new(4096));
        load_row_wise(&mut exec, TReg::T4, &rw);
        exec.regs_mut().set_ureg_bf16(UReg::U0, &bt);
        let mut want = [0.0f32; 512];
        {
            let mreg = TReg::T4.paired_mreg();
            let mut ns = [0u8; ROW_PATTERN_ROWS];
            let nrows = decode_row_ns(exec.regs().row_patterns(mreg), &mut ns);
            let av = TileView::new(
                FormatSpec::RowWise { m: 4 },
                nrows,
                64,
                exec.regs().treg(TReg::T4),
                exec.regs().mreg(mreg),
                exec.regs().row_patterns(mreg),
            )
            .unwrap();
            let mut cursor = 0usize;
            for r in 0..nrows {
                let n = av.row_n(r);
                for j in 0..16 {
                    let mut s = want[r * 16 + j];
                    for blk in 0..16 {
                        for slot in 0..n {
                            let k = cursor + blk * n + slot;
                            let pos = av.position(k);
                            s = mac_bf16(s, av.value(k), bt[(j, blk * 4 + pos)]);
                        }
                    }
                    want[r * 16 + j] = s;
                }
                cursor += 16 * n;
            }
        }
        exec.execute(Inst::TileSpmmR {
            acc: UReg::U1,
            a: TReg::T4,
            b: UReg::U0,
        })
        .unwrap();
        let got = exec.regs().ureg_as_f32(UReg::U1);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(got[(i, j)].to_bits(), want[i * 16 + j].to_bits());
            }
        }
    }

    #[test]
    fn row_pattern_roundtrip() {
        let ns = vec![4, 4, 2, 2, 1, 1, 1, 1, 2, 4];
        let field = encode_row_patterns(&ns);
        assert_eq!(decode_row_patterns(&field), ns);
    }

    #[test]
    fn row_pattern_all_32_rows() {
        let ns = vec![1u8; 32];
        let field = encode_row_patterns(&ns);
        assert_eq!(decode_row_patterns(&field).len(), 32);
    }

    #[test]
    fn load_store_roundtrip_through_memory() {
        let mut exec = Executor::new(Memory::new(1 << 16));
        let tile = int_matrix(16, 32, 3);
        exec.mem_mut().write_bf16_matrix(0x400, &tile).unwrap();
        exec.execute(Inst::TileLoadT {
            dst: TReg::T5,
            addr: 0x400,
        })
        .unwrap();
        exec.execute(Inst::TileStoreT {
            addr: 0x2000,
            src: TReg::T5,
        })
        .unwrap();
        assert_eq!(exec.mem().read_bf16_matrix(0x2000, 16, 32).unwrap(), tile);
        assert_eq!(exec.stats().bytes_loaded, 1024);
        assert_eq!(exec.stats().bytes_stored, 1024);
    }

    #[test]
    fn tile_zero_clears_accumulator() {
        let mut exec = Executor::new(Memory::new(4096));
        exec.regs_mut()
            .set_treg_f32(TReg::T2, &Matrix::from_fn(16, 16, |_, _| 3.5));
        exec.execute(Inst::TileZero { dst: TReg::T2 }).unwrap();
        assert!(exec.regs().treg_as_f32(TReg::T2).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn oob_load_is_reported() {
        let mut exec = Executor::new(Memory::new(512));
        let err = exec
            .execute(Inst::TileLoadT {
                dst: TReg::T0,
                addr: 0,
            })
            .unwrap_err();
        assert!(matches!(err, IsaError::MemoryOutOfBounds { .. }));
    }
}
