//! Binary encoding and text assembly for VEGETA instructions.
//!
//! The binary format is a compact variable-length encoding:
//!
//! * memory instructions: `[opcode][reg][addr: 8 bytes LE]` (10 bytes);
//! * `tile_zero`: `[opcode][reg]` (2 bytes);
//! * compute instructions: `[opcode][acc][a][b]` (4 bytes).
//!
//! The text format matches [`Inst`]'s `Display` output, e.g.
//! `tile_spmm_u t2, t3, u0` or `tile_load_t t3, [0x1000]`.

use crate::inst::{Inst, Opcode};
use crate::regs::{MReg, TReg, UReg, VReg};
use crate::IsaError;

/// Encodes one instruction into bytes.
pub fn encode(inst: Inst) -> Vec<u8> {
    let op = inst.opcode() as u8;
    match inst {
        Inst::TileLoadT { dst, addr } => encode_mem(op, dst.index() as u8, addr),
        Inst::TileLoadU { dst, addr } => encode_mem(op, dst.index() as u8, addr),
        Inst::TileLoadV { dst, addr } => encode_mem(op, dst.index() as u8, addr),
        Inst::TileLoadM { dst, addr } => encode_mem(op, dst.index() as u8, addr),
        Inst::TileLoadRp { dst, addr } => encode_mem(op, dst.index() as u8, addr),
        Inst::TileStoreT { addr, src } => encode_mem(op, src.index() as u8, addr),
        Inst::TileZero { dst } => vec![op, dst.index() as u8],
        Inst::TileGemm { acc, a, b } => {
            vec![op, acc.index() as u8, a.index() as u8, b.index() as u8]
        }
        Inst::TileSpmmU { acc, a, b } => {
            vec![op, acc.index() as u8, a.index() as u8, b.index() as u8]
        }
        Inst::TileSpmmV { acc, a, b } => {
            vec![op, acc.index() as u8, a.index() as u8, b.index() as u8]
        }
        Inst::TileSpmmR { acc, a, b } => {
            vec![op, acc.index() as u8, a.index() as u8, b.index() as u8]
        }
    }
}

fn encode_mem(op: u8, reg: u8, addr: u64) -> Vec<u8> {
    let mut out = vec![op, reg];
    out.extend_from_slice(&addr.to_le_bytes());
    out
}

/// Decodes one instruction from the front of `bytes`, returning it and the
/// number of bytes consumed.
///
/// # Errors
///
/// Returns [`IsaError::DecodeError`] for truncated or unknown encodings and
/// [`IsaError::InvalidRegister`] for out-of-range register numbers.
pub fn decode(bytes: &[u8]) -> Result<(Inst, usize), IsaError> {
    let op = *bytes.first().ok_or_else(|| IsaError::DecodeError {
        reason: "empty input".to_string(),
    })?;
    let opcode = Opcode::from_byte(op).ok_or_else(|| IsaError::DecodeError {
        reason: format!("unknown opcode {op:#x}"),
    })?;
    let reg = |i: usize| -> Result<u8, IsaError> {
        bytes.get(i).copied().ok_or_else(|| IsaError::DecodeError {
            reason: format!("truncated {}", opcode.mnemonic()),
        })
    };
    let addr = |i: usize| -> Result<u64, IsaError> {
        let slice = bytes.get(i..i + 8).ok_or_else(|| IsaError::DecodeError {
            reason: format!("truncated address in {}", opcode.mnemonic()),
        })?;
        Ok(u64::from_le_bytes(
            slice.try_into().expect("slice is 8 bytes"),
        ))
    };
    let inst = match opcode {
        Opcode::TileLoadT => Inst::TileLoadT {
            dst: TReg::new(reg(1)?)?,
            addr: addr(2)?,
        },
        Opcode::TileLoadU => Inst::TileLoadU {
            dst: UReg::new(reg(1)?)?,
            addr: addr(2)?,
        },
        Opcode::TileLoadV => Inst::TileLoadV {
            dst: VReg::new(reg(1)?)?,
            addr: addr(2)?,
        },
        Opcode::TileLoadM => Inst::TileLoadM {
            dst: MReg::new(reg(1)?)?,
            addr: addr(2)?,
        },
        Opcode::TileLoadRp => Inst::TileLoadRp {
            dst: MReg::new(reg(1)?)?,
            addr: addr(2)?,
        },
        Opcode::TileStoreT => Inst::TileStoreT {
            src: TReg::new(reg(1)?)?,
            addr: addr(2)?,
        },
        Opcode::TileZero => Inst::TileZero {
            dst: TReg::new(reg(1)?)?,
        },
        Opcode::TileGemm => Inst::TileGemm {
            acc: TReg::new(reg(1)?)?,
            a: TReg::new(reg(2)?)?,
            b: TReg::new(reg(3)?)?,
        },
        Opcode::TileSpmmU => Inst::TileSpmmU {
            acc: TReg::new(reg(1)?)?,
            a: TReg::new(reg(2)?)?,
            b: UReg::new(reg(3)?)?,
        },
        Opcode::TileSpmmV => Inst::TileSpmmV {
            acc: TReg::new(reg(1)?)?,
            a: TReg::new(reg(2)?)?,
            b: VReg::new(reg(3)?)?,
        },
        Opcode::TileSpmmR => Inst::TileSpmmR {
            acc: UReg::new(reg(1)?)?,
            a: TReg::new(reg(2)?)?,
            b: UReg::new(reg(3)?)?,
        },
    };
    let len = match opcode {
        Opcode::TileZero => 2,
        Opcode::TileGemm | Opcode::TileSpmmU | Opcode::TileSpmmV | Opcode::TileSpmmR => 4,
        _ => 10,
    };
    Ok((inst, len))
}

/// Formats an instruction in assembly syntax (`Display` does the same).
pub fn disassemble(inst: Inst) -> String {
    inst.to_string()
}

/// Parses a program: one instruction per line, `#` comments, blank lines
/// ignored.
///
/// # Errors
///
/// Returns [`IsaError::ParseError`] describing the first malformed line.
pub fn assemble(text: &str) -> Result<Vec<Inst>, IsaError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| IsaError::ParseError {
            reason: format!("line {}: {e}", lineno + 1),
        })?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<Inst, String> {
    let (mnemonic, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let args: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let want = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!(
                "{mnemonic} expects {n} operands, found {}",
                args.len()
            ))
        }
    };
    let inst = match mnemonic {
        "tile_load_t" => {
            want(2)?;
            Inst::TileLoadT {
                dst: parse_treg(args[0])?,
                addr: parse_addr(args[1])?,
            }
        }
        "tile_load_u" => {
            want(2)?;
            Inst::TileLoadU {
                dst: parse_ureg(args[0])?,
                addr: parse_addr(args[1])?,
            }
        }
        "tile_load_v" => {
            want(2)?;
            Inst::TileLoadV {
                dst: parse_vreg(args[0])?,
                addr: parse_addr(args[1])?,
            }
        }
        "tile_load_m" => {
            want(2)?;
            Inst::TileLoadM {
                dst: parse_mreg(args[0])?,
                addr: parse_addr(args[1])?,
            }
        }
        "tile_load_rp" => {
            want(2)?;
            Inst::TileLoadRp {
                dst: parse_mreg(args[0])?,
                addr: parse_addr(args[1])?,
            }
        }
        "tile_store_t" => {
            want(2)?;
            Inst::TileStoreT {
                addr: parse_addr(args[0])?,
                src: parse_treg(args[1])?,
            }
        }
        "tile_zero" => {
            want(1)?;
            Inst::TileZero {
                dst: parse_treg(args[0])?,
            }
        }
        "tile_gemm" => {
            want(3)?;
            Inst::TileGemm {
                acc: parse_treg(args[0])?,
                a: parse_treg(args[1])?,
                b: parse_treg(args[2])?,
            }
        }
        "tile_spmm_u" => {
            want(3)?;
            Inst::TileSpmmU {
                acc: parse_treg(args[0])?,
                a: parse_treg(args[1])?,
                b: parse_ureg(args[2])?,
            }
        }
        "tile_spmm_v" => {
            want(3)?;
            Inst::TileSpmmV {
                acc: parse_treg(args[0])?,
                a: parse_treg(args[1])?,
                b: parse_vreg(args[2])?,
            }
        }
        "tile_spmm_r" => {
            want(3)?;
            Inst::TileSpmmR {
                acc: parse_ureg(args[0])?,
                a: parse_treg(args[1])?,
                b: parse_ureg(args[2])?,
            }
        }
        other => return Err(format!("unknown mnemonic '{other}'")),
    };
    Ok(inst)
}

fn parse_index(tok: &str, prefix: &str) -> Result<u8, String> {
    tok.strip_prefix(prefix)
        .and_then(|n| n.parse::<u8>().ok())
        .ok_or_else(|| format!("expected {prefix}-register, found '{tok}'"))
}

fn parse_treg(tok: &str) -> Result<TReg, String> {
    TReg::new(parse_index(tok, "t")?).map_err(|e| e.to_string())
}

fn parse_ureg(tok: &str) -> Result<UReg, String> {
    UReg::new(parse_index(tok, "u")?).map_err(|e| e.to_string())
}

fn parse_vreg(tok: &str) -> Result<VReg, String> {
    VReg::new(parse_index(tok, "v")?).map_err(|e| e.to_string())
}

fn parse_mreg(tok: &str) -> Result<MReg, String> {
    MReg::new(parse_index(tok, "m")?).map_err(|e| e.to_string())
}

fn parse_addr(tok: &str) -> Result<u64, String> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected [address], found '{tok}'"))?;
    let parsed = if let Some(hex) = inner.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        inner.parse::<u64>()
    };
    parsed.map_err(|_| format!("bad address '{inner}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_insts() -> Vec<Inst> {
        vec![
            Inst::TileLoadT {
                dst: TReg::T3,
                addr: 0x1000,
            },
            Inst::TileLoadU {
                dst: UReg::U1,
                addr: 0xdead_beef,
            },
            Inst::TileLoadV {
                dst: VReg::V0,
                addr: 64,
            },
            Inst::TileLoadM {
                dst: MReg::M3,
                addr: 0,
            },
            Inst::TileLoadRp {
                dst: MReg::M5,
                addr: 8,
            },
            Inst::TileStoreT {
                addr: 0x40,
                src: TReg::T1,
            },
            Inst::TileZero { dst: TReg::T7 },
            Inst::TileGemm {
                acc: TReg::T2,
                a: TReg::T3,
                b: TReg::T4,
            },
            Inst::TileSpmmU {
                acc: TReg::T2,
                a: TReg::T3,
                b: UReg::U0,
            },
            Inst::TileSpmmV {
                acc: TReg::T2,
                a: TReg::T3,
                b: VReg::V1,
            },
            Inst::TileSpmmR {
                acc: UReg::U3,
                a: TReg::T1,
                b: UReg::U0,
            },
        ]
    }

    #[test]
    fn binary_roundtrip_all_instructions() {
        for inst in all_insts() {
            let bytes = encode(inst);
            let (decoded, len) = decode(&bytes).unwrap();
            assert_eq!(decoded, inst);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn text_roundtrip_all_instructions() {
        for inst in all_insts() {
            let text = disassemble(inst);
            let parsed = assemble(&text).unwrap();
            assert_eq!(parsed, vec![inst], "failed to roundtrip '{text}'");
        }
    }

    #[test]
    fn assemble_listing1_inner_loop() {
        // Listing 1's loop body, as our assembler accepts it.
        let program = "
            # C[i][j] += A[i][k] * B[k][j]
            tile_load_u u0, [0x2000]
            tile_load_t t2, [0x3000]
            tile_load_t t3, [0x1000]
            tile_load_m m3, [0x1400]
            tile_spmm_u t2, t3, u0
            tile_store_t [0x3000], t2
        ";
        let insts = assemble(program).unwrap();
        assert_eq!(insts.len(), 6);
        assert_eq!(
            insts[4],
            Inst::TileSpmmU {
                acc: TReg::T2,
                a: TReg::T3,
                b: UReg::U0
            }
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0xFF]).is_err());
        assert!(decode(&[Opcode::TileGemm as u8, 0, 1]).is_err()); // truncated
        assert!(decode(&[Opcode::TileGemm as u8, 9, 1, 2]).is_err()); // bad reg
    }

    #[test]
    fn assemble_reports_line_numbers() {
        let err = assemble("tile_zero t0\nbogus_op t1").unwrap_err();
        assert!(err.to_string().contains("line 2"), "got: {err}");
    }

    #[test]
    fn parse_rejects_wrong_operand_kinds() {
        assert!(assemble("tile_spmm_u t2, t3, t0").is_err()); // b must be ureg
        assert!(assemble("tile_load_t t2, 0x40").is_err()); // missing brackets
        assert!(assemble("tile_gemm t2, t3").is_err()); // arity
    }

    #[test]
    fn decode_stream_of_instructions() {
        let mut bytes = Vec::new();
        for inst in all_insts() {
            bytes.extend(encode(inst));
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while offset < bytes.len() {
            let (inst, len) = decode(&bytes[offset..]).unwrap();
            decoded.push(inst);
            offset += len;
        }
        assert_eq!(decoded, all_insts());
    }
}
