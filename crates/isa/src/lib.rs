//! The VEGETA instruction set architecture (§IV).
//!
//! This crate implements the architectural state and semantics of the VEGETA
//! ISA extension:
//!
//! * [`regs`] — eight 1 KB tile registers (`treg0-7`, 16 rows × 64 B) with
//!   the aliased 2 KB `ureg` and 4 KB `vreg` views, plus eight 128 B metadata
//!   registers (`mreg0-7`), as in Fig. 6.
//! * [`Inst`] — the instruction set of Table II (`TILE_LOAD_{T,U,V,M}`,
//!   `TILE_STORE_T`, `TILE_GEMM`, `TILE_SPMM_{U,V,R}`) with binary encoding
//!   and a text assembler/disassembler.
//! * [`Memory`] — a flat byte memory; tile loads/stores move whole 64 B
//!   cache lines, one per tile row (§V-F).
//! * [`Executor`] — the functional emulator (the paper built this as a
//!   Pin-based instrumentation tool; see DESIGN.md for the substitution).
//! * [`trace`] — dynamic instruction traces consumed by the cycle-level CPU
//!   simulator, mixing tile instructions with scalar/vector bookkeeping ops.
//!
//! # Data layout conventions
//!
//! The paper stores the dense `B` operand "in a transposed manner in the tile
//! registers" (Listing 1). We therefore define register views as row-major
//! matrices over the register bytes with these shapes:
//!
//! | Operand | Register | View |
//! |---|---|---|
//! | `A` dense | `treg` | 16×32 BF16 |
//! | `A` 2:4 / 1:4 compressed | `treg` (+`mreg`) | 16×32 BF16 values |
//! | `Bᵀ` for `TILE_GEMM` | `treg` | 16×32 BF16 (`B` is 32×16) |
//! | `Bᵀ` for `TILE_SPMM_U`/`_R` | `ureg` | 16×64 BF16 (`B` is 64×16) |
//! | `Bᵀ` for `TILE_SPMM_V` | `vreg` | 16×128 BF16 (`B` is 128×16) |
//! | `C` accumulator | `treg` | 16×16 FP32 |
//! | `C` for `TILE_SPMM_R` | `ureg` | up-to-32×16 FP32 |
//!
//! The metadata register used by a tile SPMM instruction is implicitly the
//! `mreg` with the same index as the `A` operand's `treg`, matching the
//! pairing in Listing 1 (`treg3` with `mreg3`).
//!
//! # Example
//!
//! ```
//! use vegeta_isa::{Executor, Inst, Memory, TReg};
//! use vegeta_num::{Bf16, Matrix};
//!
//! let mut exec = Executor::new(Memory::new(64 * 1024));
//! // Store an A tile and a Bᵀ tile to memory, load, multiply.
//! let a = Matrix::from_fn(16, 32, |r, c| Bf16::from_f32(((r + c) % 3) as f32));
//! let bt = Matrix::from_fn(16, 32, |r, c| Bf16::from_f32(((r * c) % 5) as f32));
//! exec.mem_mut().write_bf16_matrix(0x0, &a)?;
//! exec.mem_mut().write_bf16_matrix(0x1000, &bt)?;
//! exec.execute(Inst::TileLoadT { dst: TReg::T0, addr: 0x0 })?;
//! exec.execute(Inst::TileLoadT { dst: TReg::T1, addr: 0x1000 })?;
//! exec.execute(Inst::TileZero { dst: TReg::T2 })?;
//! exec.execute(Inst::TileGemm { acc: TReg::T2, a: TReg::T0, b: TReg::T1 })?;
//! let c = exec.regs().treg_as_f32(TReg::T2);
//! assert_eq!(c[(0, 0)], (0..32).map(|k| a[(0, k)].to_f32() * bt[(0, k)].to_f32()).sum::<f32>());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod encode;
mod error;
mod exec;
mod inst;
mod mem;
pub mod regs;
pub mod trace;

pub use encode::{assemble, decode, disassemble, encode};
pub use error::IsaError;
pub use exec::{encode_row_patterns, row_patterns_of, ExecStats, Executor};
pub use inst::{Inst, Opcode, RegRef, MACS_PER_TILE_INST};
pub use mem::{Memory, CACHE_LINE_BYTES};
pub use regs::{MReg, RegFile, TReg, UReg, VReg};
