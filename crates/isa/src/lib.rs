//! The VEGETA instruction set architecture (§IV).
//!
//! This crate implements the architectural state and semantics of the VEGETA
//! ISA extension:
//!
//! * [`regs`] — eight 1 KB tile registers (`treg0-7`, 16 rows × 64 B) with
//!   the aliased 2 KB `ureg` and 4 KB `vreg` views, plus eight 128 B metadata
//!   registers (`mreg0-7`), as in Fig. 6.
//! * [`Inst`] — the instruction set of Table II (`TILE_LOAD_{T,U,V,M}`,
//!   `TILE_STORE_T`, `TILE_GEMM`, `TILE_SPMM_{U,V,R}`) with binary encoding
//!   and a text assembler/disassembler.
//! * [`Memory`] — a flat byte memory; tile loads/stores move whole 64 B
//!   cache lines, one per tile row (§V-F).
//! * [`Executor`] — the functional emulator (the paper built this as a
//!   Pin-based instrumentation tool; see DESIGN.md for the substitution).
//! * [`trace`] — dynamic instruction traces consumed by the cycle-level CPU
//!   simulator, mixing tile instructions with scalar/vector bookkeeping ops.
//! * [`stream`] — the streaming delivery pipeline ([`InstStream`],
//!   [`ChunkedStream`]) that replays network-scale traces chunk-wise in
//!   bounded memory instead of materializing them.
//!
//! # Data layout conventions
//!
//! The paper stores the dense `B` operand "in a transposed manner in the tile
//! registers" (Listing 1). Register contents are defined by the storage
//! layer's packed images — a [`TregImage`] is exactly a treg's bytes, an
//! [`MregImage`] an mreg's metadata plus its row-pattern sidecar — and the
//! executor reads them through borrowed, zero-copy [`TileView`]s with these
//! shapes:
//!
//! | Operand | Register | Image / view |
//! |---|---|---|
//! | `A` dense | `treg` | [`TregImage`]; dense `TileView`, 16×32 BF16 |
//! | `A` 2:4 / 1:4 compressed | `treg` + `mreg` | [`TregImage`] + [`MregImage`]; `Nm` `TileView` (16×64 / 16×128 effective) |
//! | `A` row-wise `N:4` | `treg` + `mreg` (+RP) | [`TregImage`] + [`MregImage`]; `RowWise` `TileView` (≤32×64 effective) |
//! | `A` CSR (vector path) | memory only | [`MregImage`] capacity gates what fits a register image |
//! | `Bᵀ` for `TILE_GEMM` | `treg` | dense `TileView`, 16×32 BF16 (`B` is 32×16) |
//! | `Bᵀ` for `TILE_SPMM_U`/`_R` | `ureg` | dense `TileView`, 16×64 BF16 (`B` is 64×16) |
//! | `Bᵀ` for `TILE_SPMM_V` | `vreg` | dense `TileView`, 16×128 BF16 (`B` is 128×16) |
//! | `C` accumulator | `treg` | 16×16 FP32 (stack buffer in the executor) |
//! | `C` for `TILE_SPMM_R` | `ureg` | up-to-32×16 FP32 |
//!
//! Formats lower into images with [`TileFormat::pack_into`]
//! ([`vegeta_sparse::TileFormat`]); [`Memory::write_treg_image`] /
//! [`Memory::write_mreg_image`] place the payloads a `TILE_LOAD_T` /
//! `TILE_LOAD_M` / `TILE_LOAD_RP` then moves verbatim, and
//! [`RegFile::set_treg_image`] / [`RegFile::set_mreg_image`] short-circuit
//! that path for tests. The per-instruction execute path allocates nothing:
//! operands are read in place through [`TileView`]s over
//! [`RegFile::treg`]-style borrows.
//!
//! The metadata register used by a tile SPMM instruction is implicitly the
//! `mreg` with the same index as the `A` operand's `treg`, matching the
//! pairing in Listing 1 (`treg3` with `mreg3`).
//!
//! # Example
//!
//! ```
//! use vegeta_isa::{Executor, Inst, Memory, TReg};
//! use vegeta_num::{Bf16, Matrix};
//!
//! let mut exec = Executor::new(Memory::new(64 * 1024));
//! // Store an A tile and a Bᵀ tile to memory, load, multiply.
//! let a = Matrix::from_fn(16, 32, |r, c| Bf16::from_f32(((r + c) % 3) as f32));
//! let bt = Matrix::from_fn(16, 32, |r, c| Bf16::from_f32(((r * c) % 5) as f32));
//! exec.mem_mut().write_bf16_matrix(0x0, &a)?;
//! exec.mem_mut().write_bf16_matrix(0x1000, &bt)?;
//! exec.execute(Inst::TileLoadT { dst: TReg::T0, addr: 0x0 })?;
//! exec.execute(Inst::TileLoadT { dst: TReg::T1, addr: 0x1000 })?;
//! exec.execute(Inst::TileZero { dst: TReg::T2 })?;
//! exec.execute(Inst::TileGemm { acc: TReg::T2, a: TReg::T0, b: TReg::T1 })?;
//! let c = exec.regs().treg_as_f32(TReg::T2);
//! assert_eq!(c[(0, 0)], (0..32).map(|k| a[(0, k)].to_f32() * bt[(0, k)].to_f32()).sum::<f32>());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod encode;
mod error;
mod exec;
pub mod footprint;
mod inst;
mod mem;
pub mod regs;
pub mod stream;
pub mod trace;

pub use encode::{assemble, decode, disassemble, encode};
pub use error::IsaError;
pub use exec::{encode_row_patterns, row_patterns_of, ExecStats, Executor};
pub use footprint::{AccessVerdict, Footprint, Region, RegionClass};
pub use inst::{Inst, Opcode, RegRef, MACS_PER_TILE_INST};
pub use mem::{Memory, CACHE_LINE_BYTES};
pub use regs::{MReg, RegFile, TReg, UReg, VReg};
pub use stream::{BlockEmitter, ChunkedStream, GridSlice, InstStream, TraceStream, TRACE_OP_BYTES};
// The storage layer's register images and views are part of this crate's
// operand vocabulary; re-export them so ISA users need one import.
pub use vegeta_sparse::{FormatSpec, MregImage, TileFormat, TileView, TregImage};
