//! Declared memory footprints for generated instruction streams.
//!
//! A kernel's address plan is affine and fully known at generation time: the
//! emitters in `vegeta-kernels` place every operand at a base address computed
//! from the GEMM shape and sparsity format. A [`Footprint`] is the *declared*
//! side of that contract — a set of named [`Region`]s with extents and
//! writability — against which a static verifier (or any other tool) can
//! check the addresses a stream actually touches without executing it.
//!
//! Regions within one footprint are usually disjoint, but the synthetic
//! operand layouts of some kernel families (the CSR vector path places `A`,
//! `B`, and `C` at fixed 16 MB-spaced bases) can legitimately overlap at very
//! large shapes. [`Footprint::classify`] therefore asks *containment in at
//! least one suitable region*, not unique ownership.

use std::fmt;

/// Broad classification of what a [`Region`] holds, used by verifiers to
/// reason about roles (e.g. "reduction inputs live in `PartialC`").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionClass {
    /// Compressed or dense `A` operand values.
    AValues,
    /// `A` operand sparsity metadata (and row-pattern sidecars).
    AMeta,
    /// The dense `B` operand.
    B,
    /// The final `C` output image.
    C,
    /// Per-K-split partial-`C` images awaiting reduction.
    PartialC,
    /// Anything else (scratch, spilled state).
    Other,
}

impl fmt::Display for RegionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RegionClass::AValues => "A-values",
            RegionClass::AMeta => "A-metadata",
            RegionClass::B => "B",
            RegionClass::C => "C",
            RegionClass::PartialC => "partial-C",
            RegionClass::Other => "other",
        };
        f.write_str(name)
    }
}

/// One contiguous span of the address space declared by an address plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address of the region.
    pub start: u64,
    /// Extent in bytes (a zero-byte region matches no access).
    pub bytes: u64,
    /// Whether the stream is allowed to store into this region.
    pub writable: bool,
    /// What the region holds.
    pub class: RegionClass,
}

impl Region {
    /// A read-only region.
    pub fn ro(start: u64, bytes: u64, class: RegionClass) -> Self {
        Region {
            start,
            bytes,
            writable: false,
            class,
        }
    }

    /// A read-write region.
    pub fn rw(start: u64, bytes: u64, class: RegionClass) -> Self {
        Region {
            start,
            bytes,
            writable: true,
            class,
        }
    }

    /// Whether `[addr, addr + bytes)` lies entirely inside this region.
    pub fn contains(&self, addr: u64, bytes: u64) -> bool {
        bytes > 0
            && addr >= self.start
            && addr.saturating_add(bytes) <= self.start.saturating_add(self.bytes)
    }
}

/// The verdict of checking one memory access against a [`Footprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessVerdict {
    /// The access is fully contained in a region that permits it.
    Ok(RegionClass),
    /// A store fully contained in a read-only region (and in no writable one).
    ReadOnly(RegionClass),
    /// The access is not contained in any declared region.
    Unmapped,
}

/// A set of declared [`Region`]s an instruction stream promises to stay in.
///
/// Lookup is `O(log n)` per access via binary search over region starts, with
/// a bounded left-walk so that overlapping regions are still found.
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// Regions sorted by `(start, bytes)`; zero-byte regions are dropped.
    regions: Vec<Region>,
    /// Largest region extent, bounding the left-walk during lookup.
    max_bytes: u64,
}

impl Footprint {
    /// Build a footprint from `regions` (order irrelevant; empty regions are
    /// discarded).
    pub fn new(mut regions: Vec<Region>) -> Self {
        regions.retain(|r| r.bytes > 0);
        regions.sort_by_key(|r| (r.start, r.bytes));
        let max_bytes = regions.iter().map(|r| r.bytes).max().unwrap_or(0);
        Footprint { regions, max_bytes }
    }

    /// The declared regions, sorted by start address.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Smallest region of `class`, if any (by start address).
    pub fn region_of_class(&self, class: RegionClass) -> Option<&Region> {
        self.regions.iter().find(|r| r.class == class)
    }

    /// One-past-the-end of the highest region, i.e. the total declared extent.
    pub fn end(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| r.start.saturating_add(r.bytes))
            .max()
            .unwrap_or(0)
    }

    /// Check one access of `bytes` bytes at `addr`.
    ///
    /// Loads are satisfied by any containing region; stores prefer a writable
    /// containing region and report [`AccessVerdict::ReadOnly`] when only a
    /// read-only region contains them.
    pub fn classify(&self, addr: u64, bytes: u64, is_store: bool) -> AccessVerdict {
        let mut read_only_hit = None;
        // First region that could possibly contain `addr`: its start must be
        // at most `addr`, and it reaches `addr` only if it starts within
        // `max_bytes` of it.
        let lo_addr = addr.saturating_sub(self.max_bytes);
        let lo = self.regions.partition_point(|r| r.start < lo_addr);
        let hi = self.regions.partition_point(|r| r.start <= addr);
        for r in &self.regions[lo..hi] {
            if !r.contains(addr, bytes) {
                continue;
            }
            if !is_store || r.writable {
                return AccessVerdict::Ok(r.class);
            }
            read_only_hit.get_or_insert(r.class);
        }
        match read_only_hit {
            Some(class) => AccessVerdict::ReadOnly(class),
            None => AccessVerdict::Unmapped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_respects_writability_and_bounds() {
        let fp = Footprint::new(vec![
            Region::ro(64, 128, RegionClass::AValues),
            Region::rw(192, 64, RegionClass::C),
        ]);
        assert_eq!(
            fp.classify(64, 64, false),
            AccessVerdict::Ok(RegionClass::AValues)
        );
        assert_eq!(
            fp.classify(128, 64, false),
            AccessVerdict::Ok(RegionClass::AValues)
        );
        assert_eq!(fp.classify(128, 65, false), AccessVerdict::Unmapped);
        assert_eq!(
            fp.classify(192, 64, true),
            AccessVerdict::Ok(RegionClass::C)
        );
        assert_eq!(
            fp.classify(64, 64, true),
            AccessVerdict::ReadOnly(RegionClass::AValues)
        );
        assert_eq!(fp.classify(0, 64, false), AccessVerdict::Unmapped);
        assert_eq!(fp.classify(256, 1, false), AccessVerdict::Unmapped);
    }

    #[test]
    fn classify_handles_overlapping_regions() {
        // Mimics the vector family's fixed bases at huge shapes: B's extent
        // runs past C's base.
        let fp = Footprint::new(vec![
            Region::ro(0, 1024, RegionClass::B),
            Region::rw(512, 1024, RegionClass::C),
        ]);
        // A store into the overlap is satisfied by the writable C region.
        assert_eq!(
            fp.classify(600, 64, true),
            AccessVerdict::Ok(RegionClass::C)
        );
        // A load in the overlap hits either region; both are acceptable.
        assert!(matches!(fp.classify(600, 64, false), AccessVerdict::Ok(_)));
        // A store below C's base only finds read-only B.
        assert_eq!(
            fp.classify(0, 64, true),
            AccessVerdict::ReadOnly(RegionClass::B)
        );
    }

    #[test]
    fn empty_regions_are_dropped() {
        let fp = Footprint::new(vec![Region::ro(0, 0, RegionClass::Other)]);
        assert!(fp.regions().is_empty());
        assert_eq!(fp.classify(0, 1, false), AccessVerdict::Unmapped);
        assert_eq!(fp.end(), 0);
    }
}
