//! Dynamic instruction traces.
//!
//! The paper's flow generates traces of the kernels with a Pintool and
//! simulates them on MacSim (§VI-A). Our kernels emit [`Trace`]s directly:
//! every executed instruction appears in program order, with tile
//! instructions carried verbatim and the surrounding scalar/vector work
//! (address arithmetic, loop control, vector GEMM baselines) represented by
//! lightweight ops that the CPU model costs accurately.

use std::fmt;

use crate::inst::{Inst, RegRef};

/// A unified architectural register namespace for dependence tracking across
/// the scalar/vector/matrix engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArchReg {
    /// A tile register (treg granularity; ureg/vreg accesses expand).
    Tile(u8),
    /// A metadata register.
    Meta(u8),
    /// A 64 B vector register (AVX-512-class), `z0`–`z31`.
    Vec(u8),
    /// A scalar general-purpose register, `r0`–`r15`.
    Gpr(u8),
}

/// One dynamic instruction in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceOp {
    /// A VEGETA tile instruction.
    Tile(Inst),
    /// A 64 B vector load into vector register `dst`.
    VecLoad {
        /// Destination vector register.
        dst: u8,
        /// Source address.
        addr: u64,
    },
    /// A 64 B vector store from vector register `src`.
    VecStore {
        /// Source vector register.
        src: u8,
        /// Destination address.
        addr: u64,
    },
    /// A vector fused multiply-add: `acc += a * b` on 64 B vectors.
    VecFma {
        /// Accumulator vector register (read and written).
        acc: u8,
        /// First source vector register.
        a: u8,
        /// Second source vector register.
        b: u8,
    },
    /// A vector broadcast/shuffle/permute-class op writing `dst` from `src`.
    VecOp {
        /// Destination vector register.
        dst: u8,
        /// Source vector register.
        src: u8,
    },
    /// A scalar ALU op (address arithmetic, loop counters).
    Scalar {
        /// Destination GPR.
        dst: u8,
        /// Source GPR.
        src: u8,
    },
    /// A (perfectly predicted) loop branch reading GPR `cond`.
    Branch {
        /// Condition GPR.
        cond: u8,
    },
}

impl TraceOp {
    /// Registers read by this op.
    pub fn reads(&self) -> Vec<ArchReg> {
        let mut v = Vec::new();
        self.visit_reads(|r| v.push(r));
        v
    }

    /// Calls `f` on each register this op reads, in [`TraceOp::reads`]
    /// order, without allocating — what the simulator's per-instruction
    /// hot path uses instead of materializing a `Vec` per step.
    pub fn visit_reads(&self, mut f: impl FnMut(ArchReg)) {
        match *self {
            TraceOp::Tile(inst) => inst.visit_reads(|r| f(reg_ref_to_arch(r))),
            TraceOp::VecLoad { .. } => {}
            TraceOp::VecStore { src, .. } => f(ArchReg::Vec(src)),
            TraceOp::VecFma { acc, a, b } => {
                f(ArchReg::Vec(acc));
                f(ArchReg::Vec(a));
                f(ArchReg::Vec(b));
            }
            TraceOp::VecOp { src, .. } => f(ArchReg::Vec(src)),
            TraceOp::Scalar { src, .. } => f(ArchReg::Gpr(src)),
            TraceOp::Branch { cond } => f(ArchReg::Gpr(cond)),
        }
    }

    /// Registers written by this op.
    pub fn writes(&self) -> Vec<ArchReg> {
        let mut v = Vec::new();
        self.visit_writes(|r| v.push(r));
        v
    }

    /// Calls `f` on each register this op writes, in [`TraceOp::writes`]
    /// order, without allocating (see [`TraceOp::visit_reads`]).
    pub fn visit_writes(&self, mut f: impl FnMut(ArchReg)) {
        match *self {
            TraceOp::Tile(inst) => inst.visit_writes(|r| f(reg_ref_to_arch(r))),
            TraceOp::VecLoad { dst, .. } => f(ArchReg::Vec(dst)),
            TraceOp::VecStore { .. } => {}
            TraceOp::VecFma { acc, .. } => f(ArchReg::Vec(acc)),
            TraceOp::VecOp { dst, .. } => f(ArchReg::Vec(dst)),
            TraceOp::Scalar { dst, .. } => f(ArchReg::Gpr(dst)),
            TraceOp::Branch { .. } => {}
        }
    }

    /// Memory footprint `(addr, bytes, is_store)` if this op touches memory.
    pub fn mem_access(&self) -> Option<(u64, usize, bool)> {
        match *self {
            TraceOp::Tile(inst) => inst
                .mem_access()
                .map(|(a, len)| (a, len, matches!(inst, Inst::TileStoreT { .. }))),
            TraceOp::VecLoad { addr, .. } => Some((addr, 64, false)),
            TraceOp::VecStore { addr, .. } => Some((addr, 64, true)),
            _ => None,
        }
    }

    /// `true` for tile GEMM/SPMM ops (dispatched to the matrix engine).
    pub fn is_tile_compute(&self) -> bool {
        matches!(self, TraceOp::Tile(i) if i.is_compute())
    }
}

/// Per-kind instruction counts of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceMix {
    /// Tile loads (`TILE_LOAD_{T,U,V,M,RP}`).
    pub tile_loads: u64,
    /// Tile stores.
    pub tile_stores: u64,
    /// Tile GEMM/SPMM compute.
    pub tile_compute: u64,
    /// `TILE_ZERO`.
    pub tile_zeros: u64,
    /// Vector loads.
    pub vec_loads: u64,
    /// Vector stores.
    pub vec_stores: u64,
    /// Vector FMAs.
    pub vec_fmas: u64,
    /// Other vector ops.
    pub vec_ops: u64,
    /// Scalar ALU ops.
    pub scalars: u64,
    /// Branches.
    pub branches: u64,
}

impl TraceMix {
    /// Counts one op into the mix.
    pub fn count(&mut self, op: &TraceOp) {
        match op {
            TraceOp::Tile(inst) if inst.is_compute() => self.tile_compute += 1,
            TraceOp::Tile(Inst::TileStoreT { .. }) => self.tile_stores += 1,
            TraceOp::Tile(Inst::TileZero { .. }) => self.tile_zeros += 1,
            TraceOp::Tile(_) => self.tile_loads += 1,
            TraceOp::VecLoad { .. } => self.vec_loads += 1,
            TraceOp::VecStore { .. } => self.vec_stores += 1,
            TraceOp::VecFma { .. } => self.vec_fmas += 1,
            TraceOp::VecOp { .. } => self.vec_ops += 1,
            TraceOp::Scalar { .. } => self.scalars += 1,
            TraceOp::Branch { .. } => self.branches += 1,
        }
    }

    /// Total dynamic instruction count.
    pub fn total(&self) -> u64 {
        self.tile_loads
            + self.tile_stores
            + self.tile_compute
            + self.tile_zeros
            + self.vec_loads
            + self.vec_stores
            + self.vec_fmas
            + self.vec_ops
            + self.scalars
            + self.branches
    }
}

/// A dynamic instruction trace in program order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `capacity` ops.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            ops: Vec::with_capacity(capacity),
        }
    }

    /// Streams the materialized ops (see [`crate::stream::TraceStream`]).
    pub fn stream(&self) -> crate::stream::TraceStream<'_> {
        crate::stream::TraceStream::new(&self.ops)
    }

    /// Appends an op.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// Appends a tile instruction.
    pub fn push_inst(&mut self, inst: Inst) {
        self.ops.push(TraceOp::Tile(inst));
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The ops in program order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Iterates over the ops in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceOp> {
        self.ops.iter()
    }

    /// Appends all ops of another trace.
    pub fn extend(&mut self, other: &Trace) {
        self.ops.extend_from_slice(&other.ops);
    }

    /// Counts instructions by kind.
    pub fn mix(&self) -> TraceMix {
        let mut mix = TraceMix::default();
        for op in &self.ops {
            mix.count(op);
        }
        mix
    }

    /// Extracts just the tile instructions, in order (for the functional
    /// executor).
    pub fn tile_insts(&self) -> Vec<Inst> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Tile(i) => Some(*i),
                _ => None,
            })
            .collect()
    }
}

impl FromIterator<TraceOp> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceOp>>(iter: T) -> Self {
        Trace {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceOp> for Trace {
    fn extend<T: IntoIterator<Item = TraceOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mix = self.mix();
        write!(
            f,
            "trace: {} insts ({} tile-compute, {} tile-loads, {} vec-fma)",
            mix.total(),
            mix.tile_compute,
            mix.tile_loads,
            mix.vec_fmas
        )
    }
}

fn reg_ref_to_arch(r: RegRef) -> ArchReg {
    match r {
        RegRef::Tile(t) => ArchReg::Tile(t.index() as u8),
        RegRef::Meta(m) => ArchReg::Meta(m.index() as u8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{TReg, UReg};

    #[test]
    fn mix_counts_kinds() {
        let mut t = Trace::new();
        t.push_inst(Inst::TileLoadT {
            dst: TReg::T0,
            addr: 0,
        });
        t.push_inst(Inst::TileLoadM {
            dst: crate::regs::MReg::M0,
            addr: 0,
        });
        t.push_inst(Inst::TileSpmmU {
            acc: TReg::T2,
            a: TReg::T0,
            b: UReg::U1,
        });
        t.push_inst(Inst::TileStoreT {
            addr: 0,
            src: TReg::T2,
        });
        t.push(TraceOp::VecFma { acc: 0, a: 1, b: 2 });
        t.push(TraceOp::Scalar { dst: 0, src: 0 });
        t.push(TraceOp::Branch { cond: 0 });
        let mix = t.mix();
        assert_eq!(mix.tile_loads, 2);
        assert_eq!(mix.tile_compute, 1);
        assert_eq!(mix.tile_stores, 1);
        assert_eq!(mix.vec_fmas, 1);
        assert_eq!(mix.scalars, 1);
        assert_eq!(mix.branches, 1);
        assert_eq!(mix.total(), 7);
    }

    #[test]
    fn vec_fma_dependences() {
        let op = TraceOp::VecFma { acc: 3, a: 4, b: 5 };
        assert!(op.reads().contains(&ArchReg::Vec(3)));
        assert_eq!(op.writes(), vec![ArchReg::Vec(3)]);
    }

    #[test]
    fn tile_op_dependences_expand_aliases() {
        let op = TraceOp::Tile(Inst::TileSpmmU {
            acc: TReg::T2,
            a: TReg::T3,
            b: UReg::U0,
        });
        let reads = op.reads();
        assert!(reads.contains(&ArchReg::Tile(0)));
        assert!(reads.contains(&ArchReg::Tile(1)));
        assert!(reads.contains(&ArchReg::Meta(3)));
    }

    #[test]
    fn mem_access_flags_stores() {
        let st = TraceOp::Tile(Inst::TileStoreT {
            addr: 0x80,
            src: TReg::T0,
        });
        assert_eq!(st.mem_access(), Some((0x80, 1024, true)));
        let ld = TraceOp::VecLoad { dst: 0, addr: 0x40 };
        assert_eq!(ld.mem_access(), Some((0x40, 64, false)));
    }

    #[test]
    fn tile_insts_filters_non_tile_ops() {
        let mut t = Trace::new();
        t.push(TraceOp::Scalar { dst: 0, src: 0 });
        t.push_inst(Inst::TileZero { dst: TReg::T1 });
        assert_eq!(t.tile_insts(), vec![Inst::TileZero { dst: TReg::T1 }]);
    }
}
