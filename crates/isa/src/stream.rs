//! Streaming instruction delivery: dynamic traces without materialization.
//!
//! The paper replays *network-scale* traces (§VI's Table IV layers run end
//! to end), which makes "build a `Vec` of every dynamic instruction"
//! untenable: a full-size GPT-3 layer is tens of millions of ops. This
//! module defines the streaming pipeline that replaces materialized
//! [`Trace`]s on every hot path:
//!
//! * [`InstStream`] — the consumer contract: a pull-based generator of
//!   [`TraceOp`]s in program order with an **exact-length** hook
//!   ([`InstStream::remaining`]) and **byte-accounting** hooks
//!   ([`InstStream::resident_bytes`] / [`InstStream::peak_resident_bytes`])
//!   so simulators can report progress and pin peak trace-resident memory.
//! * [`TraceStream`] — the adapter that replays an already-materialized
//!   [`Trace`] (its resident footprint is, honestly, the whole trace).
//! * [`BlockEmitter`] + [`ChunkedStream`] — the generator side: a kernel
//!   describes its trace as a sequence of bounded *blocks* (one tile-loop
//!   cell each); `ChunkedStream` re-emits one block at a time into a small
//!   reusable buffer, so peak residency is the largest block, not the
//!   whole trace. [`ChunkedStream::with_chunk_ops`] opts into *coalesced*
//!   refills (several blocks per refill) when throughput matters more
//!   than the residency bound; op order is identical either way.
//!
//! `vegeta-kernels` implements [`BlockEmitter`] for every kernel family and
//! `vegeta-sim::CoreSim` consumes any [`InstStream`] chunk-wise;
//! `Executor::run_stream` does the same for functional replay.
//!
//! # Example
//!
//! ```
//! use vegeta_isa::trace::{Trace, TraceOp};
//! use vegeta_isa::stream::InstStream;
//!
//! let mut trace = Trace::new();
//! trace.push(TraceOp::Scalar { dst: 0, src: 0 });
//! trace.push(TraceOp::Branch { cond: 0 });
//! let mut stream = trace.stream();
//! assert_eq!(stream.remaining(), 2);
//! assert!(matches!(stream.next_op(), Some(TraceOp::Scalar { .. })));
//! assert_eq!(stream.remaining(), 1);
//! ```

use crate::trace::{Trace, TraceMix, TraceOp};

/// Bytes one buffered [`TraceOp`] occupies.
pub const TRACE_OP_BYTES: usize = std::mem::size_of::<TraceOp>();

/// A pull-based source of dynamic instructions in program order.
///
/// Implementations must deliver exactly [`InstStream::remaining`] more ops
/// and then return `None` forever; `remaining` is **exact**, not a hint, so
/// consumers can pre-size accounting structures and report progress without
/// a dry run.
pub trait InstStream {
    /// The next op in program order, or `None` when the stream is drained.
    fn next_op(&mut self) -> Option<TraceOp>;

    /// Exact number of ops not yet returned by [`InstStream::next_op`].
    fn remaining(&self) -> u64;

    /// Bytes of trace data currently resident in the generator (buffered
    /// ops plus generator state) — the quantity streaming keeps bounded.
    fn resident_bytes(&self) -> usize;

    /// High-water mark of [`InstStream::resident_bytes`] over the stream's
    /// lifetime so far.
    fn peak_resident_bytes(&self) -> usize {
        self.resident_bytes()
    }

    /// Drains the stream into a materialized [`Trace`] (the legacy
    /// representation; streaming consumers should prefer `next_op`).
    fn collect_trace(&mut self) -> Trace
    where
        Self: Sized,
    {
        let mut trace = Trace::with_capacity(usize::try_from(self.remaining()).unwrap_or(0));
        while let Some(op) = self.next_op() {
            trace.push(op);
        }
        trace
    }

    /// Drains the stream counting instructions by kind.
    fn collect_mix(&mut self) -> TraceMix
    where
        Self: Sized,
    {
        let mut mix = TraceMix::default();
        while let Some(op) = self.next_op() {
            mix.count(&op);
        }
        mix
    }
}

/// Streams over any boxed/borrowed stream (so `&mut S` works where an
/// `impl InstStream` is expected).
impl<S: InstStream + ?Sized> InstStream for &mut S {
    fn next_op(&mut self) -> Option<TraceOp> {
        (**self).next_op()
    }

    fn remaining(&self) -> u64 {
        (**self).remaining()
    }

    fn resident_bytes(&self) -> usize {
        (**self).resident_bytes()
    }

    fn peak_resident_bytes(&self) -> usize {
        (**self).peak_resident_bytes()
    }
}

/// Replays a materialized op slice as a stream.
///
/// This is the compatibility adapter: its resident footprint is the whole
/// backing trace, which is exactly what the byte-accounting hooks should
/// report for a legacy `Vec`-backed replay.
#[derive(Debug, Clone)]
pub struct TraceStream<'a> {
    ops: &'a [TraceOp],
    pos: usize,
}

impl<'a> TraceStream<'a> {
    /// A stream over `ops` in order.
    pub fn new(ops: &'a [TraceOp]) -> Self {
        TraceStream { ops, pos: 0 }
    }
}

impl InstStream for TraceStream<'_> {
    fn next_op(&mut self) -> Option<TraceOp> {
        let op = self.ops.get(self.pos).copied()?;
        self.pos += 1;
        Some(op)
    }

    fn remaining(&self) -> u64 {
        (self.ops.len() - self.pos) as u64
    }

    fn resident_bytes(&self) -> usize {
        self.ops.len() * TRACE_OP_BYTES
    }
}

/// A trace generator decomposed into bounded blocks.
///
/// A *block* is one cell of a kernel's tile-loop nest (one output-tile
/// group, one packed row group, one vector microkernel invocation, ...):
/// big enough that re-emission is cheap, small enough that buffering one
/// block bounds residency. [`BlockEmitter::block_ops`] must match what
/// [`BlockEmitter::emit_block`] appends **exactly** — `ChunkedStream`
/// derives its exact-length contract from it (and debug-asserts the match).
pub trait BlockEmitter {
    /// Number of blocks in the trace.
    fn blocks(&self) -> usize;

    /// Exact op count of block `block` (< [`BlockEmitter::blocks`]).
    fn block_ops(&self, block: usize) -> u64;

    /// Appends block `block`'s ops to `out` in program order.
    fn emit_block(&self, block: usize, out: &mut Vec<TraceOp>);

    /// Bytes of emitter state held for the stream's lifetime (address plans,
    /// packing tables); buffered ops are accounted separately.
    fn state_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

/// A contiguous block-range view of another emitter: the stream-splitting
/// primitive behind multi-core sharding.
///
/// A `BlockSlice` re-exposes blocks `[first, first + count)` of the inner
/// emitter as blocks `[0, count)`, so wrapping it in a [`ChunkedStream`]
/// yields an exact-length, byte-accounted stream of just that range.
/// Slices taken over a partition of the inner emitter's block range (see
/// [`even_ranges`]) concatenate back to the whole trace in order.
#[derive(Debug, Clone)]
pub struct BlockSlice<E> {
    inner: E,
    first: usize,
    count: usize,
}

impl<E: BlockEmitter> BlockSlice<E> {
    /// A view of blocks `[first, first + count)` of `inner`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the inner emitter's block count.
    pub fn new(inner: E, first: usize, count: usize) -> Self {
        assert!(
            first + count <= inner.blocks(),
            "slice [{first}, {}) exceeds {} blocks",
            first + count,
            inner.blocks()
        );
        BlockSlice {
            inner,
            first,
            count,
        }
    }

    /// The wrapped emitter.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The first inner block this slice exposes.
    pub fn first_block(&self) -> usize {
        self.first
    }
}

impl<E: BlockEmitter> BlockEmitter for BlockSlice<E> {
    fn blocks(&self) -> usize {
        self.count
    }

    fn block_ops(&self, block: usize) -> u64 {
        debug_assert!(block < self.count);
        self.inner.block_ops(self.first + block)
    }

    fn emit_block(&self, block: usize, out: &mut Vec<TraceOp>) {
        debug_assert!(block < self.count);
        self.inner.emit_block(self.first + block, out);
    }

    fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }
}

/// A 2D block-range view of an emitter whose blocks form a row-major
/// `rows_total × cols_total` grid.
///
/// Kernel emitters lay their blocks out outer-major: block
/// `r * cols_total + c` is outer unit `r`, inner unit `c` (M-tile group ×
/// N-tile column for the tiled families). A `GridSlice` re-exposes the
/// sub-rectangle `rows × cols` of that grid as a dense row-major block
/// range `[0, rows.len() * cols.len())`, so a 2D shard is just a
/// [`ChunkedStream`] over a `GridSlice` — exact-length and byte-accounted
/// like every other block view. Unlike [`BlockSlice`], the selected inner
/// blocks are *strided*: consecutive slice blocks jump `cols_total`
/// inner blocks at each row boundary.
///
/// # Example
///
/// Slicing the middle column of a 3×3 grid selects inner blocks 1, 4, 7:
///
/// ```
/// use vegeta_isa::stream::{BlockEmitter, GridSlice};
/// use vegeta_isa::trace::TraceOp;
///
/// struct Nine;
/// impl BlockEmitter for Nine {
///     fn blocks(&self) -> usize {
///         9
///     }
///     fn block_ops(&self, _block: usize) -> u64 {
///         1
///     }
///     fn emit_block(&self, block: usize, out: &mut Vec<TraceOp>) {
///         out.push(TraceOp::Scalar {
///             dst: block as u8,
///             src: 0,
///         });
///     }
/// }
///
/// let slice = GridSlice::new(Nine, 3, 0..3, 1..2);
/// let picked: Vec<usize> = (0..slice.blocks()).map(|b| slice.inner_block(b)).collect();
/// assert_eq!(picked, vec![1, 4, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct GridSlice<E> {
    inner: E,
    cols_total: usize,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
}

impl<E: BlockEmitter> GridSlice<E> {
    /// A view of grid rows `rows` × grid columns `cols` of `inner`, whose
    /// blocks are laid out row-major with `cols_total` columns per row.
    ///
    /// # Panics
    ///
    /// Panics if the inner block count is not a multiple of `cols_total`,
    /// or if either range exceeds the grid (`cols.end > cols_total`, or
    /// `rows.end` past the inner row count).
    pub fn new(
        inner: E,
        cols_total: usize,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> Self {
        assert!(cols_total > 0, "a block grid needs at least one column");
        assert_eq!(
            inner.blocks() % cols_total,
            0,
            "{} blocks do not tile into rows of {cols_total}",
            inner.blocks()
        );
        let rows_total = inner.blocks() / cols_total;
        assert!(
            rows.end <= rows_total && cols.end <= cols_total,
            "grid slice {rows:?}x{cols:?} exceeds {rows_total}x{cols_total} grid"
        );
        GridSlice {
            inner,
            cols_total,
            rows,
            cols,
        }
    }

    /// The wrapped emitter.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The inner block index slice block `block` maps to.
    pub fn inner_block(&self, block: usize) -> usize {
        debug_assert!(block < self.blocks());
        let width = self.cols.len();
        (self.rows.start + block / width) * self.cols_total + self.cols.start + block % width
    }

    /// The grid-row (outer-unit) range this slice covers.
    pub fn rows(&self) -> std::ops::Range<usize> {
        self.rows.clone()
    }

    /// The grid-column (inner-unit) range this slice covers.
    pub fn cols(&self) -> std::ops::Range<usize> {
        self.cols.clone()
    }

    /// The first inner block this slice exposes (row-major).
    pub fn first_block(&self) -> usize {
        self.rows.start * self.cols_total + self.cols.start
    }
}

impl<E: BlockEmitter> BlockEmitter for GridSlice<E> {
    fn blocks(&self) -> usize {
        self.rows.len() * self.cols.len()
    }

    fn block_ops(&self, block: usize) -> u64 {
        self.inner.block_ops(self.inner_block(block))
    }

    fn emit_block(&self, block: usize, out: &mut Vec<TraceOp>) {
        self.inner.emit_block(self.inner_block(block), out);
    }

    fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }
}

/// Partitions `0..units` into `parts` contiguous, near-even ranges (sizes
/// differ by at most one; some ranges are empty when `parts > units`).
/// The canonical split multi-core sharding uses to assign outer loop
/// units to cores.
///
/// # Example
///
/// ```
/// use vegeta_isa::stream::even_ranges;
///
/// assert_eq!(even_ranges(7, 3), vec![0..2, 2..4, 4..7]);
/// assert_eq!(even_ranges(2, 4), vec![0..0, 0..1, 1..1, 1..2]);
/// ```
pub fn even_ranges(units: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    (0..parts)
        .map(|i| (i * units / parts)..((i + 1) * units / parts))
        .collect()
}

/// Streams a [`BlockEmitter`] one block at a time through a reusable buffer.
///
/// Peak residency is `max_block_ops × TRACE_OP_BYTES` plus the emitter's
/// own state — independent of total trace length, which is what lets
/// full-scale Table IV layers replay in bounded memory.
#[derive(Debug, Clone)]
pub struct ChunkedStream<E> {
    emitter: E,
    next_block: usize,
    buf: Vec<TraceOp>,
    pos: usize,
    remaining: u64,
    peak_resident: usize,
    /// Minimum buffered ops per refill: 1 for the canonical one-block-at-a-
    /// time stream, larger for opt-in coalesced refills.
    chunk_ops: u64,
}

impl<E: BlockEmitter> ChunkedStream<E> {
    /// Wraps an emitter, computing the exact total length up front.
    pub fn new(emitter: E) -> Self {
        ChunkedStream::with_chunk_ops(emitter, 1)
    }

    /// Wraps an emitter with **coalesced refills**: each refill emits
    /// consecutive blocks until at least `chunk_ops` ops are buffered (or
    /// the trace ends), instead of stopping at the first non-empty block.
    ///
    /// Coalescing amortizes per-refill overhead when blocks are tiny (the
    /// vector baseline's microkernel cells are a few ops each) at the price
    /// of residency: peak buffered bytes track `chunk_ops` plus one block
    /// of overshoot rather than the largest single block. It is therefore
    /// strictly opt-in — [`ChunkedStream::new`] keeps the one-block refill
    /// whose residency accounting the simulator's `peak_resident_bytes`
    /// reports — and changes only *when* ops are buffered, never which ops
    /// are delivered or in what order.
    ///
    /// `chunk_ops` is clamped to at least 1; `with_chunk_ops(e, 1)` is
    /// exactly `new(e)`.
    pub fn with_chunk_ops(emitter: E, chunk_ops: u64) -> Self {
        let remaining = (0..emitter.blocks()).map(|b| emitter.block_ops(b)).sum();
        ChunkedStream {
            emitter,
            next_block: 0,
            buf: Vec::new(),
            pos: 0,
            remaining,
            peak_resident: 0,
            chunk_ops: chunk_ops.max(1),
        }
    }

    /// The refill target: minimum ops buffered per refill (1 unless the
    /// stream was built with [`ChunkedStream::with_chunk_ops`]).
    pub fn chunk_ops(&self) -> u64 {
        self.chunk_ops
    }

    /// The largest single-block op count — the stream's chunk size, and the
    /// bound on buffered ops.
    pub fn max_block_ops(&self) -> u64 {
        (0..self.emitter.blocks())
            .map(|b| self.emitter.block_ops(b))
            .max()
            .unwrap_or(0)
    }

    /// The wrapped emitter.
    pub fn emitter(&self) -> &E {
        &self.emitter
    }

    #[cold]
    fn refill(&mut self) -> bool {
        self.buf.clear();
        self.pos = 0;
        while (self.buf.len() as u64) < self.chunk_ops && self.next_block < self.emitter.blocks() {
            let block = self.next_block;
            let before = self.buf.len();
            self.emitter.emit_block(block, &mut self.buf);
            debug_assert_eq!(
                (self.buf.len() - before) as u64,
                self.emitter.block_ops(block),
                "emitter block {block} length disagrees with its declared count"
            );
            self.next_block += 1;
        }
        self.peak_resident = self.peak_resident.max(self.resident_bytes());
        !self.buf.is_empty()
    }
}

impl<E: BlockEmitter> InstStream for ChunkedStream<E> {
    fn next_op(&mut self) -> Option<TraceOp> {
        if self.pos == self.buf.len() && !self.refill() {
            return None;
        }
        let op = self.buf[self.pos];
        self.pos += 1;
        self.remaining -= 1;
        Some(op)
    }

    fn remaining(&self) -> u64 {
        self.remaining
    }

    fn resident_bytes(&self) -> usize {
        self.buf.capacity() * TRACE_OP_BYTES + self.emitter.state_bytes()
    }

    fn peak_resident_bytes(&self) -> usize {
        self.peak_resident.max(self.resident_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::regs::TReg;

    /// `n` blocks of `b + 1` scalar ops each.
    struct Ramp {
        n: usize,
    }

    impl BlockEmitter for Ramp {
        fn blocks(&self) -> usize {
            self.n
        }

        fn block_ops(&self, block: usize) -> u64 {
            block as u64 + 1
        }

        fn emit_block(&self, block: usize, out: &mut Vec<TraceOp>) {
            for i in 0..=block {
                out.push(TraceOp::Scalar {
                    dst: (block % 8) as u8,
                    src: (i % 8) as u8,
                });
            }
        }
    }

    #[test]
    fn trace_stream_replays_in_order_with_exact_length() {
        let mut t = Trace::new();
        t.push_inst(Inst::TileZero { dst: TReg::T0 });
        t.push(TraceOp::Branch { cond: 1 });
        let mut s = t.stream();
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.resident_bytes(), 2 * TRACE_OP_BYTES);
        let replay = s.collect_trace();
        assert_eq!(replay, t);
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.next_op(), None);
    }

    #[test]
    fn chunked_stream_length_and_drain_agree() {
        let mut s = ChunkedStream::new(Ramp { n: 5 });
        assert_eq!(s.remaining(), 1 + 2 + 3 + 4 + 5);
        assert_eq!(s.max_block_ops(), 5);
        let mut count = 0u64;
        while let Some(_op) = s.next_op() {
            count += 1;
        }
        assert_eq!(count, 15);
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.next_op(), None, "drained streams stay drained");
    }

    #[test]
    fn chunked_stream_residency_is_bounded_by_largest_block() {
        let mut s = ChunkedStream::new(Ramp { n: 64 });
        let total_bytes = s.remaining() as usize * TRACE_OP_BYTES;
        while s.next_op().is_some() {}
        let peak = s.peak_resident_bytes();
        assert!(peak > 0);
        assert!(
            peak <= 64 * TRACE_OP_BYTES + s.emitter().state_bytes() + 64 * TRACE_OP_BYTES,
            "peak {peak} must track the largest block, with at most a \
             doubling of slack for Vec growth"
        );
        assert!(
            peak < total_bytes / 8,
            "peak {peak} must be far below materialized size {total_bytes}"
        );
    }

    #[test]
    fn empty_emitter_yields_nothing() {
        let mut s = ChunkedStream::new(Ramp { n: 0 });
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.next_op(), None);
    }

    #[test]
    fn coalesced_refills_deliver_the_identical_op_sequence() {
        let reference = ChunkedStream::new(Ramp { n: 17 }).collect_trace();
        for chunk_ops in [0u64, 1, 2, 7, 64, u64::MAX] {
            let mut s = ChunkedStream::with_chunk_ops(Ramp { n: 17 }, chunk_ops);
            assert_eq!(s.chunk_ops(), chunk_ops.max(1));
            assert_eq!(s.remaining(), reference.len() as u64);
            assert_eq!(s.collect_trace(), reference, "chunk_ops {chunk_ops}");
            assert_eq!(s.next_op(), None);
        }
    }

    #[test]
    fn chunk_ops_one_is_exactly_the_default_stream() {
        // The opt-out case must preserve the canonical stream's residency
        // accounting byte for byte (buffer growth included): simulators
        // report peak_resident_bytes from it.
        let mut default = ChunkedStream::new(Ramp { n: 23 });
        let mut unit = ChunkedStream::with_chunk_ops(Ramp { n: 23 }, 1);
        loop {
            assert_eq!(default.resident_bytes(), unit.resident_bytes());
            assert_eq!(default.peak_resident_bytes(), unit.peak_resident_bytes());
            let (a, b) = (default.next_op(), unit.next_op());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn coalesced_residency_tracks_the_chunk_target() {
        // 64 ramp blocks: largest block is 64 ops. A 256-op chunk target
        // buffers several blocks at once, so peak residency must exceed the
        // one-block stream's, while staying near target + one block of
        // overshoot (plus Vec doubling slack).
        let mut one = ChunkedStream::new(Ramp { n: 64 });
        while one.next_op().is_some() {}
        let mut big = ChunkedStream::with_chunk_ops(Ramp { n: 64 }, 256);
        while big.next_op().is_some() {}
        assert!(big.peak_resident_bytes() > one.peak_resident_bytes());
        let bound = (2 * (256 + 64)) * TRACE_OP_BYTES + big.emitter().state_bytes();
        assert!(
            big.peak_resident_bytes() <= bound,
            "peak {} exceeds coalescing bound {bound}",
            big.peak_resident_bytes()
        );
    }

    #[test]
    fn block_slices_partition_a_stream_losslessly() {
        let whole = ChunkedStream::new(Ramp { n: 9 }).collect_trace();
        for parts in [1usize, 2, 3, 4, 9, 12] {
            let mut rejoined = Trace::new();
            let mut total = 0u64;
            for range in even_ranges(9, parts) {
                let mut shard =
                    ChunkedStream::new(BlockSlice::new(Ramp { n: 9 }, range.start, range.len()));
                total += shard.remaining();
                for op in shard.collect_trace().ops() {
                    rejoined.push(*op);
                }
            }
            assert_eq!(total, whole.len() as u64, "{parts} parts");
            assert_eq!(rejoined, whole, "{parts} parts");
        }
    }

    #[test]
    fn even_ranges_cover_contiguously_with_near_even_sizes() {
        for units in [0usize, 1, 5, 7, 16, 33] {
            for parts in [1usize, 2, 3, 8, 40] {
                let ranges = even_ranges(units, parts);
                assert_eq!(ranges.len(), parts);
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, units);
                let sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                let (min, max) = (
                    sizes.iter().min().copied().unwrap(),
                    sizes.iter().max().copied().unwrap(),
                );
                assert!(max - min <= 1, "near-even: {sizes:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn block_slice_rejects_out_of_range() {
        let _ = BlockSlice::new(Ramp { n: 3 }, 2, 2);
    }

    #[test]
    fn grid_slices_tile_a_stream_losslessly() {
        // A 4x3 grid (12 ramp blocks) cut into 2x2 rectangles must cover
        // every inner block exactly once, whatever the cut.
        let whole = ChunkedStream::new(Ramp { n: 12 }).collect_trace();
        for (row_parts, col_parts) in [(1usize, 1usize), (2, 3), (4, 1), (2, 2), (4, 3)] {
            let mut ops: Vec<TraceOp> = Vec::new();
            let mut total = 0u64;
            for rows in even_ranges(4, row_parts) {
                for cols in even_ranges(3, col_parts) {
                    let mut shard =
                        ChunkedStream::new(GridSlice::new(Ramp { n: 12 }, 3, rows.clone(), cols));
                    total += shard.remaining();
                    ops.extend(shard.collect_trace().ops());
                }
            }
            assert_eq!(total, whole.len() as u64, "{row_parts}x{col_parts}");
            // 2D shards permute block order, so compare as multisets.
            let mut got: Vec<String> = ops.iter().map(|op| format!("{op:?}")).collect();
            let mut want: Vec<String> = whole.ops().iter().map(|op| format!("{op:?}")).collect();
            got.sort();
            want.sort();
            assert_eq!(got, want, "{row_parts}x{col_parts}");
        }
    }

    #[test]
    fn full_width_grid_slice_matches_block_slice() {
        // Rows x all-columns is a contiguous range: identical op order to
        // the equivalent BlockSlice, which is what keeps 1D sharding (and
        // the 1-core path) bit-identical through the grid view.
        let grid = ChunkedStream::new(GridSlice::new(Ramp { n: 12 }, 3, 1..3, 0..3));
        let flat = ChunkedStream::new(BlockSlice::new(Ramp { n: 12 }, 3, 6));
        assert_eq!(grid.emitter().first_block(), 3);
        let mut grid = grid;
        let mut flat = flat;
        assert_eq!(grid.remaining(), flat.remaining());
        assert_eq!(grid.collect_trace(), flat.collect_trace());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn grid_slice_rejects_out_of_range() {
        let _ = GridSlice::new(Ramp { n: 12 }, 3, 0..5, 0..3);
    }

    #[test]
    fn collect_mix_counts_like_trace_mix() {
        let mut t = Trace::new();
        t.push_inst(Inst::TileZero { dst: TReg::T1 });
        t.push(TraceOp::VecFma { acc: 0, a: 1, b: 2 });
        t.push(TraceOp::Scalar { dst: 0, src: 0 });
        assert_eq!(t.stream().collect_mix(), t.mix());
    }
}
