//! Flat byte-addressable memory for the functional executor.
//!
//! A `TILE_LOAD_T`/`TILE_STORE_T` is converted into 16 cache-line (64 B)
//! requests (§V-F); the cycle-level simulator models that traffic, while this
//! functional memory just moves the bytes.

use vegeta_num::{Bf16, Matrix};
use vegeta_sparse::{MregImage, TregImage};

use crate::IsaError;

/// Cache line size in bytes; one tile-register row.
pub const CACHE_LINE_BYTES: usize = 64;

/// A flat little-endian byte memory with a bump allocator.
///
/// # Examples
///
/// ```
/// use vegeta_isa::Memory;
///
/// let mut mem = Memory::new(4096);
/// let addr = mem.alloc(128)?;
/// mem.write_bytes(addr, &[1, 2, 3])?;
/// assert_eq!(mem.read_bytes(addr, 3)?, &[1, 2, 3]);
/// # Ok::<(), vegeta_isa::IsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<u8>,
    next_free: u64,
}

impl Memory {
    /// Creates a zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        Memory {
            data: vec![0; size],
            next_free: 0,
        }
    }

    /// Size of the memory in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Reserves `bytes` of memory aligned to a cache line and returns its
    /// base address.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemoryOutOfBounds`] if the allocation does not fit.
    pub fn alloc(&mut self, bytes: usize) -> Result<u64, IsaError> {
        let aligned = self.next_free.next_multiple_of(CACHE_LINE_BYTES as u64);
        if aligned as usize + bytes > self.data.len() {
            return Err(IsaError::MemoryOutOfBounds {
                addr: aligned,
                len: bytes,
                size: self.data.len(),
            });
        }
        self.next_free = aligned + bytes as u64;
        Ok(aligned)
    }

    fn check(&self, addr: u64, len: usize) -> Result<usize, IsaError> {
        let start = addr as usize;
        if start
            .checked_add(len)
            .is_none_or(|end| end > self.data.len())
        {
            return Err(IsaError::MemoryOutOfBounds {
                addr,
                len,
                size: self.data.len(),
            });
        }
        Ok(start)
    }

    /// Borrows `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemoryOutOfBounds`] on an out-of-range access.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], IsaError> {
        let start = self.check(addr, len)?;
        Ok(&self.data[start..start + len])
    }

    /// Writes `bytes` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemoryOutOfBounds`] on an out-of-range access.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), IsaError> {
        let start = self.check(addr, bytes.len())?;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Writes a packed tile image at `addr` — the payload a later
    /// `TILE_LOAD_T` from the same address moves into a treg.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemoryOutOfBounds`] if the image does not fit.
    pub fn write_treg_image(&mut self, addr: u64, img: &TregImage) -> Result<(), IsaError> {
        self.write_bytes(addr, img.as_bytes())
    }

    /// Reads a tile image back from `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemoryOutOfBounds`] on an out-of-range access.
    pub fn read_treg_image(&self, addr: u64) -> Result<TregImage, IsaError> {
        let bytes = self.read_bytes(addr, crate::regs::TREG_BYTES)?;
        let mut img = TregImage::new();
        img.as_bytes_mut().copy_from_slice(bytes);
        Ok(img)
    }

    /// Writes the 128 B packed-metadata area of an image at `meta_addr` (a
    /// `TILE_LOAD_M` payload) and, when `rp_addr` is given, the 8 B
    /// row-pattern sidecar at `rp_addr` (a `TILE_LOAD_RP` payload).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemoryOutOfBounds`] if either area does not fit.
    pub fn write_mreg_image(
        &mut self,
        meta_addr: u64,
        rp_addr: Option<u64>,
        img: &MregImage,
    ) -> Result<(), IsaError> {
        self.write_bytes(meta_addr, img.meta())?;
        if let Some(rp) = rp_addr {
            self.write_bytes(rp, img.row_patterns())?;
        }
        Ok(())
    }

    /// Writes a BF16 matrix row-major and contiguous at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemoryOutOfBounds`] if the matrix does not fit.
    pub fn write_bf16_matrix(&mut self, addr: u64, m: &Matrix<Bf16>) -> Result<(), IsaError> {
        let mut bytes = Vec::with_capacity(m.len() * 2);
        for v in m.iter() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(addr, &bytes)
    }

    /// Reads a `rows`×`cols` BF16 matrix stored row-major at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemoryOutOfBounds`] on an out-of-range access.
    pub fn read_bf16_matrix(
        &self,
        addr: u64,
        rows: usize,
        cols: usize,
    ) -> Result<Matrix<Bf16>, IsaError> {
        let bytes = self.read_bytes(addr, rows * cols * 2)?;
        Ok(Matrix::from_fn(rows, cols, |r, c| {
            let off = (r * cols + c) * 2;
            Bf16::from_le_bytes([bytes[off], bytes[off + 1]])
        }))
    }

    /// Writes an FP32 matrix row-major and contiguous at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemoryOutOfBounds`] if the matrix does not fit.
    pub fn write_f32_matrix(&mut self, addr: u64, m: &Matrix<f32>) -> Result<(), IsaError> {
        let mut bytes = Vec::with_capacity(m.len() * 4);
        for v in m.iter() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(addr, &bytes)
    }

    /// Reads a `rows`×`cols` FP32 matrix stored row-major at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemoryOutOfBounds`] on an out-of-range access.
    pub fn read_f32_matrix(
        &self,
        addr: u64,
        rows: usize,
        cols: usize,
    ) -> Result<Matrix<f32>, IsaError> {
        let bytes = self.read_bytes(addr, rows * cols * 4)?;
        Ok(Matrix::from_fn(rows, cols, |r, c| {
            let off = (r * cols + c) * 4;
            f32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_cache_line_aligned_and_monotonic() {
        let mut mem = Memory::new(1024);
        let a = mem.alloc(10).unwrap();
        let b = mem.alloc(10).unwrap();
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
    }

    #[test]
    fn alloc_fails_when_full() {
        let mut mem = Memory::new(128);
        assert!(mem.alloc(100).is_ok());
        assert!(mem.alloc(100).is_err());
    }

    #[test]
    fn out_of_bounds_access_is_rejected() {
        let mem = Memory::new(64);
        assert!(mem.read_bytes(60, 8).is_err());
        assert!(mem.read_bytes(u64::MAX, 1).is_err());
        let mut mem = mem;
        assert!(mem.write_bytes(64, &[0]).is_err());
    }

    #[test]
    fn image_roundtrip_through_memory() {
        let mut mem = Memory::new(8192);
        let mut treg = TregImage::new();
        treg.set_bf16(7, Bf16::from_f32(9.0));
        let mut mreg = MregImage::new();
        mreg.set_position2(3, 2);
        mreg.set_row_ns(&[1, 2, 4]);
        mem.write_treg_image(0x400, &treg).unwrap();
        mem.write_mreg_image(0x800, Some(0x880), &mreg).unwrap();
        assert_eq!(mem.read_treg_image(0x400).unwrap(), treg);
        assert_eq!(mem.read_bytes(0x800, 128).unwrap(), mreg.meta());
        assert_eq!(mem.read_bytes(0x880, 8).unwrap(), mreg.row_patterns());
        // Out-of-range image writes are rejected.
        assert!(mem.write_treg_image(8192 - 16, &treg).is_err());
    }

    #[test]
    fn bf16_matrix_roundtrip() {
        let mut mem = Memory::new(4096);
        let m = Matrix::from_fn(8, 16, |r, c| Bf16::from_f32((r * 16 + c) as f32 - 60.0));
        mem.write_bf16_matrix(128, &m).unwrap();
        assert_eq!(mem.read_bf16_matrix(128, 8, 16).unwrap(), m);
    }

    #[test]
    fn f32_matrix_roundtrip() {
        let mut mem = Memory::new(4096);
        let m = Matrix::from_fn(4, 8, |r, c| (r * 8 + c) as f32 * 1.5);
        mem.write_f32_matrix(0, &m).unwrap();
        assert_eq!(mem.read_f32_matrix(0, 4, 8).unwrap(), m);
    }
}
