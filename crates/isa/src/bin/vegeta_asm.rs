//! `vegeta_asm` — assemble and run VEGETA programs from the command line.
//!
//! Usage:
//!
//! ```text
//! vegeta_asm <program.s> [--mem-kb N] [--dump-treg R] [--dump-f32 R] [--trace]
//! ```
//!
//! The program file uses the assembly syntax of `vegeta_isa::assemble` (one
//! instruction per line, `#` comments). Memory starts zeroed; programs
//! typically begin by storing constants via `tile_zero` + arithmetic or by
//! being paired with a host that pre-writes memory. On exit the tool prints
//! the executor statistics and any requested register dumps.
//!
//! Example:
//!
//! ```text
//! $ cat spmm.s
//! tile_load_u u3, [0x2000]
//! tile_load_t t4, [0x1000]
//! tile_load_m m4, [0x1400]
//! tile_zero t0
//! tile_spmm_u t0, t4, u3
//! tile_store_t [0x3000], t0
//! $ vegeta_asm spmm.s --dump-f32 0
//! ```

use std::process::ExitCode;

use vegeta_isa::{assemble, Executor, Memory, TReg};

struct Options {
    program: String,
    mem_kb: usize,
    dump_treg: Option<u8>,
    dump_f32: Option<u8>,
    trace: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        program: String::new(),
        mem_kb: 256,
        dump_treg: None,
        dump_f32: None,
        trace: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mem-kb" => {
                opts.mem_kb = args
                    .next()
                    .ok_or("--mem-kb needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --mem-kb: {e}"))?;
            }
            "--dump-treg" => {
                opts.dump_treg = Some(
                    args.next()
                        .ok_or("--dump-treg needs a register number")?
                        .parse()
                        .map_err(|e| format!("bad --dump-treg: {e}"))?,
                );
            }
            "--dump-f32" => {
                opts.dump_f32 = Some(
                    args.next()
                        .ok_or("--dump-f32 needs a register number")?
                        .parse()
                        .map_err(|e| format!("bad --dump-f32: {e}"))?,
                );
            }
            "--trace" => opts.trace = true,
            "--help" | "-h" => {
                return Err("usage: vegeta_asm <program.s> [--mem-kb N] \
                            [--dump-treg R] [--dump-f32 R] [--trace]"
                    .to_string())
            }
            other if opts.program.is_empty() && !other.starts_with('-') => {
                opts.program = other.to_string();
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.program.is_empty() {
        return Err("no program file given; try --help".to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(&opts.program)
        .map_err(|e| format!("cannot read {}: {e}", opts.program))?;
    let insts = assemble(&text).map_err(|e| e.to_string())?;
    let mut exec = Executor::new(Memory::new(opts.mem_kb * 1024));
    for (i, &inst) in insts.iter().enumerate() {
        if opts.trace {
            println!("[{i:>4}] {inst}");
        }
        exec.execute(inst)
            .map_err(|e| format!("at instruction {i} ({inst}): {e}"))?;
    }
    let stats = exec.stats();
    println!(
        "executed {} instructions ({} tile-compute), {} B loaded, {} B stored, {} effectual MACs",
        stats.instructions,
        stats.tile_compute,
        stats.bytes_loaded,
        stats.bytes_stored,
        stats.effectual_macs
    );
    if let Some(r) = opts.dump_treg {
        let t = TReg::new(r).map_err(|e| e.to_string())?;
        let m = exec.regs().treg_as_bf16(t);
        println!("treg {r} (16x32 BF16):");
        for row in 0..16 {
            let vals: Vec<String> = (0..32)
                .map(|c| format!("{:>7.2}", m[(row, c)].to_f32()))
                .collect();
            println!("  {}", vals.join(" "));
        }
    }
    if let Some(r) = opts.dump_f32 {
        let t = TReg::new(r).map_err(|e| e.to_string())?;
        let m = exec.regs().treg_as_f32(t);
        println!("treg {r} (16x16 FP32):");
        for row in 0..16 {
            let vals: Vec<String> = (0..16).map(|c| format!("{:>9.3}", m[(row, c)])).collect();
            println!("  {}", vals.join(" "));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("vegeta_asm: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
