//! Error type for ISA-level operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the VEGETA ISA layer (registers, memory, decoding,
/// functional execution).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A register index is out of range for its kind.
    InvalidRegister {
        /// Register kind prefix (`"t"`, `"u"`, `"v"`, `"m"`).
        kind: &'static str,
        /// Requested index.
        index: u8,
        /// Number of registers of this kind.
        limit: u8,
    },
    /// A memory access fell outside the allocated address space.
    MemoryOutOfBounds {
        /// Start address of the access.
        addr: u64,
        /// Length of the access in bytes.
        len: usize,
        /// Size of the memory in bytes.
        size: usize,
    },
    /// An instruction encoding could not be decoded.
    DecodeError {
        /// Human-readable description of the malformed encoding.
        reason: String,
    },
    /// An assembly line could not be parsed.
    ParseError {
        /// Human-readable description of the malformed text.
        reason: String,
    },
    /// An instruction's operands are architecturally invalid (for example,
    /// row-pattern metadata describing more rows than a `TILE_SPMM_R` result
    /// register can hold).
    InvalidOperands {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidRegister { kind, index, limit } => {
                write!(
                    f,
                    "register {kind}{index} out of range (only {limit} {kind}-registers)"
                )
            }
            IsaError::MemoryOutOfBounds { addr, len, size } => {
                write!(
                    f,
                    "memory access [{addr:#x}, {addr:#x}+{len}) outside size {size:#x}"
                )
            }
            IsaError::DecodeError { reason } => write!(f, "decode error: {reason}"),
            IsaError::ParseError { reason } => write!(f, "parse error: {reason}"),
            IsaError::InvalidOperands { reason } => write!(f, "invalid operands: {reason}"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IsaError::MemoryOutOfBounds {
            addr: 0x100,
            len: 64,
            size: 0x120,
        };
        assert!(e.to_string().contains("0x100"));
        let e = IsaError::InvalidRegister {
            kind: "t",
            index: 9,
            limit: 8,
        };
        assert_eq!(
            e.to_string(),
            "register t9 out of range (only 8 t-registers)"
        );
    }
}
