//! The VEGETA instructions of Table II.

use std::fmt;

use crate::regs::{MReg, TReg, UReg, VReg};

/// Effectual multiply-accumulates performed by one tile GEMM/SPMM
/// instruction with fully-packed operands (§IV-B: "The number of useful MAC
/// operations required to calculate C is the same ... (8192)").
pub const MACS_PER_TILE_INST: usize = 8192;

/// Instruction opcodes, stable across the binary encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Load 1 KB into a treg.
    TileLoadT = 0x01,
    /// Load 2 KB into a ureg.
    TileLoadU = 0x02,
    /// Load 4 KB into a vreg.
    TileLoadV = 0x03,
    /// Load 128 B of metadata into an mreg.
    TileLoadM = 0x04,
    /// Load 8 B of row-pattern metadata into an mreg's row-pattern field
    /// (extension for `TILE_SPMM_R`; see [`crate::regs`]).
    TileLoadRp = 0x05,
    /// Store 1 KB from a treg.
    TileStoreT = 0x06,
    /// Zero a treg (accumulator initialisation, as in Intel AMX `TILEZERO`).
    TileZero = 0x07,
    /// Dense tile GEMM: `C (16×16 f32) += A (16×32 bf16) × B (32×16 bf16)`.
    TileGemm = 0x10,
    /// 2:4 tile SPMM: `C (16×16) += A (16×64 eff.) × B (64×16)`.
    TileSpmmU = 0x11,
    /// 1:4 tile SPMM: `C (16×16) += A (16×128 eff.) × B (128×16)`.
    TileSpmmV = 0x12,
    /// Row-wise N:4 tile SPMM: `C (R×16) += A (R×64 eff.) × B (64×16)`,
    /// `R ∈ [8, 32]` derived from the row-pattern metadata.
    TileSpmmR = 0x13,
}

impl Opcode {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::TileLoadT => "tile_load_t",
            Opcode::TileLoadU => "tile_load_u",
            Opcode::TileLoadV => "tile_load_v",
            Opcode::TileLoadM => "tile_load_m",
            Opcode::TileLoadRp => "tile_load_rp",
            Opcode::TileStoreT => "tile_store_t",
            Opcode::TileZero => "tile_zero",
            Opcode::TileGemm => "tile_gemm",
            Opcode::TileSpmmU => "tile_spmm_u",
            Opcode::TileSpmmV => "tile_spmm_v",
            Opcode::TileSpmmR => "tile_spmm_r",
        }
    }

    /// Decodes an opcode byte.
    pub fn from_byte(b: u8) -> Option<Opcode> {
        Some(match b {
            0x01 => Opcode::TileLoadT,
            0x02 => Opcode::TileLoadU,
            0x03 => Opcode::TileLoadV,
            0x04 => Opcode::TileLoadM,
            0x05 => Opcode::TileLoadRp,
            0x06 => Opcode::TileStoreT,
            0x07 => Opcode::TileZero,
            0x10 => Opcode::TileGemm,
            0x11 => Opcode::TileSpmmU,
            0x12 => Opcode::TileSpmmV,
            0x13 => Opcode::TileSpmmR,
            _ => return None,
        })
    }
}

/// A reference to an architectural register, with ureg/vreg aliases expanded
/// to their constituent tregs so dependence tracking sees through aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRef {
    /// A tile register (aliases resolved to treg granularity).
    Tile(TReg),
    /// A metadata register (including its row-pattern field).
    Meta(MReg),
}

/// One VEGETA instruction (Table II).
///
/// The metadata register of the SPMM instructions is implicit: the mreg with
/// the same index as the `a` treg (Listing 1 pairs `treg3` with `mreg3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Load 1 KB from `addr` into `dst`.
    TileLoadT {
        /// Destination tile register.
        dst: TReg,
        /// Source byte address.
        addr: u64,
    },
    /// Load 2 KB from `addr` into `dst`.
    TileLoadU {
        /// Destination aliased 2 KB register.
        dst: UReg,
        /// Source byte address.
        addr: u64,
    },
    /// Load 4 KB from `addr` into `dst`.
    TileLoadV {
        /// Destination aliased 4 KB register.
        dst: VReg,
        /// Source byte address.
        addr: u64,
    },
    /// Load 128 B of metadata from `addr` into `dst`.
    TileLoadM {
        /// Destination metadata register.
        dst: MReg,
        /// Source byte address.
        addr: u64,
    },
    /// Load 8 B of row-pattern metadata from `addr` into `dst`'s sidecar.
    TileLoadRp {
        /// Destination metadata register (row-pattern field).
        dst: MReg,
        /// Source byte address.
        addr: u64,
    },
    /// Store 1 KB from `src` to `addr`.
    TileStoreT {
        /// Destination byte address.
        addr: u64,
        /// Source tile register.
        src: TReg,
    },
    /// Zero `dst`.
    TileZero {
        /// Tile register to clear.
        dst: TReg,
    },
    /// `C (dst/acc) += A × B`, all dense.
    TileGemm {
        /// Accumulator treg (read and written; 16×16 FP32).
        acc: TReg,
        /// 16×32 BF16 `A` tile.
        a: TReg,
        /// 16×32 BF16 `Bᵀ` tile.
        b: TReg,
    },
    /// `C += A × B` with 2:4-compressed `A` (metadata in `a.paired_mreg()`).
    TileSpmmU {
        /// Accumulator treg (read and written; 16×16 FP32).
        acc: TReg,
        /// Compressed 2:4 `A` values (effective 16×64).
        a: TReg,
        /// 16×64 BF16 `Bᵀ` tile.
        b: UReg,
    },
    /// `C += A × B` with 1:4-compressed `A` (metadata in `a.paired_mreg()`).
    TileSpmmV {
        /// Accumulator treg (read and written; 16×16 FP32).
        acc: TReg,
        /// Compressed 1:4 `A` values (effective 16×128).
        a: TReg,
        /// 16×128 BF16 `Bᵀ` tile.
        b: VReg,
    },
    /// `C += A × B` with row-wise N:4 compressed `A` (value metadata and row
    /// patterns in `a.paired_mreg()`).
    TileSpmmR {
        /// Accumulator ureg (read and written; R×16 FP32, R ≤ 32).
        acc: UReg,
        /// Packed row-wise `A` values (effective R×64).
        a: TReg,
        /// 16×64 BF16 `Bᵀ` tile.
        b: UReg,
    },
}

impl Inst {
    /// The instruction's opcode.
    pub fn opcode(self) -> Opcode {
        match self {
            Inst::TileLoadT { .. } => Opcode::TileLoadT,
            Inst::TileLoadU { .. } => Opcode::TileLoadU,
            Inst::TileLoadV { .. } => Opcode::TileLoadV,
            Inst::TileLoadM { .. } => Opcode::TileLoadM,
            Inst::TileLoadRp { .. } => Opcode::TileLoadRp,
            Inst::TileStoreT { .. } => Opcode::TileStoreT,
            Inst::TileZero { .. } => Opcode::TileZero,
            Inst::TileGemm { .. } => Opcode::TileGemm,
            Inst::TileSpmmU { .. } => Opcode::TileSpmmU,
            Inst::TileSpmmV { .. } => Opcode::TileSpmmV,
            Inst::TileSpmmR { .. } => Opcode::TileSpmmR,
        }
    }

    /// `true` for the tile GEMM/SPMM compute instructions.
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            Inst::TileGemm { .. }
                | Inst::TileSpmmU { .. }
                | Inst::TileSpmmV { .. }
                | Inst::TileSpmmR { .. }
        )
    }

    /// The memory footprint `(address, bytes)` of a load/store, if any.
    pub fn mem_access(self) -> Option<(u64, usize)> {
        Some(match self {
            Inst::TileLoadT { addr, .. } => (addr, crate::regs::TREG_BYTES),
            Inst::TileLoadU { addr, .. } => (addr, crate::regs::UREG_BYTES),
            Inst::TileLoadV { addr, .. } => (addr, crate::regs::VREG_BYTES),
            Inst::TileLoadM { addr, .. } => (addr, crate::regs::MREG_BYTES),
            Inst::TileLoadRp { addr, .. } => (addr, crate::regs::MREG_ROW_PATTERN_BYTES),
            Inst::TileStoreT { addr, .. } => (addr, crate::regs::TREG_BYTES),
            _ => return None,
        })
    }

    /// Architectural registers this instruction reads.
    pub fn reads(self) -> Vec<RegRef> {
        let mut v = Vec::new();
        self.visit_reads(|r| v.push(r));
        v
    }

    /// Calls `f` on each register this instruction reads, in
    /// [`Inst::reads`] order, without allocating — the form the
    /// simulator's per-instruction hot path uses.
    pub fn visit_reads(self, mut f: impl FnMut(RegRef)) {
        match self {
            Inst::TileLoadT { .. }
            | Inst::TileLoadU { .. }
            | Inst::TileLoadV { .. }
            | Inst::TileLoadM { .. }
            | Inst::TileLoadRp { .. }
            | Inst::TileZero { .. } => {}
            Inst::TileStoreT { src, .. } => f(RegRef::Tile(src)),
            Inst::TileGemm { acc, a, b } => {
                f(RegRef::Tile(acc));
                f(RegRef::Tile(a));
                f(RegRef::Tile(b));
            }
            Inst::TileSpmmU { acc, a, b } => {
                f(RegRef::Tile(acc));
                f(RegRef::Tile(a));
                f(RegRef::Meta(a.paired_mreg()));
                for t in b.tregs() {
                    f(RegRef::Tile(t));
                }
            }
            Inst::TileSpmmV { acc, a, b } => {
                f(RegRef::Tile(acc));
                f(RegRef::Tile(a));
                f(RegRef::Meta(a.paired_mreg()));
                for t in b.tregs() {
                    f(RegRef::Tile(t));
                }
            }
            Inst::TileSpmmR { acc, a, b } => {
                for t in acc.tregs() {
                    f(RegRef::Tile(t));
                }
                f(RegRef::Tile(a));
                f(RegRef::Meta(a.paired_mreg()));
                for t in b.tregs() {
                    f(RegRef::Tile(t));
                }
            }
        }
    }

    /// Architectural registers this instruction writes.
    pub fn writes(self) -> Vec<RegRef> {
        let mut v = Vec::new();
        self.visit_writes(|r| v.push(r));
        v
    }

    /// Calls `f` on each register this instruction writes, in
    /// [`Inst::writes`] order, without allocating (see
    /// [`Inst::visit_reads`]).
    pub fn visit_writes(self, mut f: impl FnMut(RegRef)) {
        match self {
            Inst::TileLoadT { dst, .. } => f(RegRef::Tile(dst)),
            Inst::TileLoadU { dst, .. } => {
                for t in dst.tregs() {
                    f(RegRef::Tile(t));
                }
            }
            Inst::TileLoadV { dst, .. } => {
                for t in dst.tregs() {
                    f(RegRef::Tile(t));
                }
            }
            Inst::TileLoadM { dst, .. } | Inst::TileLoadRp { dst, .. } => f(RegRef::Meta(dst)),
            Inst::TileStoreT { .. } => {}
            Inst::TileZero { dst } => f(RegRef::Tile(dst)),
            Inst::TileGemm { acc, .. }
            | Inst::TileSpmmU { acc, .. }
            | Inst::TileSpmmV { acc, .. } => f(RegRef::Tile(acc)),
            Inst::TileSpmmR { acc, .. } => {
                for t in acc.tregs() {
                    f(RegRef::Tile(t));
                }
            }
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.opcode().mnemonic();
        match *self {
            Inst::TileLoadT { dst, addr } => write!(f, "{m} {dst}, [{addr:#x}]"),
            Inst::TileLoadU { dst, addr } => write!(f, "{m} {dst}, [{addr:#x}]"),
            Inst::TileLoadV { dst, addr } => write!(f, "{m} {dst}, [{addr:#x}]"),
            Inst::TileLoadM { dst, addr } => write!(f, "{m} {dst}, [{addr:#x}]"),
            Inst::TileLoadRp { dst, addr } => write!(f, "{m} {dst}, [{addr:#x}]"),
            Inst::TileStoreT { addr, src } => write!(f, "{m} [{addr:#x}], {src}"),
            Inst::TileZero { dst } => write!(f, "{m} {dst}"),
            Inst::TileGemm { acc, a, b } => write!(f, "{m} {acc}, {a}, {b}"),
            Inst::TileSpmmU { acc, a, b } => write!(f, "{m} {acc}, {a}, {b}"),
            Inst::TileSpmmV { acc, a, b } => write!(f, "{m} {acc}, {a}, {b}"),
            Inst::TileSpmmR { acc, a, b } => write!(f, "{m} {acc}, {a}, {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_byte_roundtrip() {
        for op in [
            Opcode::TileLoadT,
            Opcode::TileLoadU,
            Opcode::TileLoadV,
            Opcode::TileLoadM,
            Opcode::TileLoadRp,
            Opcode::TileStoreT,
            Opcode::TileZero,
            Opcode::TileGemm,
            Opcode::TileSpmmU,
            Opcode::TileSpmmV,
            Opcode::TileSpmmR,
        ] {
            assert_eq!(Opcode::from_byte(op as u8), Some(op));
        }
        assert_eq!(Opcode::from_byte(0xFF), None);
    }

    #[test]
    fn spmm_reads_include_implicit_mreg_and_aliases() {
        let i = Inst::TileSpmmU {
            acc: TReg::T2,
            a: TReg::T3,
            b: UReg::U0,
        };
        let reads = i.reads();
        assert!(reads.contains(&RegRef::Meta(MReg::M3)));
        assert!(reads.contains(&RegRef::Tile(TReg::T0)));
        assert!(reads.contains(&RegRef::Tile(TReg::T1)));
        assert!(reads.contains(&RegRef::Tile(TReg::T2))); // acc is also read
    }

    #[test]
    fn load_v_writes_all_four_aliased_tregs() {
        let i = Inst::TileLoadV {
            dst: VReg::V1,
            addr: 0,
        };
        let writes = i.writes();
        assert_eq!(writes.len(), 4);
        assert!(writes.contains(&RegRef::Tile(TReg::T7)));
    }

    #[test]
    fn mem_access_sizes_match_register_widths() {
        assert_eq!(
            Inst::TileLoadT {
                dst: TReg::T0,
                addr: 4
            }
            .mem_access(),
            Some((4, 1024))
        );
        assert_eq!(
            Inst::TileLoadV {
                dst: VReg::V0,
                addr: 0
            }
            .mem_access(),
            Some((0, 4096))
        );
        assert_eq!(
            Inst::TileLoadM {
                dst: MReg::M0,
                addr: 8
            }
            .mem_access(),
            Some((8, 128))
        );
        assert_eq!(Inst::TileZero { dst: TReg::T0 }.mem_access(), None);
    }

    #[test]
    fn display_matches_assembler_syntax() {
        let i = Inst::TileSpmmV {
            acc: TReg::T2,
            a: TReg::T3,
            b: VReg::V0,
        };
        assert_eq!(i.to_string(), "tile_spmm_v t2, t3, v0");
        let i = Inst::TileStoreT {
            addr: 0x40,
            src: TReg::T1,
        };
        assert_eq!(i.to_string(), "tile_store_t [0x40], t1");
    }
}
