//! Dense row-major matrix container shared across the workspace.

use std::error::Error;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Error returned when constructing a [`Matrix`] from data whose length does
/// not match the requested shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixShapeError {
    rows: usize,
    cols: usize,
    len: usize,
}

impl fmt::Display for MatrixShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data length {} does not match {}x{} matrix shape",
            self.len, self.rows, self.cols
        )
    }
}

impl Error for MatrixShapeError {}

/// A dense row-major matrix.
///
/// This is the lingua franca of the workspace: workload generators produce
/// `Matrix<Bf16>` weights/inputs, the sparse compressor consumes them, and all
/// simulators check their outputs against reference `Matrix<f32>` results.
///
/// # Examples
///
/// ```
/// use vegeta_num::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as i32);
/// assert_eq!(m[(1, 2)], 5);
/// assert_eq!(m.row(1), &[3, 4, 5]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> Matrix<T> {
    /// Creates a matrix filled with `T::default()` (zeros for numeric types).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T> Matrix<T> {
    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a row-major `Vec`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, MatrixShapeError> {
        if data.len() != rows * cols {
            return Err(MatrixShapeError {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row-major view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Iterates over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Applies `f` to every element, producing a new matrix of the same shape.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl<T: Clone> Matrix<T> {
    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].clone())
    }

    /// Copies a rectangular sub-block starting at `(row0, col0)` with shape
    /// `rows x cols`, padding out-of-range elements with `fill`.
    ///
    /// Tiled kernels use this to extract 16x32-style tiles from layer matrices
    /// whose dimensions are not multiples of the tile size.
    pub fn block_padded(
        &self,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
        fill: T,
    ) -> Matrix<T> {
        Matrix::from_fn(rows, cols, |r, c| {
            let (rr, cc) = (row0 + r, col0 + c);
            if rr < self.rows && cc < self.cols {
                self[(rr, cc)].clone()
            } else {
                fill.clone()
            }
        })
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:?} ", self.data[r * self.cols + c])?;
            }
            if self.cols > 12 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 3, vec![0u8; 6]).is_ok());
        let err = Matrix::from_vec(2, 3, vec![0u8; 5]).unwrap_err();
        assert_eq!(
            err.to_string(),
            "data length 5 does not match 2x3 matrix shape"
        );
    }

    #[test]
    fn indexing_is_row_major() {
        let m = Matrix::from_fn(3, 4, |r, c| r * 10 + c);
        assert_eq!(m[(0, 0)], 0);
        assert_eq!(m[(2, 3)], 23);
        assert_eq!(m.as_slice()[7], m[(1, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let m = Matrix::<u8>::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| r * 5 + c);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn block_padded_pads_with_fill() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as i32);
        let b = m.block_padded(2, 2, 2, 2, -1);
        assert_eq!(b[(0, 0)], 8);
        assert_eq!(b[(0, 1)], -1);
        assert_eq!(b[(1, 0)], -1);
        assert_eq!(b[(1, 1)], -1);
    }

    #[test]
    fn map_preserves_shape() {
        let m = Matrix::from_fn(2, 2, |r, c| (r + c) as u32);
        let d = m.map(|&x| x as f64 * 0.5);
        assert_eq!(d.rows(), 2);
        assert_eq!(d[(1, 1)], 1.0);
    }

    #[test]
    fn rows_are_contiguous_slices() {
        let mut m = Matrix::from_fn(2, 3, |r, c| r * 3 + c);
        assert_eq!(m.row(0), &[0, 1, 2]);
        m.row_mut(1)[0] = 99;
        assert_eq!(m[(1, 0)], 99);
    }
}
