//! Mixed-precision numerics for the VEGETA reproduction.
//!
//! VEGETA (HPCA 2023) targets BF16 inputs with FP32 accumulation, the
//! mixed-precision mode used by commercial matrix engines (Intel AMX/TMUL,
//! IBM MMA, Arm SME). This crate provides:
//!
//! * [`Bf16`] — a software `bfloat16` with round-to-nearest-even conversion,
//!   matching how a hardware BF16 multiplier would quantize FP32 weights and
//!   activations.
//! * [`Matrix`] — a dense row-major container used for reference inputs and
//!   outputs throughout the workspace.
//! * [`gemm_f32`]/[`gemm_bf16_ref`] — scalar reference GEMMs against which the
//!   functional ISA executor and the cycle-accurate engine dataflow are
//!   bit-checked.
//!
//! # Examples
//!
//! ```
//! use vegeta_num::{Bf16, Matrix, gemm_bf16_ref};
//!
//! let a = Matrix::from_fn(2, 3, |r, c| Bf16::from_f32((r * 3 + c) as f32));
//! let b = Matrix::from_fn(3, 2, |r, c| Bf16::from_f32((r * 2 + c) as f32));
//! let mut c = Matrix::zeros(2, 2);
//! gemm_bf16_ref(&a, &b, &mut c);
//! assert_eq!(c[(0, 0)], 10.0);
//! ```

#![warn(missing_docs)]

mod bf16;
mod matrix;

pub use bf16::Bf16;
pub use matrix::{Matrix, MatrixShapeError};

/// Multiply-accumulate in the engine's mixed precision: `acc + a * b`
/// where the product is computed in FP32 from BF16 operands.
///
/// Every MAC unit in the VEGETA engine (dense or sparse) performs exactly
/// this operation, so all simulators in the workspace funnel through it.
#[inline]
pub fn mac_bf16(acc: f32, a: Bf16, b: Bf16) -> f32 {
    acc + a.to_f32() * b.to_f32()
}

/// Dot product of two BF16 slices with FP32 accumulation.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_bf16(a: &[Bf16], b: &[Bf16]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot product operands must match in length"
    );
    a.iter()
        .zip(b)
        .fold(0.0f32, |acc, (&x, &y)| mac_bf16(acc, x, y))
}

/// Reference FP32 GEMM: `c += a * b` on plain `f32` matrices.
///
/// Used for vector-engine baselines and high-level checks where BF16
/// quantization is not under test.
///
/// # Panics
///
/// Panics if the shapes do not conform (`a` is m×k, `b` is k×n, `c` is m×n).
pub fn gemm_f32(a: &Matrix<f32>, b: &Matrix<f32>, c: &mut Matrix<f32>) {
    assert_eq!(a.cols(), b.rows(), "inner GEMM dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "output rows must match a");
    assert_eq!(c.cols(), b.cols(), "output cols must match b");
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a[(i, k)];
            if aik == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                c[(i, j)] += aik * b[(k, j)];
            }
        }
    }
}

/// Reference mixed-precision GEMM: `c (f32) += a (bf16) * b (bf16)`.
///
/// This is the golden model for `TILE_GEMM`/`TILE_SPMM_*`: the accumulation
/// order is row-major over `k` which matches the spatio-temporal reduction
/// order of a weight-stationary systolic array column followed by the bottom
/// adder tree (FP32 addition is reordered identically in both models, keeping
/// results bit-exact between reference and dataflow simulation).
///
/// # Panics
///
/// Panics if the shapes do not conform.
pub fn gemm_bf16_ref(a: &Matrix<Bf16>, b: &Matrix<Bf16>, c: &mut Matrix<f32>) {
    assert_eq!(a.cols(), b.rows(), "inner GEMM dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "output rows must match a");
    assert_eq!(c.cols(), b.cols(), "output cols must match b");
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = c[(i, j)];
            for k in 0..a.cols() {
                acc = mac_bf16(acc, a[(i, k)], b[(k, j)]);
            }
            c[(i, j)] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_matches_f32_arithmetic_on_exact_values() {
        let a = Bf16::from_f32(3.0);
        let b = Bf16::from_f32(-2.5);
        assert_eq!(mac_bf16(1.0, a, b), 1.0 + 3.0 * -2.5);
    }

    #[test]
    fn dot_of_basis_vectors_selects_element() {
        let a: Vec<Bf16> = [0.0, 1.0, 0.0, 0.0]
            .iter()
            .map(|&x| Bf16::from_f32(x))
            .collect();
        let b: Vec<Bf16> = [9.0, 7.0, 5.0, 3.0]
            .iter()
            .map(|&x| Bf16::from_f32(x))
            .collect();
        assert_eq!(dot_bf16(&a, &b), 7.0);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn dot_rejects_mismatched_lengths() {
        let a = vec![Bf16::ZERO; 3];
        let b = vec![Bf16::ZERO; 4];
        let _ = dot_bf16(&a, &b);
    }

    #[test]
    fn gemm_f32_identity_is_noop() {
        let ident = Matrix::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        let b = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let mut c = Matrix::zeros(4, 4);
        gemm_f32(&ident, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn gemm_bf16_accumulates_into_c() {
        let a = Matrix::from_fn(2, 2, |_, _| Bf16::from_f32(1.0));
        let b = Matrix::from_fn(2, 2, |_, _| Bf16::from_f32(2.0));
        let mut c = Matrix::from_fn(2, 2, |_, _| 10.0f32);
        gemm_bf16_ref(&a, &b, &mut c);
        // each output: 10 + 1*2 + 1*2 = 14
        assert!(c.iter().all(|&x| x == 14.0));
    }

    #[test]
    fn gemm_bf16_skipping_zeros_is_exact() {
        // Multiplying by zero contributes exactly nothing — the identity that
        // justifies skipping ineffectual MACs in sparse engines.
        let mut a = Matrix::from_fn(3, 4, |r, c| Bf16::from_f32((r + c) as f32));
        a[(1, 2)] = Bf16::ZERO;
        a[(2, 0)] = Bf16::ZERO;
        let b = Matrix::from_fn(4, 3, |r, c| Bf16::from_f32((r * 3 + c) as f32 * 0.5));
        let mut dense = Matrix::zeros(3, 3);
        gemm_bf16_ref(&a, &b, &mut dense);

        // Sparse evaluation: skip zero weights explicitly.
        let mut sparse = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0f32;
                for k in 0..4 {
                    if a[(i, k)] != Bf16::ZERO {
                        acc = mac_bf16(acc, a[(i, k)], b[(k, j)]);
                    }
                }
                sparse[(i, j)] = acc;
            }
        }
        assert_eq!(dense, sparse);
    }
}
