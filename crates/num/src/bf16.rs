//! Software `bfloat16` implementation.
//!
//! BF16 keeps the 8-bit exponent of IEEE-754 binary32 and truncates the
//! mantissa to 7 bits, so a BF16 value is exactly the upper 16 bits of an
//! `f32`. Conversion from `f32` rounds to nearest-even, which is what the
//! hardware converters in AMX-class engines implement.

use std::fmt;

/// A 16-bit brain floating point number (1 sign, 8 exponent, 7 mantissa bits).
///
/// Stored as the raw upper half of the equivalent `f32` bit pattern.
/// `Bf16 -> f32` conversion is exact; `f32 -> Bf16` rounds to nearest-even.
///
/// # Examples
///
/// ```
/// use vegeta_num::Bf16;
///
/// let x = Bf16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// // 7 mantissa bits cannot represent 1.004 exactly:
/// assert_ne!(Bf16::from_f32(1.004).to_f32(), 1.004);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Smallest positive normal value (2^-126).
    pub const MIN_POSITIVE: Bf16 = Bf16(0x0080);
    /// Largest finite value (~3.39e38).
    pub const MAX: Bf16 = Bf16(0x7F7F);

    /// Creates a `Bf16` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    ///
    /// NaNs are preserved as quiet NaNs (mantissa MSB forced on) so a payload
    /// truncated to zero cannot turn a NaN into an infinity.
    #[inline]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Quiet the NaN and keep the top payload bits.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        let _ = round_bit;
        Bf16((rounded >> 16) as u16)
    }

    /// Converts to `f32` exactly (BF16 is a prefix of the f32 encoding).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Returns `true` if the value is exactly ±0.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 & 0x7FFF == 0
    }

    /// Returns `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// Little-endian byte encoding, as stored in tile registers and memory.
    #[inline]
    pub fn to_le_bytes(self) -> [u8; 2] {
        self.0.to_le_bytes()
    }

    /// Decodes from the little-endian byte encoding.
    #[inline]
    pub fn from_le_bytes(bytes: [u8; 2]) -> Self {
        Bf16(u16::from_le_bytes(bytes))
    }
}

impl From<Bf16> for f32 {
    #[inline]
    fn from(x: Bf16) -> f32 {
        x.to_f32()
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -256i32..=256 {
            let x = i as f32;
            assert_eq!(
                Bf16::from_f32(x).to_f32(),
                x,
                "integer {i} should be exact in bf16"
            );
        }
    }

    #[test]
    fn powers_of_two_roundtrip() {
        for e in -126i32..=127 {
            let x = (e as f32).exp2();
            assert_eq!(Bf16::from_f32(x).to_f32(), x);
        }
    }

    #[test]
    fn rounds_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next value
        // 1.0 + 2^-7; round-to-even keeps the even mantissa (1.0).
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(halfway).to_bits(), 0x3F80);
        // One ULP above the halfway point must round up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(above).to_bits(), 0x3F81);
        // Halfway with odd low mantissa bit rounds up to even.
        let halfway_odd = f32::from_bits(0x3F81_8000);
        assert_eq!(Bf16::from_f32(halfway_odd).to_bits(), 0x3F82);
    }

    #[test]
    fn zero_detection_handles_both_signs() {
        assert!(Bf16::from_f32(0.0).is_zero());
        assert!(Bf16::from_f32(-0.0).is_zero());
        assert!(!Bf16::from_f32(1e-30).is_zero());
    }

    #[test]
    fn nan_is_preserved_and_quieted() {
        let nan = Bf16::from_f32(f32::NAN);
        assert!(nan.is_nan());
        assert!(nan.to_f32().is_nan());
    }

    #[test]
    fn infinities_convert_exactly() {
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // Values above Bf16::MAX round up to infinity, as in hardware.
        let just_above_max = 3.4e38f32;
        assert_eq!(Bf16::from_f32(just_above_max).to_f32(), f32::INFINITY);
    }

    #[test]
    fn byte_roundtrip() {
        let x = Bf16::from_f32(-7.25);
        assert_eq!(Bf16::from_le_bytes(x.to_le_bytes()), x);
    }

    #[test]
    fn conversion_error_is_within_one_ulp() {
        // |x - bf16(x)| <= 2^-8 * |x| for normal x (half ULP of 7-bit mantissa).
        for &x in &[1.004f32, 3.21159, -2.78128, 1234.5678, 1e-3] {
            let err = (Bf16::from_f32(x).to_f32() - x).abs();
            assert!(
                err <= x.abs() * (2.0f32).powi(-8),
                "error {err} too large for {x}"
            );
        }
    }
}
