//! Property-based tests for the BF16 implementation.

use proptest::prelude::*;
use vegeta_num::{dot_bf16, Bf16, Matrix};

proptest! {
    /// bf16 -> f32 -> bf16 is the identity (the conversion is exact).
    #[test]
    fn f32_roundtrip_is_exact_for_bf16_values(bits in any::<u16>()) {
        let x = Bf16::from_bits(bits);
        if !x.is_nan() {
            prop_assert_eq!(Bf16::from_f32(x.to_f32()), x);
        }
    }

    /// Rounding error of f32 -> bf16 is at most half a ULP (2^-8 relative).
    #[test]
    fn conversion_error_bounded(x in -1e30f32..1e30) {
        let y = Bf16::from_f32(x).to_f32();
        let err = (y - x).abs();
        prop_assert!(err <= x.abs() * (2.0f32).powi(-8) + f32::MIN_POSITIVE);
    }

    /// Conversion is monotone: a <= b implies bf16(a) <= bf16(b).
    #[test]
    fn conversion_is_monotone(a in -1e30f32..1e30, b in -1e30f32..1e30) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::from_f32(lo).to_f32() <= Bf16::from_f32(hi).to_f32());
    }

    /// Negation is exact in bf16.
    #[test]
    fn negation_is_exact(x in -1e30f32..1e30) {
        let pos = Bf16::from_f32(x).to_f32();
        let neg = Bf16::from_f32(-x).to_f32();
        prop_assert_eq!(pos, -neg);
    }

    /// A dot product against a one-hot vector selects the matching element.
    #[test]
    fn dot_one_hot_selects(idx in 0usize..16, vals in proptest::collection::vec(-100f32..100.0, 16)) {
        let v: Vec<Bf16> = vals.iter().map(|&x| Bf16::from_f32(x)).collect();
        let mut hot = vec![Bf16::ZERO; 16];
        hot[idx] = Bf16::ONE;
        prop_assert_eq!(dot_bf16(&hot, &v), v[idx].to_f32());
    }

    /// Matrix transpose is an involution on arbitrary shapes.
    #[test]
    fn transpose_involution(rows in 1usize..12, cols in 1usize..12, seed in any::<u64>()) {
        let m = Matrix::from_fn(rows, cols, |r, c| (seed ^ (r as u64) << 32 ^ c as u64) as u32);
        prop_assert_eq!(m.transposed().transposed(), m);
    }
}
