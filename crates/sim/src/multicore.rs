//! Sharded multi-core simulation over a shared L2.
//!
//! VEGETA's evaluation is single-core, but its deployment story — and this
//! repository's north star — is many matrix-engine-equipped cores sharding
//! one GEMM (the scale-out setting SparseZipper and Occamy evaluate).
//! [`MultiCoreSim`] composes `n` independent [`Core`]s (private L1s, private
//! engine timers) over one coherence-free [`SharedL2`]:
//!
//! * every core consumes its own instruction stream (one GEMM shard,
//!   typically produced by `KernelSpec::shard_streams` in `vegeta-kernels`);
//! * the simulator interleaves the streams **in core-local time order** —
//!   at each step the core whose pipeline clock is furthest behind consumes
//!   its next instruction — so shared-L2 residency evolves in (approximate)
//!   global cycle order and the interleave is deterministic whatever the
//!   host;
//! * the run ends with a sync/barrier: the makespan is the slowest core's
//!   retire time plus a tree-barrier cost
//!   ([`MultiCoreConfig::barrier_latency`] per `⌈log₂ cores⌉` level;
//!   zero for a single core, which keeps `MultiCoreSim` with one core
//!   cycle-identical to [`crate::CoreSim`]).
//!
//! The result carries per-core [`SimResult`]s, the merged cache traffic
//! ([`CacheStats::merge`]) and the shared L2's hit/miss/sharing split.

use vegeta_engine::EngineConfig;
use vegeta_isa::stream::InstStream;

use crate::cache::{CacheStats, SharedL2, SharedL2Stats};
use crate::core::{Core, CoreModel, SimConfig, SimResult, PROGRESS_STRIDE};

/// Default shared-L2 capacity in 64 B lines (2 MB, the class of LLC slice
/// the §VI-B MacSim configuration assumes the data is prefetched into).
pub const DEFAULT_L2_LINES: usize = 32_768;

/// Default memory latency in core cycles for a shared-L2 miss when the
/// prefetch assumption is disabled.
pub const DEFAULT_MEM_LATENCY: u64 = 100;

/// Default per-level tree-barrier cost in core cycles (about two shared-L2
/// round trips: one line flush, one flag observation).
pub const DEFAULT_BARRIER_LATENCY: u64 = 32;

/// Configuration of a multi-core run: per-core parameters plus the shared
/// memory level and sync costs.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreConfig {
    /// Per-core configuration (front end, ROB, ports, private L1, clocks).
    pub core: SimConfig,
    /// Number of cores (≥ 1), each with a private L1 and engine.
    pub cores: usize,
    /// Shared-L2 capacity in 64 B lines.
    pub l2_lines: usize,
    /// §VI-B assumption: all data is prefetched into the shared L2, so it
    /// never misses. Disable to charge [`MultiCoreConfig::mem_latency`] on
    /// cold lines.
    pub prefetched: bool,
    /// Core cycles a shared-L2 miss costs when `prefetched` is off.
    pub mem_latency: u64,
    /// Core cycles per tree-barrier level of the end-of-shard sync
    /// (`⌈log₂ cores⌉` levels; a single core pays nothing).
    pub barrier_latency: u64,
}

impl MultiCoreConfig {
    /// A multi-core configuration with `cores` copies of the default §VI-B
    /// core and default shared-L2/barrier parameters.
    pub fn new(cores: usize) -> Self {
        Self::with_core(SimConfig::default(), cores)
    }

    /// A multi-core configuration around an explicit per-core config.
    pub fn with_core(core: SimConfig, cores: usize) -> Self {
        MultiCoreConfig {
            core,
            cores: cores.max(1),
            l2_lines: DEFAULT_L2_LINES,
            prefetched: true,
            mem_latency: DEFAULT_MEM_LATENCY,
            barrier_latency: DEFAULT_BARRIER_LATENCY,
        }
    }

    /// Core cycles the end-of-shard barrier costs at this core count.
    pub fn barrier_cycles(&self) -> u64 {
        if self.cores <= 1 {
            return 0;
        }
        let levels = usize::BITS - (self.cores - 1).leading_zeros(); // ⌈log₂ cores⌉
        self.barrier_latency * levels as u64
    }
}

/// The result of one sharded multi-core run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreResult {
    /// Cores that participated (== number of shards).
    pub cores: usize,
    /// Makespan in core cycles: the slowest core's retire time plus the
    /// end-of-shard barrier.
    pub core_cycles: u64,
    /// Core cycles of the final sync/barrier included in `core_cycles`.
    pub barrier_cycles: u64,
    /// Per-core results, in core order.
    pub per_core: Vec<SimResult>,
    /// The shared L2's hit/miss/sharing statistics.
    pub shared_l2: SharedL2Stats,
}

impl MultiCoreResult {
    /// Total dynamic instructions across all cores.
    pub fn instructions(&self) -> u64 {
        self.per_core.iter().map(|r| r.instructions).sum()
    }

    /// Total tile compute instructions across all cores.
    pub fn tile_compute(&self) -> u64 {
        self.per_core.iter().map(|r| r.tile_compute).sum()
    }

    /// Summed engine-busy cycles across all cores (aggregate engine work,
    /// not wall-clock).
    pub fn engine_busy_cycles(&self) -> u64 {
        self.per_core.iter().map(|r| r.engine_busy_cycles).sum()
    }

    /// Summed peak trace residency across all cores (every shard's stream
    /// is live concurrently).
    pub fn peak_resident_bytes(&self) -> u64 {
        self.per_core.iter().map(|r| r.peak_resident_bytes).sum()
    }

    /// Per-core cycle counts, in core order.
    pub fn per_core_cycles(&self) -> Vec<u64> {
        self.per_core.iter().map(|r| r.core_cycles).collect()
    }

    /// Aggregate cache traffic of every private L1
    /// ([`CacheStats::merge`]d).
    pub fn merged_cache(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for r in &self.per_core {
            total += &r.cache;
        }
        total
    }

    /// Parallel efficiency of this run: the mean fraction of the makespan
    /// each core spent busy, `Σ per-core cycles / (cores × makespan)`.
    /// 1.0 means perfect balance with no barrier overhead; 0.0 for a
    /// zero-cycle (empty) run.
    pub fn scaling_efficiency(&self) -> f64 {
        if self.core_cycles == 0 || self.cores == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_core.iter().map(|r| r.core_cycles).sum();
        busy as f64 / (self.cores as f64 * self.core_cycles as f64)
    }
}

/// A sharded multi-core simulator: `cores` pluggable per-core models (the
/// default is the §VI-B [`Core`]) over one [`SharedL2`].
///
/// # Example
///
/// ```
/// use vegeta_engine::EngineConfig;
/// use vegeta_isa::trace::{Trace, TraceOp};
/// use vegeta_sim::{MultiCoreConfig, MultiCoreSim};
///
/// // Two cores each replaying half of a scalar stream.
/// let mut shard = Trace::new();
/// for i in 0..64u32 {
///     shard.push(TraceOp::Scalar { dst: (i % 8) as u8, src: 0 });
/// }
/// let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
/// let res = sim.run_streams(vec![shard.stream(), shard.stream()]);
/// assert_eq!(res.cores, 2);
/// assert_eq!(res.instructions(), 128);
/// assert!(res.scaling_efficiency() > 0.5);
/// ```
#[derive(Debug)]
pub struct MultiCoreSim<C: CoreModel = Core> {
    cfg: MultiCoreConfig,
    cores: Vec<C>,
    shared_l2: SharedL2,
}

impl MultiCoreSim<Core> {
    /// A multi-core simulator whose cores all run the same matrix-engine
    /// design point (each core gets its own engine instance).
    pub fn new(cfg: MultiCoreConfig, engine: EngineConfig) -> Self {
        let cores = (0..cfg.cores)
            .map(|id| Core::new(id, cfg.core.clone(), engine.clone()))
            .collect();
        Self::with_cores(cfg, cores)
    }
}

impl<C: CoreModel> MultiCoreSim<C> {
    /// A multi-core simulator over explicit core models (the pluggable
    /// form; `cores.len()` overrides `cfg.cores`).
    pub fn with_cores(mut cfg: MultiCoreConfig, cores: Vec<C>) -> Self {
        cfg.cores = cores.len().max(1);
        let shared_l2 = SharedL2::new(cfg.l2_lines, cfg.core.l2_latency, cfg.mem_latency)
            .with_prefetched(cfg.prefetched);
        MultiCoreSim {
            cfg,
            cores,
            shared_l2,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MultiCoreConfig {
        &self.cfg
    }

    /// Runs one instruction stream per core to completion (missing streams
    /// leave their cores idle).
    ///
    /// Streams are interleaved in core-local time order: each step advances
    /// the live core whose clock is furthest behind (ties broken by core
    /// index), so the shared L2 observes accesses in approximate global
    /// cycle order and the result is deterministic.
    ///
    /// # Panics
    ///
    /// Panics when more streams than cores are supplied — silently
    /// dropping shards would report a quietly wrong (partial) result.
    pub fn run_streams<S: InstStream>(&mut self, streams: Vec<S>) -> MultiCoreResult {
        self.run_streams_with(streams, None)
    }

    /// [`MultiCoreSim::run_streams`] with a progress callback, invoked
    /// every [`PROGRESS_STRIDE`] instructions (summed across cores) and
    /// once at completion with `(instructions simulated, exact total)` —
    /// the same contract long single-core replays honour.
    pub fn run_streams_with<S: InstStream>(
        &mut self,
        streams: Vec<S>,
        mut progress: Option<&mut dyn FnMut(u64, u64)>,
    ) -> MultiCoreResult {
        let n = self.cores.len();
        assert!(
            streams.len() <= n,
            "{} shard streams for {n} cores: excess shards would be silently dropped",
            streams.len()
        );
        let mut streams = streams;
        let total: u64 = streams.iter().map(InstStream::remaining).sum();
        let mut stepped = 0u64;
        let mut live: Vec<bool> = (0..n).map(|i| i < streams.len()).collect();
        // The live core furthest behind in local time steps next.
        while let Some(i) = (0..n)
            .filter(|&i| live[i])
            .min_by_key(|&i| (self.cores[i].cycles(), i))
        {
            match streams[i].next_op() {
                Some(op) => {
                    self.cores[i].step(op, Some(&mut self.shared_l2));
                    stepped += 1;
                    if stepped.is_multiple_of(PROGRESS_STRIDE) {
                        if let Some(cb) = progress.as_deref_mut() {
                            cb(stepped, total);
                        }
                    }
                }
                None => live[i] = false,
            }
        }
        // Completion report — unless the stride loop already delivered it.
        if stepped == 0 || !stepped.is_multiple_of(PROGRESS_STRIDE) {
            if let Some(cb) = progress {
                cb(stepped, total);
            }
        }

        let per_core: Vec<SimResult> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let peak = streams
                    .get(i)
                    .map(|s| s.peak_resident_bytes() as u64)
                    .unwrap_or(0);
                core.result(peak)
            })
            .collect();
        let barrier_cycles = self.cfg.barrier_cycles();
        let slowest = per_core.iter().map(|r| r.core_cycles).max().unwrap_or(0);
        MultiCoreResult {
            cores: n,
            core_cycles: slowest + barrier_cycles,
            barrier_cycles,
            per_core,
            shared_l2: self.shared_l2.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreSim;
    use vegeta_isa::trace::{Trace, TraceOp};
    use vegeta_isa::{Inst, TReg, UReg};

    fn mixed_trace(n: usize, stride: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(TraceOp::VecLoad {
                dst: (i % 16) as u8,
                addr: i as u64 * stride,
            });
            t.push_inst(Inst::TileSpmmU {
                acc: TReg::new((i % 3) as u8).unwrap(),
                a: TReg::T6,
                b: UReg::U2,
            });
            t.push(TraceOp::Scalar { dst: 0, src: 0 });
        }
        t
    }

    #[test]
    fn single_core_multicore_matches_coresim_exactly() {
        // With one core there is no barrier and no sharing: the multi-core
        // harness must collapse to the single-core simulator, cycle for
        // cycle and stat for stat.
        let trace = mixed_trace(200, 64);
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let expected = CoreSim::with_engine(engine.clone()).run(&trace);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(1), engine);
        let got = sim.run_streams(vec![trace.stream()]);
        assert_eq!(got.barrier_cycles, 0);
        assert_eq!(got.core_cycles, expected.core_cycles);
        assert_eq!(got.per_core.len(), 1);
        assert_eq!(got.per_core[0], expected);
        assert_eq!(got.instructions(), expected.instructions);
        assert!((got.scaling_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_cores_halve_an_even_split() {
        let whole = mixed_trace(400, 64);
        let half_a = mixed_trace(200, 64);
        // Second half touches different addresses but has identical timing
        // structure.
        let mut half_b = Trace::new();
        for op in half_a.ops() {
            let shifted = match *op {
                TraceOp::VecLoad { dst, addr } => TraceOp::VecLoad {
                    dst,
                    addr: addr + (1 << 20),
                },
                other => other,
            };
            half_b.push(shifted);
        }
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let one = MultiCoreSim::new(MultiCoreConfig::new(1), engine.clone())
            .run_streams(vec![whole.stream()]);
        let two = MultiCoreSim::new(MultiCoreConfig::new(2), engine)
            .run_streams(vec![half_a.stream(), half_b.stream()]);
        assert_eq!(two.instructions(), one.instructions());
        assert!(
            two.core_cycles < one.core_cycles * 3 / 4,
            "2 cores {} vs 1 core {}",
            two.core_cycles,
            one.core_cycles
        );
        assert_eq!(two.per_core_cycles().len(), 2);
        assert!(two.scaling_efficiency() > 0.8, "balanced halves");
    }

    #[test]
    fn shared_lines_are_attributed_across_cores() {
        // Both cores stream the same addresses: every L2 touch after the
        // first core's is a shared hit.
        let t = mixed_trace(64, 64);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        let res = sim.run_streams(vec![t.stream(), t.stream()]);
        assert!(res.shared_l2.shared_hits > 0, "cross-core reuse observed");
        assert_eq!(res.shared_l2.misses, 0, "prefetched L2 never misses");
        let merged = res.merged_cache();
        assert_eq!(
            merged.l1_hits + merged.l2_hits,
            res.per_core
                .iter()
                .map(|r| r.cache.l1_hits + r.cache.l2_hits)
                .sum::<u64>()
        );
    }

    #[test]
    fn barrier_grows_logarithmically_and_is_free_for_one_core() {
        assert_eq!(MultiCoreConfig::new(1).barrier_cycles(), 0);
        let b = DEFAULT_BARRIER_LATENCY;
        assert_eq!(MultiCoreConfig::new(2).barrier_cycles(), b);
        assert_eq!(MultiCoreConfig::new(4).barrier_cycles(), 2 * b);
        assert_eq!(MultiCoreConfig::new(8).barrier_cycles(), 3 * b);
        assert_eq!(MultiCoreConfig::new(16).barrier_cycles(), 4 * b);
        assert_eq!(MultiCoreConfig::new(5).barrier_cycles(), 3 * b);
    }

    #[test]
    fn empty_run_guards_scaling_efficiency() {
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        let res = sim.run_streams(vec![Trace::new().stream(), Trace::new().stream()]);
        // Two idle cores: the barrier still costs, but no division blows up.
        assert_eq!(res.instructions(), 0);
        assert_eq!(res.scaling_efficiency(), 0.0);
        let zero = MultiCoreResult {
            cores: 0,
            core_cycles: 0,
            barrier_cycles: 0,
            per_core: Vec::new(),
            shared_l2: SharedL2Stats::default(),
        };
        assert_eq!(zero.scaling_efficiency(), 0.0);
    }

    #[test]
    fn idle_cores_are_tolerated() {
        let t = mixed_trace(32, 64);
        // 4 cores, 2 streams: cores 2/3 idle.
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(4), EngineConfig::rasa_dm());
        let res = sim.run_streams(vec![t.stream(), t.stream()]);
        assert_eq!(res.cores, 4);
        assert_eq!(res.per_core[2].instructions, 0);
        assert_eq!(res.per_core[3].core_cycles, 0);
        assert!(res.instructions() > 0);
    }

    #[test]
    #[should_panic(expected = "excess shards")]
    fn excess_streams_are_refused_not_dropped() {
        let t = mixed_trace(8, 64);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        sim.run_streams(vec![t.stream(), t.stream(), t.stream()]);
    }

    #[test]
    fn unprefetched_l2_charges_memory_latency() {
        // A load-dominated stream (an engine-bound one would hide the
        // memory time behind tile latency).
        let mut t = Trace::new();
        for i in 0..512u64 {
            t.push(TraceOp::VecLoad {
                dst: (i % 16) as u8,
                addr: i * 64,
            });
        }
        let mut cold_cfg = MultiCoreConfig::new(1);
        cold_cfg.prefetched = false;
        cold_cfg.mem_latency = 200;
        let cold =
            MultiCoreSim::new(cold_cfg, EngineConfig::rasa_dm()).run_streams(vec![t.stream()]);
        let warm = MultiCoreSim::new(MultiCoreConfig::new(1), EngineConfig::rasa_dm())
            .run_streams(vec![t.stream()]);
        assert!(cold.shared_l2.misses > 0);
        assert!(
            cold.core_cycles > warm.core_cycles,
            "cold misses must cost cycles: {} vs {}",
            cold.core_cycles,
            warm.core_cycles
        );
    }
}
