//! Sharded multi-core simulation over a shared L2, with load-aware
//! scheduling.
//!
//! VEGETA's evaluation is single-core, but its deployment story — and this
//! repository's north star — is many matrix-engine-equipped cores sharding
//! one GEMM (the scale-out setting SparseZipper and Occamy evaluate).
//! [`MultiCoreSim`] composes `n` independent [`Core`]s (private L1s, private
//! engine timers) over one coherence-free [`SharedL2`]:
//!
//! * every core consumes shard streams (rectangles of a kernel's tile-loop
//!   nest, typically produced by `KernelSpec::shard_set` /
//!   `KernelSpec::shard_streams` in `vegeta-kernels`), assigned by a
//!   [`SchedulerPolicy`];
//! * the simulator interleaves the streams **in core-local time order** —
//!   at each step the core whose pipeline clock is furthest behind consumes
//!   its next instruction — so shared-L2 residency evolves in (approximate)
//!   global cycle order and the interleave is deterministic whatever the
//!   host. The production loop is a cross-core event merge over an
//!   [`crate::EventQueue`] (one wake event per live core, ties by core
//!   index); the original linear-scan loop is retained as
//!   [`MultiCoreSim::run_sharded_stepped`] and differential tests pin the
//!   two to identical results;
//! * the run ends with a sync/barrier: the makespan is the slowest core's
//!   retire time plus a tree-barrier cost
//!   ([`MultiCoreConfig::barrier_latency`] per `⌈log₂ cores⌉` level;
//!   zero for a single core, which keeps `MultiCoreSim` with one core
//!   cycle-identical to [`crate::CoreSim`]);
//! * a K-split shard set carries a **reduction stream** that merges the
//!   shards' partial `C` images; [`MultiCoreSim::run_sharded`] replays it
//!   on core 0 *after* the barrier (deterministically — every partial has
//!   been stored by then) and reports its cost separately
//!   ([`MultiCoreResult::reduction_cycles`]).
//!
//! # Scheduler policies
//!
//! [`SchedulerPolicy::Static`] is the legacy contract: stream `i` runs on
//! core `i`, one stream per core (more streams than cores is refused).
//! [`SchedulerPolicy::Lpt`] is longest-processing-time packing: shards are
//! sorted by their **exact** op counts (shard streams declare exact
//! lengths — no cost model needed) and greedily assigned to the
//! least-loaded core, ties broken by index, so any over-decomposed shard
//! set balances even when accumulator groups are uneven. Cores drain their
//! queues back to back; with [`MultiCoreConfig::work_stealing`] an idle
//! core steals the largest not-yet-started shard from the most loaded
//! queue. Every policy is deterministic: assignment depends only on the
//! declared lengths, and the interleave only on core-local time.
//!
//! The result carries per-core [`SimResult`]s, the merged cache traffic
//! ([`CacheStats::merge`]) and the shared L2's hit/miss/sharing split;
//! cores left without work surface as [`MultiCoreResult::stranded_cores`].
//!
//! ```
//! use vegeta_engine::EngineConfig;
//! use vegeta_isa::trace::{Trace, TraceOp};
//! use vegeta_sim::{MultiCoreConfig, MultiCoreSim, SchedulerPolicy};
//!
//! // Three shards of very different lengths on two cores: LPT pairs the
//! // short ones against the long one instead of overloading core 0.
//! let shard = |n: u32| {
//!     let mut t = Trace::new();
//!     for i in 0..n {
//!         t.push(TraceOp::Scalar { dst: (i % 8) as u8, src: 0 });
//!     }
//!     t
//! };
//! let (long, short) = (shard(4096), shard(2048));
//! let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
//! let res = sim.run_sharded(
//!     vec![short.stream(), long.stream(), short.stream()],
//!     None,
//!     SchedulerPolicy::Lpt,
//! );
//! assert_eq!(res.instructions(), 8192);
//! assert_eq!(res.stranded_cores(), 0);
//! assert!(res.scaling_efficiency() > 0.9, "4096 vs 2048+2048 is balanced");
//! ```

use std::collections::VecDeque;

use vegeta_engine::EngineConfig;
use vegeta_isa::stream::InstStream;

use crate::cache::{CacheStats, SharedL2, SharedL2Stats};
use crate::core::{Core, CoreModel, SimConfig, SimResult, PROGRESS_STRIDE};
use crate::event::EventQueue;

/// Default shared-L2 capacity in 64 B lines (2 MB, the class of LLC slice
/// the §VI-B MacSim configuration assumes the data is prefetched into).
pub const DEFAULT_L2_LINES: usize = 32_768;

/// Default memory latency in core cycles for a shared-L2 miss when the
/// prefetch assumption is disabled.
pub const DEFAULT_MEM_LATENCY: u64 = 100;

/// Default per-level tree-barrier cost in core cycles (about two shared-L2
/// round trips: one line flush, one flag observation).
pub const DEFAULT_BARRIER_LATENCY: u64 = 32;

/// Configuration of a multi-core run: per-core parameters plus the shared
/// memory level and sync costs.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreConfig {
    /// Per-core configuration (front end, ROB, ports, private L1, clocks).
    pub core: SimConfig,
    /// Number of cores (≥ 1), each with a private L1 and engine.
    pub cores: usize,
    /// Shared-L2 capacity in 64 B lines.
    pub l2_lines: usize,
    /// §VI-B assumption: all data is prefetched into the shared L2, so it
    /// never misses. Disable to charge [`MultiCoreConfig::mem_latency`] on
    /// cold lines.
    pub prefetched: bool,
    /// Core cycles a shared-L2 miss costs when `prefetched` is off.
    pub mem_latency: u64,
    /// Core cycles per tree-barrier level of the end-of-shard sync
    /// (`⌈log₂ cores⌉` levels; a single core pays nothing).
    pub barrier_latency: u64,
    /// Under [`SchedulerPolicy::Lpt`], let a core whose queue drains steal
    /// the largest not-yet-started shard from another core's queue instead
    /// of idling. Off by default (pure LPT packing is already balanced for
    /// over-decomposed shard sets and keeps queues statically auditable).
    pub work_stealing: bool,
}

impl MultiCoreConfig {
    /// A multi-core configuration with `cores` copies of the default §VI-B
    /// core and default shared-L2/barrier parameters.
    pub fn new(cores: usize) -> Self {
        Self::with_core(SimConfig::default(), cores)
    }

    /// A multi-core configuration around an explicit per-core config.
    pub fn with_core(core: SimConfig, cores: usize) -> Self {
        MultiCoreConfig {
            core,
            cores: cores.max(1),
            l2_lines: DEFAULT_L2_LINES,
            prefetched: true,
            mem_latency: DEFAULT_MEM_LATENCY,
            barrier_latency: DEFAULT_BARRIER_LATENCY,
            work_stealing: false,
        }
    }

    /// Core cycles the end-of-shard barrier costs at this core count.
    pub fn barrier_cycles(&self) -> u64 {
        if self.cores <= 1 {
            return 0;
        }
        let levels = usize::BITS - (self.cores - 1).leading_zeros(); // ⌈log₂ cores⌉
        self.barrier_latency * levels as u64
    }
}

/// How shard streams are assigned to cores in a multi-core run.
///
/// Both policies are deterministic: assignment depends only on the shards'
/// declared lengths (exact op counts, not estimates) and their order, never
/// on host timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerPolicy {
    /// Stream `i` runs on core `i`, at most one stream per core. This is
    /// the legacy 1D contract: supplying more streams than cores panics
    /// rather than silently dropping work.
    Static,
    /// Longest-processing-time packing: shards are sorted by descending
    /// declared length and each is assigned to the currently least-loaded
    /// core (ties broken by lowest index). Any number of shards is
    /// accepted; cores drain their queues back to back. This is the
    /// default — with an over-decomposed shard plan (`ShardPlan` in
    /// `vegeta-kernels`), LPT keeps every core busy even when
    /// accumulator-group rows are uneven.
    #[default]
    Lpt,
}

impl SchedulerPolicy {
    /// The short lowercase label used in reports and sweep axes
    /// (`"static"` / `"lpt"`).
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerPolicy::Static => "static",
            SchedulerPolicy::Lpt => "lpt",
        }
    }

    /// Parses a report/CLI label (the inverse of
    /// [`SchedulerPolicy::label`]).
    pub fn from_label(label: &str) -> Option<SchedulerPolicy> {
        match label {
            "static" => Some(SchedulerPolicy::Static),
            "lpt" => Some(SchedulerPolicy::Lpt),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of one sharded multi-core run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreResult {
    /// Cores that participated (== number of shards).
    pub cores: usize,
    /// Makespan in core cycles: the slowest core's retire time plus the
    /// end-of-shard barrier.
    pub core_cycles: u64,
    /// Core cycles of the final sync/barrier included in `core_cycles`.
    pub barrier_cycles: u64,
    /// Core cycles of the post-barrier K-split reduction (replayed on
    /// core 0), included in `core_cycles`. Zero when the shard set carried
    /// no reduction stream.
    pub reduction_cycles: u64,
    /// Per-core results, in core order.
    pub per_core: Vec<SimResult>,
    /// The shared L2's hit/miss/sharing statistics.
    pub shared_l2: SharedL2Stats,
}

impl MultiCoreResult {
    /// Total dynamic instructions across all cores.
    pub fn instructions(&self) -> u64 {
        self.per_core.iter().map(|r| r.instructions).sum()
    }

    /// Total tile compute instructions across all cores.
    pub fn tile_compute(&self) -> u64 {
        self.per_core.iter().map(|r| r.tile_compute).sum()
    }

    /// Summed engine-busy cycles across all cores (aggregate engine work,
    /// not wall-clock).
    pub fn engine_busy_cycles(&self) -> u64 {
        self.per_core.iter().map(|r| r.engine_busy_cycles).sum()
    }

    /// Summed peak trace residency across all cores (every shard's stream
    /// is live concurrently).
    pub fn peak_resident_bytes(&self) -> u64 {
        self.per_core.iter().map(|r| r.peak_resident_bytes).sum()
    }

    /// Per-core cycle counts, in core order.
    pub fn per_core_cycles(&self) -> Vec<u64> {
        self.per_core.iter().map(|r| r.core_cycles).collect()
    }

    /// Cores that retired nothing (zero cycles) — provisioned silicon the
    /// shard plan and scheduler failed to feed. A healthy scaled-out run
    /// reports zero.
    pub fn stranded_cores(&self) -> usize {
        self.per_core.iter().filter(|r| r.core_cycles == 0).count()
    }

    /// Aggregate cache traffic of every private L1
    /// ([`CacheStats::merge`]d).
    pub fn merged_cache(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for r in &self.per_core {
            total += &r.cache;
        }
        total
    }

    /// Parallel efficiency of this run: the mean fraction of the makespan
    /// each core spent busy, `Σ per-core cycles / (cores × makespan)`.
    /// 1.0 means perfect balance with no barrier overhead; 0.0 for a
    /// zero-cycle (empty) run.
    pub fn scaling_efficiency(&self) -> f64 {
        if self.core_cycles == 0 || self.cores == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_core.iter().map(|r| r.core_cycles).sum();
        busy as f64 / (self.cores as f64 * self.core_cycles as f64)
    }
}

/// A sharded multi-core simulator: `cores` pluggable per-core models (the
/// default is the §VI-B [`Core`]) over one [`SharedL2`].
///
/// # Example
///
/// ```
/// use vegeta_engine::EngineConfig;
/// use vegeta_isa::trace::{Trace, TraceOp};
/// use vegeta_sim::{MultiCoreConfig, MultiCoreSim};
///
/// // Two cores each replaying half of a scalar stream.
/// let mut shard = Trace::new();
/// for i in 0..64u32 {
///     shard.push(TraceOp::Scalar { dst: (i % 8) as u8, src: 0 });
/// }
/// let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
/// let res = sim.run_streams(vec![shard.stream(), shard.stream()]);
/// assert_eq!(res.cores, 2);
/// assert_eq!(res.instructions(), 128);
/// assert!(res.scaling_efficiency() > 0.5);
/// ```
#[derive(Debug)]
pub struct MultiCoreSim<C: CoreModel = Core> {
    cfg: MultiCoreConfig,
    cores: Vec<C>,
    shared_l2: SharedL2,
}

impl MultiCoreSim<Core> {
    /// A multi-core simulator whose cores all run the same matrix-engine
    /// design point (each core gets its own engine instance).
    pub fn new(cfg: MultiCoreConfig, engine: EngineConfig) -> Self {
        let cores = (0..cfg.cores)
            .map(|id| Core::new(id, cfg.core.clone(), engine.clone()))
            .collect();
        Self::with_cores(cfg, cores)
    }
}

impl<C: CoreModel> MultiCoreSim<C> {
    /// A multi-core simulator over explicit core models (the pluggable
    /// form; `cores.len()` overrides `cfg.cores`).
    pub fn with_cores(mut cfg: MultiCoreConfig, cores: Vec<C>) -> Self {
        cfg.cores = cores.len().max(1);
        let shared_l2 = SharedL2::new(cfg.l2_lines, cfg.core.l2_latency, cfg.mem_latency)
            .with_prefetched(cfg.prefetched);
        MultiCoreSim {
            cfg,
            cores,
            shared_l2,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MultiCoreConfig {
        &self.cfg
    }

    /// Runs one instruction stream per core to completion (missing streams
    /// leave their cores idle) — [`MultiCoreSim::run_sharded`] under the
    /// legacy [`SchedulerPolicy::Static`] contract, with no reduction.
    ///
    /// # Panics
    ///
    /// Panics when more streams than cores are supplied — silently
    /// dropping shards would report a quietly wrong (partial) result.
    pub fn run_streams<S: InstStream>(&mut self, streams: Vec<S>) -> MultiCoreResult {
        self.run_sharded_with(streams, None, SchedulerPolicy::Static, None)
    }

    /// [`MultiCoreSim::run_streams`] with a progress callback, invoked
    /// every [`PROGRESS_STRIDE`] instructions (summed across cores) and
    /// once at completion with `(instructions simulated, exact total)` —
    /// the same contract long single-core replays honour.
    pub fn run_streams_with<S: InstStream>(
        &mut self,
        streams: Vec<S>,
        progress: Option<&mut dyn FnMut(u64, u64)>,
    ) -> MultiCoreResult {
        self.run_sharded_with(streams, None, SchedulerPolicy::Static, progress)
    }

    /// Runs a sharded workload to completion: `shards` are assigned to
    /// cores by `policy`, and the optional K-split `reduction` stream is
    /// replayed on core 0 after the barrier (every partial `C` image is
    /// globally visible by then, so the merge order is deterministic).
    ///
    /// Streams are interleaved in core-local time order: each step advances
    /// the live core whose clock is furthest behind (ties broken by core
    /// index), so the shared L2 observes accesses in approximate global
    /// cycle order and the result is deterministic. A core with several
    /// queued shards runs them back to back on its own clock.
    ///
    /// The makespan is `slowest main-phase core + barrier + reduction`.
    ///
    /// # Panics
    ///
    /// Under [`SchedulerPolicy::Static`], panics when more shards than
    /// cores are supplied (see [`MultiCoreSim::run_streams`]).
    pub fn run_sharded<S: InstStream>(
        &mut self,
        shards: Vec<S>,
        reduction: Option<S>,
        policy: SchedulerPolicy,
    ) -> MultiCoreResult {
        self.run_sharded_with(shards, reduction, policy, None)
    }

    /// [`MultiCoreSim::run_sharded`] with a progress callback (the
    /// [`MultiCoreSim::run_streams_with`] contract; reduction ops count
    /// toward the total).
    pub fn run_sharded_with<S: InstStream>(
        &mut self,
        shards: Vec<S>,
        reduction: Option<S>,
        policy: SchedulerPolicy,
        progress: Option<&mut dyn FnMut(u64, u64)>,
    ) -> MultiCoreResult {
        let queues = assign_queues(policy, &shards, self.cores.len());
        self.run_assigned(shards, queues, reduction, progress, MergeLoop::EventDriven)
    }

    /// [`MultiCoreSim::run_sharded`] driven by the retained linear-scan
    /// reference loop instead of the event merge.
    ///
    /// The scan re-derives "which live core is furthest behind" from
    /// scratch every instruction — O(cores) per step — where the event
    /// merge pops it from a [`EventQueue`]. Both must produce identical
    /// [`MultiCoreResult`]s down to the last field; this method exists so
    /// differential tests (and anyone auditing the event merge) can check
    /// that claim against the simpler loop. Use [`MultiCoreSim::run_sharded`]
    /// everywhere else.
    pub fn run_sharded_stepped<S: InstStream>(
        &mut self,
        shards: Vec<S>,
        reduction: Option<S>,
        policy: SchedulerPolicy,
    ) -> MultiCoreResult {
        let queues = assign_queues(policy, &shards, self.cores.len());
        self.run_assigned(shards, queues, reduction, None, MergeLoop::SteppedScan)
    }

    /// Drives pre-assigned per-core shard queues (plus an optional
    /// post-barrier reduction) to completion.
    fn run_assigned<S: InstStream>(
        &mut self,
        mut shards: Vec<S>,
        mut queues: Vec<VecDeque<usize>>,
        reduction: Option<S>,
        mut progress: Option<&mut dyn FnMut(u64, u64)>,
        merge: MergeLoop,
    ) -> MultiCoreResult {
        let n = self.cores.len();
        let total: u64 = shards.iter().map(InstStream::remaining).sum::<u64>()
            + reduction.as_ref().map_or(0, InstStream::remaining);
        let mut done = 0u64;
        // Shards each core has fully executed (for residency attribution).
        let mut ran: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut current: Vec<Option<usize>> = queues.iter_mut().map(VecDeque::pop_front).collect();
        if self.cfg.work_stealing {
            for c in current.iter_mut().filter(|c| c.is_none()) {
                *c = steal_largest(&shards, &mut queues);
            }
        }
        match merge {
            MergeLoop::EventDriven => {
                // One pending event per live core at its local clock; the
                // heap's (time, index) order is exactly the scan's
                // min_by_key — see `run_sharded_stepped`.
                let mut wake: EventQueue<usize> = EventQueue::with_capacity(n);
                for (i, c) in current.iter().enumerate() {
                    if c.is_some() {
                        wake.push(self.cores[i].cycles(), i);
                    }
                }
                while let Some((_, i)) = wake.pop() {
                    let s = current[i].expect("only live cores are queued");
                    match shards[s].next_op() {
                        Some(op) => {
                            self.cores[i].step(op, Some(&mut self.shared_l2));
                            done += 1;
                            if done.is_multiple_of(PROGRESS_STRIDE) {
                                if let Some(cb) = progress.as_deref_mut() {
                                    cb(done, total);
                                }
                            }
                            wake.push(self.cores[i].cycles(), i);
                        }
                        None => {
                            ran[i].push(s);
                            current[i] = queues[i].pop_front().or_else(|| {
                                if self.cfg.work_stealing {
                                    steal_largest(&shards, &mut queues)
                                } else {
                                    None
                                }
                            });
                            if current[i].is_some() {
                                // Same clock: the core continues its next
                                // queued shard with no idle gap.
                                wake.push(self.cores[i].cycles(), i);
                            }
                        }
                    }
                }
            }
            MergeLoop::SteppedScan => {
                // The live core furthest behind in local time steps next.
                while let Some(i) = (0..n)
                    .filter(|&i| current[i].is_some())
                    .min_by_key(|&i| (self.cores[i].cycles(), i))
                {
                    let s = current[i].expect("filtered on is_some");
                    match shards[s].next_op() {
                        Some(op) => {
                            self.cores[i].step(op, Some(&mut self.shared_l2));
                            done += 1;
                            if done.is_multiple_of(PROGRESS_STRIDE) {
                                if let Some(cb) = progress.as_deref_mut() {
                                    cb(done, total);
                                }
                            }
                        }
                        None => {
                            ran[i].push(s);
                            current[i] = queues[i].pop_front().or_else(|| {
                                if self.cfg.work_stealing {
                                    steal_largest(&shards, &mut queues)
                                } else {
                                    None
                                }
                            });
                        }
                    }
                }
            }
        }

        // Main phase done: record per-core retire times, then replay the
        // K-split reduction on core 0 (conceptually after the barrier).
        let main_cycles: Vec<u64> = self.cores.iter().map(CoreModel::cycles).collect();
        let slowest = main_cycles.iter().copied().max().unwrap_or(0);
        let mut reduction_cycles = 0;
        let mut reduction_peak = 0u64;
        if let Some(mut red) = reduction {
            let before = self.cores[0].cycles();
            while let Some(op) = red.next_op() {
                self.cores[0].step(op, Some(&mut self.shared_l2));
                done += 1;
                if done.is_multiple_of(PROGRESS_STRIDE) {
                    if let Some(cb) = progress.as_deref_mut() {
                        cb(done, total);
                    }
                }
            }
            reduction_cycles = self.cores[0].cycles() - before;
            reduction_peak = red.peak_resident_bytes() as u64;
        }
        // Completion report — unless the stride loop already delivered it.
        if done == 0 || !done.is_multiple_of(PROGRESS_STRIDE) {
            if let Some(cb) = progress {
                cb(done, total);
            }
        }

        let per_core: Vec<SimResult> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let mut peak: u64 = ran[i]
                    .iter()
                    .map(|&s| shards[s].peak_resident_bytes() as u64)
                    .sum();
                if i == 0 {
                    peak += reduction_peak;
                }
                core.result(peak)
            })
            .collect();
        let barrier_cycles = self.cfg.barrier_cycles();
        MultiCoreResult {
            cores: n,
            core_cycles: slowest + barrier_cycles + reduction_cycles,
            barrier_cycles,
            reduction_cycles,
            per_core,
            shared_l2: self.shared_l2.stats(),
        }
    }
}

/// Which loop drives the core-local-time interleave in
/// [`MultiCoreSim::run_assigned`]: the production event merge, or the
/// retained linear-scan reference it must match instruction for
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeLoop {
    EventDriven,
    SteppedScan,
}

/// Builds the per-core shard queues `policy` dictates (see
/// [`SchedulerPolicy`]); panics under [`SchedulerPolicy::Static`] when
/// shards outnumber cores.
fn assign_queues<S: InstStream>(
    policy: SchedulerPolicy,
    shards: &[S],
    n: usize,
) -> Vec<VecDeque<usize>> {
    match policy {
        SchedulerPolicy::Static => {
            assert!(
                shards.len() <= n,
                "{} shard streams for {n} cores: excess shards would be silently dropped",
                shards.len()
            );
            (0..n)
                .map(|i| {
                    if i < shards.len() {
                        VecDeque::from([i])
                    } else {
                        VecDeque::new()
                    }
                })
                .collect()
        }
        SchedulerPolicy::Lpt => {
            let lengths: Vec<u64> = shards.iter().map(InstStream::remaining).collect();
            lpt_queues(&lengths, n)
        }
    }
}

/// Longest-processing-time packing of shard indices onto `n` core queues:
/// descending declared length (ties by index) onto the least-loaded core
/// (ties by core index).
fn lpt_queues(lengths: &[u64], n: usize) -> Vec<VecDeque<usize>> {
    let mut order: Vec<usize> = (0..lengths.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(lengths[i]), i));
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
    let mut load = vec![0u64; n];
    for s in order {
        let c = (0..n)
            .min_by_key(|&c| (load[c], c))
            .expect("at least one core");
        load[c] += lengths[s];
        queues[c].push_back(s);
    }
    queues
}

/// Removes and returns the not-yet-started shard with the most remaining
/// ops across every queue (ties by lowest shard index), if any.
fn steal_largest<S: InstStream>(shards: &[S], queues: &mut [VecDeque<usize>]) -> Option<usize> {
    let (qi, pos, _) = queues
        .iter()
        .enumerate()
        .flat_map(|(qi, q)| q.iter().enumerate().map(move |(pos, &s)| (qi, pos, s)))
        .max_by_key(|&(_, _, s)| (shards[s].remaining(), std::cmp::Reverse(s)))?;
    queues[qi].remove(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreSim;
    use vegeta_isa::trace::{Trace, TraceOp};
    use vegeta_isa::{Inst, TReg, UReg};

    fn mixed_trace(n: usize, stride: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(TraceOp::VecLoad {
                dst: (i % 16) as u8,
                addr: i as u64 * stride,
            });
            t.push_inst(Inst::TileSpmmU {
                acc: TReg::new((i % 3) as u8).unwrap(),
                a: TReg::T6,
                b: UReg::U2,
            });
            t.push(TraceOp::Scalar { dst: 0, src: 0 });
        }
        t
    }

    #[test]
    fn single_core_multicore_matches_coresim_exactly() {
        // With one core there is no barrier and no sharing: the multi-core
        // harness must collapse to the single-core simulator, cycle for
        // cycle and stat for stat.
        let trace = mixed_trace(200, 64);
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let expected = CoreSim::with_engine(engine.clone()).run(&trace);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(1), engine);
        let got = sim.run_streams(vec![trace.stream()]);
        assert_eq!(got.barrier_cycles, 0);
        assert_eq!(got.core_cycles, expected.core_cycles);
        assert_eq!(got.per_core.len(), 1);
        assert_eq!(got.per_core[0], expected);
        assert_eq!(got.instructions(), expected.instructions);
        assert!((got.scaling_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_cores_halve_an_even_split() {
        let whole = mixed_trace(400, 64);
        let half_a = mixed_trace(200, 64);
        // Second half touches different addresses but has identical timing
        // structure.
        let mut half_b = Trace::new();
        for op in half_a.ops() {
            let shifted = match *op {
                TraceOp::VecLoad { dst, addr } => TraceOp::VecLoad {
                    dst,
                    addr: addr + (1 << 20),
                },
                other => other,
            };
            half_b.push(shifted);
        }
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let one = MultiCoreSim::new(MultiCoreConfig::new(1), engine.clone())
            .run_streams(vec![whole.stream()]);
        let two = MultiCoreSim::new(MultiCoreConfig::new(2), engine)
            .run_streams(vec![half_a.stream(), half_b.stream()]);
        assert_eq!(two.instructions(), one.instructions());
        assert!(
            two.core_cycles < one.core_cycles * 3 / 4,
            "2 cores {} vs 1 core {}",
            two.core_cycles,
            one.core_cycles
        );
        assert_eq!(two.per_core_cycles().len(), 2);
        assert!(two.scaling_efficiency() > 0.8, "balanced halves");
    }

    #[test]
    fn shared_lines_are_attributed_across_cores() {
        // Both cores stream the same addresses: every L2 touch after the
        // first core's is a shared hit.
        let t = mixed_trace(64, 64);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        let res = sim.run_streams(vec![t.stream(), t.stream()]);
        assert!(res.shared_l2.shared_hits > 0, "cross-core reuse observed");
        assert_eq!(res.shared_l2.misses, 0, "prefetched L2 never misses");
        let merged = res.merged_cache();
        assert_eq!(
            merged.l1_hits + merged.l2_hits,
            res.per_core
                .iter()
                .map(|r| r.cache.l1_hits + r.cache.l2_hits)
                .sum::<u64>()
        );
    }

    #[test]
    fn barrier_grows_logarithmically_and_is_free_for_one_core() {
        assert_eq!(MultiCoreConfig::new(1).barrier_cycles(), 0);
        let b = DEFAULT_BARRIER_LATENCY;
        assert_eq!(MultiCoreConfig::new(2).barrier_cycles(), b);
        assert_eq!(MultiCoreConfig::new(4).barrier_cycles(), 2 * b);
        assert_eq!(MultiCoreConfig::new(8).barrier_cycles(), 3 * b);
        assert_eq!(MultiCoreConfig::new(16).barrier_cycles(), 4 * b);
        assert_eq!(MultiCoreConfig::new(5).barrier_cycles(), 3 * b);
    }

    #[test]
    fn empty_run_guards_scaling_efficiency() {
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        let res = sim.run_streams(vec![Trace::new().stream(), Trace::new().stream()]);
        // Two idle cores: the barrier still costs, but no division blows up.
        assert_eq!(res.instructions(), 0);
        assert_eq!(res.scaling_efficiency(), 0.0);
        let zero = MultiCoreResult {
            cores: 0,
            core_cycles: 0,
            barrier_cycles: 0,
            reduction_cycles: 0,
            per_core: Vec::new(),
            shared_l2: SharedL2Stats::default(),
        };
        assert_eq!(zero.scaling_efficiency(), 0.0);
    }

    #[test]
    fn lpt_accepts_more_shards_than_cores_and_strands_none() {
        // 7 uneven shards on 3 cores: static would panic; LPT packs them.
        let shards: Vec<Trace> = (1..=7).map(|i| mixed_trace(8 * i, 64)).collect();
        let total_ops: u64 = shards.iter().map(|t| t.len() as u64).sum();
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(3), EngineConfig::rasa_dm());
        let res = sim.run_sharded(
            shards.iter().map(Trace::stream).collect(),
            None,
            SchedulerPolicy::Lpt,
        );
        assert_eq!(res.instructions(), total_ops);
        assert_eq!(res.stranded_cores(), 0);
        assert_eq!(res.reduction_cycles, 0);
        assert!(res.scaling_efficiency() > 0.8, "LPT balances uneven shards");
    }

    #[test]
    fn lpt_beats_static_on_unbalanced_shards() {
        // Two long + two short shards on 2 cores. Static can only take two
        // streams, so compare against the pathological pairing (long+long
        // on core 0 conceptually = run them sequentially via LPT with a
        // deliberately bad... instead: 4 shards, 2 cores). LPT pairs
        // long/short per core; a naive in-order fold pairs long/long.
        let long = mixed_trace(120, 64);
        let short = mixed_trace(30, 64);
        let engine = EngineConfig::rasa_dm();
        let lpt = MultiCoreSim::new(MultiCoreConfig::new(2), engine.clone()).run_sharded(
            vec![long.stream(), long.stream(), short.stream(), short.stream()],
            None,
            SchedulerPolicy::Lpt,
        );
        // In-order static pairing: both long shards land on core 0.
        let mut naive_a = Trace::new();
        for op in long.ops().iter().chain(long.ops()) {
            naive_a.push(*op);
        }
        let mut naive_b = Trace::new();
        for op in short.ops().iter().chain(short.ops()) {
            naive_b.push(*op);
        }
        let naive = MultiCoreSim::new(MultiCoreConfig::new(2), engine)
            .run_streams(vec![naive_a.stream(), naive_b.stream()]);
        assert_eq!(lpt.instructions(), naive.instructions());
        assert!(
            lpt.core_cycles < naive.core_cycles,
            "LPT {} vs naive pairing {}",
            lpt.core_cycles,
            naive.core_cycles
        );
    }

    #[test]
    fn lpt_is_deterministic() {
        let shards: Vec<Trace> = (1..=5).map(|i| mixed_trace(16 * i, 64)).collect();
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let run = || {
            MultiCoreSim::new(MultiCoreConfig::new(4), engine.clone()).run_sharded(
                shards.iter().map(Trace::stream).collect(),
                None,
                SchedulerPolicy::Lpt,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn work_stealing_rescues_a_mispacked_queue() {
        // LPT packs by declared op count, but tile ops run far longer than
        // scalar ops. Counts (100, 90, 50, 45, 40) pack as core 0 ←
        // {100, 45} and core 1 ← {90, 50-tile, 40}: core 1's tile shard
        // dominates the makespan while the trailing 40-op shard sits
        // unstarted behind it. A stealing core 0 takes it off the queue.
        let scalar = |n: usize| {
            let mut t = Trace::new();
            for i in 0..n {
                t.push(TraceOp::Scalar {
                    dst: (i % 8) as u8,
                    src: 0,
                });
            }
            t
        };
        let tiles = {
            let mut t = Trace::new();
            for i in 0..50 {
                t.push_inst(Inst::TileSpmmU {
                    acc: TReg::new((i % 3) as u8).unwrap(),
                    a: TReg::T6,
                    b: UReg::U2,
                });
            }
            t
        };
        let shards = [scalar(100), scalar(90), tiles, scalar(45), scalar(40)];
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let packed = MultiCoreSim::new(MultiCoreConfig::new(2), engine.clone()).run_sharded(
            shards.iter().map(Trace::stream).collect(),
            None,
            SchedulerPolicy::Lpt,
        );
        let mut steal_cfg = MultiCoreConfig::new(2);
        steal_cfg.work_stealing = true;
        let stolen = MultiCoreSim::new(steal_cfg, engine).run_sharded(
            shards.iter().map(Trace::stream).collect(),
            None,
            SchedulerPolicy::Lpt,
        );
        assert_eq!(stolen.instructions(), packed.instructions());
        assert!(
            stolen.core_cycles < packed.core_cycles,
            "stealing {} vs packed {}",
            stolen.core_cycles,
            packed.core_cycles
        );
    }

    #[test]
    fn reduction_runs_after_the_barrier_on_core_zero() {
        let shard = mixed_trace(40, 64);
        let reduction = mixed_trace(16, 128);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        let res = sim.run_sharded(
            vec![shard.stream(), shard.stream()],
            Some(reduction.stream()),
            SchedulerPolicy::Lpt,
        );
        assert!(res.reduction_cycles > 0);
        assert_eq!(
            res.instructions(),
            (2 * shard.len() + reduction.len()) as u64,
            "reduction ops are attributed to core 0"
        );
        // Makespan covers barrier and reduction on top of the main phase.
        let no_red = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm())
            .run_sharded(
                vec![shard.stream(), shard.stream()],
                None,
                SchedulerPolicy::Lpt,
            );
        assert_eq!(res.core_cycles, no_red.core_cycles + res.reduction_cycles);
    }

    #[test]
    fn event_merge_matches_the_stepped_scan_reference() {
        // The event-driven merge and the retained linear scan must agree on
        // every field of the result — policies, stealing, reduction and
        // ragged shard mixes included.
        let shards: Vec<Trace> = (1..=6).map(|i| mixed_trace(12 * i, 64)).collect();
        let reduction = mixed_trace(20, 128);
        let engine = EngineConfig::vegeta_s(16).unwrap();
        for policy in [SchedulerPolicy::Static, SchedulerPolicy::Lpt] {
            for stealing in [false, true] {
                // Static refuses more shards than cores.
                let take = if policy == SchedulerPolicy::Static {
                    3
                } else {
                    6
                };
                let mut cfg = MultiCoreConfig::new(3);
                cfg.work_stealing = stealing;
                let event = MultiCoreSim::new(cfg.clone(), engine.clone()).run_sharded(
                    shards[..take].iter().map(Trace::stream).collect(),
                    Some(reduction.stream()),
                    policy,
                );
                let stepped = MultiCoreSim::new(cfg, engine.clone()).run_sharded_stepped(
                    shards[..take].iter().map(Trace::stream).collect(),
                    Some(reduction.stream()),
                    policy,
                );
                assert_eq!(event, stepped, "policy {policy}, stealing {stealing}");
            }
        }
    }

    #[test]
    fn static_policy_via_run_sharded_matches_run_streams() {
        let a = mixed_trace(50, 64);
        let b = mixed_trace(30, 64);
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let legacy = MultiCoreSim::new(MultiCoreConfig::new(2), engine.clone())
            .run_streams(vec![a.stream(), b.stream()]);
        let sharded = MultiCoreSim::new(MultiCoreConfig::new(2), engine).run_sharded(
            vec![a.stream(), b.stream()],
            None,
            SchedulerPolicy::Static,
        );
        assert_eq!(legacy, sharded);
    }

    #[test]
    fn scheduler_labels_round_trip() {
        for p in [SchedulerPolicy::Static, SchedulerPolicy::Lpt] {
            assert_eq!(SchedulerPolicy::from_label(p.label()), Some(p));
        }
        assert_eq!(SchedulerPolicy::from_label("fifo"), None);
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Lpt);
        assert_eq!(SchedulerPolicy::Lpt.to_string(), "lpt");
    }

    #[test]
    fn idle_cores_are_tolerated() {
        let t = mixed_trace(32, 64);
        // 4 cores, 2 streams: cores 2/3 idle.
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(4), EngineConfig::rasa_dm());
        let res = sim.run_streams(vec![t.stream(), t.stream()]);
        assert_eq!(res.cores, 4);
        assert_eq!(res.per_core[2].instructions, 0);
        assert_eq!(res.per_core[3].core_cycles, 0);
        assert!(res.instructions() > 0);
    }

    #[test]
    #[should_panic(expected = "excess shards")]
    fn excess_streams_are_refused_not_dropped() {
        let t = mixed_trace(8, 64);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        sim.run_streams(vec![t.stream(), t.stream(), t.stream()]);
    }

    #[test]
    fn unprefetched_l2_charges_memory_latency() {
        // A load-dominated stream (an engine-bound one would hide the
        // memory time behind tile latency).
        let mut t = Trace::new();
        for i in 0..512u64 {
            t.push(TraceOp::VecLoad {
                dst: (i % 16) as u8,
                addr: i * 64,
            });
        }
        let mut cold_cfg = MultiCoreConfig::new(1);
        cold_cfg.prefetched = false;
        cold_cfg.mem_latency = 200;
        let cold =
            MultiCoreSim::new(cold_cfg, EngineConfig::rasa_dm()).run_streams(vec![t.stream()]);
        let warm = MultiCoreSim::new(MultiCoreConfig::new(1), EngineConfig::rasa_dm())
            .run_streams(vec![t.stream()]);
        assert!(cold.shared_l2.misses > 0);
        assert!(
            cold.core_cycles > warm.core_cycles,
            "cold misses must cost cycles: {} vs {}",
            cold.core_cycles,
            warm.core_cycles
        );
    }
}
