//! Sharded multi-core simulation over a shared L2, with load-aware
//! scheduling.
//!
//! VEGETA's evaluation is single-core, but its deployment story — and this
//! repository's north star — is many matrix-engine-equipped cores sharding
//! one GEMM (the scale-out setting SparseZipper and Occamy evaluate).
//! [`MultiCoreSim`] composes `n` independent [`Core`]s (private L1s, private
//! engine timers) over one coherence-free [`SharedL2`]:
//!
//! * every core consumes shard streams (rectangles of a kernel's tile-loop
//!   nest, typically produced by `KernelSpec::shard_set` /
//!   `KernelSpec::shard_streams` in `vegeta-kernels`), assigned by a
//!   [`SchedulerPolicy`];
//! * the simulator interleaves the streams **in core-local time order** —
//!   at each step the core whose pipeline clock is furthest behind consumes
//!   its next instruction — so shared-L2 residency evolves in (approximate)
//!   global cycle order and the interleave is deterministic whatever the
//!   host. The production loop is a cross-core event merge over an
//!   [`crate::EventQueue`] (one wake event per live core, ties by core
//!   index); the original linear-scan loop is retained as
//!   [`MultiCoreSim::run_sharded_stepped`] and differential tests pin the
//!   two to identical results;
//! * the run ends with a sync/barrier: the makespan is the slowest core's
//!   retire time plus a tree-barrier cost
//!   ([`MultiCoreConfig::barrier_latency`] per `⌈log₂ cores⌉` level;
//!   zero for a single core, which keeps `MultiCoreSim` with one core
//!   cycle-identical to [`crate::CoreSim`]);
//! * a K-split shard set carries a **reduction stream** that merges the
//!   shards' partial `C` images; [`MultiCoreSim::run_sharded`] replays it
//!   on core 0 *after* the barrier (deterministically — every partial has
//!   been stored by then) and reports its cost separately
//!   ([`MultiCoreResult::reduction_cycles`]).
//!
//! # Scheduler policies
//!
//! [`SchedulerPolicy::Static`] is the legacy contract: stream `i` runs on
//! core `i`, one stream per core (more streams than cores is refused).
//! [`SchedulerPolicy::Lpt`] is longest-processing-time packing: shards are
//! sorted by their **exact** op counts (shard streams declare exact
//! lengths — no cost model needed) and greedily assigned to the
//! least-loaded core, ties broken by index, so any over-decomposed shard
//! set balances even when accumulator groups are uneven. Cores drain their
//! queues back to back; with [`MultiCoreConfig::work_stealing`] an idle
//! core steals the largest not-yet-started shard from the most loaded
//! queue. Every policy is deterministic: assignment depends only on the
//! declared lengths, and the interleave only on core-local time.
//!
//! The result carries per-core [`SimResult`]s, the merged cache traffic
//! ([`CacheStats::merge`]) and the shared L2's hit/miss/sharing split;
//! cores left without work surface as [`MultiCoreResult::stranded_cores`].
//!
//! ```
//! use vegeta_engine::EngineConfig;
//! use vegeta_isa::trace::{Trace, TraceOp};
//! use vegeta_sim::{MultiCoreConfig, MultiCoreSim, SchedulerPolicy};
//!
//! // Three shards of very different lengths on two cores: LPT pairs the
//! // short ones against the long one instead of overloading core 0.
//! let shard = |n: u32| {
//!     let mut t = Trace::new();
//!     for i in 0..n {
//!         t.push(TraceOp::Scalar { dst: (i % 8) as u8, src: 0 });
//!     }
//!     t
//! };
//! let (long, short) = (shard(4096), shard(2048));
//! let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
//! let res = sim.run_sharded(
//!     vec![short.stream(), long.stream(), short.stream()],
//!     None,
//!     SchedulerPolicy::Lpt,
//! );
//! assert_eq!(res.instructions(), 8192);
//! assert_eq!(res.stranded_cores(), 0);
//! assert!(res.scaling_efficiency() > 0.9, "4096 vs 2048+2048 is balanced");
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use vegeta_engine::EngineConfig;
use vegeta_isa::stream::InstStream;

use crate::cache::{CacheStats, L2LogEntry, SharedL2, SharedL2Stats};
use crate::core::{Core, CoreModel, SimConfig, SimResult, PROGRESS_STRIDE};
use crate::event::EventQueue;

/// Default shared-L2 capacity in 64 B lines (2 MB, the class of LLC slice
/// the §VI-B MacSim configuration assumes the data is prefetched into).
pub const DEFAULT_L2_LINES: usize = 32_768;

/// Default memory latency in core cycles for a shared-L2 miss when the
/// prefetch assumption is disabled.
pub const DEFAULT_MEM_LATENCY: u64 = 100;

/// Default per-level tree-barrier cost in core cycles (about two shared-L2
/// round trips: one line flush, one flag observation).
pub const DEFAULT_BARRIER_LATENCY: u64 = 32;

/// Environment variable forcing the host-thread count of every multi-core
/// run, overriding [`MultiCoreConfig::exec`] (`VEGETA_HOST_THREADS`). A
/// value of `1` pins the sequential path — the CI leg that keeps the
/// fallback honest; invalid values are ignored rather than guessed at.
pub const HOST_THREADS_ENV: &str = "VEGETA_HOST_THREADS";

/// Entries per log chunk a parallel worker hands the merger: at 24 B per
/// [`L2LogEntry`] a chunk is ~192 KB, and with the bounded channel depth a
/// worker never holds more than a few chunks in flight — the same bounded-
/// residency discipline `vegeta-isa`'s chunked streams apply to traces.
const L2_LOG_CHUNK: usize = 8192;

/// Chunks a worker may have queued to the merger before its `send` blocks.
const L2_LOG_CHANNEL_DEPTH: usize = 2;

/// How a multi-core run uses *host* threads (simulated-core timing is
/// never affected — the parallel path is proven bit-identical to the
/// sequential event merge by `sim/tests/parallel_vs_event.rs`).
///
/// The parallel path requires the per-core timelines to be provably
/// independent of the cross-core interleave: `prefetched` on (every
/// shared-L2 lookup costs the same flat latency) and `work_stealing` off
/// (assignment fixed before the run). Outside that envelope every mode
/// falls back to the sequential event merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Use up to `std::thread::available_parallelism()` host threads when
    /// the parallel path is eligible; sequential otherwise. The default.
    #[default]
    Auto,
    /// Always the single-threaded event merge.
    Sequential,
    /// Use up to `n` host threads (clamped to the simulated core count;
    /// `0` and `1` both mean sequential). Callers sharing a host-thread
    /// budget across concurrent runs (sweep grids, serving pools) pass
    /// their per-run slice here so the host is not oversubscribed.
    ParallelHost(usize),
}

/// Configuration of a multi-core run: per-core parameters plus the shared
/// memory level and sync costs.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreConfig {
    /// Per-core configuration (front end, ROB, ports, private L1, clocks).
    pub core: SimConfig,
    /// Number of cores (≥ 1), each with a private L1 and engine.
    pub cores: usize,
    /// Shared-L2 capacity in 64 B lines.
    pub l2_lines: usize,
    /// §VI-B assumption: all data is prefetched into the shared L2, so it
    /// never misses. Disable to charge [`MultiCoreConfig::mem_latency`] on
    /// cold lines.
    pub prefetched: bool,
    /// Core cycles a shared-L2 miss costs when `prefetched` is off.
    pub mem_latency: u64,
    /// Core cycles per tree-barrier level of the end-of-shard sync
    /// (`⌈log₂ cores⌉` levels; a single core pays nothing).
    pub barrier_latency: u64,
    /// Under [`SchedulerPolicy::Lpt`], let a core whose queue drains steal
    /// the largest not-yet-started shard from another core's queue instead
    /// of idling. Off by default (pure LPT packing is already balanced for
    /// over-decomposed shard sets and keeps queues statically auditable).
    pub work_stealing: bool,
    /// Host-thread policy of the run (simulated results are identical in
    /// every mode); see [`ExecMode`].
    pub exec: ExecMode,
}

impl MultiCoreConfig {
    /// A multi-core configuration with `cores` copies of the default §VI-B
    /// core and default shared-L2/barrier parameters.
    pub fn new(cores: usize) -> Self {
        Self::with_core(SimConfig::default(), cores)
    }

    /// A multi-core configuration around an explicit per-core config.
    pub fn with_core(core: SimConfig, cores: usize) -> Self {
        MultiCoreConfig {
            core,
            cores: cores.max(1),
            l2_lines: DEFAULT_L2_LINES,
            prefetched: true,
            mem_latency: DEFAULT_MEM_LATENCY,
            barrier_latency: DEFAULT_BARRIER_LATENCY,
            work_stealing: false,
            exec: ExecMode::Auto,
        }
    }

    /// Sets the host-thread policy (builder form).
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// The host-thread count this configuration resolves to, in `1..=cores`:
    /// a valid positive [`HOST_THREADS_ENV`] overrides everything, else
    /// [`MultiCoreConfig::exec`] decides ([`ExecMode::Auto`] caps at
    /// `std::thread::available_parallelism()`). A result of 1 means the
    /// sequential event merge.
    pub fn resolved_host_threads(&self) -> usize {
        let from_env = std::env::var(HOST_THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let requested = from_env.unwrap_or_else(|| match self.exec {
            ExecMode::Sequential => 1,
            ExecMode::ParallelHost(n) => n.max(1),
            ExecMode::Auto => {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
        });
        requested.min(self.cores.max(1)).max(1)
    }

    /// Core cycles the end-of-shard barrier costs at this core count.
    pub fn barrier_cycles(&self) -> u64 {
        if self.cores <= 1 {
            return 0;
        }
        let levels = usize::BITS - (self.cores - 1).leading_zeros(); // ⌈log₂ cores⌉
        self.barrier_latency * levels as u64
    }
}

/// How shard streams are assigned to cores in a multi-core run.
///
/// Both policies are deterministic: assignment depends only on the shards'
/// declared lengths (exact op counts, not estimates) and their order, never
/// on host timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerPolicy {
    /// Stream `i` runs on core `i`, at most one stream per core. This is
    /// the legacy 1D contract: supplying more streams than cores panics
    /// rather than silently dropping work.
    Static,
    /// Longest-processing-time packing: shards are sorted by descending
    /// declared length and each is assigned to the currently least-loaded
    /// core (ties broken by lowest index). Any number of shards is
    /// accepted; cores drain their queues back to back. This is the
    /// default — with an over-decomposed shard plan (`ShardPlan` in
    /// `vegeta-kernels`), LPT keeps every core busy even when
    /// accumulator-group rows are uneven.
    #[default]
    Lpt,
}

impl SchedulerPolicy {
    /// The short lowercase label used in reports and sweep axes
    /// (`"static"` / `"lpt"`).
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerPolicy::Static => "static",
            SchedulerPolicy::Lpt => "lpt",
        }
    }

    /// Parses a report/CLI label (the inverse of
    /// [`SchedulerPolicy::label`]).
    pub fn from_label(label: &str) -> Option<SchedulerPolicy> {
        match label {
            "static" => Some(SchedulerPolicy::Static),
            "lpt" => Some(SchedulerPolicy::Lpt),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of one sharded multi-core run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreResult {
    /// Cores that participated (== number of shards).
    pub cores: usize,
    /// Makespan in core cycles: the slowest core's retire time plus the
    /// end-of-shard barrier.
    pub core_cycles: u64,
    /// Core cycles of the final sync/barrier included in `core_cycles`.
    pub barrier_cycles: u64,
    /// Core cycles of the post-barrier K-split reduction (replayed on
    /// core 0), included in `core_cycles`. Zero when the shard set carried
    /// no reduction stream.
    pub reduction_cycles: u64,
    /// Per-core results, in core order.
    pub per_core: Vec<SimResult>,
    /// The shared L2's hit/miss/sharing statistics.
    pub shared_l2: SharedL2Stats,
}

impl MultiCoreResult {
    /// Total dynamic instructions across all cores.
    pub fn instructions(&self) -> u64 {
        self.per_core.iter().map(|r| r.instructions).sum()
    }

    /// Total tile compute instructions across all cores.
    pub fn tile_compute(&self) -> u64 {
        self.per_core.iter().map(|r| r.tile_compute).sum()
    }

    /// Summed engine-busy cycles across all cores (aggregate engine work,
    /// not wall-clock).
    pub fn engine_busy_cycles(&self) -> u64 {
        self.per_core.iter().map(|r| r.engine_busy_cycles).sum()
    }

    /// Summed peak trace residency across all cores (every shard's stream
    /// is live concurrently).
    pub fn peak_resident_bytes(&self) -> u64 {
        self.per_core.iter().map(|r| r.peak_resident_bytes).sum()
    }

    /// Per-core cycle counts, in core order.
    pub fn per_core_cycles(&self) -> Vec<u64> {
        self.per_core.iter().map(|r| r.core_cycles).collect()
    }

    /// Cores that retired nothing (zero cycles) — provisioned silicon the
    /// shard plan and scheduler failed to feed. A healthy scaled-out run
    /// reports zero.
    pub fn stranded_cores(&self) -> usize {
        self.per_core.iter().filter(|r| r.core_cycles == 0).count()
    }

    /// Aggregate cache traffic of every private L1
    /// ([`CacheStats::merge`]d).
    pub fn merged_cache(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for r in &self.per_core {
            total += &r.cache;
        }
        total
    }

    /// Parallel efficiency of this run: the mean fraction of the makespan
    /// each core spent busy, `Σ per-core cycles / (cores × makespan)`.
    /// 1.0 means perfect balance with no barrier overhead; 0.0 for a
    /// zero-cycle (empty) run.
    pub fn scaling_efficiency(&self) -> f64 {
        if self.core_cycles == 0 || self.cores == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_core.iter().map(|r| r.core_cycles).sum();
        busy as f64 / (self.cores as f64 * self.core_cycles as f64)
    }
}

/// A sharded multi-core simulator: `cores` pluggable per-core models (the
/// default is the §VI-B [`Core`]) over one [`SharedL2`].
///
/// # Example
///
/// ```
/// use vegeta_engine::EngineConfig;
/// use vegeta_isa::trace::{Trace, TraceOp};
/// use vegeta_sim::{MultiCoreConfig, MultiCoreSim};
///
/// // Two cores each replaying half of a scalar stream.
/// let mut shard = Trace::new();
/// for i in 0..64u32 {
///     shard.push(TraceOp::Scalar { dst: (i % 8) as u8, src: 0 });
/// }
/// let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
/// let res = sim.run_streams(vec![shard.stream(), shard.stream()]);
/// assert_eq!(res.cores, 2);
/// assert_eq!(res.instructions(), 128);
/// assert!(res.scaling_efficiency() > 0.5);
/// ```
#[derive(Debug)]
pub struct MultiCoreSim<C: CoreModel = Core> {
    cfg: MultiCoreConfig,
    cores: Vec<C>,
    shared_l2: SharedL2,
}

impl MultiCoreSim<Core> {
    /// A multi-core simulator whose cores all run the same matrix-engine
    /// design point (each core gets its own engine instance).
    pub fn new(cfg: MultiCoreConfig, engine: EngineConfig) -> Self {
        let cores = (0..cfg.cores)
            .map(|id| Core::new(id, cfg.core.clone(), engine.clone()))
            .collect();
        Self::with_cores(cfg, cores)
    }
}

impl<C: CoreModel> MultiCoreSim<C> {
    /// A multi-core simulator over explicit core models (the pluggable
    /// form; `cores.len()` overrides `cfg.cores`).
    pub fn with_cores(mut cfg: MultiCoreConfig, cores: Vec<C>) -> Self {
        cfg.cores = cores.len().max(1);
        let shared_l2 = SharedL2::new(cfg.l2_lines, cfg.core.l2_latency, cfg.mem_latency)
            .with_prefetched(cfg.prefetched);
        MultiCoreSim {
            cfg,
            cores,
            shared_l2,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MultiCoreConfig {
        &self.cfg
    }

    /// Runs one instruction stream per core to completion (missing streams
    /// leave their cores idle) — [`MultiCoreSim::run_sharded`] under the
    /// legacy [`SchedulerPolicy::Static`] contract, with no reduction.
    ///
    /// # Panics
    ///
    /// Panics when more streams than cores are supplied — silently
    /// dropping shards would report a quietly wrong (partial) result.
    pub fn run_streams<S: InstStream + Send>(&mut self, streams: Vec<S>) -> MultiCoreResult
    where
        C: Send,
    {
        self.run_sharded_with(streams, None, SchedulerPolicy::Static, None)
    }

    /// [`MultiCoreSim::run_streams`] with a progress callback, invoked
    /// every [`PROGRESS_STRIDE`] instructions (summed across cores) and
    /// once at completion with `(instructions simulated, exact total)` —
    /// the same contract long single-core replays honour.
    pub fn run_streams_with<S: InstStream + Send>(
        &mut self,
        streams: Vec<S>,
        progress: Option<&mut dyn FnMut(u64, u64)>,
    ) -> MultiCoreResult
    where
        C: Send,
    {
        self.run_sharded_with(streams, None, SchedulerPolicy::Static, progress)
    }

    /// Runs a sharded workload to completion: `shards` are assigned to
    /// cores by `policy`, and the optional K-split `reduction` stream is
    /// replayed on core 0 after the barrier (every partial `C` image is
    /// globally visible by then, so the merge order is deterministic).
    ///
    /// Streams are interleaved in core-local time order: each step advances
    /// the live core whose clock is furthest behind (ties broken by core
    /// index), so the shared L2 observes accesses in approximate global
    /// cycle order and the result is deterministic. A core with several
    /// queued shards runs them back to back on its own clock.
    ///
    /// The makespan is `slowest main-phase core + barrier + reduction`.
    ///
    /// When [`MultiCoreConfig::exec`] (or [`HOST_THREADS_ENV`]) resolves
    /// to more than one host thread *and* the run is interleave-
    /// independent (`prefetched` on, `work_stealing` off, more than one
    /// core), the main phase executes host-parallel with a deterministic
    /// shared-L2 log replay; the result is bit-identical either way.
    ///
    /// # Panics
    ///
    /// Under [`SchedulerPolicy::Static`], panics when more shards than
    /// cores are supplied (see [`MultiCoreSim::run_streams`]).
    pub fn run_sharded<S: InstStream + Send>(
        &mut self,
        shards: Vec<S>,
        reduction: Option<S>,
        policy: SchedulerPolicy,
    ) -> MultiCoreResult
    where
        C: Send,
    {
        self.run_sharded_with(shards, reduction, policy, None)
    }

    /// [`MultiCoreSim::run_sharded`] with a progress callback (the
    /// [`MultiCoreSim::run_streams_with`] contract; reduction ops count
    /// toward the total). The callback observes the same `(done, total)`
    /// sequence in every [`ExecMode`].
    pub fn run_sharded_with<S: InstStream + Send>(
        &mut self,
        shards: Vec<S>,
        reduction: Option<S>,
        policy: SchedulerPolicy,
        progress: Option<&mut dyn FnMut(u64, u64)>,
    ) -> MultiCoreResult
    where
        C: Send,
    {
        let queues = assign_queues(policy, &shards, self.cores.len());
        let host_threads = self.cfg.resolved_host_threads();
        // Eligibility for the parallel path: the per-core timelines must
        // be provably independent of the cross-core interleave. Prefetch
        // makes every shared-L2 latency a constant; stealing off makes
        // the shard assignment static. Otherwise: sequential fallback.
        if host_threads > 1
            && self.cfg.prefetched
            && !self.cfg.work_stealing
            && self.cores.len() > 1
        {
            self.run_parallel(shards, queues, reduction, progress, host_threads)
        } else {
            self.run_assigned(shards, queues, reduction, progress, MergeLoop::EventDriven)
        }
    }

    /// [`MultiCoreSim::run_sharded`] driven by the retained linear-scan
    /// reference loop instead of the event merge.
    ///
    /// The scan re-derives "which live core is furthest behind" from
    /// scratch every instruction — O(cores) per step — where the event
    /// merge pops it from a [`EventQueue`]. Both must produce identical
    /// [`MultiCoreResult`]s down to the last field; this method exists so
    /// differential tests (and anyone auditing the event merge) can check
    /// that claim against the simpler loop. Use [`MultiCoreSim::run_sharded`]
    /// everywhere else.
    pub fn run_sharded_stepped<S: InstStream>(
        &mut self,
        shards: Vec<S>,
        reduction: Option<S>,
        policy: SchedulerPolicy,
    ) -> MultiCoreResult {
        let queues = assign_queues(policy, &shards, self.cores.len());
        self.run_assigned(shards, queues, reduction, None, MergeLoop::SteppedScan)
    }

    /// Drives pre-assigned per-core shard queues (plus an optional
    /// post-barrier reduction) to completion.
    fn run_assigned<S: InstStream>(
        &mut self,
        mut shards: Vec<S>,
        mut queues: Vec<VecDeque<usize>>,
        reduction: Option<S>,
        mut progress: Option<&mut dyn FnMut(u64, u64)>,
        merge: MergeLoop,
    ) -> MultiCoreResult {
        let n = self.cores.len();
        let total: u64 = shards.iter().map(InstStream::remaining).sum::<u64>()
            + reduction.as_ref().map_or(0, InstStream::remaining);
        let mut done = 0u64;
        // Shards each core has fully executed (for residency attribution).
        let mut ran: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut current: Vec<Option<usize>> = queues.iter_mut().map(VecDeque::pop_front).collect();
        if self.cfg.work_stealing {
            for c in current.iter_mut().filter(|c| c.is_none()) {
                *c = steal_largest(&shards, &mut queues);
            }
        }
        match merge {
            MergeLoop::EventDriven => {
                // One pending event per live core at its local clock; the
                // heap's (time, index) order is exactly the scan's
                // min_by_key — see `run_sharded_stepped`.
                let mut wake: EventQueue<usize> = EventQueue::with_capacity(n);
                for (i, c) in current.iter().enumerate() {
                    if c.is_some() {
                        wake.push(self.cores[i].cycles(), i);
                    }
                }
                while let Some((_, i)) = wake.pop() {
                    let s = current[i].expect("only live cores are queued");
                    match shards[s].next_op() {
                        Some(op) => {
                            self.cores[i].step(op, Some(&mut self.shared_l2));
                            done += 1;
                            if done.is_multiple_of(PROGRESS_STRIDE) {
                                if let Some(cb) = progress.as_deref_mut() {
                                    cb(done, total);
                                }
                            }
                            wake.push(self.cores[i].cycles(), i);
                        }
                        None => {
                            ran[i].push(s);
                            current[i] = queues[i].pop_front().or_else(|| {
                                if self.cfg.work_stealing {
                                    steal_largest(&shards, &mut queues)
                                } else {
                                    None
                                }
                            });
                            if current[i].is_some() {
                                // Same clock: the core continues its next
                                // queued shard with no idle gap.
                                wake.push(self.cores[i].cycles(), i);
                            }
                        }
                    }
                }
            }
            MergeLoop::SteppedScan => {
                // The live core furthest behind in local time steps next.
                while let Some(i) = (0..n)
                    .filter(|&i| current[i].is_some())
                    .min_by_key(|&i| (self.cores[i].cycles(), i))
                {
                    let s = current[i].expect("filtered on is_some");
                    match shards[s].next_op() {
                        Some(op) => {
                            self.cores[i].step(op, Some(&mut self.shared_l2));
                            done += 1;
                            if done.is_multiple_of(PROGRESS_STRIDE) {
                                if let Some(cb) = progress.as_deref_mut() {
                                    cb(done, total);
                                }
                            }
                        }
                        None => {
                            ran[i].push(s);
                            current[i] = queues[i].pop_front().or_else(|| {
                                if self.cfg.work_stealing {
                                    steal_largest(&shards, &mut queues)
                                } else {
                                    None
                                }
                            });
                        }
                    }
                }
            }
        }

        // Main phase done: record per-core retire times, then replay the
        // K-split reduction on core 0 (conceptually after the barrier).
        let main_cycles: Vec<u64> = self.cores.iter().map(CoreModel::cycles).collect();
        let slowest = main_cycles.iter().copied().max().unwrap_or(0);
        let mut reduction_cycles = 0;
        let mut reduction_peak = 0u64;
        if let Some(mut red) = reduction {
            let before = self.cores[0].cycles();
            while let Some(op) = red.next_op() {
                self.cores[0].step(op, Some(&mut self.shared_l2));
                done += 1;
                if done.is_multiple_of(PROGRESS_STRIDE) {
                    if let Some(cb) = progress.as_deref_mut() {
                        cb(done, total);
                    }
                }
            }
            reduction_cycles = self.cores[0].cycles() - before;
            reduction_peak = red.peak_resident_bytes() as u64;
        }
        // Completion report — unless the stride loop already delivered it.
        if done == 0 || !done.is_multiple_of(PROGRESS_STRIDE) {
            if let Some(cb) = progress {
                cb(done, total);
            }
        }

        let per_core: Vec<SimResult> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let mut peak: u64 = ran[i]
                    .iter()
                    .map(|&s| shards[s].peak_resident_bytes() as u64)
                    .sum();
                if i == 0 {
                    peak += reduction_peak;
                }
                core.result(peak)
            })
            .collect();
        let barrier_cycles = self.cfg.barrier_cycles();
        MultiCoreResult {
            cores: n,
            core_cycles: slowest + barrier_cycles + reduction_cycles,
            barrier_cycles,
            reduction_cycles,
            per_core,
            shared_l2: self.shared_l2.stats(),
        }
    }

    /// The host-parallel main phase: contiguous chunks of cores simulate
    /// on scoped worker threads against private log-sink L2s
    /// ([`SharedL2::log_sink`]), while this thread replays the streaming
    /// k-way merge of their access logs on the real [`SharedL2`] in exact
    /// global `(time, core)` order — reproducing the sequential event
    /// merge's `SharedL2Stats`, and with them the whole
    /// [`MultiCoreResult`], bit for bit.
    ///
    /// *Soundness.* Under the prefetch assumption every shared-L2 lookup
    /// returns the same flat latency, so no core's timeline depends on any
    /// other core's accesses; the interleave only decides first-toucher
    /// attribution, which the ordered replay reconstructs. Each worker
    /// runs the same `(time, index)` event merge as the sequential loop
    /// restricted to its contiguous core chunk, so its log is sorted by
    /// `(time, core)`; the sequential loop advances simultaneous cores in
    /// ascending index order, so merging streams by `(head time, worker
    /// index)` — workers own ascending index ranges — reproduces the exact
    /// global access sequence.
    ///
    /// *Liveness.* Workers stream bounded chunks over bounded channels.
    /// The merger only blocks receiving from a stream whose buffered
    /// entries are exhausted, and that stream's worker either has channel
    /// capacity to run ahead or chunks already queued — it always
    /// eventually sends or closes, so no cycle of waits exists.
    fn run_parallel<S: InstStream + Send>(
        &mut self,
        shards: Vec<S>,
        mut queues: Vec<VecDeque<usize>>,
        reduction: Option<S>,
        mut progress: Option<&mut dyn FnMut(u64, u64)>,
        host_threads: usize,
    ) -> MultiCoreResult
    where
        C: Send,
    {
        let n = self.cores.len();
        let total: u64 = shards.iter().map(InstStream::remaining).sum::<u64>()
            + reduction.as_ref().map_or(0, InstStream::remaining);
        let hit_latency = self.cfg.core.l2_latency;
        let t = host_threads.min(n).max(1);
        // Worker w owns the contiguous core range starts[w]..starts[w+1].
        let (base, rem) = (n / t, n % t);
        let mut starts = vec![0usize; t + 1];
        for w in 0..t {
            starts[w + 1] = starts[w] + base + usize::from(w < rem);
        }

        // Move each worker's assigned streams out of the shared vector
        // (assignment is static — stealing is off), remapping its queues
        // to worker-local stream indices.
        let mut slots: Vec<Option<S>> = shards.into_iter().map(Some).collect();
        let mut seeds: Vec<WorkerSeed<S>> = Vec::with_capacity(t);
        let mut receivers: Vec<Receiver<Vec<L2LogEntry>>> = Vec::with_capacity(t);
        let mut worker_globals: Vec<Vec<usize>> = Vec::with_capacity(t);
        for w in 0..t {
            let mut local_queues: Vec<VecDeque<usize>> = queues[starts[w]..starts[w + 1]]
                .iter_mut()
                .map(std::mem::take)
                .collect();
            let mut streams = Vec::new();
            let mut globals = Vec::new();
            for q in &mut local_queues {
                for s in q.iter_mut() {
                    globals.push(*s);
                    streams.push(slots[*s].take().expect("each shard is queued exactly once"));
                    *s = streams.len() - 1;
                }
            }
            let (tx, rx) = sync_channel(L2_LOG_CHANNEL_DEPTH);
            seeds.push(WorkerSeed {
                queues: local_queues,
                streams,
                hit_latency,
                tx,
            });
            receivers.push(rx);
            worker_globals.push(globals);
        }

        let done_ctr = AtomicU64::new(0);
        let mut reported = 0u64;
        let cores = &mut self.cores;
        let shared_l2 = &mut self.shared_l2;
        let returned: Vec<(Vec<Vec<usize>>, Vec<S>)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(t);
            let mut rest: &mut [C] = cores.as_mut_slice();
            for (w, seed) in seeds.into_iter().enumerate() {
                let head = std::mem::take(&mut rest);
                let (chunk, tail) = head.split_at_mut(starts[w + 1] - starts[w]);
                rest = tail;
                let done = &done_ctr;
                handles.push(scope.spawn(move || run_core_chunk(chunk, seed, done)));
            }
            // Replay the merged access log on the real L2 while the
            // workers run, surfacing progress at the sequential stride
            // points (same `(done, total)` values, same order).
            let mut merge = LogMerge::new(receivers);
            while let Some(e) = merge.next_entry() {
                shared_l2.access_line(e.core as usize, e.line);
                let done_now = done_ctr.load(Ordering::Relaxed);
                while reported + PROGRESS_STRIDE <= done_now {
                    reported += PROGRESS_STRIDE;
                    if let Some(cb) = progress.as_deref_mut() {
                        cb(reported, total);
                    }
                }
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("simulation worker panicked"))
                .collect()
        });

        // Re-home the consumed streams so residency attribution can read
        // their high-water marks, translating worker-local shard ids back
        // to global ones.
        let mut ran: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (w, (local_ran, streams)) in returned.into_iter().enumerate() {
            for (local_core, list) in local_ran.into_iter().enumerate() {
                ran[starts[w] + local_core] =
                    list.into_iter().map(|ls| worker_globals[w][ls]).collect();
            }
            for (ls, s) in streams.into_iter().enumerate() {
                slots[worker_globals[w][ls]] = Some(s);
            }
        }

        // Flush stride reports the merge loop had not caught up to (the
        // counter keeps advancing behind the replay), then run the
        // post-barrier tail exactly as the sequential path does.
        let mut done = done_ctr.load(Ordering::Relaxed);
        while reported + PROGRESS_STRIDE <= done {
            reported += PROGRESS_STRIDE;
            if let Some(cb) = progress.as_deref_mut() {
                cb(reported, total);
            }
        }
        let main_cycles: Vec<u64> = self.cores.iter().map(CoreModel::cycles).collect();
        let slowest = main_cycles.iter().copied().max().unwrap_or(0);
        let mut reduction_cycles = 0;
        let mut reduction_peak = 0u64;
        if let Some(mut red) = reduction {
            let before = self.cores[0].cycles();
            while let Some(op) = red.next_op() {
                self.cores[0].step(op, Some(&mut self.shared_l2));
                done += 1;
                if done.is_multiple_of(PROGRESS_STRIDE) {
                    if let Some(cb) = progress.as_deref_mut() {
                        cb(done, total);
                    }
                }
            }
            reduction_cycles = self.cores[0].cycles() - before;
            reduction_peak = red.peak_resident_bytes() as u64;
        }
        if done == 0 || !done.is_multiple_of(PROGRESS_STRIDE) {
            if let Some(cb) = progress {
                cb(done, total);
            }
        }

        let per_core: Vec<SimResult> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let mut peak: u64 = ran[i]
                    .iter()
                    .map(|&s| {
                        slots[s]
                            .as_ref()
                            .expect("streams were re-homed after the join")
                            .peak_resident_bytes() as u64
                    })
                    .sum();
                if i == 0 {
                    peak += reduction_peak;
                }
                core.result(peak)
            })
            .collect();
        let barrier_cycles = self.cfg.barrier_cycles();
        MultiCoreResult {
            cores: n,
            core_cycles: slowest + barrier_cycles + reduction_cycles,
            barrier_cycles,
            reduction_cycles,
            per_core,
            shared_l2: self.shared_l2.stats(),
        }
    }
}

/// Everything a parallel worker needs to simulate its contiguous core
/// chunk: the chunk's shard queues (holding worker-local stream indices),
/// the streams themselves, the flat L2 hit latency for the log sink, and
/// the channel its log chunks flow back on.
struct WorkerSeed<S> {
    queues: Vec<VecDeque<usize>>,
    streams: Vec<S>,
    hit_latency: u64,
    tx: SyncSender<Vec<L2LogEntry>>,
}

/// One worker's slice of the host-parallel main phase: the same
/// local-time event merge as the sequential loop restricted to `cores`
/// (a contiguous chunk, so `(time, local index)` order *is* `(time,
/// global index)` order), stepping against a log-sink L2 and streaming
/// bounded log chunks to the merger. Returns the per-core lists of
/// finished worker-local shard ids plus the consumed streams (for
/// residency attribution).
fn run_core_chunk<C: CoreModel, S: InstStream>(
    cores: &mut [C],
    seed: WorkerSeed<S>,
    done: &AtomicU64,
) -> (Vec<Vec<usize>>, Vec<S>) {
    let WorkerSeed {
        mut queues,
        mut streams,
        hit_latency,
        tx,
    } = seed;
    let n = cores.len();
    let mut l2 = SharedL2::log_sink(hit_latency);
    let mut ran: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut current: Vec<Option<usize>> = queues.iter_mut().map(VecDeque::pop_front).collect();
    let mut wake: EventQueue<usize> = EventQueue::with_capacity(n);
    for (i, c) in current.iter().enumerate() {
        if c.is_some() {
            wake.push(cores[i].cycles(), i);
        }
    }
    while let Some((now, i)) = wake.pop() {
        let s = current[i].expect("only live cores are queued");
        match streams[s].next_op() {
            Some(op) => {
                // Accesses this step makes are stamped with the wake time
                // (the core's clock before the step), exactly when the
                // sequential merge would have delivered them.
                l2.set_log_stamp(now);
                cores[i].step(op, Some(&mut l2));
                done.fetch_add(1, Ordering::Relaxed);
                if l2.log_len() >= L2_LOG_CHUNK && tx.send(l2.take_log()).is_err() {
                    // The merger is gone (main-thread unwind); stop early
                    // rather than simulate into the void.
                    return (ran, streams);
                }
                wake.push(cores[i].cycles(), i);
            }
            None => {
                ran[i].push(s);
                current[i] = queues[i].pop_front();
                if current[i].is_some() {
                    // Same clock: the core continues its next queued
                    // shard with no idle gap.
                    wake.push(cores[i].cycles(), i);
                }
            }
        }
    }
    if l2.log_len() > 0 {
        let _ = tx.send(l2.take_log());
    }
    (ran, streams)
}

/// A streaming k-way merge over per-worker shared-L2 log streams. Each
/// stream arrives as bounded chunks over a channel and is sorted by
/// `(time, core)`; streams own disjoint ascending core ranges, so taking
/// the head with the minimum `(time, worker index)` key reproduces the
/// exact global `(time, core)` access order (equal keys only occur within
/// one stream and stay in stream order).
struct LogMerge {
    streams: Vec<LogStream>,
}

struct LogStream {
    rx: Receiver<Vec<L2LogEntry>>,
    chunk: Vec<L2LogEntry>,
    pos: usize,
    open: bool,
}

impl LogStream {
    /// The stream's next entry, blocking for the next chunk when the
    /// buffered one is exhausted; `None` once the worker has closed its
    /// channel and every chunk is drained.
    fn head(&mut self) -> Option<L2LogEntry> {
        loop {
            if let Some(e) = self.chunk.get(self.pos) {
                return Some(*e);
            }
            if !self.open {
                return None;
            }
            match self.rx.recv() {
                Ok(chunk) => {
                    self.chunk = chunk;
                    self.pos = 0;
                }
                Err(_) => {
                    self.open = false;
                    return None;
                }
            }
        }
    }
}

impl LogMerge {
    fn new(receivers: Vec<Receiver<Vec<L2LogEntry>>>) -> Self {
        LogMerge {
            streams: receivers
                .into_iter()
                .map(|rx| LogStream {
                    rx,
                    chunk: Vec::new(),
                    pos: 0,
                    open: true,
                })
                .collect(),
        }
    }

    /// Removes and returns the globally next entry in `(time, core)`
    /// order, or `None` when every stream is closed and drained.
    fn next_entry(&mut self) -> Option<L2LogEntry> {
        let mut best: Option<(u64, usize)> = None;
        for (w, stream) in self.streams.iter_mut().enumerate() {
            if let Some(e) = stream.head() {
                if best.is_none_or(|(bt, _)| e.time < bt) {
                    best = Some((e.time, w));
                }
            }
        }
        let (_, w) = best?;
        let s = &mut self.streams[w];
        let e = s.chunk[s.pos];
        s.pos += 1;
        Some(e)
    }
}

/// Which loop drives the core-local-time interleave in
/// [`MultiCoreSim::run_assigned`]: the production event merge, or the
/// retained linear-scan reference it must match instruction for
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeLoop {
    EventDriven,
    SteppedScan,
}

/// Builds the per-core shard queues `policy` dictates (see
/// [`SchedulerPolicy`]); panics under [`SchedulerPolicy::Static`] when
/// shards outnumber cores.
fn assign_queues<S: InstStream>(
    policy: SchedulerPolicy,
    shards: &[S],
    n: usize,
) -> Vec<VecDeque<usize>> {
    match policy {
        SchedulerPolicy::Static => {
            assert!(
                shards.len() <= n,
                "{} shard streams for {n} cores: excess shards would be silently dropped",
                shards.len()
            );
            (0..n)
                .map(|i| {
                    if i < shards.len() {
                        VecDeque::from([i])
                    } else {
                        VecDeque::new()
                    }
                })
                .collect()
        }
        SchedulerPolicy::Lpt => {
            let lengths: Vec<u64> = shards.iter().map(InstStream::remaining).collect();
            lpt_queues(&lengths, n)
        }
    }
}

/// Longest-processing-time packing of shard indices onto `n` core queues:
/// descending declared length (ties by index) onto the least-loaded core
/// (ties by core index).
fn lpt_queues(lengths: &[u64], n: usize) -> Vec<VecDeque<usize>> {
    let mut order: Vec<usize> = (0..lengths.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(lengths[i]), i));
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
    let mut load = vec![0u64; n];
    for s in order {
        let c = (0..n)
            .min_by_key(|&c| (load[c], c))
            .expect("at least one core");
        load[c] += lengths[s];
        queues[c].push_back(s);
    }
    queues
}

/// Removes and returns the not-yet-started shard with the most remaining
/// ops across every queue (ties by lowest shard index), if any.
fn steal_largest<S: InstStream>(shards: &[S], queues: &mut [VecDeque<usize>]) -> Option<usize> {
    let (qi, pos, _) = queues
        .iter()
        .enumerate()
        .flat_map(|(qi, q)| q.iter().enumerate().map(move |(pos, &s)| (qi, pos, s)))
        .max_by_key(|&(_, _, s)| (shards[s].remaining(), std::cmp::Reverse(s)))?;
    queues[qi].remove(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreSim;
    use vegeta_isa::trace::{Trace, TraceOp};
    use vegeta_isa::{Inst, TReg, UReg};

    fn mixed_trace(n: usize, stride: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(TraceOp::VecLoad {
                dst: (i % 16) as u8,
                addr: i as u64 * stride,
            });
            t.push_inst(Inst::TileSpmmU {
                acc: TReg::new((i % 3) as u8).unwrap(),
                a: TReg::T6,
                b: UReg::U2,
            });
            t.push(TraceOp::Scalar { dst: 0, src: 0 });
        }
        t
    }

    #[test]
    fn single_core_multicore_matches_coresim_exactly() {
        // With one core there is no barrier and no sharing: the multi-core
        // harness must collapse to the single-core simulator, cycle for
        // cycle and stat for stat.
        let trace = mixed_trace(200, 64);
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let expected = CoreSim::with_engine(engine.clone()).run(&trace);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(1), engine);
        let got = sim.run_streams(vec![trace.stream()]);
        assert_eq!(got.barrier_cycles, 0);
        assert_eq!(got.core_cycles, expected.core_cycles);
        assert_eq!(got.per_core.len(), 1);
        assert_eq!(got.per_core[0], expected);
        assert_eq!(got.instructions(), expected.instructions);
        assert!((got.scaling_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_cores_halve_an_even_split() {
        let whole = mixed_trace(400, 64);
        let half_a = mixed_trace(200, 64);
        // Second half touches different addresses but has identical timing
        // structure.
        let mut half_b = Trace::new();
        for op in half_a.ops() {
            let shifted = match *op {
                TraceOp::VecLoad { dst, addr } => TraceOp::VecLoad {
                    dst,
                    addr: addr + (1 << 20),
                },
                other => other,
            };
            half_b.push(shifted);
        }
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let one = MultiCoreSim::new(MultiCoreConfig::new(1), engine.clone())
            .run_streams(vec![whole.stream()]);
        let two = MultiCoreSim::new(MultiCoreConfig::new(2), engine)
            .run_streams(vec![half_a.stream(), half_b.stream()]);
        assert_eq!(two.instructions(), one.instructions());
        assert!(
            two.core_cycles < one.core_cycles * 3 / 4,
            "2 cores {} vs 1 core {}",
            two.core_cycles,
            one.core_cycles
        );
        assert_eq!(two.per_core_cycles().len(), 2);
        assert!(two.scaling_efficiency() > 0.8, "balanced halves");
    }

    #[test]
    fn shared_lines_are_attributed_across_cores() {
        // Both cores stream the same addresses: every L2 touch after the
        // first core's is a shared hit.
        let t = mixed_trace(64, 64);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        let res = sim.run_streams(vec![t.stream(), t.stream()]);
        assert!(res.shared_l2.shared_hits > 0, "cross-core reuse observed");
        assert_eq!(res.shared_l2.misses, 0, "prefetched L2 never misses");
        let merged = res.merged_cache();
        assert_eq!(
            merged.l1_hits + merged.l2_hits,
            res.per_core
                .iter()
                .map(|r| r.cache.l1_hits + r.cache.l2_hits)
                .sum::<u64>()
        );
    }

    #[test]
    fn barrier_grows_logarithmically_and_is_free_for_one_core() {
        assert_eq!(MultiCoreConfig::new(1).barrier_cycles(), 0);
        let b = DEFAULT_BARRIER_LATENCY;
        assert_eq!(MultiCoreConfig::new(2).barrier_cycles(), b);
        assert_eq!(MultiCoreConfig::new(4).barrier_cycles(), 2 * b);
        assert_eq!(MultiCoreConfig::new(8).barrier_cycles(), 3 * b);
        assert_eq!(MultiCoreConfig::new(16).barrier_cycles(), 4 * b);
        assert_eq!(MultiCoreConfig::new(5).barrier_cycles(), 3 * b);
    }

    #[test]
    fn empty_run_guards_scaling_efficiency() {
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        let res = sim.run_streams(vec![Trace::new().stream(), Trace::new().stream()]);
        // Two idle cores: the barrier still costs, but no division blows up.
        assert_eq!(res.instructions(), 0);
        assert_eq!(res.scaling_efficiency(), 0.0);
        let zero = MultiCoreResult {
            cores: 0,
            core_cycles: 0,
            barrier_cycles: 0,
            reduction_cycles: 0,
            per_core: Vec::new(),
            shared_l2: SharedL2Stats::default(),
        };
        assert_eq!(zero.scaling_efficiency(), 0.0);
    }

    #[test]
    fn lpt_accepts_more_shards_than_cores_and_strands_none() {
        // 7 uneven shards on 3 cores: static would panic; LPT packs them.
        let shards: Vec<Trace> = (1..=7).map(|i| mixed_trace(8 * i, 64)).collect();
        let total_ops: u64 = shards.iter().map(|t| t.len() as u64).sum();
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(3), EngineConfig::rasa_dm());
        let res = sim.run_sharded(
            shards.iter().map(Trace::stream).collect(),
            None,
            SchedulerPolicy::Lpt,
        );
        assert_eq!(res.instructions(), total_ops);
        assert_eq!(res.stranded_cores(), 0);
        assert_eq!(res.reduction_cycles, 0);
        assert!(res.scaling_efficiency() > 0.8, "LPT balances uneven shards");
    }

    #[test]
    fn lpt_beats_static_on_unbalanced_shards() {
        // Two long + two short shards on 2 cores. Static can only take two
        // streams, so compare against the pathological pairing (long+long
        // on core 0 conceptually = run them sequentially via LPT with a
        // deliberately bad... instead: 4 shards, 2 cores). LPT pairs
        // long/short per core; a naive in-order fold pairs long/long.
        let long = mixed_trace(120, 64);
        let short = mixed_trace(30, 64);
        let engine = EngineConfig::rasa_dm();
        let lpt = MultiCoreSim::new(MultiCoreConfig::new(2), engine.clone()).run_sharded(
            vec![long.stream(), long.stream(), short.stream(), short.stream()],
            None,
            SchedulerPolicy::Lpt,
        );
        // In-order static pairing: both long shards land on core 0.
        let mut naive_a = Trace::new();
        for op in long.ops().iter().chain(long.ops()) {
            naive_a.push(*op);
        }
        let mut naive_b = Trace::new();
        for op in short.ops().iter().chain(short.ops()) {
            naive_b.push(*op);
        }
        let naive = MultiCoreSim::new(MultiCoreConfig::new(2), engine)
            .run_streams(vec![naive_a.stream(), naive_b.stream()]);
        assert_eq!(lpt.instructions(), naive.instructions());
        assert!(
            lpt.core_cycles < naive.core_cycles,
            "LPT {} vs naive pairing {}",
            lpt.core_cycles,
            naive.core_cycles
        );
    }

    #[test]
    fn lpt_is_deterministic() {
        let shards: Vec<Trace> = (1..=5).map(|i| mixed_trace(16 * i, 64)).collect();
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let run = || {
            MultiCoreSim::new(MultiCoreConfig::new(4), engine.clone()).run_sharded(
                shards.iter().map(Trace::stream).collect(),
                None,
                SchedulerPolicy::Lpt,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn work_stealing_rescues_a_mispacked_queue() {
        // LPT packs by declared op count, but tile ops run far longer than
        // scalar ops. Counts (100, 90, 50, 45, 40) pack as core 0 ←
        // {100, 45} and core 1 ← {90, 50-tile, 40}: core 1's tile shard
        // dominates the makespan while the trailing 40-op shard sits
        // unstarted behind it. A stealing core 0 takes it off the queue.
        let scalar = |n: usize| {
            let mut t = Trace::new();
            for i in 0..n {
                t.push(TraceOp::Scalar {
                    dst: (i % 8) as u8,
                    src: 0,
                });
            }
            t
        };
        let tiles = {
            let mut t = Trace::new();
            for i in 0..50 {
                t.push_inst(Inst::TileSpmmU {
                    acc: TReg::new((i % 3) as u8).unwrap(),
                    a: TReg::T6,
                    b: UReg::U2,
                });
            }
            t
        };
        let shards = [scalar(100), scalar(90), tiles, scalar(45), scalar(40)];
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let packed = MultiCoreSim::new(MultiCoreConfig::new(2), engine.clone()).run_sharded(
            shards.iter().map(Trace::stream).collect(),
            None,
            SchedulerPolicy::Lpt,
        );
        let mut steal_cfg = MultiCoreConfig::new(2);
        steal_cfg.work_stealing = true;
        let stolen = MultiCoreSim::new(steal_cfg, engine).run_sharded(
            shards.iter().map(Trace::stream).collect(),
            None,
            SchedulerPolicy::Lpt,
        );
        assert_eq!(stolen.instructions(), packed.instructions());
        assert!(
            stolen.core_cycles < packed.core_cycles,
            "stealing {} vs packed {}",
            stolen.core_cycles,
            packed.core_cycles
        );
    }

    #[test]
    fn reduction_runs_after_the_barrier_on_core_zero() {
        let shard = mixed_trace(40, 64);
        let reduction = mixed_trace(16, 128);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        let res = sim.run_sharded(
            vec![shard.stream(), shard.stream()],
            Some(reduction.stream()),
            SchedulerPolicy::Lpt,
        );
        assert!(res.reduction_cycles > 0);
        assert_eq!(
            res.instructions(),
            (2 * shard.len() + reduction.len()) as u64,
            "reduction ops are attributed to core 0"
        );
        // Makespan covers barrier and reduction on top of the main phase.
        let no_red = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm())
            .run_sharded(
                vec![shard.stream(), shard.stream()],
                None,
                SchedulerPolicy::Lpt,
            );
        assert_eq!(res.core_cycles, no_red.core_cycles + res.reduction_cycles);
    }

    #[test]
    fn event_merge_matches_the_stepped_scan_reference() {
        // The event-driven merge and the retained linear scan must agree on
        // every field of the result — policies, stealing, reduction and
        // ragged shard mixes included.
        let shards: Vec<Trace> = (1..=6).map(|i| mixed_trace(12 * i, 64)).collect();
        let reduction = mixed_trace(20, 128);
        let engine = EngineConfig::vegeta_s(16).unwrap();
        for policy in [SchedulerPolicy::Static, SchedulerPolicy::Lpt] {
            for stealing in [false, true] {
                // Static refuses more shards than cores.
                let take = if policy == SchedulerPolicy::Static {
                    3
                } else {
                    6
                };
                let mut cfg = MultiCoreConfig::new(3);
                cfg.work_stealing = stealing;
                let event = MultiCoreSim::new(cfg.clone(), engine.clone()).run_sharded(
                    shards[..take].iter().map(Trace::stream).collect(),
                    Some(reduction.stream()),
                    policy,
                );
                let stepped = MultiCoreSim::new(cfg, engine.clone()).run_sharded_stepped(
                    shards[..take].iter().map(Trace::stream).collect(),
                    Some(reduction.stream()),
                    policy,
                );
                assert_eq!(event, stepped, "policy {policy}, stealing {stealing}");
            }
        }
    }

    #[test]
    fn static_policy_via_run_sharded_matches_run_streams() {
        let a = mixed_trace(50, 64);
        let b = mixed_trace(30, 64);
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let legacy = MultiCoreSim::new(MultiCoreConfig::new(2), engine.clone())
            .run_streams(vec![a.stream(), b.stream()]);
        let sharded = MultiCoreSim::new(MultiCoreConfig::new(2), engine).run_sharded(
            vec![a.stream(), b.stream()],
            None,
            SchedulerPolicy::Static,
        );
        assert_eq!(legacy, sharded);
    }

    #[test]
    fn scheduler_labels_round_trip() {
        for p in [SchedulerPolicy::Static, SchedulerPolicy::Lpt] {
            assert_eq!(SchedulerPolicy::from_label(p.label()), Some(p));
        }
        assert_eq!(SchedulerPolicy::from_label("fifo"), None);
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Lpt);
        assert_eq!(SchedulerPolicy::Lpt.to_string(), "lpt");
    }

    #[test]
    fn idle_cores_are_tolerated() {
        let t = mixed_trace(32, 64);
        // 4 cores, 2 streams: cores 2/3 idle.
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(4), EngineConfig::rasa_dm());
        let res = sim.run_streams(vec![t.stream(), t.stream()]);
        assert_eq!(res.cores, 4);
        assert_eq!(res.per_core[2].instructions, 0);
        assert_eq!(res.per_core[3].core_cycles, 0);
        assert!(res.instructions() > 0);
    }

    #[test]
    #[should_panic(expected = "excess shards")]
    fn excess_streams_are_refused_not_dropped() {
        let t = mixed_trace(8, 64);
        let mut sim = MultiCoreSim::new(MultiCoreConfig::new(2), EngineConfig::rasa_dm());
        sim.run_streams(vec![t.stream(), t.stream(), t.stream()]);
    }

    /// The host-thread count [`HOST_THREADS_ENV`] forces in this process,
    /// if any — tests must stay correct under the CI leg that pins it to 1.
    fn forced_host_threads() -> Option<usize> {
        std::env::var(HOST_THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    }

    #[test]
    fn exec_mode_resolution_clamps_to_the_core_count() {
        let expect = |want: usize, cores: usize| forced_host_threads().unwrap_or(want).min(cores);
        assert_eq!(MultiCoreConfig::new(4).exec, ExecMode::Auto);
        let auto = MultiCoreConfig::new(4).resolved_host_threads();
        assert!((1..=4).contains(&auto), "Auto stays within 1..=cores");
        assert_eq!(
            MultiCoreConfig::new(4)
                .with_exec(ExecMode::Sequential)
                .resolved_host_threads(),
            expect(1, 4)
        );
        assert_eq!(
            MultiCoreConfig::new(4)
                .with_exec(ExecMode::ParallelHost(0))
                .resolved_host_threads(),
            expect(1, 4),
            "0 means sequential, not a panic"
        );
        assert_eq!(
            MultiCoreConfig::new(4)
                .with_exec(ExecMode::ParallelHost(3))
                .resolved_host_threads(),
            expect(3, 4)
        );
        assert_eq!(
            MultiCoreConfig::new(4)
                .with_exec(ExecMode::ParallelHost(64))
                .resolved_host_threads(),
            expect(64, 4),
            "clamped to the simulated core count"
        );
        assert_eq!(
            MultiCoreConfig::new(1)
                .with_exec(ExecMode::ParallelHost(8))
                .resolved_host_threads(),
            1,
            "one simulated core never fans out"
        );
    }

    #[test]
    fn parallel_host_matches_sequential_bit_for_bit() {
        // Ragged shards + a K-split reduction across simulated-core ×
        // host-thread combinations, full MultiCoreResult equality. (Under
        // the CI leg that forces host threads to 1 this degenerates to
        // sequential-vs-sequential — exactly the fallback it pins.)
        let shards: Vec<Trace> = (1..=6).map(|i| mixed_trace(14 * i, 64)).collect();
        let reduction = mixed_trace(20, 128);
        let engine = EngineConfig::vegeta_s(16).unwrap();
        for cores in [2usize, 3, 4] {
            let seq = MultiCoreSim::new(
                MultiCoreConfig::new(cores).with_exec(ExecMode::Sequential),
                engine.clone(),
            )
            .run_sharded(
                shards.iter().map(Trace::stream).collect(),
                Some(reduction.stream()),
                SchedulerPolicy::Lpt,
            );
            for host in [2usize, 3, 8] {
                let par = MultiCoreSim::new(
                    MultiCoreConfig::new(cores).with_exec(ExecMode::ParallelHost(host)),
                    engine.clone(),
                )
                .run_sharded(
                    shards.iter().map(Trace::stream).collect(),
                    Some(reduction.stream()),
                    SchedulerPolicy::Lpt,
                );
                assert_eq!(par, seq, "{cores} cores, {host} host threads");
            }
        }
    }

    #[test]
    fn parallel_host_reproduces_shared_attribution_and_idle_cores() {
        // Identical streams: every touch after the first core's is a
        // shared hit, and first-toucher attribution is exactly what the
        // ordered log replay must reconstruct. Cores 3/4 stay idle.
        let t = mixed_trace(64, 64);
        let streams = || vec![t.stream(), t.stream(), t.stream()];
        let seq = MultiCoreSim::new(
            MultiCoreConfig::new(5).with_exec(ExecMode::Sequential),
            EngineConfig::rasa_dm(),
        )
        .run_streams(streams());
        let par = MultiCoreSim::new(
            MultiCoreConfig::new(5).with_exec(ExecMode::ParallelHost(4)),
            EngineConfig::rasa_dm(),
        )
        .run_streams(streams());
        assert!(seq.shared_l2.shared_hits > 0, "cross-core reuse observed");
        assert_eq!(par, seq);
    }

    #[test]
    fn ineligible_configs_fall_back_to_the_sequential_path() {
        // Work stealing or a cold L2 couples the cores, so ParallelHost
        // must quietly run the sequential event merge and still match it.
        let shards: Vec<Trace> = (1..=5).map(|i| mixed_trace(10 * i, 64)).collect();
        let engine = EngineConfig::vegeta_s(16).unwrap();
        for (stealing, prefetched) in [(true, true), (false, false), (true, false)] {
            let mut base = MultiCoreConfig::new(3);
            base.work_stealing = stealing;
            base.prefetched = prefetched;
            let seq =
                MultiCoreSim::new(base.clone().with_exec(ExecMode::Sequential), engine.clone())
                    .run_sharded(
                        shards.iter().map(Trace::stream).collect(),
                        None,
                        SchedulerPolicy::Lpt,
                    );
            let par = MultiCoreSim::new(base.with_exec(ExecMode::ParallelHost(3)), engine.clone())
                .run_sharded(
                    shards.iter().map(Trace::stream).collect(),
                    None,
                    SchedulerPolicy::Lpt,
                );
            assert_eq!(par, seq, "stealing {stealing}, prefetched {prefetched}");
        }
    }

    #[test]
    fn progress_sequence_is_identical_across_exec_modes() {
        // Two ~36k-op shards cross PROGRESS_STRIDE once; the callback must
        // observe the same (done, total) pairs in the same order whether
        // the main phase ran sequential or host-parallel.
        let shard = mixed_trace(12_000, 64);
        let engine = EngineConfig::rasa_dm();
        let collect = |exec: ExecMode| {
            let mut seen: Vec<(u64, u64)> = Vec::new();
            let mut cb = |d: u64, t: u64| seen.push((d, t));
            MultiCoreSim::new(MultiCoreConfig::new(2).with_exec(exec), engine.clone())
                .run_sharded_with(
                    vec![shard.stream(), shard.stream()],
                    None,
                    SchedulerPolicy::Lpt,
                    Some(&mut cb),
                );
            seen
        };
        let seq = collect(ExecMode::Sequential);
        assert!(
            seq.iter().any(|&(d, _)| d == PROGRESS_STRIDE),
            "the stride path fired"
        );
        assert_eq!(collect(ExecMode::ParallelHost(2)), seq);
    }

    #[test]
    fn parallel_host_tolerates_empty_and_idle_work() {
        let res = MultiCoreSim::new(
            MultiCoreConfig::new(3).with_exec(ExecMode::ParallelHost(3)),
            EngineConfig::rasa_dm(),
        )
        .run_streams(vec![Trace::new().stream()]);
        assert_eq!(res.instructions(), 0);
        assert_eq!(res.stranded_cores(), 3);
    }

    #[test]
    fn unprefetched_l2_charges_memory_latency() {
        // A load-dominated stream (an engine-bound one would hide the
        // memory time behind tile latency).
        let mut t = Trace::new();
        for i in 0..512u64 {
            t.push(TraceOp::VecLoad {
                dst: (i % 16) as u8,
                addr: i * 64,
            });
        }
        let mut cold_cfg = MultiCoreConfig::new(1);
        cold_cfg.prefetched = false;
        cold_cfg.mem_latency = 200;
        let cold =
            MultiCoreSim::new(cold_cfg, EngineConfig::rasa_dm()).run_streams(vec![t.stream()]);
        let warm = MultiCoreSim::new(MultiCoreConfig::new(1), EngineConfig::rasa_dm())
            .run_streams(vec![t.stream()]);
        assert!(cold.shared_l2.misses > 0);
        assert!(
            cold.core_cycles > warm.core_cycles,
            "cold misses must cost cycles: {} vs {}",
            cold.core_cycles,
            warm.core_cycles
        );
    }
}
