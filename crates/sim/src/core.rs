//! Trace-driven out-of-order core model.
//!
//! Reproduces the MacSim configuration of §VI-B: a 4-wide out-of-order core
//! (fetch/issue/retire width four, 16 front-end stages, 97 ROB entries, 96
//! load-buffer entries) running at 2 GHz, with the matrix engine in a
//! 0.5 GHz clock domain. The model is analytical-event-driven: every dynamic
//! instruction gets dispatch, execute and retire timestamps subject to
//!
//! * front-end and retire bandwidth (4 per cycle, in order);
//! * ROB and load-buffer occupancy (dispatch stalls when full);
//! * register dataflow (reads wait for producers, through renaming — only
//!   true RAW dependences stall);
//! * functional-unit ports (scalar/vector/load/store contention);
//! * the matrix engine's WL/FF/FS/DR pipelining and output-forwarding rules,
//!   via [`vegeta_engine::EngineTimer`], scaled by the clock-domain ratio.
//!
//! Since the multi-core refactor the pipeline state lives in [`Core`] — one
//! composable core unit behind the [`CoreModel`] trait, stepped one
//! instruction at a time. [`CoreSim`] is the single-core driver (a thin
//! wrapper over one [`Core`]), and [`crate::MultiCoreSim`] interleaves many
//! cores over a shared L2.

use vegeta_engine::{EngineConfig, EngineTimer};
use vegeta_isa::stream::InstStream;
use vegeta_isa::trace::{ArchReg, Trace, TraceOp};
use vegeta_isa::Inst;

use crate::cache::{CacheModel, CacheStats, SharedL2};

/// Core configuration (§VI-B values by default).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-buffer entries.
    pub load_buffer_entries: usize,
    /// Front-end pipeline depth in cycles.
    pub frontend_stages: u64,
    /// Core clock in GHz.
    pub core_ghz: f64,
    /// Matrix-engine clock in GHz (0.5 GHz in the evaluation, the frequency
    /// every RTL design met).
    pub engine_ghz: f64,
    /// L1 data cache capacity in 64 B lines.
    pub l1_lines: usize,
    /// L1 hit latency (core cycles).
    pub l1_latency: u64,
    /// L2 hit latency (core cycles); the evaluation prefetches all data to L2.
    pub l2_latency: u64,
    /// Scalar ALU ports.
    pub scalar_ports: usize,
    /// Vector execution ports.
    pub vector_ports: usize,
    /// Load ports (each moves one 64 B line per cycle).
    pub load_ports: usize,
    /// Vector FMA latency (pipelined).
    pub vec_fma_latency: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fetch_width: 4,
            retire_width: 4,
            rob_entries: 97,
            load_buffer_entries: 96,
            frontend_stages: 16,
            core_ghz: 2.0,
            engine_ghz: 0.5,
            l1_lines: 768, // 48 KB
            l1_latency: 5,
            l2_latency: 14,
            scalar_ports: 4,
            vector_ports: 2,
            load_ports: 2,
            vec_fma_latency: 4,
        }
    }
}

impl SimConfig {
    /// Core cycles per engine cycle (4 for 2 GHz / 0.5 GHz).
    pub fn clock_ratio(&self) -> u64 {
        (self.core_ghz / self.engine_ghz).round() as u64
    }
}

/// Result of simulating one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total runtime in core cycles.
    pub core_cycles: u64,
    /// Dynamic instructions simulated.
    pub instructions: u64,
    /// Tile compute instructions dispatched to the matrix engine.
    pub tile_compute: u64,
    /// Core cycles during which the matrix engine had work in flight.
    pub engine_busy_cycles: u64,
    /// Peak bytes of trace data resident in the instruction source during
    /// the run: the whole trace for a materialized replay, one streaming
    /// chunk (plus generator state) for a streamed one.
    pub peak_resident_bytes: u64,
    /// Cache behaviour.
    pub cache: CacheStats,
}

impl SimResult {
    /// Runtime in seconds at the configured core clock.
    pub fn seconds(&self, cfg: &SimConfig) -> f64 {
        self.core_cycles as f64 / (cfg.core_ghz * 1e9)
    }

    /// Instructions per core cycle; 0.0 for a zero-cycle (empty) run.
    pub fn ipc(&self) -> f64 {
        if self.core_cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.core_cycles as f64
    }
}

/// A fixed-capacity ring of the most recent retire timestamps: the
/// occupancy window the ROB / load-buffer checks need, in O(entries)
/// memory however long the trace is (the piece that used to grow one
/// element per instruction).
#[derive(Debug, Clone)]
struct RetireRing {
    buf: Vec<u64>,
    head: usize,
    len: usize,
}

impl RetireRing {
    fn new(capacity: usize) -> Self {
        RetireRing {
            buf: vec![0; capacity.max(1)],
            head: 0,
            len: 0,
        }
    }

    fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// The oldest retained timestamp (only meaningful when full: the
    /// instruction that must retire before the next one can dispatch).
    fn oldest(&self) -> u64 {
        self.buf[self.head]
    }

    fn push(&mut self, v: u64) {
        if self.len < self.buf.len() {
            let tail = (self.head + self.len) % self.buf.len();
            self.buf[tail] = v;
            self.len += 1;
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.buf.len();
        }
    }
}

/// Flat renaming table: the ready timestamp of every architectural
/// register, indexed directly by class and number (registers start ready at
/// cycle 0, matching the old map's "absent means 0" rule). Replaces a
/// `HashMap<ArchReg, u64>` that was hashed several times per instruction on
/// the hot path.
#[derive(Debug, Clone)]
struct ReadyTable {
    tile: [u64; 256],
    meta: [u64; 256],
    vec: [u64; 256],
    gpr: [u64; 256],
}

impl ReadyTable {
    fn new() -> Self {
        ReadyTable {
            tile: [0; 256],
            meta: [0; 256],
            vec: [0; 256],
            gpr: [0; 256],
        }
    }

    fn get(&self, r: ArchReg) -> u64 {
        match r {
            ArchReg::Tile(i) => self.tile[i as usize],
            ArchReg::Meta(i) => self.meta[i as usize],
            ArchReg::Vec(i) => self.vec[i as usize],
            ArchReg::Gpr(i) => self.gpr[i as usize],
        }
    }

    fn set(&mut self, r: ArchReg, t: u64) {
        match r {
            ArchReg::Tile(i) => self.tile[i as usize] = t,
            ArchReg::Meta(i) => self.meta[i as usize] = t,
            ArchReg::Vec(i) => self.vec[i as usize] = t,
            ArchReg::Gpr(i) => self.gpr[i as usize] = t,
        }
    }
}

/// Upper bound on tile registers one instruction writes (`TILE_SPMM_R`
/// writes a treg pair; everything else writes at most one tile register).
const MAX_ACC_REGS: usize = 8;

/// Round-robin earliest-free port pool.
#[derive(Debug, Clone)]
struct PortPool {
    next_free: Vec<u64>,
}

impl PortPool {
    fn new(ports: usize) -> Self {
        PortPool {
            next_free: vec![0; ports.max(1)],
        }
    }

    /// Reserves the earliest port at or after `ready`, holding it for
    /// `occupancy` cycles; returns the start cycle.
    fn reserve(&mut self, ready: u64, occupancy: u64) -> u64 {
        let (idx, &free) = self
            .next_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("pool has at least one port");
        let start = ready.max(free);
        self.next_free[idx] = start + occupancy.max(1);
        start
    }
}

/// In-order bandwidth limiter (dispatch or retire): at most `width` events
/// per cycle, in program order.
#[derive(Debug, Clone)]
struct Bandwidth {
    width: usize,
    cycle: u64,
    used: usize,
}

impl Bandwidth {
    fn new(width: usize) -> Self {
        Bandwidth {
            width,
            cycle: 0,
            used: 0,
        }
    }

    /// The earliest cycle at or after `at` with a free slot; consumes it.
    fn take(&mut self, at: u64) -> u64 {
        if at > self.cycle {
            self.cycle = at;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }
}

/// A pluggable per-core timing model: anything that can consume one dynamic
/// instruction at a time and report its local clock.
///
/// [`Core`] is the reference implementation (the §VI-B out-of-order core);
/// [`crate::MultiCoreSim`] is generic over this trait so alternative core
/// models (in-order, perfect, ...) can plug into the same scale-out
/// harness.
pub trait CoreModel {
    /// Advances the core by one instruction. `shared_l2` is the common next
    /// memory level of a multi-core run; `None` models the single-core
    /// setup's flat always-hitting L2.
    fn step(&mut self, op: TraceOp, shared_l2: Option<&mut SharedL2>);

    /// The core's local time so far: the retire timestamp of the last
    /// instruction (0 before any instruction retires).
    fn cycles(&self) -> u64;

    /// Dynamic instructions consumed so far.
    fn instructions(&self) -> u64;

    /// Snapshot of the run so far. `peak_resident_bytes` is supplied by the
    /// caller, who owns the instruction stream and its byte accounting.
    fn result(&self, peak_resident_bytes: u64) -> SimResult;
}

/// One out-of-order core's complete pipeline state: the reusable unit a
/// [`CoreSim`] wraps once and a [`crate::MultiCoreSim`] instantiates per
/// core.
///
/// The state is exactly what the monolithic simulator used to keep in
/// locals — renaming table, engine-ownership map, bandwidth limiters, port
/// pools, ROB/load-buffer occupancy rings, private L1 and engine timer —
/// so stepping a single core through a stream is cycle-identical to the
/// pre-refactor loop.
#[derive(Debug, Clone)]
pub struct Core {
    id: usize,
    cfg: SimConfig,
    ratio: u64,
    engine: EngineTimer,
    l1: CacheModel,
    reg_ready: ReadyTable,
    /// Which accumulator tregs were last written by the engine (so the
    /// engine's internal forwarding rule, not the architectural
    /// completion, governs same-acc chains).
    engine_owns: [bool; 256],
    dispatch_bw: Bandwidth,
    retire_bw: Bandwidth,
    scalar_ports: PortPool,
    vector_ports: PortPool,
    load_ports: PortPool,
    store_ports: PortPool,
    rob_window: RetireRing,
    mem_window: RetireRing,
    instructions: u64,
    last_retire: u64,
    tile_compute: u64,
    engine_first_start: Option<u64>,
    engine_last_completion: u64,
}

impl Core {
    /// A fresh core with the given id (its shared-L2 identity), simulator
    /// configuration and matrix-engine design point.
    pub fn new(id: usize, cfg: SimConfig, engine: EngineConfig) -> Self {
        Self::with_timer(id, cfg, EngineTimer::new(engine))
    }

    /// [`Core::new`] adopting an existing engine timer (so a driver that
    /// owns the timer across runs can lend it to the core).
    pub fn with_timer(id: usize, cfg: SimConfig, engine: EngineTimer) -> Self {
        let ratio = cfg.clock_ratio();
        let l1 = CacheModel::new(cfg.l1_lines, cfg.l1_latency, cfg.l2_latency);
        Core {
            id,
            ratio,
            engine,
            l1,
            reg_ready: ReadyTable::new(),
            engine_owns: [false; 256],
            dispatch_bw: Bandwidth::new(cfg.fetch_width),
            retire_bw: Bandwidth::new(cfg.retire_width),
            scalar_ports: PortPool::new(cfg.scalar_ports),
            vector_ports: PortPool::new(cfg.vector_ports),
            load_ports: PortPool::new(cfg.load_ports),
            store_ports: PortPool::new(1),
            rob_window: RetireRing::new(cfg.rob_entries),
            mem_window: RetireRing::new(cfg.load_buffer_entries),
            instructions: 0,
            last_retire: 0,
            tile_compute: 0,
            engine_first_start: None,
            engine_last_completion: 0,
            cfg,
        }
    }

    /// This core's identity within a multi-core simulation.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Consumes the core, returning its engine timer (with whatever state
    /// the run left in it).
    pub fn into_timer(self) -> EngineTimer {
        self.engine
    }
}

impl CoreModel for Core {
    fn step(&mut self, op: TraceOp, mut shared_l2: Option<&mut SharedL2>) {
        // --- Dispatch: front-end bandwidth, ROB and LSQ occupancy. ---
        let mut earliest = self.cfg.frontend_stages;
        if self.rob_window.is_full() {
            earliest = earliest.max(self.rob_window.oldest());
        }
        let is_mem = op.mem_access().is_some();
        if is_mem && self.mem_window.is_full() {
            earliest = earliest.max(self.mem_window.oldest());
        }
        let dispatch = self.dispatch_bw.take(earliest);

        // --- Source readiness through renaming. ---
        let is_engine_op = op.is_tile_compute();
        let mut acc_regs = [0u8; MAX_ACC_REGS];
        let mut acc_len = 0usize;
        if is_engine_op {
            if let TraceOp::Tile(inst) = op {
                inst.visit_writes(|r| {
                    if let vegeta_isa::RegRef::Tile(t) = r {
                        acc_regs[acc_len] = t.index() as u8;
                        acc_len += 1;
                    }
                });
            }
        }
        let acc_regs = &acc_regs[..acc_len];
        let mut ready = dispatch + 1;
        op.visit_reads(|r| {
            // For engine ops, same-acc dependences on an engine-produced
            // value are resolved inside the engine (output forwarding);
            // skip them here and let EngineTimer apply its rule.
            if is_engine_op {
                if let ArchReg::Tile(t) = r {
                    if acc_regs.contains(&t) && self.engine_owns[t as usize] {
                        return;
                    }
                }
            }
            ready = ready.max(self.reg_ready.get(r));
        });

        // --- Execute. ---
        let complete = match op {
            TraceOp::Tile(inst) if inst.is_compute() => {
                self.tile_compute += 1;
                let acc = acc_regs.first().copied().unwrap_or(0);
                let ready_engine = ready.div_ceil(self.ratio);
                let timing = self.engine.issue(acc, ready_engine);
                let start_core = timing.start * self.ratio;
                let completion_core = timing.completion * self.ratio;
                self.engine_first_start = Some(
                    self.engine_first_start
                        .unwrap_or(start_core)
                        .min(start_core),
                );
                self.engine_last_completion = self.engine_last_completion.max(completion_core);
                completion_core
            }
            // Register-only tile ops (TILE_ZERO) complete in one cycle.
            TraceOp::Tile(_) if op.mem_access().is_none() => ready + 1,
            TraceOp::Tile(_) | TraceOp::VecLoad { .. } | TraceOp::VecStore { .. } => {
                let (addr, bytes, is_store) = op
                    .mem_access()
                    .expect("remaining tile ops and vec mem ops access memory");
                let next = shared_l2.as_mut().map(|l2| (self.id, &mut **l2));
                let (latency, lines) = self.l1.access_range_via(addr, bytes, is_store, next);
                if is_store {
                    let start = self.store_ports.reserve(ready, lines);
                    start + lines // drains into the store buffer
                } else {
                    // One line per port-cycle, pipelined behind the
                    // first-line latency.
                    let start = self.load_ports.reserve(ready, lines);
                    start + latency + lines - 1
                }
            }
            TraceOp::VecFma { .. } => {
                let start = self.vector_ports.reserve(ready, 1);
                start + self.cfg.vec_fma_latency
            }
            TraceOp::VecOp { .. } => {
                let start = self.vector_ports.reserve(ready, 1);
                start + 1
            }
            TraceOp::Scalar { .. } | TraceOp::Branch { .. } => {
                let start = self.scalar_ports.reserve(ready, 1);
                start + 1
            }
        };

        // --- Writeback: update renaming table. ---
        op.visit_writes(|w| {
            self.reg_ready.set(w, complete);
            if let ArchReg::Tile(t) = w {
                self.engine_owns[t as usize] = is_engine_op;
            }
        });

        // --- Retire: in order, bounded width. ---
        let retire = self.retire_bw.take(complete.max(self.last_retire));
        self.last_retire = retire;
        self.rob_window.push(retire);
        if is_mem {
            self.mem_window.push(retire);
        }

        self.instructions += 1;
    }

    fn cycles(&self) -> u64 {
        self.last_retire
    }

    fn instructions(&self) -> u64 {
        self.instructions
    }

    fn result(&self, peak_resident_bytes: u64) -> SimResult {
        SimResult {
            core_cycles: self.last_retire,
            instructions: self.instructions,
            tile_compute: self.tile_compute,
            engine_busy_cycles: self
                .engine_last_completion
                .saturating_sub(self.engine_first_start.unwrap_or(0)),
            peak_resident_bytes,
            cache: self.l1.stats(),
        }
    }
}

/// The trace-driven single-core simulator: a thin driver over one [`Core`].
#[derive(Debug, Clone)]
pub struct CoreSim {
    cfg: SimConfig,
    engine: EngineTimer,
}

impl CoreSim {
    /// Creates a core with the given matrix engine design point.
    pub fn new(cfg: SimConfig, engine: EngineConfig) -> Self {
        CoreSim {
            cfg,
            engine: EngineTimer::new(engine),
        }
    }

    /// Creates a core with the default §VI-B configuration.
    pub fn with_engine(engine: EngineConfig) -> Self {
        Self::new(SimConfig::default(), engine)
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Simulates a materialized trace to completion.
    ///
    /// Replays through the streaming path ([`CoreSim::run_stream`]) — the
    /// two are cycle-identical by construction; only the reported peak
    /// trace residency differs (a materialized trace is wholly resident).
    pub fn run(&mut self, trace: &Trace) -> SimResult {
        self.run_stream(trace.stream())
    }

    /// Simulates a streamed trace to completion, consuming it chunk-wise
    /// without ever holding the full instruction sequence: every occupancy
    /// window (ROB, load buffer) is a fixed ring, so memory is bounded by
    /// the stream's chunk size however many instructions flow through.
    pub fn run_stream<S: InstStream>(&mut self, mut stream: S) -> SimResult {
        self.run_stream_with(&mut stream, None)
    }

    /// [`CoreSim::run_stream`] with a progress callback, invoked every
    /// [`PROGRESS_STRIDE`] instructions (and once at completion) with
    /// `(instructions simulated, total)` — the accounting hook long
    /// full-fidelity replays surface to their drivers.
    pub fn run_stream_with<S: InstStream>(
        &mut self,
        stream: &mut S,
        mut progress: Option<&mut dyn FnMut(u64, u64)>,
    ) -> SimResult {
        let total = stream.remaining();
        let mut core = Core::with_timer(0, self.cfg.clone(), self.engine.clone());
        while let Some(op) = stream.next_op() {
            core.step(op, None);
            if core.instructions().is_multiple_of(PROGRESS_STRIDE) {
                if let Some(cb) = progress.as_deref_mut() {
                    cb(core.instructions(), total);
                }
            }
        }
        // Completion report — unless the stride loop already delivered it
        // (a trace length that is an exact stride multiple).
        let instructions = core.instructions();
        if instructions == 0 || !instructions.is_multiple_of(PROGRESS_STRIDE) {
            if let Some(cb) = progress {
                cb(instructions, total);
            }
        }

        let result = core.result(stream.peak_resident_bytes() as u64);
        // The timer belongs to the simulator across runs (its hazard state
        // deliberately persists for back-to-back replays on one CoreSim).
        self.engine = core.into_timer();
        result
    }
}

/// Instructions between progress-callback invocations of
/// [`CoreSim::run_stream_with`].
pub const PROGRESS_STRIDE: u64 = 1 << 16;

/// Convenience: simulate `trace` on a fresh default core with `engine`.
pub fn simulate(trace: &Trace, engine: EngineConfig) -> SimResult {
    CoreSim::with_engine(engine).run(trace)
}

/// Convenience used throughout the benches: tile instructions only.
pub fn simulate_insts(insts: &[Inst], engine: EngineConfig) -> SimResult {
    let mut trace = Trace::new();
    for &inst in insts {
        trace.push_inst(inst);
    }
    simulate(&trace, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegeta_isa::{TReg, UReg};

    fn spmm_chain(n: usize, same_acc: bool) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            let acc = if same_acc {
                TReg::T2
            } else {
                TReg::new((i % 2) as u8 + 2).unwrap()
            };
            t.push_inst(Inst::TileSpmmU {
                acc,
                a: TReg::T6,
                b: UReg::U0,
            });
        }
        t
    }

    #[test]
    fn empty_trace_takes_no_time() {
        let res = simulate(&Trace::new(), EngineConfig::rasa_dm());
        assert_eq!(res.core_cycles, 0);
        assert_eq!(res.instructions, 0);
    }

    #[test]
    fn zero_cycle_result_guards_derived_metrics() {
        let res = simulate(&Trace::new(), EngineConfig::rasa_dm());
        assert_eq!(res.ipc(), 0.0, "no division by zero cycles");
    }

    #[test]
    fn scalar_ipc_approaches_width() {
        let mut t = Trace::new();
        for i in 0..4000u32 {
            // Independent scalar ops across 8 registers.
            t.push(TraceOp::Scalar {
                dst: (i % 8) as u8,
                src: ((i + 4) % 8) as u8,
            });
        }
        let res = simulate(&t, EngineConfig::rasa_dm());
        assert!(
            res.ipc() > 3.0,
            "4-wide core should sustain ~4 IPC, got {}",
            res.ipc()
        );
    }

    #[test]
    fn engine_clock_domain_scales_latency() {
        let res = simulate(&spmm_chain(1, true), EngineConfig::vegeta_s(16).unwrap());
        let engine_latency = EngineConfig::vegeta_s(16).unwrap().instruction_latency() as u64;
        // One instruction: ~latency x clock ratio (4), plus front end.
        assert!(res.core_cycles >= engine_latency * 4);
        assert!(res.core_cycles < engine_latency * 4 + 64);
    }

    #[test]
    fn dependent_chain_slower_than_independent_without_of() {
        let cfg = EngineConfig::vegeta_s(16).unwrap();
        let dep = simulate(&spmm_chain(32, true), cfg.clone());
        let ind = simulate(&spmm_chain(32, false), cfg);
        assert!(
            dep.core_cycles > ind.core_cycles,
            "same-acc chain {} vs rotated {}",
            dep.core_cycles,
            ind.core_cycles
        );
    }

    #[test]
    fn output_forwarding_speeds_up_dependent_chains() {
        let base = EngineConfig::vegeta_s(16).unwrap();
        let no_of = simulate(&spmm_chain(64, true), base.clone());
        let with_of = simulate(&spmm_chain(64, true), base.with_output_forwarding(true));
        assert!(
            (with_of.core_cycles as f64) < no_of.core_cycles as f64 * 0.75,
            "OF {} vs no-OF {}",
            with_of.core_cycles,
            no_of.core_cycles
        );
    }

    #[test]
    fn rasa_dm_beats_rasa_sm_on_independent_tiles() {
        // §VI-C: RASA-SM's stage mismatch gives it the highest runtime.
        let t = spmm_gemm_chain(64);
        let sm = simulate(&t, EngineConfig::rasa_sm());
        let dm = simulate(&t, EngineConfig::rasa_dm());
        assert!(
            (dm.core_cycles as f64) < sm.core_cycles as f64 * 0.65,
            "DM {} vs SM {}",
            dm.core_cycles,
            sm.core_cycles
        );
    }

    fn spmm_gemm_chain(n: usize) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            let acc = TReg::new((i % 4) as u8).unwrap();
            t.push_inst(Inst::TileGemm {
                acc,
                a: TReg::T6,
                b: TReg::T7,
            });
        }
        t
    }

    #[test]
    fn rob_limits_runahead() {
        // A very long chain of independent loads cannot all be in flight;
        // the ROB forces dispatch to track retirement.
        let mut t = Trace::new();
        for i in 0..2000u64 {
            t.push(TraceOp::VecLoad {
                dst: (i % 16) as u8,
                addr: i * 64,
            });
        }
        let res = simulate(&t, EngineConfig::rasa_dm());
        // Two load ports, 2000 loads -> at least 1000 cycles.
        assert!(res.core_cycles >= 1000);
        assert_eq!(
            res.cache.l2_hits, 2000,
            "every distinct line misses L1 once"
        );
    }

    #[test]
    fn tile_load_occupies_port_per_line() {
        let mut t = Trace::new();
        for i in 0..64u64 {
            t.push_inst(Inst::TileLoadT {
                dst: TReg::new((i % 8) as u8).unwrap(),
                addr: i * 1024,
            });
        }
        let res = simulate(&t, EngineConfig::rasa_dm());
        // 64 tile loads x 16 lines = 1024 line transfers over 2 ports.
        assert!(res.core_cycles >= 512, "got {}", res.core_cycles);
    }

    #[test]
    fn cache_reuse_lowers_latency() {
        let mut t = Trace::new();
        for _ in 0..4 {
            for j in 0..4u64 {
                t.push(TraceOp::VecLoad {
                    dst: j as u8,
                    addr: j * 64,
                });
            }
        }
        let res = simulate(&t, EngineConfig::rasa_dm());
        assert_eq!(res.cache.l2_hits, 4);
        assert_eq!(res.cache.l1_hits, 12);
    }

    #[test]
    fn streamed_replay_is_cycle_identical_to_materialized() {
        use vegeta_isa::stream::{BlockEmitter, ChunkedStream};

        // A mixed workload emitted block-wise: loads, engine ops, scalars.
        struct Blocks;
        impl BlockEmitter for Blocks {
            fn blocks(&self) -> usize {
                200
            }
            fn block_ops(&self, _block: usize) -> u64 {
                4
            }
            fn emit_block(&self, block: usize, out: &mut Vec<TraceOp>) {
                out.push(TraceOp::VecLoad {
                    dst: (block % 16) as u8,
                    addr: block as u64 * 64,
                });
                out.push(TraceOp::Tile(Inst::TileSpmmU {
                    acc: TReg::new((block % 3) as u8).unwrap(),
                    a: TReg::T6,
                    b: UReg::U2,
                }));
                out.push(TraceOp::Scalar { dst: 0, src: 0 });
                out.push(TraceOp::Branch { cond: 0 });
            }
        }

        let mut stream = ChunkedStream::new(Blocks);
        let materialized = {
            use vegeta_isa::stream::InstStream;
            ChunkedStream::new(Blocks).collect_trace()
        };
        let engine = EngineConfig::vegeta_s(16).unwrap();
        let from_trace = CoreSim::with_engine(engine.clone()).run(&materialized);
        let from_stream = CoreSim::with_engine(engine).run_stream(&mut stream);
        assert_eq!(from_stream.core_cycles, from_trace.core_cycles);
        assert_eq!(from_stream.instructions, from_trace.instructions);
        assert_eq!(from_stream.tile_compute, from_trace.tile_compute);
        assert_eq!(
            from_stream.engine_busy_cycles,
            from_trace.engine_busy_cycles
        );
        assert_eq!(from_stream.cache, from_trace.cache);
        // Only residency differs: the stream never held the whole trace.
        assert!(
            from_stream.peak_resident_bytes < from_trace.peak_resident_bytes / 8,
            "stream {} vs materialized {}",
            from_stream.peak_resident_bytes,
            from_trace.peak_resident_bytes
        );
    }

    #[test]
    fn stepping_a_core_directly_matches_the_coresim_driver() {
        // The extraction contract: manually stepping one `Core` over the ops
        // replays exactly what `CoreSim` reports.
        let trace = spmm_chain(48, false);
        let engine = EngineConfig::vegeta_s(4).unwrap();
        let expected = CoreSim::with_engine(engine.clone()).run(&trace);
        let mut core = Core::new(0, SimConfig::default(), engine);
        for &op in trace.ops() {
            core.step(op, None);
        }
        assert_eq!(core.cycles(), expected.core_cycles);
        assert_eq!(core.instructions(), expected.instructions);
        let got = core.result(expected.peak_resident_bytes);
        assert_eq!(got, expected);
    }

    #[test]
    fn progress_callback_reports_monotonic_counts() {
        let mut t = Trace::new();
        for i in 0..500u32 {
            t.push(TraceOp::Scalar {
                dst: (i % 8) as u8,
                src: 0,
            });
        }
        let mut seen: Vec<(u64, u64)> = Vec::new();
        let mut stream = t.stream();
        let res = CoreSim::with_engine(EngineConfig::rasa_dm()).run_stream_with(
            &mut stream,
            Some(&mut |done: u64, total| seen.push((done, total))),
        );
        assert_eq!(res.instructions, 500);
        assert_eq!(seen.last(), Some(&(500, 500)), "final completion report");
    }

    #[test]
    fn progress_completion_fires_once_at_exact_stride_multiples() {
        let mut t = Trace::new();
        for i in 0..PROGRESS_STRIDE {
            t.push(TraceOp::Scalar {
                dst: (i % 8) as u8,
                src: 0,
            });
        }
        let mut seen: Vec<u64> = Vec::new();
        let mut stream = t.stream();
        CoreSim::with_engine(EngineConfig::rasa_dm())
            .run_stream_with(&mut stream, Some(&mut |done: u64, _| seen.push(done)));
        assert_eq!(
            seen,
            vec![PROGRESS_STRIDE],
            "one completion event, not a duplicate"
        );
    }

    #[test]
    fn result_seconds_uses_core_clock() {
        let cfg = SimConfig::default();
        let res = SimResult {
            core_cycles: 2_000_000_000,
            instructions: 1,
            tile_compute: 0,
            engine_busy_cycles: 0,
            peak_resident_bytes: 0,
            cache: CacheStats::default(),
        };
        assert!((res.seconds(&cfg) - 1.0).abs() < 1e-12);
        assert_eq!(cfg.clock_ratio(), 4);
    }
}
