//! Trace-driven CPU simulator with an integrated VEGETA matrix engine.
//!
//! This crate is the repository's substitute for MacSim (§VI-A/B): kernels
//! from `vegeta-kernels` produce dynamic instruction traces, and [`CoreSim`]
//! replays them on an out-of-order core model with the paper's parameters —
//! 4-wide fetch/issue/retire, 16 front-end stages, a 97-entry ROB, a
//! 96-entry load buffer, a 2 GHz core clock, data prefetched into L2, and
//! the matrix engine running in its own 0.5 GHz domain with the WL/FF/FS/DR
//! pipelining and output-forwarding rules of §V-C.
//!
//! The timing layer is composable: [`Core`] is one core's complete pipeline
//! state behind the [`CoreModel`] trait, [`CoreSim`] drives a single core
//! (the paper's setup), and [`MultiCoreSim`] interleaves many cores —
//! private L1s, one coherence-free [`SharedL2`] — to answer how a sharded
//! GEMM scales to 2/4/8/16 matrix-engine-equipped cores.
//!
//! # Example
//!
//! ```
//! use vegeta_engine::EngineConfig;
//! use vegeta_isa::{Inst, TReg, UReg};
//! use vegeta_sim::simulate_insts;
//!
//! let insts: Vec<Inst> = (0..8)
//!     .map(|i| Inst::TileSpmmU {
//!         acc: TReg::new(i % 2).unwrap(),
//!         a: TReg::T6,
//!         b: UReg::U2,
//!     })
//!     .collect();
//! let dm = simulate_insts(&insts, EngineConfig::rasa_dm());
//! assert!(dm.core_cycles > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
mod core;
pub mod event;
pub mod multicore;

pub use crate::core::{
    simulate, simulate_insts, Core, CoreModel, CoreSim, SimConfig, SimResult, PROGRESS_STRIDE,
};
pub use cache::{CacheModel, CacheStats, SharedL2, SharedL2Stats, LINE_BYTES};
pub use event::EventQueue;
pub use multicore::{
    ExecMode, MultiCoreConfig, MultiCoreResult, MultiCoreSim, SchedulerPolicy, HOST_THREADS_ENV,
};
