//! A compact cache model for the evaluation's memory assumption.
//!
//! §VI-B fixes the memory system for the Fig. 13 experiments: "we assume
//! that the data is prefetched to the L2 cache", so every miss in the L1 is
//! an L2 hit. The model therefore only needs to decide L1-hit vs L2-hit and
//! to count traffic; it tracks cache lines with an LRU replacement policy.

use std::collections::HashMap;

/// Cache line size in bytes.
pub const LINE_BYTES: u64 = 64;

/// Access statistics of the cache model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line accesses that hit in L1.
    pub l1_hits: u64,
    /// Line accesses that missed L1 (and hit L2, per the evaluation setup).
    pub l2_hits: u64,
    /// Bytes transferred from the memory system into the core.
    pub bytes_read: u64,
    /// Bytes written back toward the memory system.
    pub bytes_written: u64,
}

/// An LRU-tracked L1 backed by an always-hitting L2.
#[derive(Debug, Clone)]
pub struct CacheModel {
    capacity_lines: usize,
    l1_latency: u64,
    l2_latency: u64,
    /// line address -> last-use stamp.
    lines: HashMap<u64, u64>,
    stamp: u64,
    stats: CacheStats,
}

impl CacheModel {
    /// Creates a cache with `capacity_lines` L1 lines and the given hit
    /// latencies (in core cycles).
    pub fn new(capacity_lines: usize, l1_latency: u64, l2_latency: u64) -> Self {
        CacheModel {
            capacity_lines,
            l1_latency,
            l2_latency,
            lines: HashMap::new(),
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up one line, updating LRU state, and returns its load-to-use
    /// latency.
    pub fn access_line(&mut self, line_addr: u64, is_store: bool) -> u64 {
        self.stamp += 1;
        if is_store {
            self.stats.bytes_written += LINE_BYTES;
        } else {
            self.stats.bytes_read += LINE_BYTES;
        }
        if self.lines.contains_key(&line_addr) {
            self.lines.insert(line_addr, self.stamp);
            self.stats.l1_hits += 1;
            return self.l1_latency;
        }
        self.stats.l2_hits += 1;
        if self.lines.len() >= self.capacity_lines {
            // Evict the least recently used line.
            if let Some((&victim, _)) = self.lines.iter().min_by_key(|(_, &s)| s) {
                self.lines.remove(&victim);
            }
        }
        self.lines.insert(line_addr, self.stamp);
        self.l2_latency
    }

    /// Accesses a byte range, touching every covered line; returns the
    /// latency until the *first* line is available and the number of lines.
    ///
    /// Tile loads are converted into one request per 64 B line (§V-F); the
    /// pipelined transfer cost is handled by the port model in the core.
    pub fn access_range(&mut self, addr: u64, bytes: usize, is_store: bool) -> (u64, u64) {
        let first = addr / LINE_BYTES;
        let last = (addr + bytes.max(1) as u64 - 1) / LINE_BYTES;
        let mut worst = 0;
        for line in first..=last {
            worst = worst.max(self.access_line(line * LINE_BYTES, is_store));
        }
        (worst, last - first + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_hits_l2_then_l1() {
        let mut c = CacheModel::new(4, 5, 14);
        assert_eq!(c.access_line(0, false), 14);
        assert_eq!(c.access_line(0, false), 5);
        assert_eq!(c.stats().l1_hits, 1);
        assert_eq!(c.stats().l2_hits, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = CacheModel::new(2, 5, 14);
        c.access_line(0, false);
        c.access_line(64, false);
        c.access_line(0, false); // refresh line 0
        c.access_line(128, false); // evicts 64
        assert_eq!(c.access_line(0, false), 5, "line 0 must still be resident");
        assert_eq!(c.access_line(64, false), 14, "line 64 was evicted");
    }

    #[test]
    fn range_access_touches_every_line() {
        let mut c = CacheModel::new(64, 5, 14);
        let (lat, lines) = c.access_range(0, 1024, false);
        assert_eq!(lines, 16, "a 1 KB tile load is 16 line requests");
        assert_eq!(lat, 14);
        assert_eq!(c.stats().bytes_read, 1024);
        let (lat2, _) = c.access_range(0, 1024, false);
        assert_eq!(lat2, 5, "second touch hits L1");
    }

    #[test]
    fn unaligned_range_rounds_out_to_lines() {
        let mut c = CacheModel::new(64, 5, 14);
        let (_, lines) = c.access_range(60, 8, false);
        assert_eq!(lines, 2, "straddles a line boundary");
    }

    #[test]
    fn stores_count_write_traffic() {
        let mut c = CacheModel::new(64, 5, 14);
        c.access_range(0, 128, true);
        assert_eq!(c.stats().bytes_written, 128);
        assert_eq!(c.stats().bytes_read, 0);
    }
}
