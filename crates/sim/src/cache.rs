//! A compact two-level cache model for the evaluation's memory assumption.
//!
//! §VI-B fixes the memory system for the Fig. 13 experiments: "we assume
//! that the data is prefetched to the L2 cache", so every miss in the L1 is
//! served by the L2. The model therefore splits into
//!
//! * [`CacheModel`] — the **private L1** one core owns: LRU line tracking,
//!   L1-hit vs beyond-L1 classification, traffic counting. On a miss it
//!   either charges the flat backing-store latency (the single-core setup,
//!   exactly the paper's assumption) or consults a shared next level.
//! * [`SharedL2`] — the **shared L2** of a multi-core simulation: one
//!   residency-tracked, coherence-free level every core's L1 misses flow
//!   into. A line any core brought in hits for every other core (a *shared
//!   hit* — no invalidations, the workloads are read-shared weights), and
//!   under the §VI-B prefetch assumption even cold lines are already
//!   resident. [`SharedL2Stats`] reports the hit/miss/sharing split.
//!
//! Per-core [`CacheStats`] merge across cores ([`CacheStats::merge`] /
//! `+=`) so a multi-core run can report aggregate traffic.
//!
//! # Replacement in O(1)
//!
//! Recency is kept as an intrusive doubly-linked list over slot indices
//! (`LruTable`): a hit unlinks the line and re-links it at the MRU tail,
//! a miss at capacity evicts the list head. Because every access moves the
//! touched line to the tail, the head is always the line whose last use is
//! oldest — the exact same victim a last-use-stamp scan would pick (stamps
//! are strictly increasing, so the minimum stamp *is* the list head). This
//! turned the per-miss victim search from O(capacity) into O(1), which is
//! what makes full-fidelity replays fast; the equivalence is pinned by a
//! randomized differential test against a stamp-scan reference model.

use std::collections::HashMap;

/// Cache line size in bytes.
pub const LINE_BYTES: u64 = 64;

/// Access statistics of one private L1 cache model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line accesses that hit in L1.
    pub l1_hits: u64,
    /// Line accesses that missed L1 and were served by the next level
    /// (the always-hitting L2 of the single-core evaluation setup, or the
    /// shared L2 of a multi-core run — its own hit/miss split lives in
    /// [`SharedL2Stats`]).
    pub l2_hits: u64,
    /// Bytes transferred from the memory system into the core.
    pub bytes_read: u64,
    /// Bytes written back toward the memory system.
    pub bytes_written: u64,
}

impl CacheStats {
    /// Accumulates `other` into `self` — the aggregation a shared L2 (and
    /// any per-core sweep rollup) needs.
    pub fn merge(&mut self, other: &CacheStats) {
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

impl std::ops::AddAssign<&CacheStats> for CacheStats {
    fn add_assign(&mut self, other: &CacheStats) {
        self.merge(other);
    }
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, other: CacheStats) {
        self.merge(&other);
    }
}

/// Statistics of a [`SharedL2`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedL2Stats {
    /// Line lookups arriving from any core's L1 miss.
    pub accesses: u64,
    /// Lookups that found the line resident (or covered by the prefetch
    /// assumption).
    pub hits: u64,
    /// Lookups that had to fetch the line from memory (only possible with
    /// the prefetch assumption disabled).
    pub misses: u64,
    /// Hits on a line first brought in by a *different* core — the
    /// cross-core reuse a shared cache buys (shared `B` tiles, mostly).
    pub shared_hits: u64,
}

impl SharedL2Stats {
    /// Fraction of L2 lookups that reused a line another core fetched;
    /// 0.0 when the L2 saw no traffic.
    pub fn shared_fraction(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.shared_hits as f64 / self.accesses as f64
    }
}

/// One time-stamped shared-L2 lookup recorded by a log-sink L2
/// ([`SharedL2::log_sink`]) during a host-parallel main phase, replayed
/// later on the real L2 in exact global `(time, core)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct L2LogEntry {
    /// The accessing core's pipeline clock when the instruction making
    /// this access was woken (nondecreasing within one worker's log).
    pub time: u64,
    /// The accessing core's id (what [`SharedL2::access_line`] was handed).
    pub core: u32,
    /// The line address the L1 missed on.
    pub line: u64,
}

/// Sentinel for "no slot" in the intrusive recency list.
const NO_SLOT: u32 = u32::MAX;

/// An exact-LRU residency table: line address → slot, with recency as an
/// intrusive doubly-linked list over slots (head = least recently used,
/// tail = most recently used).
///
/// Every operation is O(1): a hit unlinks + re-links at the tail, an
/// insert appends at the tail (reusing a freed slot when one exists), and
/// eviction pops the head. The head is always the exact least-recently-
/// used line, so this is observationally identical to scanning for the
/// minimum last-use stamp — just without the O(capacity) scan per miss.
#[derive(Debug, Clone, Default)]
struct LruTable {
    index: HashMap<u64, u32>,
    addrs: Vec<u64>,
    prev: Vec<u32>,
    next: Vec<u32>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
}

impl LruTable {
    fn new() -> Self {
        LruTable {
            index: HashMap::new(),
            addrs: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            free: Vec::new(),
            head: NO_SLOT,
            tail: NO_SLOT,
        }
    }

    /// Resident lines.
    fn len(&self) -> usize {
        self.index.len()
    }

    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NO_SLOT {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NO_SLOT {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    fn link_tail(&mut self, slot: u32) {
        self.prev[slot as usize] = self.tail;
        self.next[slot as usize] = NO_SLOT;
        if self.tail == NO_SLOT {
            self.head = slot;
        } else {
            self.next[self.tail as usize] = slot;
        }
        self.tail = slot;
    }

    /// If `addr` is resident, refreshes it to most-recently-used and
    /// returns its slot.
    fn touch(&mut self, addr: u64) -> Option<u32> {
        let slot = *self.index.get(&addr)?;
        if self.tail != slot {
            self.unlink(slot);
            self.link_tail(slot);
        }
        Some(slot)
    }

    /// Inserts a non-resident `addr` as most-recently-used, returning its
    /// slot.
    fn insert(&mut self, addr: u64) -> u32 {
        debug_assert!(!self.index.contains_key(&addr), "insert of resident line");
        let slot = if let Some(slot) = self.free.pop() {
            self.addrs[slot as usize] = addr;
            slot
        } else {
            let slot = u32::try_from(self.addrs.len()).expect("fewer than 2^32 cache lines");
            self.addrs.push(addr);
            self.prev.push(NO_SLOT);
            self.next.push(NO_SLOT);
            slot
        };
        self.index.insert(addr, slot);
        self.link_tail(slot);
        slot
    }

    /// Evicts the least-recently-used line, returning its freed slot.
    /// Returns `None` when the table is empty (mirroring the stamp-scan
    /// reference, which finds no victim in an empty map).
    fn evict_lru(&mut self) -> Option<u32> {
        let victim = self.head;
        if victim == NO_SLOT {
            return None;
        }
        self.unlink(victim);
        self.index.remove(&self.addrs[victim as usize]);
        self.free.push(victim);
        Some(victim)
    }
}

/// A coherence-free shared L2: the common next level of every core's
/// private L1 in a [`crate::MultiCoreSim`].
///
/// *Coherence-free* because the simulated kernels share only read-only
/// operands (`B` tiles) and write disjoint `C` ranges per shard, so no
/// invalidation traffic is modelled: a line is resident for every core once
/// any core has touched it. With `prefetched` set (the §VI-B default) every
/// lookup is a hit at `hit_latency`, exactly as the single-core model
/// assumes; without it, cold lines cost `miss_latency` and capacity is
/// enforced with exact O(1) LRU replacement.
#[derive(Debug, Clone)]
pub struct SharedL2 {
    capacity_lines: usize,
    hit_latency: u64,
    miss_latency: u64,
    prefetched: bool,
    lines: LruTable,
    /// Per-slot first-toucher core (sharing attribution), parallel to the
    /// recency table's slots.
    owners: Vec<usize>,
    stats: SharedL2Stats,
    /// Log-sink mode ([`SharedL2::log_sink`]): record accesses instead of
    /// tracking residency, for deferred replay on the real L2.
    logging: bool,
    log: Vec<L2LogEntry>,
    log_stamp: u64,
}

impl SharedL2 {
    /// A shared L2 with `capacity_lines` lines, hitting in `hit_latency`
    /// core cycles and missing to memory in `miss_latency`, with the
    /// prefetch assumption *off*.
    pub fn new(capacity_lines: usize, hit_latency: u64, miss_latency: u64) -> Self {
        SharedL2 {
            capacity_lines: capacity_lines.max(1),
            hit_latency,
            miss_latency,
            prefetched: false,
            lines: LruTable::new(),
            owners: Vec::new(),
            stats: SharedL2Stats::default(),
            logging: false,
            log: Vec::new(),
            log_stamp: 0,
        }
    }

    /// A log-sink twin of a *prefetched* shared L2: every
    /// [`SharedL2::access_line`] call appends an [`L2LogEntry`] stamped
    /// with the last [`SharedL2::set_log_stamp`] time and returns
    /// `hit_latency` — exactly what a prefetched L2 returns on every
    /// lookup — without touching residency, ownership, or statistics.
    ///
    /// This is what makes the host-parallel multi-core mode sound: under
    /// the §VI-B prefetch assumption the latency a core observes is a
    /// constant, so cores can be simulated on separate host threads
    /// against private log sinks, and the real L2's state evolution is
    /// reconstructed afterwards by replaying the merged logs in global
    /// `(time, core)` order (see `multicore.rs`).
    pub(crate) fn log_sink(hit_latency: u64) -> Self {
        let mut l2 = SharedL2::new(1, hit_latency, hit_latency).with_prefetched(true);
        l2.logging = true;
        l2
    }

    /// Sets the timestamp recorded on subsequently logged accesses (the
    /// owning core's clock at the wake that issued them). Log-sink mode
    /// only; a no-op otherwise.
    pub(crate) fn set_log_stamp(&mut self, time: u64) {
        self.log_stamp = time;
    }

    /// Logged entries not yet drained (log-sink mode only).
    pub(crate) fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Drains the accumulated access log, leaving it empty — the chunked
    /// hand-off that keeps a worker's log residency bounded.
    pub(crate) fn take_log(&mut self) -> Vec<L2LogEntry> {
        std::mem::take(&mut self.log)
    }

    /// Enables (or disables) the §VI-B prefetch assumption: every lookup
    /// hits at the hit latency, and residency tracking only attributes
    /// sharing.
    pub fn with_prefetched(mut self, prefetched: bool) -> Self {
        self.prefetched = prefetched;
        self
    }

    /// Whether the prefetch assumption is on.
    pub fn is_prefetched(&self) -> bool {
        self.prefetched
    }

    /// Statistics so far.
    pub fn stats(&self) -> SharedL2Stats {
        self.stats
    }

    /// Looks up one line on behalf of `core`, updating residency and
    /// sharing attribution; returns the load-to-use latency.
    pub fn access_line(&mut self, core: usize, line_addr: u64) -> u64 {
        if self.logging {
            self.log.push(L2LogEntry {
                time: self.log_stamp,
                core: u32::try_from(core).expect("fewer than 2^32 cores"),
                line: line_addr,
            });
            return self.hit_latency;
        }
        self.stats.accesses += 1;
        if let Some(slot) = self.lines.touch(line_addr) {
            self.stats.hits += 1;
            if self.owners[slot as usize] != core {
                self.stats.shared_hits += 1;
            }
            return self.hit_latency;
        }
        // Capacity only matters when misses cost something: under the
        // prefetch assumption residency is sharing attribution only.
        if !self.prefetched && self.lines.len() >= self.capacity_lines {
            self.lines.evict_lru();
        }
        let slot = self.lines.insert(line_addr) as usize;
        if slot >= self.owners.len() {
            self.owners.resize(slot + 1, core);
        }
        self.owners[slot] = core;
        if self.prefetched {
            // The data was preloaded (§VI-B): the first touch is a hit too.
            self.stats.hits += 1;
            self.hit_latency
        } else {
            self.stats.misses += 1;
            self.miss_latency
        }
    }
}

/// An LRU-tracked private L1 backed by a flat next level (the single-core
/// always-hitting L2) or, in multi-core runs, a [`SharedL2`].
#[derive(Debug, Clone)]
pub struct CacheModel {
    capacity_lines: usize,
    l1_latency: u64,
    l2_latency: u64,
    lines: LruTable,
    stats: CacheStats,
}

impl CacheModel {
    /// Creates a cache with `capacity_lines` L1 lines and the given hit
    /// latencies (in core cycles).
    pub fn new(capacity_lines: usize, l1_latency: u64, l2_latency: u64) -> Self {
        CacheModel {
            capacity_lines: capacity_lines.max(1),
            l1_latency,
            l2_latency,
            lines: LruTable::new(),
            stats: CacheStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up one line, updating LRU state, and returns its load-to-use
    /// latency; misses are served by the flat always-hitting L2.
    pub fn access_line(&mut self, line_addr: u64, is_store: bool) -> u64 {
        self.access_line_via(line_addr, is_store, None)
    }

    /// [`CacheModel::access_line`] with an explicit next level: when
    /// `next` is `Some((core, l2))`, an L1 miss consults the shared L2 on
    /// behalf of `core` instead of charging the flat L2 latency.
    pub fn access_line_via(
        &mut self,
        line_addr: u64,
        is_store: bool,
        next: Option<(usize, &mut SharedL2)>,
    ) -> u64 {
        if is_store {
            self.stats.bytes_written += LINE_BYTES;
        } else {
            self.stats.bytes_read += LINE_BYTES;
        }
        if self.lines.touch(line_addr).is_some() {
            self.stats.l1_hits += 1;
            return self.l1_latency;
        }
        self.stats.l2_hits += 1;
        if self.lines.len() >= self.capacity_lines {
            // Evict the least recently used line (the list head — exactly
            // the line a min-last-use-stamp scan would pick).
            self.lines.evict_lru();
        }
        self.lines.insert(line_addr);
        match next {
            Some((core, l2)) => l2.access_line(core, line_addr),
            None => self.l2_latency,
        }
    }

    /// Accesses a byte range, touching every covered line; returns the
    /// latency until the *first* line is available and the number of lines.
    ///
    /// Tile loads are converted into one request per 64 B line (§V-F); the
    /// pipelined transfer cost is handled by the port model in the core.
    pub fn access_range(&mut self, addr: u64, bytes: usize, is_store: bool) -> (u64, u64) {
        self.access_range_via(addr, bytes, is_store, None)
    }

    /// [`CacheModel::access_range`] with an explicit shared next level (see
    /// [`CacheModel::access_line_via`]).
    pub fn access_range_via(
        &mut self,
        addr: u64,
        bytes: usize,
        is_store: bool,
        mut next: Option<(usize, &mut SharedL2)>,
    ) -> (u64, u64) {
        let first = addr / LINE_BYTES;
        let last = (addr + bytes.max(1) as u64 - 1) / LINE_BYTES;
        let mut worst = 0;
        for line in first..=last {
            let hop = match next.as_mut() {
                Some((core, l2)) => {
                    self.access_line_via(line * LINE_BYTES, is_store, Some((*core, l2)))
                }
                None => self.access_line(line * LINE_BYTES, is_store),
            };
            worst = worst.max(hop);
        }
        (worst, last - first + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_hits_l2_then_l1() {
        let mut c = CacheModel::new(4, 5, 14);
        assert_eq!(c.access_line(0, false), 14);
        assert_eq!(c.access_line(0, false), 5);
        assert_eq!(c.stats().l1_hits, 1);
        assert_eq!(c.stats().l2_hits, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = CacheModel::new(2, 5, 14);
        c.access_line(0, false);
        c.access_line(64, false);
        c.access_line(0, false); // refresh line 0
        c.access_line(128, false); // evicts 64
        assert_eq!(c.access_line(0, false), 5, "line 0 must still be resident");
        assert_eq!(c.access_line(64, false), 14, "line 64 was evicted");
    }

    #[test]
    fn range_access_touches_every_line() {
        let mut c = CacheModel::new(64, 5, 14);
        let (lat, lines) = c.access_range(0, 1024, false);
        assert_eq!(lines, 16, "a 1 KB tile load is 16 line requests");
        assert_eq!(lat, 14);
        assert_eq!(c.stats().bytes_read, 1024);
        let (lat2, _) = c.access_range(0, 1024, false);
        assert_eq!(lat2, 5, "second touch hits L1");
    }

    #[test]
    fn unaligned_range_rounds_out_to_lines() {
        let mut c = CacheModel::new(64, 5, 14);
        let (_, lines) = c.access_range(60, 8, false);
        assert_eq!(lines, 2, "straddles a line boundary");
    }

    #[test]
    fn stores_count_write_traffic() {
        let mut c = CacheModel::new(64, 5, 14);
        c.access_range(0, 128, true);
        assert_eq!(c.stats().bytes_written, 128);
        assert_eq!(c.stats().bytes_read, 0);
    }

    #[test]
    fn stats_merge_and_add_assign_accumulate_every_field() {
        let a = CacheStats {
            l1_hits: 1,
            l2_hits: 2,
            bytes_read: 64,
            bytes_written: 128,
        };
        let b = CacheStats {
            l1_hits: 10,
            l2_hits: 20,
            bytes_read: 640,
            bytes_written: 1280,
        };
        let expected = CacheStats {
            l1_hits: 11,
            l2_hits: 22,
            bytes_read: 704,
            bytes_written: 1408,
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, expected);
        let mut by_ref = a;
        by_ref += &b;
        assert_eq!(by_ref, expected);
        let mut by_value = a;
        by_value += b;
        assert_eq!(by_value, expected);
        // Merging the default is the identity.
        let mut id = a;
        id += CacheStats::default();
        assert_eq!(id, a);
    }

    #[test]
    fn shared_l2_attributes_cross_core_hits() {
        let mut l2 = SharedL2::new(64, 14, 100);
        assert_eq!(l2.access_line(0, 0), 100, "cold miss goes to memory");
        assert_eq!(l2.access_line(0, 0), 14, "same-core reuse is a plain hit");
        assert_eq!(
            l2.access_line(1, 0),
            14,
            "another core hits the shared line"
        );
        let stats = l2.stats();
        assert_eq!(stats.accesses, 3);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.shared_hits, 1, "only the cross-core hit is shared");
        assert!((stats.shared_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(SharedL2Stats::default().shared_fraction(), 0.0);
    }

    #[test]
    fn prefetched_shared_l2_always_hits_at_l2_latency() {
        let mut l2 = SharedL2::new(4, 14, 100).with_prefetched(true);
        assert!(l2.is_prefetched());
        for line in 0..8u64 {
            assert_eq!(l2.access_line(0, line * 64), 14, "prefetched: never a miss");
        }
        let stats = l2.stats();
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hits, 8);
    }

    #[test]
    fn shared_l2_capacity_evicts_lru() {
        let mut l2 = SharedL2::new(2, 14, 100);
        l2.access_line(0, 0);
        l2.access_line(0, 64);
        l2.access_line(0, 0); // refresh line 0
        l2.access_line(0, 128); // evicts 64
        assert_eq!(l2.access_line(0, 0), 14, "line 0 stayed resident");
        assert_eq!(l2.access_line(0, 64), 100, "line 64 was evicted");
    }

    #[test]
    fn l1_miss_consults_the_shared_next_level() {
        let mut l2 = SharedL2::new(64, 14, 100).with_prefetched(true);
        let mut c0 = CacheModel::new(4, 5, 14);
        let mut c1 = CacheModel::new(4, 5, 14);
        let (lat, lines) = c0.access_range_via(0, 128, false, Some((0, &mut l2)));
        assert_eq!((lat, lines), (14, 2));
        // Core 1 misses its own private L1 but shares the L2 lines.
        let (lat1, _) = c1.access_range_via(0, 128, false, Some((1, &mut l2)));
        assert_eq!(lat1, 14);
        assert_eq!(c1.stats().l2_hits, 2, "private L1 still classifies misses");
        assert_eq!(l2.stats().shared_hits, 2);
    }

    /// The pre-optimization reference: last-use stamps in a map, with an
    /// O(capacity) min-stamp scan to pick the eviction victim. The O(1)
    /// list must be observationally identical to this.
    struct StampScanReference {
        capacity: usize,
        l1_latency: u64,
        l2_latency: u64,
        lines: HashMap<u64, u64>,
        stamp: u64,
    }

    impl StampScanReference {
        fn new(capacity: usize, l1_latency: u64, l2_latency: u64) -> Self {
            StampScanReference {
                capacity: capacity.max(1),
                l1_latency,
                l2_latency,
                lines: HashMap::new(),
                stamp: 0,
            }
        }

        fn access_line(&mut self, line_addr: u64) -> u64 {
            self.stamp += 1;
            if self.lines.contains_key(&line_addr) {
                self.lines.insert(line_addr, self.stamp);
                return self.l1_latency;
            }
            if self.lines.len() >= self.capacity {
                if let Some((&victim, _)) = self.lines.iter().min_by_key(|(_, &s)| s) {
                    self.lines.remove(&victim);
                }
            }
            self.lines.insert(line_addr, self.stamp);
            self.l2_latency
        }
    }

    #[test]
    fn o1_lru_is_identical_to_the_stamp_scan_reference() {
        // Deterministic xorshift address sequences over a working set a
        // few times the capacity, across several capacities: the fast list
        // and the reference scan must agree on every single access.
        for capacity in [1usize, 2, 3, 7, 16, 64] {
            let mut fast = CacheModel::new(capacity, 5, 14);
            let mut reference = StampScanReference::new(capacity, 5, 14);
            let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ capacity as u64;
            for step in 0..4000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Mix uniform-random and looping sequential phases so both
                // thrash and reuse paths are exercised.
                let addr = if step % 512 < 256 {
                    (x % (capacity as u64 * 3 + 1)) * LINE_BYTES
                } else {
                    (step % (capacity as u64 * 2 + 1)) * LINE_BYTES
                };
                assert_eq!(
                    fast.access_line(addr, false),
                    reference.access_line(addr),
                    "capacity {capacity}, step {step}, addr {addr}"
                );
            }
            assert_eq!(fast.lines.len(), reference.lines.len());
        }
    }

    #[test]
    fn shared_l2_o1_lru_matches_reference_victims() {
        // Same differential for the shared level with the prefetch
        // assumption off (the only configuration that evicts).
        for capacity in [1usize, 2, 5, 32] {
            let mut fast = SharedL2::new(capacity, 14, 100);
            let mut reference = StampScanReference::new(capacity, 14, 100);
            let mut x = 0xdead_beef_cafe_f00du64 ^ capacity as u64;
            for step in 0..3000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = (x % (capacity as u64 * 4 + 1)) * LINE_BYTES;
                assert_eq!(
                    fast.access_line((step % 3) as usize, addr),
                    reference.access_line(addr),
                    "capacity {capacity}, step {step}, addr {addr}"
                );
            }
        }
    }

    #[test]
    fn log_sink_records_instead_of_touching_state() {
        let mut sink = SharedL2::log_sink(14);
        sink.set_log_stamp(5);
        assert_eq!(sink.access_line(1, 64), 14);
        sink.set_log_stamp(9);
        assert_eq!(
            sink.access_line(2, 64),
            14,
            "same line again: still the flat prefetched hit latency"
        );
        assert_eq!(
            sink.stats(),
            SharedL2Stats::default(),
            "stats stay untouched in log mode"
        );
        assert_eq!(sink.log_len(), 2);
        let log = sink.take_log();
        assert_eq!(
            log,
            vec![
                L2LogEntry {
                    time: 5,
                    core: 1,
                    line: 64
                },
                L2LogEntry {
                    time: 9,
                    core: 2,
                    line: 64
                },
            ]
        );
        assert_eq!(sink.log_len(), 0, "take_log drains");
        // Replaying the log on a real prefetched L2 reproduces the state
        // evolution the sequential path would have seen.
        let mut real = SharedL2::new(4, 14, 100).with_prefetched(true);
        for e in &log {
            real.access_line(e.core as usize, e.line);
        }
        let stats = real.stats();
        assert_eq!(stats.accesses, 2);
        assert_eq!(stats.shared_hits, 1, "core 2 reused core 1's line");
    }

    #[test]
    fn lru_table_reuses_freed_slots() {
        let mut c = CacheModel::new(2, 5, 14);
        for i in 0..100u64 {
            c.access_line(i * 64, false);
        }
        // Two live lines, at most three slots ever allocated (two resident
        // plus one freed-and-reused): eviction must recycle, not grow.
        assert_eq!(c.lines.len(), 2);
        assert!(
            c.lines.addrs.len() <= 3,
            "slots grew to {} for a 2-line cache",
            c.lines.addrs.len()
        );
    }
}
