//! A monotone discrete-event queue for the timing simulator.
//!
//! The per-instruction timing model in [`crate::Core`] is *analytic* — each
//! instruction's dispatch/ready/complete/retire times are computed directly
//! with `max()` algebra over resource-release timestamps, so a single core
//! never ticks through idle cycles. What still needs scheduling is
//! everything that happens *between* cores and *after* issue: which core's
//! pipeline clock is furthest behind (the multi-core interleave), when an
//! engine-timer completion or a load-port release unblocks a dependent, and
//! where barrier epochs land. [`EventQueue`] is the one ordering structure
//! all of those share: a min-heap of `(timestamp, payload)` events with a
//! monotonicity guarantee — events are delivered in nondecreasing time, ties
//! broken by payload order, and scheduling an event before the clock is a
//! simulator bug that panics rather than silently reordering history.
//!
//! Why skipping idle cycles cannot change a reported cycle count: every
//! timestamp in the simulator is *computed* (a max over dependency and
//! resource-release times), never *counted* (incremented per tick). The
//! queue only decides the order in which already-computed timestamps are
//! visited, and the monotone pop order is exactly the order a cycle-stepped
//! loop would reach them — see `docs/ARCHITECTURE.md` § Event-driven timing.
//!
//! ```
//! use vegeta_sim::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.push(30, "barrier");
//! q.push(10, "retire");
//! q.push(10, "port-release");
//! assert_eq!(q.pop(), Some((10, "port-release")));
//! assert_eq!(q.pop(), Some((10, "retire")));
//! assert_eq!(q.now(), 10);
//! assert_eq!(q.pop(), Some((30, "barrier")));
//! assert_eq!(q.pop(), None);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A monotone min-heap of `(timestamp, payload)` events.
///
/// Events pop in nondecreasing timestamp order; equal timestamps pop in
/// ascending payload order (`T: Ord`), which is what makes every consumer
/// deterministic — the multi-core merge uses the core index as the payload,
/// so simultaneous cores advance in index order, exactly like the linear
/// scan it replaced.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<T: Ord> {
    heap: BinaryHeap<Reverse<(u64, T)>>,
    now: u64,
}

impl<T: Ord> EventQueue<T> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
        }
    }

    /// An empty queue with room for `capacity` events before reallocating
    /// (the multi-core merge sizes this to the core count).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            now: 0,
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending. Popping an empty queue is a branch
    /// and nothing else — the empty-queue fast path drain loops rely on.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current simulation time: the timestamp of the last delivered
    /// event (0 before any delivery). Never decreases.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    ///
    /// Panics when `time` is earlier than [`EventQueue::now`] — delivering
    /// into the past would mean the simulator already advanced beyond a
    /// still-pending cause, i.e. reported cycles could depend on pop order.
    pub fn push(&mut self, time: u64, payload: T) {
        assert!(
            time >= self.now,
            "event scheduled at {time} but the clock is already at {}",
            self.now
        );
        self.heap.push(Reverse((time, payload)));
    }

    /// The earliest pending event, without delivering it.
    pub fn peek(&self) -> Option<(u64, &T)> {
        self.heap.peek().map(|Reverse((t, p))| (*t, p))
    }

    /// Delivers the earliest pending event, advancing the clock to its
    /// timestamp. `None` (and an unchanged clock) when no events are
    /// pending.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let Reverse((time, payload)) = self.heap.pop()?;
        self.now = time;
        Some((time, payload))
    }

    /// Delivers *every* event coalesced at the earliest pending timestamp,
    /// appending payloads to `out` in ascending payload order, and returns
    /// that timestamp. `out` is not cleared — reuse a scratch buffer across
    /// calls to keep the drain loop allocation-free once warm.
    pub fn pop_coalesced_into(&mut self, out: &mut Vec<T>) -> Option<u64> {
        let (time, _) = self.peek()?;
        self.now = time;
        while let Some((t, _)) = self.peek() {
            if t != time {
                break;
            }
            let Reverse((_, payload)) = self.heap.pop().expect("peeked");
            out.push(payload);
        }
        Some(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order_regardless_of_push_order() {
        let mut q = EventQueue::new();
        for t in [50u64, 10, 40, 20, 30] {
            q.push(t, t as usize);
        }
        let mut seen = Vec::new();
        while let Some((t, p)) = q.pop() {
            assert_eq!(t as usize, p);
            seen.push(t);
        }
        assert_eq!(seen, vec![10, 20, 30, 40, 50]);
        assert_eq!(q.now(), 50);
    }

    #[test]
    fn equal_timestamps_pop_in_payload_order() {
        // The determinism contract: simultaneous events deliver in payload
        // (core-index) order, whatever order they were scheduled in.
        let mut q = EventQueue::new();
        for core in [3usize, 0, 2, 1] {
            q.push(7, core);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pop_coalesced_drains_exactly_one_timestamp() {
        let mut q = EventQueue::new();
        q.push(5, "b");
        q.push(5, "a");
        q.push(9, "c");
        let mut batch = Vec::new();
        assert_eq!(q.pop_coalesced_into(&mut batch), Some(5));
        assert_eq!(batch, vec!["a", "b"]);
        assert_eq!(q.len(), 1, "the t=9 event is untouched");
        batch.clear();
        assert_eq!(q.pop_coalesced_into(&mut batch), Some(9));
        assert_eq!(batch, vec!["c"]);
        assert_eq!(q.pop_coalesced_into(&mut batch), None);
    }

    #[test]
    fn empty_queue_fast_path_returns_none_and_keeps_the_clock() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 0);
        q.push(12, 1);
        q.pop();
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 12, "a drained queue keeps the final time");
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn same_time_reschedule_is_allowed() {
        // A core that finishes a shard re-enters the merge at the same
        // timestamp — scheduling *at* the current clock is legal.
        let mut q = EventQueue::new();
        q.push(4, 0usize);
        assert_eq!(q.pop(), Some((4, 0)));
        q.push(4, 0usize);
        assert_eq!(q.pop(), Some((4, 0)));
    }

    #[test]
    #[should_panic(expected = "clock is already at")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(10, 0usize);
        q.pop();
        q.push(9, 1usize);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let q: EventQueue<usize> = EventQueue::with_capacity(16);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), 0);
    }
}
