//! Differential pin for the event-driven scheduler: replaying any shard
//! set through the production event-queue merge loop
//! ([`MultiCoreSim::run_sharded`]) must produce a [`MultiCoreResult`]
//! identical **down to the last field** to the retained linear-scan
//! reference ([`MultiCoreSim::run_sharded_stepped`]) — makespan, barrier
//! and reduction cycles, every per-core `SimResult` (cycles, cache stats,
//! peak resident bytes), and the shared-L2 counters.
//!
//! Timestamps in this simulator are *computed*, never counted, so the
//! merge loop only decides the order cores are advanced in; these tests
//! are the proof that the order genuinely cannot leak into any reported
//! number, across ragged shapes, every kernel family, both scheduler
//! policies, work stealing, and the cold-L2 (non-prefetched) path.

use proptest::prelude::*;
use vegeta_engine::EngineConfig;
use vegeta_kernels::{GemmShape, KernelOptions, KernelSpec, SparseMode};
use vegeta_sim::{MultiCoreConfig, MultiCoreSim, SchedulerPolicy, SimConfig};
use vegeta_sparse::NmRatio;

/// The kernel family under test, expanded to a [`KernelSpec`] per shape
/// (the row-wise family needs a per-row cover list sized to the shape).
#[derive(Debug, Clone, Copy)]
enum Family {
    TiledDense,
    Tiled2of4,
    Tiled1of4,
    Listing1,
    RowWise,
    Vector,
}

impl Family {
    fn spec(self, shape: GemmShape) -> KernelSpec {
        match self {
            Family::TiledDense => KernelSpec::Tiled {
                mode: SparseMode::Dense,
                opts: KernelOptions::default(),
            },
            Family::Tiled2of4 => KernelSpec::Tiled {
                mode: SparseMode::Nm2of4,
                opts: KernelOptions::default(),
            },
            Family::Tiled1of4 => KernelSpec::Tiled {
                mode: SparseMode::Nm1of4,
                opts: KernelOptions::default(),
            },
            Family::Listing1 => KernelSpec::Listing1 {
                mode: SparseMode::Nm2of4,
            },
            Family::RowWise => KernelSpec::RowWise {
                row_ratios: (0..shape.m.div_ceil(4))
                    .map(|r| match r % 3 {
                        0 => NmRatio::S1_4,
                        1 => NmRatio::S2_4,
                        _ => NmRatio::D4_4,
                    })
                    .collect(),
            },
            Family::Vector => KernelSpec::Vector,
        }
    }
}

fn family() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::TiledDense),
        Just(Family::Tiled2of4),
        Just(Family::Tiled1of4),
        Just(Family::Listing1),
        Just(Family::RowWise),
        Just(Family::Vector),
    ]
}

fn policy() -> impl Strategy<Value = SchedulerPolicy> {
    prop_oneof![Just(SchedulerPolicy::Static), Just(SchedulerPolicy::Lpt)]
}

/// Cuts `spec` at `shape` into the shard streams `policy` runs (the same
/// selection `Session` and `vegeta-serve` make).
fn shards_for(
    spec: &KernelSpec,
    shape: GemmShape,
    cores: usize,
    policy: SchedulerPolicy,
) -> (
    Vec<vegeta_kernels::ShardStream>,
    Option<vegeta_kernels::ShardStream>,
) {
    match policy {
        SchedulerPolicy::Static => (spec.shard_streams(shape, cores), None),
        SchedulerPolicy::Lpt => {
            let set = spec.shard_set(shape, cores);
            (set.shards, set.reduction)
        }
    }
}

proptest! {
    /// Event-driven == stepped over ragged shapes × kernel families ×
    /// both policies × core counts × stealing × cold/prefetched L2, with
    /// the full result structure compared at once.
    #[test]
    fn event_driven_replay_is_field_identical_to_the_stepped_scan(
        m in 4usize..=90,
        n in 4usize..=70,
        k in 8usize..=200,
        fam in family(),
        cores in 1usize..=5,
        pol in policy(),
        stealing in any::<bool>(),
        prefetched in any::<bool>(),
    ) {
        let shape = GemmShape::new(m, n, k);
        let spec = fam.spec(shape);
        let mut cfg = MultiCoreConfig::with_core(SimConfig::default(), cores);
        cfg.work_stealing = stealing;
        cfg.prefetched = prefetched;
        let engine = EngineConfig::vegeta_s(16).unwrap().with_output_forwarding(true);

        let (shards, reduction) = shards_for(&spec, shape, cores, pol);
        let event = MultiCoreSim::new(cfg.clone(), engine.clone())
            .run_sharded(shards, reduction, pol);

        let (shards, reduction) = shards_for(&spec, shape, cores, pol);
        let stepped = MultiCoreSim::new(cfg, engine)
            .run_sharded_stepped(shards, reduction, pol);

        // One structural assert covers every field: makespan, barrier and
        // reduction cycles, per-core SimResults (instructions, cache
        // hits/misses, engine-busy cycles, peak resident bytes), and the
        // shared-L2 stats. MultiCoreResult derives PartialEq.
        prop_assert_eq!(event, stepped);
    }
}

/// The merge loops also agree across engine classes (issue widths and
/// latencies shift every timestamp, so this catches an ordering
/// assumption that only holds for one engine's timing).
#[test]
fn merge_loops_agree_across_engine_classes() {
    let shape = GemmShape::new(96, 64, 256);
    let engines = [
        EngineConfig::rasa_dm(),
        EngineConfig::stc_like(),
        EngineConfig::vegeta_s(16)
            .unwrap()
            .with_output_forwarding(true),
    ];
    let spec = KernelSpec::Tiled {
        mode: SparseMode::Nm2of4,
        opts: KernelOptions::default(),
    };
    for engine in engines {
        for cores in [2usize, 3, 8] {
            let cfg = MultiCoreConfig::new(cores);
            let (shards, reduction) = shards_for(&spec, shape, cores, SchedulerPolicy::Lpt);
            let event = MultiCoreSim::new(cfg.clone(), engine.clone()).run_sharded(
                shards,
                reduction,
                SchedulerPolicy::Lpt,
            );
            let (shards, reduction) = shards_for(&spec, shape, cores, SchedulerPolicy::Lpt);
            let stepped = MultiCoreSim::new(cfg, engine.clone()).run_sharded_stepped(
                shards,
                reduction,
                SchedulerPolicy::Lpt,
            );
            assert_eq!(event, stepped, "{} @ {cores} cores", engine.name());
        }
    }
}
