//! Differential pin for the host-parallel execution mode: running any
//! shard set with [`ExecMode::ParallelHost`] — per-core-chunk worker
//! threads, log-sink L2s, and the streaming `(time, core)` log replay on
//! the real shared L2 — must produce a [`MultiCoreResult`] identical
//! **down to the last field** to the sequential event merge
//! ([`ExecMode::Sequential`]): makespan, barrier and reduction cycles,
//! every per-core `SimResult` (cycles, cache stats, peak resident bytes),
//! and the shared-L2 counters including first-toucher `shared_hits`.
//!
//! The sweep deliberately includes the fallback envelope: with
//! `prefetched` off or `work_stealing` on the parallel mode must silently
//! run the sequential loop (cross-core coupling makes the timelines
//! interleave-dependent), and `Auto` must behave like one of the two —
//! never a third timing.

use proptest::prelude::*;
use vegeta_engine::EngineConfig;
use vegeta_kernels::{GemmShape, KernelOptions, KernelSpec, SparseMode};
use vegeta_sim::{ExecMode, MultiCoreConfig, MultiCoreSim, SchedulerPolicy, SimConfig};
use vegeta_sparse::NmRatio;

/// The kernel family under test, expanded to a [`KernelSpec`] per shape
/// (the row-wise family needs a per-row cover list sized to the shape).
#[derive(Debug, Clone, Copy)]
enum Family {
    TiledDense,
    Tiled2of4,
    Tiled1of4,
    Listing1,
    RowWise,
    Vector,
}

impl Family {
    fn spec(self, shape: GemmShape) -> KernelSpec {
        match self {
            Family::TiledDense => KernelSpec::Tiled {
                mode: SparseMode::Dense,
                opts: KernelOptions::default(),
            },
            Family::Tiled2of4 => KernelSpec::Tiled {
                mode: SparseMode::Nm2of4,
                opts: KernelOptions::default(),
            },
            Family::Tiled1of4 => KernelSpec::Tiled {
                mode: SparseMode::Nm1of4,
                opts: KernelOptions::default(),
            },
            Family::Listing1 => KernelSpec::Listing1 {
                mode: SparseMode::Nm2of4,
            },
            Family::RowWise => KernelSpec::RowWise {
                row_ratios: (0..shape.m.div_ceil(4))
                    .map(|r| match r % 3 {
                        0 => NmRatio::S1_4,
                        1 => NmRatio::S2_4,
                        _ => NmRatio::D4_4,
                    })
                    .collect(),
            },
            Family::Vector => KernelSpec::Vector,
        }
    }
}

fn family() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::TiledDense),
        Just(Family::Tiled2of4),
        Just(Family::Tiled1of4),
        Just(Family::Listing1),
        Just(Family::RowWise),
        Just(Family::Vector),
    ]
}

fn policy() -> impl Strategy<Value = SchedulerPolicy> {
    prop_oneof![Just(SchedulerPolicy::Static), Just(SchedulerPolicy::Lpt)]
}

/// Cuts `spec` at `shape` into the shard streams `policy` runs (the same
/// selection `Session` and `vegeta-serve` make).
fn shards_for(
    spec: &KernelSpec,
    shape: GemmShape,
    cores: usize,
    policy: SchedulerPolicy,
) -> (
    Vec<vegeta_kernels::ShardStream>,
    Option<vegeta_kernels::ShardStream>,
) {
    match policy {
        SchedulerPolicy::Static => (spec.shard_streams(shape, cores), None),
        SchedulerPolicy::Lpt => {
            let set = spec.shard_set(shape, cores);
            (set.shards, set.reduction)
        }
    }
}

proptest! {
    /// ParallelHost == Sequential over ragged shapes × kernel families ×
    /// both policies × prefetch on/off × 1/2/4/8 simulated cores × 1..4
    /// host threads, with the full result structure compared at once.
    /// Prefetch-off cases exercise the automatic sequential fallback.
    #[test]
    fn parallel_host_replay_is_field_identical_to_the_event_merge(
        m in 4usize..=90,
        n in 4usize..=70,
        k in 8usize..=200,
        fam in family(),
        cores_pow in 0u32..=3,
        pol in policy(),
        prefetched in any::<bool>(),
        host_threads in 1usize..=4,
    ) {
        let cores = 1usize << cores_pow; // 1, 2, 4, 8
        let shape = GemmShape::new(m, n, k);
        let spec = fam.spec(shape);
        let mut cfg = MultiCoreConfig::with_core(SimConfig::default(), cores);
        cfg.prefetched = prefetched;
        let engine = EngineConfig::vegeta_s(16).unwrap().with_output_forwarding(true);

        let (shards, reduction) = shards_for(&spec, shape, cores, pol);
        let sequential = MultiCoreSim::new(
            cfg.clone().with_exec(ExecMode::Sequential),
            engine.clone(),
        )
        .run_sharded(shards, reduction, pol);

        let (shards, reduction) = shards_for(&spec, shape, cores, pol);
        let parallel = MultiCoreSim::new(
            cfg.with_exec(ExecMode::ParallelHost(host_threads)),
            engine,
        )
        .run_sharded(shards, reduction, pol);

        // One structural assert covers every field: makespan, barrier and
        // reduction cycles, per-core SimResults (instructions, cache
        // hits/misses, engine-busy cycles, peak resident bytes), and the
        // shared-L2 stats. MultiCoreResult derives PartialEq.
        prop_assert_eq!(parallel, sequential);
    }

    /// Auto never invents a third timing: whatever the host's parallelism,
    /// its result equals the pinned Sequential result (which ParallelHost
    /// is separately proven equal to above) — including when work stealing
    /// forces the fallback.
    #[test]
    fn auto_mode_matches_sequential_including_fallback_cases(
        m in 8usize..=60,
        n in 8usize..=48,
        k in 16usize..=128,
        fam in family(),
        cores in 1usize..=5,
        stealing in any::<bool>(),
    ) {
        let shape = GemmShape::new(m, n, k);
        let spec = fam.spec(shape);
        let mut cfg = MultiCoreConfig::with_core(SimConfig::default(), cores);
        cfg.work_stealing = stealing;
        let engine = EngineConfig::vegeta_s(16).unwrap();

        let (shards, reduction) = shards_for(&spec, shape, cores, SchedulerPolicy::Lpt);
        let sequential = MultiCoreSim::new(
            cfg.clone().with_exec(ExecMode::Sequential),
            engine.clone(),
        )
        .run_sharded(shards, reduction, SchedulerPolicy::Lpt);

        let (shards, reduction) = shards_for(&spec, shape, cores, SchedulerPolicy::Lpt);
        let auto = MultiCoreSim::new(cfg.with_exec(ExecMode::Auto), engine)
            .run_sharded(shards, reduction, SchedulerPolicy::Lpt);

        prop_assert_eq!(auto, sequential);
    }
}

/// The parallel replay also agrees across engine classes (issue widths and
/// latencies shift every timestamp, so this catches an ordering assumption
/// that only holds for one engine's timing).
#[test]
fn parallel_host_agrees_across_engine_classes() {
    let shape = GemmShape::new(96, 64, 256);
    let engines = [
        EngineConfig::rasa_dm(),
        EngineConfig::stc_like(),
        EngineConfig::vegeta_s(16)
            .unwrap()
            .with_output_forwarding(true),
    ];
    let spec = KernelSpec::Tiled {
        mode: SparseMode::Nm2of4,
        opts: KernelOptions::default(),
    };
    for engine in engines {
        for cores in [2usize, 3, 8] {
            for host_threads in [2usize, 3] {
                let (shards, reduction) = shards_for(&spec, shape, cores, SchedulerPolicy::Lpt);
                let sequential = MultiCoreSim::new(
                    MultiCoreConfig::new(cores).with_exec(ExecMode::Sequential),
                    engine.clone(),
                )
                .run_sharded(shards, reduction, SchedulerPolicy::Lpt);
                let (shards, reduction) = shards_for(&spec, shape, cores, SchedulerPolicy::Lpt);
                let parallel = MultiCoreSim::new(
                    MultiCoreConfig::new(cores).with_exec(ExecMode::ParallelHost(host_threads)),
                    engine.clone(),
                )
                .run_sharded(shards, reduction, SchedulerPolicy::Lpt);
                assert_eq!(
                    parallel,
                    sequential,
                    "{} @ {cores} cores, {host_threads} host threads",
                    engine.name()
                );
            }
        }
    }
}
