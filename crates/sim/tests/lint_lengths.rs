//! Ties the static verifier's length accounting to the simulator: the op
//! counts `vegeta-lint` recomputes (and LPT scheduling trusts for load
//! balancing) must equal what [`MultiCoreSim`] actually consumes when the
//! same shard set replays.

use vegeta_isa::stream::InstStream;
use vegeta_kernels::{GemmShape, KernelEmitter, KernelOptions, KernelSpec, ShardPlan, SparseMode};
use vegeta_sim::{MultiCoreConfig, MultiCoreSim, SchedulerPolicy, SimConfig};

fn specs() -> Vec<KernelSpec> {
    vec![
        KernelSpec::Tiled {
            mode: SparseMode::Dense,
            opts: KernelOptions::default(),
        },
        KernelSpec::Tiled {
            mode: SparseMode::Nm2of4,
            opts: KernelOptions::default(),
        },
        KernelSpec::Tiled {
            mode: SparseMode::Nm1of4,
            opts: KernelOptions::default(),
        },
    ]
}

/// The ops the verifier walks and declares clean are exactly the dynamic
/// instructions the multi-core simulator retires for the same shard set —
/// including the K-split reduction replay.
#[test]
fn verifier_op_counts_match_simulated_instructions() {
    let shape = GemmShape::new(96, 64, 256);
    for spec in specs() {
        for (cores, plan) in [
            (2, ShardPlan::new(2, 1, 1)),
            (4, ShardPlan::new(2, 2, 1)),
            (4, ShardPlan::new(2, 1, 2)),
            (8, ShardPlan::new(2, 2, 2)),
        ] {
            let report = vegeta_lint::verify_shard_set_with(&spec, shape, plan);
            assert!(report.is_clean(), "{plan:?}: {report}");

            let set = KernelEmitter::for_spec(&spec, shape).shard_with(plan);
            let declared: u64 = set
                .shards
                .iter()
                .map(InstStream::remaining)
                .chain(set.reduction.iter().map(InstStream::remaining))
                .sum();
            assert_eq!(
                report.ops_checked, declared,
                "verifier walked a different stream than the set declares"
            );

            let mut sim = MultiCoreSim::new(
                MultiCoreConfig::with_core(SimConfig::default(), cores),
                vegeta_engine::EngineConfig::vegeta_s(16).unwrap(),
            );
            let res = sim.run_sharded(set.shards, set.reduction, SchedulerPolicy::Lpt);
            assert_eq!(
                res.instructions(),
                declared,
                "{plan:?}: simulator consumed a different op count than declared"
            );
        }
    }
}

/// Same contract for the legacy static 1D split (no reduction stream).
#[test]
fn verifier_op_counts_match_static_split() {
    let shape = GemmShape::new(96, 64, 256);
    for spec in specs() {
        for cores in [1, 2, 4] {
            let report = vegeta_lint::verify_shard_streams(&spec, shape, cores);
            assert!(report.is_clean(), "{report}");

            let shards = spec.shard_streams(shape, cores);
            let declared: u64 = shards.iter().map(InstStream::remaining).sum();
            assert_eq!(report.ops_checked, declared);

            let mut sim = MultiCoreSim::new(
                MultiCoreConfig::with_core(SimConfig::default(), cores),
                vegeta_engine::EngineConfig::vegeta_s(16).unwrap(),
            );
            let res = sim.run_sharded(shards, None, SchedulerPolicy::Static);
            assert_eq!(res.instructions(), declared);
        }
    }
}
