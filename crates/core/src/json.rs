//! A minimal, dependency-free JSON value: serialization and parsing.
//!
//! The experiment reports ([`crate::report`]) serialize to machine-readable
//! JSON without pulling `serde` into the (offline, vendored) dependency
//! tree. Supported: objects, arrays, strings (with escape sequences),
//! finite numbers, booleans and `null` — everything the reports need, and
//! enough to round-trip them byte-exactly.
//!
//! # Example
//!
//! ```
//! use vegeta::json::JsonValue;
//!
//! let v = JsonValue::parse(r#"{"cycles": 1200, "engine": "RASA-DM"}"#)?;
//! assert_eq!(v.get("cycles").and_then(JsonValue::as_u64), Some(1200));
//! assert_eq!(JsonValue::parse(&v.to_string())?, v);
//! # Ok::<(), vegeta::json::JsonError>(())
//! ```

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has one number type).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

/// Why a JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(*pos, format!("unexpected character '{}'", *c as char))),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(JsonValue::Number(n)),
        _ => Err(err(start, format!("invalid number '{text}'"))),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let scalar = if (0xD800..=0xDBFF).contains(&code) {
                            // High surrogate: a \uDC00-\uDFFF low surrogate
                            // must follow (how JSON escapes non-BMP chars).
                            if bytes.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                return Err(err(*pos, "unpaired high surrogate"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| err(*pos, "invalid \\u code point"))?,
                        );
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Parses the four hex digits of a `\u` escape starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| err(at, "truncated \\u escape"))?;
    let hex = std::str::from_utf8(hex).map_err(|_| err(at, "non-ascii \\u escape"))?;
    u32::from_str_radix(hex, 16).map_err(|_| err(at, "invalid \\u escape"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

/// Writes a string with JSON escaping.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            // Integral values print without a decimal point; everything
            // else uses `{:?}`, the shortest representation that parses
            // back to the same value. Either way serialization round-trips.
            JsonValue::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => {
                write!(f, "{}", *n as i64)
            }
            JsonValue::Number(n) => write!(f, "{n:?}"),
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Convenience constructors used by the report serializers.
impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-1.5e2").unwrap(),
            JsonValue::Number(-150.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(
            v.get("a")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .and_then(JsonValue::as_str),
            Some("x")
        );
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            r#""\ud83d""#,  // unpaired high surrogate
            r#""\ud83dA""#, // high surrogate + non-surrogate
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_chars() {
        // U+1F600 as standard JSON escapes it: a \u surrogate pair.
        assert_eq!(
            JsonValue::parse(r#""\ud83d\ude00!""#).unwrap(),
            JsonValue::String("\u{1F600}!".into())
        );
        // Raw non-BMP characters round-trip through Display too.
        let v = JsonValue::String("label \u{1F600}".into());
        assert_eq!(JsonValue::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn display_round_trips() {
        let v = JsonValue::Object(vec![
            ("name".into(), "VEGETA-S-16-2".into()),
            ("cycles".into(), 123_456_789u64.into()),
            ("tflops".into(), 3.117_592_3f64.into()),
            ("quote \"q\" \n".into(), JsonValue::Null),
            (
                "cells".into(),
                JsonValue::Array(vec![1u64.into(), true.into()]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_extraction_is_exact() {
        assert_eq!(JsonValue::Number(42.0).as_u64(), Some(42));
        assert_eq!(JsonValue::Number(42.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
    }
}
