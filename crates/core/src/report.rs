//! Structured, self-describing experiment reports.
//!
//! Every [`crate::session`] run returns a [`RunReport`] (one
//! engine × workload × sparsity cell); grid runs aggregate them into a
//! [`SweepReport`] and network runs into a [`NetworkReport`]. Reports carry
//! the raw counters of the simulation (cycles, instruction counts, engine
//! busy time) plus enough labels to be interpreted standalone, and
//! serialize to JSON and CSV with no external dependencies
//! ([`crate::json`]).

use std::path::PathBuf;

use vegeta_kernels::GemmShape;
use vegeta_sim::SharedL2Stats;

use crate::json::{JsonError, JsonValue};

/// Geometric mean of a slice of positive values; `None` when empty.
///
/// # Example
///
/// ```
/// use vegeta::report::geomean;
///
/// assert_eq!(geomean(&[2.0, 8.0]), Some(4.0));
/// assert_eq!(geomean(&[]), None);
/// ```
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some((values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp())
}

/// Why a report failed to deserialize.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// The document was not valid JSON.
    Json(JsonError),
    /// A required field was missing or had the wrong type.
    Field(&'static str),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Json(e) => write!(f, "{e}"),
            ReportError::Field(name) => write!(f, "missing or mistyped field '{name}'"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<JsonError> for ReportError {
    fn from(e: JsonError) -> Self {
        ReportError::Json(e)
    }
}

/// The result of simulating one workload on one engine at one weight
/// sparsity: labels plus the raw counters of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Workload label (a Table IV layer name, or an ad-hoc label).
    pub workload: String,
    /// Engine design-point name.
    pub engine: String,
    /// Weight-sparsity label (for example `"2:4"`).
    pub sparsity: String,
    /// Fidelity label of the run: `"full"` for unscaled shapes,
    /// `"quick/4"`-style for proxy shapes (see
    /// [`crate::session::Fidelity`]).
    pub fidelity: String,
    /// Kernel that was executed (self-describing, from
    /// [`vegeta_kernels::Kernel::name`]).
    pub kernel: String,
    /// Storage-format label of the executed kernel's `A` operand
    /// (`"dense"`, `"2:4"`, `"rowwise:4"`, `"csr"`; `"-"` for prebuilt
    /// traces whose operands are unknown).
    pub format: String,
    /// Stored `A`-operand value bytes in that format
    /// ([`vegeta_kernels::KernelSpec::a_values_bytes`]; 0 for prebuilt
    /// traces).
    pub a_values_bytes: u64,
    /// `A`-operand metadata bits in that format
    /// ([`vegeta_kernels::KernelSpec::a_metadata_bits`]; 0 for prebuilt
    /// traces).
    pub a_metadata_bits: u64,
    /// The GEMM that was simulated.
    pub shape: GemmShape,
    /// Runtime in core cycles.
    pub cycles: u64,
    /// Dynamic instructions simulated.
    pub instructions: u64,
    /// Tile compute instructions dispatched to the matrix engine.
    pub tile_compute: u64,
    /// Core cycles during which the matrix engine had work in flight.
    pub engine_busy_cycles: u64,
    /// Dynamic instructions delivered through the streaming pipeline (0
    /// when a prebuilt materialized trace was replayed instead).
    pub insts_streamed: u64,
    /// Peak bytes of trace data resident during the replay: one streaming
    /// chunk for streamed runs, the whole trace for materialized ones.
    pub peak_resident_bytes: u64,
    /// Dense-equivalent MACs of the workload (the engine skips a fraction
    /// given by the sparsity).
    pub macs: u64,
    /// Core clock the run was simulated at, in GHz.
    pub core_ghz: f64,
    /// Cores the GEMM was sharded across (1 for the classic single-core
    /// path; `cycles` is then the multi-core makespan including the
    /// end-of-shard barrier).
    pub cores: usize,
    /// Scheduler that assigned shards to cores: `"-"` for the classic
    /// single-core path, else a [`vegeta_sim::SchedulerPolicy`] label
    /// (`"static"` / `"lpt"`).
    pub scheduler: String,
    /// Per-core cycle counts of a multi-core run, in core order (empty for
    /// single-core runs).
    pub per_core_cycles: Vec<u64>,
    /// Shared-L2 hit/miss/sharing statistics of a multi-core run (all
    /// zeros for single-core runs, which model a flat private L2).
    pub shared_l2: SharedL2Stats,
    /// Parallel efficiency of the run: the mean fraction of the makespan
    /// each core spent busy (`Σ per-core cycles / (cores × makespan)`,
    /// see [`vegeta_sim::MultiCoreResult::scaling_efficiency`]); 1.0 for
    /// single-core runs, 0.0 for zero-cycle runs.
    pub scaling_efficiency: f64,
}

impl RunReport {
    /// Fraction of the runtime the matrix engine had work in flight —
    /// for multi-core runs the *mean per-core* fraction of the makespan
    /// (`engine_busy_cycles` is the across-core sum).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.engine_busy_cycles as f64 / (self.cores.max(1) as f64 * self.cycles as f64)
    }

    /// Cores that retired nothing (zero per-core cycles) — provisioned
    /// silicon the shard plan and scheduler failed to feed. Always 0 for
    /// single-core runs and for healthy scaled-out ones.
    pub fn stranded_cores(&self) -> usize {
        self.per_core_cycles.iter().filter(|&&c| c == 0).count()
    }

    /// Instructions per core cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }

    /// Runtime in seconds at the simulated core clock.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.core_ghz * 1e9)
    }

    /// Effective throughput in TFLOP/s (dense-equivalent work over
    /// runtime).
    pub fn effective_tflops(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        2.0 * self.macs as f64 / self.seconds() / 1e12
    }

    /// The report as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("workload".into(), self.workload.as_str().into()),
            ("engine".into(), self.engine.as_str().into()),
            ("sparsity".into(), self.sparsity.as_str().into()),
            ("fidelity".into(), self.fidelity.as_str().into()),
            ("kernel".into(), self.kernel.as_str().into()),
            ("format".into(), self.format.as_str().into()),
            ("a_values_bytes".into(), self.a_values_bytes.into()),
            ("a_metadata_bits".into(), self.a_metadata_bits.into()),
            ("m".into(), self.shape.m.into()),
            ("n".into(), self.shape.n.into()),
            ("k".into(), self.shape.k.into()),
            ("cycles".into(), self.cycles.into()),
            ("instructions".into(), self.instructions.into()),
            ("tile_compute".into(), self.tile_compute.into()),
            ("engine_busy_cycles".into(), self.engine_busy_cycles.into()),
            ("insts_streamed".into(), self.insts_streamed.into()),
            (
                "peak_resident_bytes".into(),
                self.peak_resident_bytes.into(),
            ),
            ("macs".into(), self.macs.into()),
            ("core_ghz".into(), self.core_ghz.into()),
            ("cores".into(), self.cores.into()),
            ("scheduler".into(), self.scheduler.as_str().into()),
            (
                "per_core_cycles".into(),
                JsonValue::Array(
                    self.per_core_cycles
                        .iter()
                        .map(|&c| JsonValue::from(c))
                        .collect(),
                ),
            ),
            (
                "shared_l2".into(),
                JsonValue::Object(vec![
                    ("accesses".into(), self.shared_l2.accesses.into()),
                    ("hits".into(), self.shared_l2.hits.into()),
                    ("misses".into(), self.shared_l2.misses.into()),
                    ("shared_hits".into(), self.shared_l2.shared_hits.into()),
                ]),
            ),
            ("scaling_efficiency".into(), self.scaling_efficiency.into()),
            (
                "stranded_cores".into(),
                (self.stranded_cores() as u64).into(),
            ),
            ("utilization".into(), self.utilization().into()),
            ("effective_tflops".into(), self.effective_tflops().into()),
        ])
    }

    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Parses a report back from [`RunReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`ReportError::Json`] on malformed JSON, [`ReportError::Field`] when
    /// a required field is missing or mistyped. Derived fields
    /// (`utilization`, `effective_tflops`) are recomputed, not read.
    pub fn from_json(text: &str) -> Result<RunReport, ReportError> {
        let v = JsonValue::parse(text)?;
        Self::from_json_value(&v)
    }

    /// Parses a report from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// [`ReportError::Field`] when a required field is missing or mistyped.
    pub fn from_json_value(v: &JsonValue) -> Result<RunReport, ReportError> {
        let s = |name: &'static str| -> Result<String, ReportError> {
            v.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(ReportError::Field(name))
        };
        let u = |name: &'static str| -> Result<u64, ReportError> {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or(ReportError::Field(name))
        };
        Ok(RunReport {
            workload: s("workload")?,
            engine: s("engine")?,
            sparsity: s("sparsity")?,
            fidelity: s("fidelity")?,
            kernel: s("kernel")?,
            format: s("format")?,
            a_values_bytes: u("a_values_bytes")?,
            a_metadata_bits: u("a_metadata_bits")?,
            shape: GemmShape::new(u("m")? as usize, u("n")? as usize, u("k")? as usize),
            cycles: u("cycles")?,
            instructions: u("instructions")?,
            tile_compute: u("tile_compute")?,
            engine_busy_cycles: u("engine_busy_cycles")?,
            insts_streamed: u("insts_streamed")?,
            peak_resident_bytes: u("peak_resident_bytes")?,
            macs: u("macs")?,
            core_ghz: v
                .get("core_ghz")
                .and_then(JsonValue::as_f64)
                .ok_or(ReportError::Field("core_ghz"))?,
            // The multi-core fields default to single-core values when
            // absent, so reports written before the scale-out refactor
            // still parse; when present they must be well-formed.
            cores: match v.get("cores") {
                None => 1,
                Some(c) => c.as_u64().ok_or(ReportError::Field("cores"))? as usize,
            },
            scheduler: match v.get("scheduler") {
                None => "-".to_string(),
                Some(p) => p
                    .as_str()
                    .map(str::to_string)
                    .ok_or(ReportError::Field("scheduler"))?,
            },
            per_core_cycles: match v.get("per_core_cycles") {
                None => Vec::new(),
                Some(a) => a
                    .as_array()
                    .ok_or(ReportError::Field("per_core_cycles"))?
                    .iter()
                    .map(|c| c.as_u64().ok_or(ReportError::Field("per_core_cycles")))
                    .collect::<Result<Vec<u64>, ReportError>>()?,
            },
            shared_l2: match v.get("shared_l2") {
                None => SharedL2Stats::default(),
                Some(l2) => {
                    let lu = |name: &'static str| -> Result<u64, ReportError> {
                        l2.get(name)
                            .and_then(JsonValue::as_u64)
                            .ok_or(ReportError::Field("shared_l2"))
                    };
                    SharedL2Stats {
                        accesses: lu("accesses")?,
                        hits: lu("hits")?,
                        misses: lu("misses")?,
                        shared_hits: lu("shared_hits")?,
                    }
                }
            },
            scaling_efficiency: match v.get("scaling_efficiency") {
                None => 1.0,
                Some(s) => s.as_f64().ok_or(ReportError::Field("scaling_efficiency"))?,
            },
        })
    }

    /// The CSV header matching [`RunReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "workload,sparsity,fidelity,engine,kernel,format,a_values_bytes,a_metadata_bits,\
         m,n,k,cores,scheduler,cycles,per_core_cycles,scaling_efficiency,stranded_cores,\
         shared_l2_shared_hits,instructions,insts_streamed,peak_resident_bytes,\
         utilization,effective_tflops"
    }

    /// One CSV row (fields quoted where needed — engine names contain
    /// commas-free parentheses only, but quote defensively).
    /// `per_core_cycles` is `;`-joined (empty for single-core runs).
    pub fn csv_row(&self) -> String {
        let per_core = self
            .per_core_cycles
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(";");
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.4},{},{},{},{},{},{:.4},{:.4}",
            csv_field(&self.workload),
            csv_field(&self.sparsity),
            csv_field(&self.fidelity),
            csv_field(&self.engine),
            csv_field(&self.kernel),
            csv_field(&self.format),
            self.a_values_bytes,
            self.a_metadata_bits,
            self.shape.m,
            self.shape.n,
            self.shape.k,
            self.cores,
            csv_field(&self.scheduler),
            self.cycles,
            per_core,
            self.scaling_efficiency,
            self.stranded_cores(),
            self.shared_l2.shared_hits,
            self.instructions,
            self.insts_streamed,
            self.peak_resident_bytes,
            self.utilization(),
            self.effective_tflops()
        )
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A layer suite run back to back on one engine (network inference order).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Engine design-point name.
    pub engine: String,
    /// Weight-sparsity label.
    pub sparsity: String,
    /// Per-layer reports in execution order.
    pub layers: Vec<RunReport>,
}

impl NetworkReport {
    /// Total core cycles across the suite.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|r| r.cycles).sum()
    }

    /// Total dense-equivalent MACs of the suite.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|r| r.macs).sum()
    }

    /// Effective throughput in TFLOP/s, at the core clock the layers were
    /// actually simulated at (every layer of a suite shares its session's
    /// clock).
    pub fn effective_tflops(&self) -> f64 {
        let cycles = self.total_cycles();
        let Some(core_ghz) = self.layers.first().map(|r| r.core_ghz) else {
            return 0.0;
        };
        if cycles == 0 {
            return 0.0;
        }
        let seconds = cycles as f64 / (core_ghz * 1e9);
        2.0 * self.total_macs() as f64 / seconds / 1e12
    }

    /// Serializes the suite (totals plus per-layer cells) to JSON.
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            ("engine".into(), self.engine.as_str().into()),
            ("sparsity".into(), self.sparsity.as_str().into()),
            ("total_cycles".into(), self.total_cycles().into()),
            ("total_macs".into(), self.total_macs().into()),
            (
                "layers".into(),
                JsonValue::Array(self.layers.iter().map(RunReport::to_json_value).collect()),
            ),
        ])
        .to_string()
    }
}

/// The result of a [`crate::session::Sweep`]: every grid cell plus
/// execution metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One report per engine × workload × sparsity cell, in grid order
    /// (workload-major, then sparsity, then engine).
    pub cells: Vec<RunReport>,
    /// Distinct traces built during the sweep (cache misses).
    pub traces_built: u64,
    /// Trace-cache hits during the sweep.
    pub trace_cache_hits: u64,
    /// Snapshot of the shared [`vegeta_kernels::TraceCache`]'s counters at
    /// sweep completion (hits/misses are lifetime totals for the shared
    /// cache; `traces_built`/`trace_cache_hits` above are this sweep's
    /// deltas).
    pub cache: vegeta_kernels::TraceCacheStats,
    /// Worker threads the sweep ran on.
    pub threads: usize,
}

impl SweepReport {
    /// The cell for a given workload/engine/sparsity combination.
    pub fn get(&self, workload: &str, engine: &str, sparsity: &str) -> Option<&RunReport> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.engine == engine && c.sparsity == sparsity)
    }

    /// Unique engine names, in first-appearance (grid) order.
    pub fn engines(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !names.contains(&c.engine.as_str()) {
                names.push(&c.engine);
            }
        }
        names
    }

    /// Unique workload names, in first-appearance (grid) order.
    pub fn workloads(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !names.contains(&c.workload.as_str()) {
                names.push(&c.workload);
            }
        }
        names
    }

    /// Unique sparsity labels, in first-appearance (grid) order.
    pub fn sparsities(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !names.contains(&c.sparsity.as_str()) {
                names.push(&c.sparsity);
            }
        }
        names
    }

    /// The largest cycle count of any cell (the paper's Fig. 13
    /// normalization denominator); `None` for an empty sweep.
    pub fn max_cycles(&self) -> Option<u64> {
        self.cells.iter().map(|c| c.cycles).max()
    }

    /// Unique core counts, in first-appearance (grid) order (`[1]` for
    /// sweeps without a cores axis).
    pub fn cores_values(&self) -> Vec<usize> {
        let mut values: Vec<usize> = Vec::new();
        for c in &self.cells {
            if !values.contains(&c.cores) {
                values.push(c.cores);
            }
        }
        values
    }

    /// The cell for a workload/engine/sparsity combination at a specific
    /// core count.
    pub fn get_cores(
        &self,
        workload: &str,
        engine: &str,
        sparsity: &str,
        cores: usize,
    ) -> Option<&RunReport> {
        self.cells.iter().find(|c| {
            c.workload == workload
                && c.engine == engine
                && c.sparsity == sparsity
                && c.cores == cores
        })
    }

    /// Geometric-mean speedup of `engine` at `cores` cores over its own
    /// 1-core cells, across every workload at the given sparsity — the
    /// strong-scaling curve of a cores sweep. `None` if any cell is
    /// missing.
    pub fn geomean_core_scaling(&self, engine: &str, sparsity: &str, cores: usize) -> Option<f64> {
        let ratios: Option<Vec<f64>> = self
            .workloads()
            .iter()
            .map(|w| {
                let one = self.get_cores(w, engine, sparsity, 1)?;
                let many = self.get_cores(w, engine, sparsity, cores)?;
                if many.cycles == 0 {
                    return None;
                }
                Some(one.cycles as f64 / many.cycles as f64)
            })
            .collect();
        geomean(&ratios?)
    }

    /// Geometric-mean speedup of `engine` over `baseline` across every
    /// workload at the given sparsity; `None` if any cell is missing or the
    /// grid is empty.
    pub fn geomean_speedup(&self, baseline: &str, engine: &str, sparsity: &str) -> Option<f64> {
        let ratios: Option<Vec<f64>> = self
            .workloads()
            .iter()
            .map(|w| {
                let base = self.get(w, baseline, sparsity)?;
                let ours = self.get(w, engine, sparsity)?;
                Some(base.cycles as f64 / ours.cycles as f64)
            })
            .collect();
        geomean(&ratios?)
    }

    /// The whole grid as CSV (header row included).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(RunReport::csv_header());
        out.push('\n');
        for cell in &self.cells {
            out.push_str(&cell.csv_row());
            out.push('\n');
        }
        out
    }

    /// The whole grid as a JSON object (metadata plus a `cells` array).
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            ("traces_built".into(), self.traces_built.into()),
            ("trace_cache_hits".into(), self.trace_cache_hits.into()),
            ("cache_entries".into(), self.cache.entries.into()),
            ("cache_resident".into(), self.cache.resident.into()),
            ("cache_evictions".into(), self.cache.evictions.into()),
            ("threads".into(), self.threads.into()),
            (
                "cells".into(),
                JsonValue::Array(self.cells.iter().map(RunReport::to_json_value).collect()),
            ),
        ])
        .to_string()
    }

    /// Writes the CSV into `$VEGETA_CSV_DIR/<name>.csv` when that
    /// environment variable is set (creating the directory); returns the
    /// path written, or `None` when the variable is unset/empty or the
    /// write fails (a diagnostic goes to stderr — artifact dumps must never
    /// abort an experiment).
    pub fn save_csv(&self, name: &str) -> Option<PathBuf> {
        let dir = std::env::var("VEGETA_CSV_DIR")
            .ok()
            .filter(|d| !d.is_empty())?;
        let path = PathBuf::from(dir).join(format!("{name}.csv"));
        match std::fs::create_dir_all(path.parent().expect("joined path has a parent"))
            .and_then(|()| std::fs::write(&path, self.to_csv()))
        {
            Ok(()) => {
                eprintln!("wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("could not write {}: {e}", path.display());
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(workload: &str, engine: &str, sparsity: &str, cycles: u64) -> RunReport {
        RunReport {
            workload: workload.into(),
            engine: engine.into(),
            sparsity: sparsity.into(),
            fidelity: "full".into(),
            kernel: "tiled-dense-u3".into(),
            format: "dense".into(),
            a_values_bytes: 64 * 256 * 2,
            a_metadata_bits: 0,
            shape: GemmShape::new(64, 64, 256),
            cycles,
            instructions: 4 * cycles,
            tile_compute: 128,
            engine_busy_cycles: cycles / 2,
            insts_streamed: 4 * cycles,
            peak_resident_bytes: 4096,
            macs: 1_048_576,
            core_ghz: 2.0,
            cores: 1,
            scheduler: "-".into(),
            per_core_cycles: Vec::new(),
            shared_l2: SharedL2Stats::default(),
            scaling_efficiency: 1.0,
        }
    }

    #[test]
    fn geomean_handles_empty_and_values() {
        assert_eq!(geomean(&[]), None);
        let g = geomean(&[2.0, 2.0, 2.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn run_report_json_round_trips() {
        let r = sample("BERT-L2", "RASA-DM (VEGETA-D-1-2)", "2:4", 123_456);
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn multi_core_fields_round_trip_through_json_and_csv() {
        let mut r = sample("GPT-L1", "VEGETA-S-16-2", "2:4", 50_000);
        r.cores = 4;
        r.scheduler = "lpt".into();
        r.per_core_cycles = vec![49_000, 48_500, 49_900, 47_000];
        r.shared_l2 = SharedL2Stats {
            accesses: 1000,
            hits: 990,
            misses: 10,
            shared_hits: 600,
        };
        r.scaling_efficiency = 0.97;
        // engine_busy_cycles is the across-core sum: utilization must stay
        // a per-core mean fraction, never exceed 1 because of the summing.
        r.engine_busy_cycles = 4 * r.cycles;
        assert!((r.utilization() - 1.0).abs() < 1e-12);
        r.engine_busy_cycles = r.cycles;
        assert!((r.utilization() - 0.25).abs() < 1e-12);
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(r.stranded_cores(), 0);
        let row = r.csv_row();
        assert!(row.contains(",4,lpt,50000,49000;48500;49900;47000,0.9700,0,600,"));
        assert_eq!(
            row.split(',').count(),
            RunReport::csv_header().split(',').count(),
            "row and header column counts agree"
        );
    }

    #[test]
    fn stranded_cores_surface_in_json_and_csv() {
        let mut r = sample("L", "E", "2:4", 1000);
        r.cores = 4;
        r.scheduler = "static".into();
        r.per_core_cycles = vec![0, 900, 0, 950];
        assert_eq!(r.stranded_cores(), 2);
        assert!(r.to_json().contains("\"stranded_cores\":2"));
        assert!(r.csv_row().contains(",4,static,1000,0;900;0;950,"));
        // Derived, like utilization: stripping it from the JSON is fine.
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.stranded_cores(), 2);
    }

    #[test]
    fn pre_scale_out_json_parses_with_single_core_defaults() {
        // A report serialized before the multi-core fields existed: strip
        // them and the parse must fall back to single-core values.
        let r = sample("L", "E", "2:4", 1000);
        let v = JsonValue::parse(&r.to_json()).unwrap();
        let JsonValue::Object(fields) = v else {
            unreachable!()
        };
        let stripped = JsonValue::Object(
            fields
                .into_iter()
                .filter(|(k, _)| {
                    !matches!(
                        k.as_str(),
                        "cores"
                            | "scheduler"
                            | "per_core_cycles"
                            | "shared_l2"
                            | "scaling_efficiency"
                    )
                })
                .collect(),
        );
        let back = RunReport::from_json_value(&stripped).unwrap();
        assert_eq!(back, r, "defaults reconstruct the single-core report");
        // Present-but-mistyped fields are still refused.
        let mut broken = stripped;
        if let JsonValue::Object(fields) = &mut broken {
            fields.push(("cores".into(), JsonValue::String("four".into())));
        }
        assert!(matches!(
            RunReport::from_json_value(&broken),
            Err(ReportError::Field("cores"))
        ));
    }

    #[test]
    fn sweep_report_core_scaling_helpers() {
        let mut one = sample("L1", "E", "2:4", 4000);
        let mut four = sample("L1", "E", "2:4", 1000);
        one.cores = 1;
        four.cores = 4;
        four.per_core_cycles = vec![990, 980, 1000, 960];
        let report = SweepReport {
            cells: vec![one, four],
            traces_built: 1,
            trace_cache_hits: 1,
            cache: vegeta_kernels::TraceCacheStats::default(),
            threads: 1,
        };
        assert_eq!(report.cores_values(), vec![1, 4]);
        assert_eq!(report.get_cores("L1", "E", "2:4", 4).unwrap().cycles, 1000);
        let scaling = report.geomean_core_scaling("E", "2:4", 4).unwrap();
        assert!((scaling - 4.0).abs() < 1e-12);
        assert_eq!(report.geomean_core_scaling("E", "2:4", 8), None);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        assert!(matches!(
            RunReport::from_json("{\"workload\": \"x\"}"),
            Err(ReportError::Field(_))
        ));
        assert!(matches!(
            RunReport::from_json("not json"),
            Err(ReportError::Json(_))
        ));
    }

    #[test]
    fn derived_metrics() {
        let r = sample("L", "E", "4:4", 1000);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        assert!((r.ipc() - 4.0).abs() < 1e-12);
        assert!(r.effective_tflops() > 0.0);
        let zero = RunReport { cycles: 0, ..r };
        assert_eq!(zero.utilization(), 0.0);
        assert_eq!(zero.effective_tflops(), 0.0);
    }

    #[test]
    fn sweep_report_lookup_and_geomean() {
        let report = SweepReport {
            cells: vec![
                sample("L1", "base", "2:4", 2000),
                sample("L1", "fast", "2:4", 1000),
                sample("L2", "base", "2:4", 4000),
                sample("L2", "fast", "2:4", 1000),
            ],
            traces_built: 2,
            trace_cache_hits: 2,
            cache: vegeta_kernels::TraceCacheStats::default(),
            threads: 1,
        };
        assert_eq!(report.workloads(), vec!["L1", "L2"]);
        assert_eq!(report.engines(), vec!["base", "fast"]);
        assert_eq!(report.sparsities(), vec!["2:4"]);
        assert_eq!(report.max_cycles(), Some(4000));
        let g = report.geomean_speedup("base", "fast", "2:4").unwrap();
        assert!((g - (2.0f64 * 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(report.geomean_speedup("base", "missing", "2:4"), None);
        let csv = report.to_csv();
        assert!(csv.starts_with("workload,"));
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn csv_quotes_awkward_fields() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn network_report_totals() {
        let report = NetworkReport {
            engine: "E".into(),
            sparsity: "4:4".into(),
            layers: vec![
                sample("L1", "E", "4:4", 1000),
                sample("L2", "E", "4:4", 3000),
            ],
        };
        assert_eq!(report.total_cycles(), 4000);
        assert_eq!(report.total_macs(), 2 * 1_048_576);
        assert!(report.effective_tflops() > 0.0);
        assert!(report.to_json().contains("\"total_cycles\":4000"));
    }
}
