//! High-level experiment drivers shared by the benches and examples.
//!
//! These functions wire the full stack together the way §VI does: pick the
//! kernel a given engine would run for a layer at a given weight sparsity,
//! build its dynamic trace, and replay it on the out-of-order core model.

use vegeta_engine::EngineConfig;
use vegeta_isa::trace::Trace;
use vegeta_kernels::{build_trace, GemmShape, KernelOptions, SparseMode};
use vegeta_sim::{CoreSim, SimConfig, SimResult};
use vegeta_sparse::NmRatio;
use vegeta_workloads::Layer;

/// The execution mode an engine uses for weights with the given pattern:
/// the sparsest *supported* pattern that still covers the weights.
///
/// A dense engine always runs the dense kernel (it "cannot leverage
/// sparsity", §VI-C); the STC-like engine runs 1:4 layers with its 2:4
/// path, gaining nothing from the extra zeros.
pub fn execution_mode(engine: &EngineConfig, weights: NmRatio) -> SparseMode {
    engine
        .supported_patterns()
        .into_iter()
        .filter(|p| p.n() >= weights.n() && p.m() == weights.m())
        .find_map(SparseMode::for_ratio)
        .unwrap_or(SparseMode::Dense)
}

/// Builds the tile-kernel trace a layer executes in the given mode.
pub fn layer_trace(layer: &Layer, mode: SparseMode) -> Trace {
    build_trace(layer.gemm_shape(), mode, KernelOptions::default())
}

/// Simulates one layer on one engine at the given weight pattern, returning
/// the core-cycle result (§VI-C conditions: 2 GHz core, 0.5 GHz engine, data
/// prefetched to L2).
pub fn run_layer(layer: &Layer, weights: NmRatio, engine: &EngineConfig) -> SimResult {
    let mode = execution_mode(engine, weights);
    let trace = layer_trace(layer, mode);
    CoreSim::with_engine(engine.clone()).run(&trace)
}

/// Simulates a prebuilt trace on an engine with a custom core config.
pub fn run_trace(trace: &Trace, engine: &EngineConfig, sim: SimConfig) -> SimResult {
    CoreSim::new(sim, engine.clone()).run(trace)
}

/// The engine line-up of Fig. 13, in plot order: three dense baselines, the
/// STC-like engine, the five VEGETA-S designs, and VEGETA-S-16-2 with
/// output forwarding.
pub fn figure13_engines() -> Vec<EngineConfig> {
    let mut engines = vec![
        EngineConfig::rasa_sm(),
        EngineConfig::rasa_dm(),
        EngineConfig::tmul_like(),
        EngineConfig::stc_like(),
    ];
    for alpha in [1usize, 2, 4, 8, 16] {
        engines.push(EngineConfig::vegeta_s(alpha).expect("valid alpha"));
    }
    engines.push(
        EngineConfig::vegeta_s(16)
            .expect("valid alpha")
            .with_output_forwarding(true),
    );
    engines
}

/// Geometric mean of a non-empty slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Result of running a sequence of layers (a network suite) on one engine.
#[derive(Debug, Clone)]
pub struct NetworkRunResult {
    /// Per-layer `(name, core cycles)` in execution order.
    pub layer_cycles: Vec<(&'static str, u64)>,
    /// Total core cycles across the suite.
    pub total_cycles: u64,
    /// Total effectual MACs of the suite (dense-equivalent work is
    /// `total_macs`; the engine skips a fraction given by the sparsity).
    pub total_macs: u64,
}

impl NetworkRunResult {
    /// Effective throughput in TFLOP/s at the given core clock.
    pub fn effective_tflops(&self, core_ghz: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let seconds = self.total_cycles as f64 / (core_ghz * 1e9);
        2.0 * self.total_macs as f64 / seconds / 1e12
    }
}

/// Runs a layer suite back to back on one engine at one weight sparsity,
/// as a network inference would (each layer's GEMM executes in full before
/// the next begins).
pub fn run_network(layers: &[Layer], weights: NmRatio, engine: &EngineConfig) -> NetworkRunResult {
    let mut layer_cycles = Vec::with_capacity(layers.len());
    let mut total_cycles = 0u64;
    let mut total_macs = 0u64;
    for layer in layers {
        let res = run_layer(layer, weights, engine);
        layer_cycles.push((layer.name, res.core_cycles));
        total_cycles += res.core_cycles;
        total_macs += layer.macs();
    }
    NetworkRunResult {
        layer_cycles,
        total_cycles,
        total_macs,
    }
}

/// A quick proxy shape for smoke tests and `--quick` bench runs: the layer
/// scaled down while keeping its aspect ratio.
pub fn scaled_shape(layer: &Layer, factor: usize) -> GemmShape {
    let s = layer.gemm_shape();
    GemmShape::new(
        (s.m / factor).max(16),
        (s.n / factor).max(16),
        (s.k / factor).max(128),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegeta_workloads::table4;

    #[test]
    fn dense_engines_always_run_dense_kernels() {
        for engine in [
            EngineConfig::rasa_sm(),
            EngineConfig::rasa_dm(),
            EngineConfig::tmul_like(),
        ] {
            for w in [NmRatio::D4_4, NmRatio::S2_4, NmRatio::S1_4] {
                assert_eq!(execution_mode(&engine, w), SparseMode::Dense);
            }
        }
    }

    #[test]
    fn stc_like_runs_1_4_layers_in_2_4_mode() {
        let stc = EngineConfig::stc_like();
        assert_eq!(execution_mode(&stc, NmRatio::S1_4), SparseMode::Nm2of4);
        assert_eq!(execution_mode(&stc, NmRatio::S2_4), SparseMode::Nm2of4);
        assert_eq!(execution_mode(&stc, NmRatio::D4_4), SparseMode::Dense);
    }

    #[test]
    fn vegeta_s_exploits_every_pattern() {
        let s = EngineConfig::vegeta_s(16).unwrap();
        assert_eq!(execution_mode(&s, NmRatio::S1_4), SparseMode::Nm1of4);
        assert_eq!(execution_mode(&s, NmRatio::S2_4), SparseMode::Nm2of4);
        assert_eq!(execution_mode(&s, NmRatio::D4_4), SparseMode::Dense);
    }

    #[test]
    fn sparse_execution_is_faster_on_a_small_layer() {
        // Scaled-down BERT-L2 for speed; the full layers run in the benches.
        let layer = &table4()[7];
        let shape = scaled_shape(layer, 8);
        let s16 = EngineConfig::vegeta_s(16)
            .unwrap()
            .with_output_forwarding(true);
        let dense_trace = build_trace(shape, SparseMode::Dense, KernelOptions::default());
        let sparse_trace = build_trace(shape, SparseMode::Nm1of4, KernelOptions::default());
        let dm = run_trace(&dense_trace, &EngineConfig::rasa_dm(), SimConfig::default());
        let sp = run_trace(&sparse_trace, &s16, SimConfig::default());
        let speedup = dm.core_cycles as f64 / sp.core_cycles as f64;
        assert!(
            speedup > 2.0,
            "1:4 on S-16-2+OF vs dense on RASA-DM: {speedup}"
        );
    }

    #[test]
    fn figure13_lineup_has_ten_entries() {
        let engines = figure13_engines();
        assert_eq!(engines.len(), 10);
        assert!(engines.last().unwrap().output_forwarding());
    }

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
