//! # VEGETA: sparse/dense GEMM tile acceleration for CPUs
//!
//! A from-scratch Rust reproduction of *VEGETA: Vertically-Integrated
//! Extensions for Sparse/Dense GEMM Tile Acceleration on CPUs* (HPCA 2023).
//!
//! VEGETA extends a CPU's AMX-class matrix engine with flexible `N:M`
//! structured sparsity: compressed tile registers plus metadata registers,
//! `TILE_SPMM` instructions, sparsity-aware systolic processing elements,
//! WL/FF/FS/DR pipelining with output forwarding, and a lossless software
//! transform that turns *unstructured* sparsity into row-wise `N:M`.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`num`] | BF16/FP32 mixed precision, matrices |
//! | [`sparse`] | `N:M` formats, compression, covers/transforms, pruning |
//! | [`isa`] | tile/metadata registers, Table II instructions, executor |
//! | [`engine`] | Table III design points, dataflow + pipeline + cost models |
//! | [`sim`] | trace-driven out-of-order CPU model |
//! | [`kernels`] | tiled GEMM/SPMM/vector kernels, im2col, [`kernels::KernelSpec`] |
//! | [`workloads`] | Table IV layers and weight generators |
//! | [`model`] | roofline (Fig. 3) and granularity (Fig. 15) models |
//! | [`session`] | the experiment API: [`session::Session`] + [`session::Sweep`] |
//! | [`report`] | structured run/sweep reports with JSON + CSV output |
//! | [`json`] | the dependency-free JSON value behind the reports |
//!
//! Two crates sit on top of this facade rather than inside it: the
//! `vegeta-serve` crate serves batched inference requests over a fleet of
//! simulated workers (admission control, request batching, virtual-clock
//! latency accounting), and `vegeta-bench` holds the figure/table binaries.
//!
//! # Quickstart
//!
//! Experiments are driven through a [`session::Session`] (one engine) or a
//! [`session::Sweep`] (an engine × layer × sparsity grid, run on a worker
//! pool with trace memoization):
//!
//! ```
//! use vegeta::prelude::*;
//!
//! // How fast does VEGETA-S-16-2 run BERT-L2 with 2:4-sparse weights?
//! // (The doctest scales the layer down 8x; drop `_scaled` for full size.)
//! let layer = table4()[7];
//! let session = Session::new(EngineConfig::vegeta_s(16).unwrap());
//! let report = session.run_layer_scaled(&layer, NmRatio::S2_4, 8);
//! assert!(report.cycles > 0);
//! println!("{} on {}: {}", report.workload, report.engine, report.to_json());
//!
//! // The same question across a grid: engines x sparsities, in parallel,
//! // building each distinct kernel trace once.
//! let grid = Sweep::new()
//!     .with_engines([EngineConfig::rasa_dm(), EngineConfig::vegeta_s(16).unwrap()])
//!     .with_layer(layer)
//!     .with_sparsities([NmRatio::D4_4, NmRatio::S2_4])
//!     .with_scale(8)
//!     .run();
//! let speedup = grid
//!     .geomean_speedup("RASA-DM (VEGETA-D-1-2)", "VEGETA-S-16-2", "2:4")
//!     .unwrap();
//! assert!(speedup > 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use vegeta_engine as engine;
pub use vegeta_isa as isa;
pub use vegeta_kernels as kernels;
pub use vegeta_lint as lint;
pub use vegeta_model as model;
pub use vegeta_num as num;
pub use vegeta_sim as sim;
pub use vegeta_sparse as sparse;
pub use vegeta_workloads as workloads;

pub mod json;
pub mod report;
pub mod session;

/// Seeds a small fast RNG (re-exported convenience for examples and docs).
pub fn rand_seed(seed: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::SmallRng::seed_from_u64(seed)
}

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use crate::rand_seed;
    pub use crate::report::{geomean, NetworkReport, RunReport, SweepReport};
    pub use crate::session::{
        figure13_engines, figure13_sparsities, quick_factor, Fidelity, Preflight, ProgressFn,
        Session, Sweep,
    };
    pub use vegeta_engine::{CostModel, EngineConfig, EngineTimer};
    pub use vegeta_isa::{Executor, Inst, Memory, TReg, UReg, VReg};
    pub use vegeta_kernels::{
        EngineKernelExt, GemmShape, Kernel, KernelOptions, KernelSpec, ShardPlan, ShardSet,
        SparseMode, TraceCache,
    };
    pub use vegeta_model::{GranularityHw, GranularityModel};
    pub use vegeta_num::{Bf16, Matrix};
    pub use vegeta_sim::{
        CoreSim, ExecMode, MultiCoreConfig, MultiCoreResult, MultiCoreSim, SchedulerPolicy,
        SharedL2Stats, SimConfig, SimResult,
    };
    pub use vegeta_sparse::{
        CompressedTile, CsrTile, DenseTile, FormatSpec, MregImage, NmRatio, RowWiseTile,
        TileFormat, TileView, TregImage,
    };
    pub use vegeta_workloads::{table4, Layer, WeightSparsity};
}
