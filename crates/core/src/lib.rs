//! # VEGETA: sparse/dense GEMM tile acceleration for CPUs
//!
//! A from-scratch Rust reproduction of *VEGETA: Vertically-Integrated
//! Extensions for Sparse/Dense GEMM Tile Acceleration on CPUs* (HPCA 2023).
//!
//! VEGETA extends a CPU's AMX-class matrix engine with flexible `N:M`
//! structured sparsity: compressed tile registers plus metadata registers,
//! `TILE_SPMM` instructions, sparsity-aware systolic processing elements,
//! WL/FF/FS/DR pipelining with output forwarding, and a lossless software
//! transform that turns *unstructured* sparsity into row-wise `N:M`.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`num`] | BF16/FP32 mixed precision, matrices |
//! | [`sparse`] | `N:M` formats, compression, covers/transforms, pruning |
//! | [`isa`] | tile/metadata registers, Table II instructions, executor |
//! | [`engine`] | Table III design points, dataflow + pipeline + cost models |
//! | [`sim`] | trace-driven out-of-order CPU model |
//! | [`kernels`] | tiled GEMM/SPMM/vector kernels, im2col |
//! | [`workloads`] | Table IV layers and weight generators |
//! | [`model`] | roofline (Fig. 3) and granularity (Fig. 15) models |
//! | [`experiments`] | end-to-end drivers used by benches and examples |
//!
//! # Quickstart
//!
//! ```
//! use vegeta::prelude::*;
//!
//! // Compress a 2:4-pruned tile and check the transform is lossless.
//! let mut rng = rand_seed(42);
//! let dense = vegeta::sparse::prune::random_nm(16, 64, NmRatio::S2_4, &mut rng);
//! let tile = CompressedTile::compress(&dense, NmRatio::S2_4)?;
//! assert_eq!(tile.decompress(), dense);
//! # Ok::<(), vegeta::sparse::SparsityError>(())
//! ```

#![warn(missing_docs)]

pub use vegeta_engine as engine;
pub use vegeta_isa as isa;
pub use vegeta_kernels as kernels;
pub use vegeta_model as model;
pub use vegeta_num as num;
pub use vegeta_sim as sim;
pub use vegeta_sparse as sparse;
pub use vegeta_workloads as workloads;

pub mod experiments;

/// Seeds a small fast RNG (re-exported convenience for examples and docs).
pub fn rand_seed(seed: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::SmallRng::seed_from_u64(seed)
}

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use crate::experiments::{execution_mode, layer_trace, run_layer, run_trace};
    pub use crate::rand_seed;
    pub use vegeta_engine::{CostModel, EngineConfig, EngineTimer};
    pub use vegeta_isa::{Executor, Inst, Memory, TReg, UReg, VReg};
    pub use vegeta_kernels::{GemmShape, KernelOptions, SparseMode};
    pub use vegeta_model::{GranularityHw, GranularityModel};
    pub use vegeta_num::{Bf16, Matrix};
    pub use vegeta_sim::{CoreSim, SimConfig, SimResult};
    pub use vegeta_sparse::{CompressedTile, NmRatio, RowWiseTile};
    pub use vegeta_workloads::{table4, Layer, WeightSparsity};
}
